#!/usr/bin/env python3
"""Multi-tenant scheduling study on the simulated cluster.

Submits a mixed workload (two WordCounts in a 'prod' queue, one
TeraSort in 'research') under each YARN scheduler and compares
completion times and traffic — the kind of cluster-configuration
question the Keddah substrate answers without a physical testbed.

Run:  python examples/scheduler_comparison.py
"""

from repro.analysis.jct import makespan
from repro.analysis.tables import Table, render_table
from repro.cluster.config import ClusterSpec, HadoopConfig
from repro.cluster.units import MB
from repro.jobs import make_job
from repro.mapreduce.cluster import HadoopCluster


def run_workload(scheduler: str):
    config = HadoopConfig(block_size=32 * MB, num_reducers=4,
                          scheduler=scheduler)
    cluster = HadoopCluster(ClusterSpec(num_nodes=8, hosts_per_rack=4),
                            config, seed=11,
                            queue_capacities={"prod": 0.7, "research": 0.3})
    specs = [
        make_job("wordcount", input_gb=0.5, queue="prod", job_id=f"{scheduler}-wc1"),
        make_job("wordcount", input_gb=0.5, queue="prod", job_id=f"{scheduler}-wc2"),
        make_job("terasort", input_gb=0.5, queue="research", job_id=f"{scheduler}-ts"),
    ]
    results, traces = cluster.run(specs, arrival_times=[0.0, 1.0, 2.0])
    return specs, results, traces


def main() -> None:
    table = Table(
        title="Scheduler comparison: 3 concurrent jobs on 8 nodes",
        headers=["scheduler", "job", "queue", "JCT s", "makespan s",
                 "job traffic MiB"])
    for scheduler in ("fifo", "fair", "capacity", "drf"):
        specs, results, traces = run_workload(scheduler)
        span = makespan(results)
        for spec, result, trace in zip(specs, results, traces):
            table.add_row(scheduler, result.kind, spec.queue,
                          round(result.completion_time, 1), round(span, 1),
                          round(trace.total_bytes() / MB, 1))
    print(render_table(table))
    print("\nFIFO serialises the queue (watch the last job's JCT); "
          "fair/drf interleave; capacity honours the 70/30 split.")


if __name__ == "__main__":
    main()
