#!/usr/bin/env python3
"""Failure study: what does a node crash do to Hadoop's traffic?

Kills a worker (DataNode + NodeManager) in the middle of a TeraSort and
compares the run against a healthy baseline: HDFS re-replication
traffic appears, killed tasks re-execute elsewhere, and the completion
time stretches — recovery behaviour single-job healthy-cluster captures
never show.

Run:  python examples/fault_injection.py
"""

from repro.analysis.tables import Table, render_table
from repro.cluster.config import ClusterSpec, HadoopConfig
from repro.cluster.units import MB
from repro.faults import NODE, FaultEvent, FaultInjector
from repro.jobs import make_job
from repro.mapreduce.cluster import HadoopCluster


def run(fail: bool):
    cluster = HadoopCluster(ClusterSpec(num_nodes=8, hosts_per_rack=4),
                            HadoopConfig(block_size=32 * MB, num_reducers=4),
                            seed=17)
    injector = None
    if fail:
        victim = cluster.workers[6]
        injector = FaultInjector(cluster, [FaultEvent(4.0, NODE, victim.name)])
    results, traces = cluster.run(
        [make_job("terasort", input_gb=0.5, job_id="faultdemo")])
    rereplication = sum(r.size for r in cluster.collector.records
                        if r.service == "re-replication")
    return results[0], traces[0], rereplication, injector


def main() -> None:
    table = Table(title="TeraSort 0.5 GiB: healthy vs node crash at t=4s",
                  headers=["scenario", "JCT s", "total MiB",
                           "re-replication MiB", "containers lost",
                           "map attempts"])
    for label, fail in (("healthy", False), ("node crash", True)):
        result, trace, rereplication, injector = run(fail)
        round0 = result.rounds[0]
        table.add_row(
            label,
            round(result.completion_time, 2),
            round(trace.total_bytes() / MB, 1),
            round(rereplication / MB, 1),
            injector.report.containers_lost if injector else 0,
            round0.num_maps + round0.lost_containers)
        if fail:
            report = injector.report
            print(f"injected: {report.injected[0]}")
            print(f"re-replicated {report.blocks_rereplicated} blocks "
                  f"({rereplication / MB:.0f} MiB), "
                  f"{report.containers_lost} containers expired, "
                  f"job failed: {result.failed}")
    print()
    print(render_table(table))


if __name__ == "__main__":
    main()
