#!/usr/bin/env python3
"""Maintenance traffic: balancing and decommissioning a live cluster.

Production captures contain traffic no job generates: the balancer
shuffling replicas toward even storage, and decommission drains copying
a retiring node's blocks away.  This script shows both on a cluster
whose storage was deliberately skewed, then runs a job *during* the
drain to show the two traffic classes interleaving.

Run:  python examples/cluster_maintenance.py
"""

from repro.cluster.config import ClusterSpec, HadoopConfig
from repro.cluster.units import MB, fmt_bytes
from repro.faults import DECOMMISSION, FaultEvent, FaultInjector
from repro.hdfs.balancer import Balancer
from repro.jobs import make_job
from repro.mapreduce.cluster import HadoopCluster


def main() -> None:
    cluster = HadoopCluster(ClusterSpec(num_nodes=8, hosts_per_rack=4),
                            HadoopConfig(block_size=32 * MB, num_reducers=2),
                            seed=77)

    # Skew the storage: write three files from the same node so its
    # local-first replicas pile up there.
    writer = cluster.workers[0]

    def load(sim):
        for index in range(3):
            yield from cluster.dfs.write_file(
                f"/warehouse/table{index}", 256 * MB, writer, job_id="load")

    cluster.sim.process(load(cluster.sim))
    cluster.sim.run()
    usage = cluster.namenode.bytes_per_node()
    print("storage after skewed loading:")
    for host in sorted(usage, key=lambda h: h.name):
        print(f"  {host.name}: {fmt_bytes(usage[host])}")

    # Balance it.
    balancer = Balancer(cluster.sim, cluster.net, cluster.namenode,
                        bandwidth=40 * MB, threshold=0.2)
    report, _ = balancer.run_once()
    cluster.sim.run()
    print(f"\nbalancer: {report.moves} moves, "
          f"{fmt_bytes(report.bytes_moved)} moved, spread "
          f"{fmt_bytes(report.initial_spread)} -> "
          f"{fmt_bytes(report.final_spread)}")

    # Retire a node gracefully while a job runs.  Fault times are
    # absolute simulation times; the clock already advanced while
    # loading and balancing.
    victim = cluster.workers[3]
    injector = FaultInjector(
        cluster, [FaultEvent(cluster.sim.now + 2.0, DECOMMISSION, victim.name)])
    results, traces = cluster.run([make_job("wordcount", input_gb=0.5)])
    drain = sum(r.size for r in cluster.collector.records
                if r.service == "re-replication")
    print(f"\ndecommissioned {victim.name} during a wordcount run:")
    print(f"  drained {injector.report.blocks_rereplicated} blocks "
          f"({fmt_bytes(drain)}), job finished in "
          f"{results[0].completion_time:.1f}s (failed: {results[0].failed})")
    print(f"  node retired: {cluster.namenode.is_dead(victim)}")


if __name__ == "__main__":
    main()
