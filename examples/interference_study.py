#!/usr/bin/env python3
"""Interference study: Hadoop traffic sharing a network with other tenants.

The paper's motivation — putting realistic Hadoop workloads into
network simulations — usually ends with a question like this one: *how
much does background load hurt my job's flows, and vice versa?*  This
script replays a captured TeraSort against increasing levels of
synthetic cross traffic and prints the flow-completion-time inflation
curve.

Run:  python examples/interference_study.py
"""

from repro import run_capture
from repro.analysis.tables import Table, render_table
from repro.cluster.config import HadoopConfig
from repro.cluster.units import MB
from repro.generation.crosstraffic import CrossTrafficSpec, replay_with_cross_traffic
from repro.generation.replay import replay_trace


def main() -> None:
    config = HadoopConfig(block_size=32 * MB, num_reducers=4)
    trace = run_capture("terasort", input_gb=0.5, nodes=8, seed=19,
                        config=config)
    clean = replay_trace(trace)
    print(f"captured terasort: {trace.flow_count()} flows, clean replay "
          f"makespan {clean.makespan:.1f}s")

    table = Table(title="FCT inflation vs background load",
                  headers=["load per pair", "pairs", "pattern",
                           "cross MiB", "FCT inflation", "makespan s"])
    scenarios = [
        (0.2, 4, "constant"),
        (0.5, 6, "constant"),
        (0.5, 6, "onoff"),
        (0.8, 8, "constant"),
    ]
    for load, pairs, pattern in scenarios:
        spec = CrossTrafficSpec(load_fraction=load, pairs=pairs,
                                pattern=pattern)
        report = replay_with_cross_traffic(trace, spec, seed=7)
        table.add_row(f"{load:.0%}", pairs, pattern,
                      round(report.cross_traffic_bytes / MB, 0),
                      round(report.fct_inflation, 2),
                      round(report.contended.makespan, 1))
    print()
    print(render_table(table))
    print("\nbursty (onoff) load at the same average rate hurts less "
          "while it is off and more while it is on — the mean hides it.")


if __name__ == "__main__":
    main()
