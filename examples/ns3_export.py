#!/usr/bin/env python3
"""Export model-generated Hadoop traffic for external network simulators.

This is the paper's headline use case: a networking researcher wants
realistic Hadoop workloads inside ns-3 without running Hadoop.  The
script fits a TeraSort model, generates a 2 GiB synthetic run, and
emits (a) a generic CSV flow schedule and (b) a self-contained ns-3
C++ replay program.

Run:  python examples/ns3_export.py [output_dir]
"""

import sys
from pathlib import Path

from repro import fit_job_model, generate_trace, run_capture_campaign
from repro.cluster.config import HadoopConfig
from repro.cluster.units import MB
from repro.generation.export import to_flow_schedule_csv, to_ns3_script


def main(output_dir: str = "keddah-export") -> None:
    output = Path(output_dir)
    output.mkdir(parents=True, exist_ok=True)
    config = HadoopConfig(block_size=32 * MB, num_reducers=4)

    print("capturing terasort sweep and fitting the model ...")
    traces = run_capture_campaign("terasort", [0.25, 0.5, 1.0],
                                  nodes=8, seed=7, config=config)
    model = fit_job_model(traces)
    model.to_json(output / "terasort-model.json")

    synthetic = generate_trace(model, input_gb=2.0, seed=99)
    print(f"generated {len(synthetic.flows)} flows for a 2 GiB terasort")

    csv_path = output / "terasort-2gb-schedule.csv"
    rows = to_flow_schedule_csv(synthetic, csv_path)
    print(f"  {rows} rows -> {csv_path}")

    cc_path = output / "terasort-2gb-replay.cc"
    flows = to_ns3_script(synthetic, cc_path, link_rate="1Gbps")
    print(f"  {flows} BulkSend apps -> {cc_path}")
    print("\ncopy the .cc into an ns-3 scratch/ directory and run "
          "`./ns3 run scratch/terasort-2gb-replay`")


if __name__ == "__main__":
    main(*sys.argv[1:2])
