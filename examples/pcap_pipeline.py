#!/usr/bin/env python3
"""The packet-level ingestion path: pcap-style capture → flows → model.

Demonstrates that the modelling stages are independent of the
simulator: a packet trace (here synthesised from a simulated capture,
in practice tcpdump output reduced to the same CSV) is assembled into
classified flow records, re-labelled purely from ports, and fitted —
the exact reduction the real Keddah toolchain performs.

Run:  python examples/pcap_pipeline.py
"""

import tempfile
from pathlib import Path

from repro import run_capture
from repro.capture.classifier import classification_accuracy
from repro.capture.pcap import assemble_flows, read_packets, synthesize_packets, write_packets
from repro.capture.records import CaptureMeta, JobTrace
from repro.cluster.config import HadoopConfig
from repro.cluster.units import MB, fmt_bytes
from repro.modeling.fitting import fit_candidates


def main() -> None:
    config = HadoopConfig(block_size=32 * MB, num_reducers=4)
    trace = run_capture("wordcount", input_gb=0.5, nodes=8, seed=3, config=config)
    print(f"captured {trace.flow_count()} flows / "
          f"{fmt_bytes(trace.total_bytes())}")

    # Explode every flow into an MTU packet train and write the "pcap".
    packets = [packet for flow in trace.flows
               for packet in synthesize_packets(flow)]
    pcap_path = Path(tempfile.mkdtemp()) / "capture.csv"
    write_packets(packets, pcap_path)
    print(f"wrote {len(packets)} packets -> {pcap_path}")

    # Ingest: read packets back, reassemble flows, classify from ports.
    rack_of = {f"h{i:03d}": i // 4 for i in range(9)}
    assembled = assemble_flows(read_packets(pcap_path), rack_of=rack_of)
    print(f"reassembled {len(assembled)} flows "
          f"({fmt_bytes(sum(f.size for f in assembled))})")

    accuracy = classification_accuracy(trace.flows)
    print(f"port-based classification accuracy vs ground truth: {accuracy:.1%}")

    # The same packets also serialise as a genuine libpcap file —
    # openable in Wireshark, and the ingestion path tcpdump output uses.
    from repro.capture.pcapfile import ip_name_map, read_pcap, write_pcap

    binary_path = pcap_path.with_suffix(".pcap")
    write_pcap(packets, binary_path)
    names = ip_name_map({f.src for f in trace.flows}
                        | {f.dst for f in trace.flows})
    recovered = read_pcap(binary_path, name_of=names)
    print(f"binary pcap round trip: {len(recovered)} packets "
          f"({binary_path.stat().st_size / 1e6:.1f} MB) -> {binary_path}")

    # The assembled flows feed the modelling stage like any capture.
    ingested = JobTrace(
        meta=CaptureMeta(job_id="ingested", job_kind="wordcount",
                         input_bytes=trace.meta.input_bytes),
        flows=assembled)
    shuffle_sizes = ingested.flow_sizes("shuffle")
    best = fit_candidates(shuffle_sizes)[0]
    print(f"shuffle flow sizes from the pcap path fit "
          f"{best.distribution!r} (KS={best.ks.statistic:.3f}, "
          f"n={len(shuffle_sizes)})")


if __name__ == "__main__":
    main()
