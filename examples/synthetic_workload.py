#!/usr/bin/env python3
"""Generate a full synthetic cluster workload — no Hadoop runs at all.

Loads (or fits) a per-job-kind model bundle, schedules a mixed workload
entirely from the models, replays it through the network simulator, and
exports it for ns-3 — the paper's end-game: reproducible Hadoop-like
traffic at scales and mixes never captured.

Run:  python examples/synthetic_workload.py [output_dir]
"""

import sys
from pathlib import Path

from repro import run_capture_campaign
from repro.cluster.config import HadoopConfig
from repro.cluster.units import MB
from repro.generation.export import to_flow_schedule_csv
from repro.generation.replay import replay_trace
from repro.generation.workload import ScheduledJob, generate_workload_trace
from repro.modeling.bundle import ModelBundle


def main(output_dir: str = "keddah-workload") -> None:
    output = Path(output_dir)
    output.mkdir(parents=True, exist_ok=True)
    config = HadoopConfig(block_size=32 * MB, num_reducers=4)

    print("fitting a model bundle (terasort, wordcount, grep) ...")
    traces = []
    for kind in ("terasort", "wordcount", "grep"):
        traces.extend(run_capture_campaign(kind, [0.25, 0.5], nodes=8,
                                           seed=31, config=config))
    bundle = ModelBundle.fit(traces)
    bundle.save(output / "models")
    print(f"  models for {bundle.kinds()} -> {output / 'models'}")

    # An afternoon on the cluster, described in four lines.
    schedule = [
        ScheduledJob("terasort", input_gb=1.0, start_s=0.0),
        ScheduledJob("wordcount", input_gb=0.5, start_s=5.0),
        ScheduledJob("grep", input_gb=2.0, start_s=8.0),
        ScheduledJob("terasort", input_gb=0.5, start_s=15.0),
        ScheduledJob("wordcount", input_gb=1.0, start_s=20.0),
    ]
    workload = generate_workload_trace(bundle, schedule, seed=7,
                                       workload_id="afternoon")
    workload.to_jsonl(output / "workload.jsonl")
    print(f"\nsynthesised {len(schedule)} jobs: {workload.flow_count()} flows, "
          f"{workload.total_bytes() / MB:.0f} MiB "
          f"-> {output / 'workload.jsonl'}")

    report = replay_trace(workload)
    print(f"replay: makespan {report.makespan:.1f}s, "
          f"peak link utilisation {report.peak_link_utilisation:.0%}, "
          f"mean flow duration {report.mean_flow_duration * 1000:.1f} ms")

    rows = to_flow_schedule_csv(workload, output / "workload-schedule.csv")
    print(f"exported {rows}-row schedule -> {output / 'workload-schedule.csv'}")


if __name__ == "__main__":
    main(*sys.argv[1:2])
