#!/usr/bin/env python3
"""Multi-tenant workload study: a cluster under a realistic job mix.

Runs the HiBench-style micro mix under Poisson arrivals, reports
per-job completion times and cluster-level traffic, and fits one
traffic model per job kind from the *contended* captures — showing
that the Keddah pipeline works on multi-tenant traces too.

Run:  python examples/workload_suite.py
"""

from repro.analysis.tables import Table, render_table
from repro.cluster.config import ClusterSpec, HadoopConfig
from repro.cluster.units import MB
from repro.modeling.model import fit_job_model
from repro.workloads import MICRO_MIX, PoissonArrivals, WorkloadSuite


def main() -> None:
    suite = WorkloadSuite(MICRO_MIX, arrivals=PoissonArrivals(rate=0.2),
                          name="demo")
    outcome = suite.run(
        count=8,
        cluster_spec=ClusterSpec(num_nodes=8, hosts_per_rack=4),
        config=HadoopConfig(block_size=32 * MB, num_reducers=4,
                            scheduler="fair"),
        seed=23)

    table = Table(title="micro mix, Poisson(0.2/s) arrivals, fair scheduler",
                  headers=["job", "kind", "arrival s", "JCT s", "MiB"])
    for result, trace, arrival in zip(outcome.results, outcome.traces,
                                      outcome.arrival_times):
        table.add_row(result.job_id, result.kind, round(arrival, 1),
                      round(result.completion_time, 2),
                      round(trace.total_bytes() / MB, 1))
    print(render_table(table))
    print(f"\nmakespan {outcome.makespan:.1f}s, mean JCT "
          f"{outcome.mean_jct():.1f}s, cluster traffic "
          f"{outcome.total_bytes() / MB:.0f} MiB")

    print("\nper-kind models fitted from the contended captures:")
    for kind, traces in sorted(outcome.traces_by_kind().items()):
        model = fit_job_model(traces)
        parts = ", ".join(f"{name}:{component.size_dist.family}"
                          for name, component in sorted(model.components.items()))
        print(f"  {kind:10s} ({len(traces)} trace(s))  {parts}")


if __name__ == "__main__":
    main()
