#!/usr/bin/env python3
"""A full capture campaign: the paper's experiment grid end-to-end.

Runs every job kind in the HiBench-style mix across an input-size
sweep, saves the captures as JSONL trace files, fits one traffic model
per job kind and saves the models as JSON — the artefacts a Keddah user
ships to their network-simulation colleagues.

Run:  python examples/capture_campaign.py [output_dir]
"""

import sys
from pathlib import Path

from repro import fit_job_model, run_capture_campaign
from repro.capture.records import save_traces
from repro.cluster.config import HadoopConfig
from repro.cluster.units import MB

JOBS = ["terasort", "wordcount", "grep", "pagerank", "kmeans"]
SIZES_GB = [0.25, 0.5, 1.0]


def main(output_dir: str = "keddah-campaign") -> None:
    output = Path(output_dir)
    trace_dir = output / "traces"
    model_dir = output / "models"
    model_dir.mkdir(parents=True, exist_ok=True)
    config = HadoopConfig(block_size=32 * MB, num_reducers=4)

    for job in JOBS:
        print(f"[{job}] capturing {len(SIZES_GB)} input sizes ...", flush=True)
        traces = run_capture_campaign(job, SIZES_GB, nodes=8, seed=42,
                                      config=config)
        paths = save_traces(traces, trace_dir / job)
        print(f"[{job}]   {len(paths)} traces -> {trace_dir / job}")

        model = fit_job_model(traces)
        model_path = model_dir / f"{job}.json"
        model.to_json(model_path)
        summary = ", ".join(
            f"{name}:{component.size_dist.family}"
            for name, component in sorted(model.components.items()))
        print(f"[{job}]   model -> {model_path}  ({summary})")

    print(f"\ncampaign complete under {output}/")
    print("feed the models to `keddah generate` or examples/ns3_export.py")


if __name__ == "__main__":
    main(*sys.argv[1:2])
