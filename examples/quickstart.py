#!/usr/bin/env python3
"""Quickstart: the Keddah pipeline in ~40 lines.

Capture one TeraSort run on a simulated 8-node Hadoop cluster, inspect
its traffic decomposition, fit a traffic model from a small input-size
sweep, generate synthetic traffic for a larger input, and replay it
through the network simulator.

Run:  python examples/quickstart.py
"""

from repro import fit_job_model, generate_trace, replay_trace, run_capture
from repro.analysis.breakdown import component_breakdown
from repro.cluster.config import HadoopConfig
from repro.cluster.units import MB, fmt_bytes


def main() -> None:
    config = HadoopConfig(block_size=32 * MB, num_reducers=4)

    # Stage 1 — capture: run real (simulated) jobs, collect their flows.
    print("capturing terasort at 0.25 / 0.5 / 1 GiB ...")
    traces = [run_capture("terasort", input_gb=gb, nodes=8, seed=seed, config=config)
              for seed, gb in enumerate([0.25, 0.5, 1.0])]

    trace = traces[-1]
    print(f"\n{trace.meta.job_id}: {trace.flow_count()} flows, "
          f"{fmt_bytes(trace.total_bytes())} in "
          f"{trace.meta.completion_time:.1f}s of execution")
    for component, stats in component_breakdown(trace).items():
        if stats["flows"]:
            print(f"  {component:10s} {int(stats['flows']):4d} flows  "
                  f"{fmt_bytes(stats['bytes']):>12s}  "
                  f"({stats['share']:5.1%} of traffic)")

    # Stage 2 — model: fit per-component distributions + scaling laws.
    model = fit_job_model(traces)
    print("\nfitted model:")
    for name, component in sorted(model.components.items()):
        print(f"  {name:10s} size ~ {component.size_dist!r}, "
              f"interarrival ~ {component.interarrival_dist!r}")

    # Stage 3 — reproduce: synthesise traffic for an *unseen* input size.
    synthetic = generate_trace(model, input_gb=2.0, seed=7)
    print(f"\ngenerated {len(synthetic.flows)} flows "
          f"({fmt_bytes(synthetic.total_bytes())}) for a 2 GiB run "
          "(never captured)")

    report = replay_trace(synthetic)
    print(f"replayed through the network simulator: "
          f"makespan {report.makespan:.1f}s, "
          f"peak link utilisation {report.peak_link_utilisation:.0%}")


if __name__ == "__main__":
    main()
