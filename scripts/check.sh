#!/usr/bin/env bash
# Repo health gate: lint (when available) + tier-1 tests + telemetry
# null-path smoke.  Run it before committing, and from
# scripts/run_benchmarks.sh (opt out with KEDDAH_SKIP_CHECK=1).
#
# Usage: scripts/check.sh [extra pytest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

# 1. Lint — ruff is optional in the minimal container; skip gracefully.
if command -v ruff >/dev/null 2>&1; then
    echo "== ruff =="
    ruff check src tests benchmarks scripts
else
    echo "== ruff: not installed, skipping lint =="
fi

# 2. Repo hygiene: compiled bytecode must never be committed.  The
#    tree once grew stale .pyc files that shadowed edited sources;
#    .gitignore covers them, and this guard fails the gate if any ever
#    get force-added.
echo "== tracked-bytecode guard =="
if git ls-files | grep -E '(\.pyc$|__pycache__/)'; then
    echo "error: compiled bytecode is tracked by git (see above)" >&2
    exit 1
fi
echo "no tracked bytecode"

# 3. Tier-1 tests (benchmarks/ are excluded by their conftest).  The
#    per-test hang guard (tests/conftest.py) turns a hung test into a
#    readable failure instead of a stuck gate; override the budget by
#    exporting KEDDAH_TEST_TIMEOUT yourself.
echo "== tier-1 pytest =="
KEDDAH_TEST_TIMEOUT="${KEDDAH_TEST_TIMEOUT:-120}" python -m pytest -x -q "$@"

# 4. Transport-backend differential gate: the analytic and record
#    backends must keep reproducing the fluid backend's flow
#    populations (and the exporters' bytes) before anything ships.
#    Redundant with tier-1 when the full suite ran, but kept explicit
#    so a scoped `check.sh -k <pattern>` run still exercises it.
echo "== transport-backend differential suite =="
python -m pytest tests/test_backend_differential.py tests/test_net_backend.py -q

# 5. Fluid-engine differential gate: the vectorized engine must keep
#    agreeing with the scalar oracle — bitwise on randomized fabrics,
#    byte-identical on a seeded capture — and the engine axis must
#    keep validating at every entry point.  Both engines run here.
echo "== fluid-engine differential suite =="
python -m pytest tests/test_fairshare_incremental.py tests/test_engine_axis.py -q

# 6. Batched-admission differential gate: admitting a wave through
#    start_flows must stay observationally identical to looping
#    start_flow, on every substrate and both fluid engines — the
#    contract every batching producer (shuffle bursts, write
#    pipelines) leans on.
echo "== batched-admission differential suite =="
python -m pytest tests/test_flow_batching.py -q

# 7. Live-observability gate: the serve daemon, the aggregate merge
#    layer and the alert engine — including the mid-run /metrics
#    liveness test and the byte-identity-with-server-attached test.
#    Redundant with tier-1 on a full run, explicit so scoped runs
#    still exercise the daemon end to end.
echo "== live-observability suite =="
python -m pytest tests/test_obs_server.py tests/test_obs_aggregate.py \
    tests/test_obs_alerts.py -q

# 8. Pipeline crash-resume gate: SIGKILL a pipeline mid-fit, resume,
#    and require zero re-execution of completed nodes plus
#    byte-identical final artifacts; then verify a config edit to one
#    mid-DAG node invalidates exactly that node and its descendants.
echo "== pipeline crash-resume gate =="
python scripts/pipeline_gate.py

# 9. Workload-plan differential gate: a single-stage plan must keep
#    producing byte-identical captures to the legacy single-job path
#    across backends and engines, the plan IR/executor semantics must
#    hold, and plan store entries must stay disjoint from single-job
#    entries.  Explicit so scoped runs still exercise the contract.
echo "== workload-plan differential suite =="
python -m pytest tests/test_plan_differential.py tests/test_workload_plans.py \
    tests/test_plan_campaign.py -q

# 10. Telemetry null-path smoke: an un-configured run must emit zero
#    spans and zero probe samples while the perf counters stay live.
echo "== telemetry null-path smoke =="
python - <<'EOF'
from repro.api import run_capture
from repro.obs import NULL_SINK, Telemetry

telemetry = Telemetry.disabled()
trace = run_capture("terasort", input_gb=0.125, nodes=4, seed=1,
                    telemetry=telemetry)
assert telemetry.sink is NULL_SINK, "disabled telemetry allocated a sink"
assert telemetry.tracer.spans_started == 0, "null path started spans"
assert telemetry.tracer.spans_emitted == 0, "null path emitted spans"
assert telemetry.probes.total_samples() == 0, "null path sampled probes"
assert telemetry.registry.value("sim.events_fired") > 0, \
    "registry counters must stay live on the null path"
print(f"null path clean: {trace.flow_count()} flows, "
      f"{int(telemetry.registry.value('sim.events_fired'))} events, "
      "0 spans, 0 probe samples")
EOF

echo "check.sh: all gates passed"
