#!/usr/bin/env python
"""Pipeline crash-resume gate: the ISSUE 9 acceptance criteria, end to end.

Drives the real ``keddah pipeline`` CLI in subprocesses:

1. Run a tiny pipeline uninterrupted (the baseline).
2. Run a twin with ``KEDDAH_PIPELINE_CRASH_IN=fit`` — the process is
   SIGKILLed right after the fit node journals RUNNING.
3. ``keddah pipeline resume`` the twin; it must re-run *only* the
   killed node (journal RUNNING counts prove it) and every artifact —
   including the final report — must be byte-identical to the baseline.
4. Edit one mid-DAG node's config (the fit training set) and verify
   the plan invalidates exactly that node and its descendants.

Exits nonzero with a readable message on the first violated invariant.
Run via ``scripts/check.sh`` or directly:  python scripts/pipeline_gate.py
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
TINY = ["--job", "grep", "--sizes-gb", "0.0625,0.125",
        "--experiments", ""]


def keddah(args, crash_in=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = (str(REPO / "src")
                         + os.pathsep + env.get("PYTHONPATH", ""))
    env.pop("KEDDAH_PIPELINE_CRASH_IN", None)
    if crash_in:
        env["KEDDAH_PIPELINE_CRASH_IN"] = crash_in
    return subprocess.run([sys.executable, "-m", "repro.cli", *args],
                          env=env, cwd=str(REPO), capture_output=True,
                          text=True, timeout=300)


def fail(message):
    print(f"pipeline gate FAILED: {message}", file=sys.stderr)
    sys.exit(1)


def manifests(root):
    found = {}
    for path in sorted(Path(root).glob("nodes/*/outputs.json")):
        found[path.parent.name] = json.loads(
            path.read_text(encoding="utf-8"))["outputs"]
    return found


def running_counts(root):
    counts = {}
    for line in (Path(root) / "journal.jsonl").read_text(
            encoding="utf-8").splitlines():
        try:
            transition = json.loads(line).get("transition") or {}
        except ValueError:
            continue
        if transition.get("state") == "running":
            node = transition["node"]
            counts[node] = counts.get(node, 0) + 1
    return counts


def main():
    with tempfile.TemporaryDirectory(prefix="keddah-pipeline-gate-") as tmp:
        baseline = Path(tmp) / "baseline"
        crashed = Path(tmp) / "crashed"

        print("[1/4] baseline pipeline run")
        clean = keddah(["pipeline", "run", "--dir", str(baseline), *TINY])
        if clean.returncode != 0:
            fail(f"baseline run exited {clean.returncode}:\n{clean.stderr}")

        print("[2/4] SIGKILL mid-fit")
        killed = keddah(["pipeline", "run", "--dir", str(crashed), *TINY],
                        crash_in="fit")
        if killed.returncode != -signal.SIGKILL:
            fail(f"crash hook did not SIGKILL (rc {killed.returncode})")

        print("[3/4] resume: zero re-execution + byte-identical artifacts")
        resumed = keddah(["pipeline", "resume", "--dir", str(crashed)])
        if resumed.returncode != 0:
            fail(f"resume exited {resumed.returncode}:\n{resumed.stderr}")
        counts = running_counts(crashed)
        if counts.get("fit") != 2:
            fail(f"expected fit to enter RUNNING twice, got {counts}")
        rerun = sorted(node for node, count in counts.items()
                       if node != "fit" and count != 1)
        if rerun:
            fail(f"completed nodes re-executed on resume: {rerun}")
        base, twin = manifests(baseline), manifests(crashed)
        if set(base) != set(twin):
            fail(f"node dirs diverged: {sorted(set(base) ^ set(twin))}")
        for name in base:
            if base[name] != twin[name]:
                fail(f"output digests diverged in {name}")
        report = next(baseline.glob("nodes/report@*/work/report.md"))
        twin_report = crashed / report.relative_to(baseline)
        if report.read_bytes() != twin_report.read_bytes():
            fail("final report.md is not byte-identical after resume")

        print("[4/4] config-edit cascade")
        plan = keddah(["pipeline", "plan", "--dir", str(baseline), *TINY,
                       "--fit-sizes-gb", "0.0625,0.125"])
        if plan.returncode != 0:
            fail(f"plan exited {plan.returncode}:\n{plan.stderr}")
        actions = {}
        for line in plan.stdout.splitlines():
            parts = line.split()
            if parts and parts[0] in {"capture", "classify", "fit",
                                      "replay", "validate", "report"}:
                actions[parts[0]] = parts[2]
        expected = {"capture": "cached", "classify": "cached",
                    "replay": "cached", "fit": "run",
                    "validate": "stale-upstream",
                    "report": "stale-upstream"}
        if actions != expected:
            fail(f"config-edit plan wrong: {actions} != {expected}")

    print("pipeline gate: crash-resume byte-identity and cascade hold")


if __name__ == "__main__":
    main()
