#!/usr/bin/env python3
"""Regenerate the recorded-output section of EXPERIMENTS.md.

The scorecard header is maintained by hand (it interprets the results);
the recorded output below it is machine-generated from a fresh run of
every experiment.  Run from the repository root:

    python scripts/regenerate_experiments_md.py
"""

from pathlib import Path

from repro.experiments.report import generate_report

MARKER = "## Recorded output (seed 42 campaign)"


def main() -> None:
    path = Path(__file__).resolve().parent.parent / "EXPERIMENTS.md"
    text = path.read_text(encoding="utf-8")
    if MARKER not in text:
        raise SystemExit(f"{path} is missing the marker {MARKER!r}")
    head = text.split(MARKER)[0]

    body = generate_report(title="ignored")
    lines = []
    for line in body.splitlines():
        if line.startswith("# "):
            continue
        lines.append(line.replace("## ", "### ", 1)
                     if line.startswith("## ") else line)
    rendered = "\n".join(lines).strip()

    path.write_text(head + MARKER + "\n\n" + rendered + "\n",
                    encoding="utf-8")
    print(f"rewrote {path} ({len(rendered.splitlines())} generated lines)")


if __name__ == "__main__":
    main()
