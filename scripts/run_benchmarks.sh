#!/usr/bin/env bash
# Run the performance benchmarks and write the machine-readable results
# next to the repo root, so the BENCH_*.json trajectory can track the
# engine's speed across PRs.  Tier-1 test runs (`python -m pytest -x -q`)
# skip these.
#
# Two artefacts:
#   BENCH_substrate.json — pytest-benchmark timings of the fluid engine
#   BENCH_campaign.json  — campaign runner: cold serial vs cold parallel
#                          vs warm capture store, with hit/miss counters
#                          (written by benchmarks/bench_campaign.py)
#   BENCH_campaign_faults.json — crash-injection stress: supervised pool
#                          vs SIGKILLed workers, recovery overhead and
#                          byte-identity (benchmarks/bench_campaign_faults.py)
#   BENCH_backends.json  — transport backends: fluid vs analytic wall-clock
#                          on the E12-style scaling campaign, flow-population
#                          identity asserted (benchmarks/bench_backends.py)
#   BENCH_vectorized.json — fluid engines: vectorized vs scalar water-filling
#                          on 64/256/1024-host fat-tree wave workloads, with
#                          per-rung speedups, byte-identity flags and a
#                          >=1e6-flow scale run (benchmarks/bench_vectorized.py)
#   BENCH_flow_batching.json — batched start_flows admission vs per-flow
#                          events on fat-tree wave workloads: per-flow
#                          overhead in microseconds, speedup, byte-identity
#                          flags and a >=4096-host scale run
#                          (benchmarks/bench_flow_batching.py)
#   BENCH_serve.json     — live observability daemon: campaign wall time
#                          bare vs served-and-scraped, byte-identity of
#                          the captures, alert liveness
#                          (benchmarks/bench_serve_overhead.py)
#   BENCH_pipeline.json  — crash-safe pipeline DAG: cold flat campaign vs
#                          cold DAG vs warm all-cached DAG, warm-skip
#                          speedup (benchmarks/bench_pipeline.py)
#   BENCH_plans.json     — workload plans: the TPCx-HS chain as one plan
#                          vs its stages as isolated captures, with
#                          per-stage JCT/volume rows and the chaining
#                          overhead (benchmarks/bench_plans.py)
#
# Usage: scripts/run_benchmarks.sh [substrate_output.json] [extra pytest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_substrate.json}"
shift || true

# Health gate first (lint + tier-1 + telemetry null-path smoke), so
# benchmark numbers are never recorded off a broken tree.  Opt out with
# KEDDAH_SKIP_CHECK=1 when iterating on benchmarks alone.
if [[ "${KEDDAH_SKIP_CHECK:-0}" != "1" ]]; then
    scripts/check.sh
fi

PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m pytest \
    benchmarks/bench_substrate_perf.py \
    --benchmark-only \
    --benchmark-json="${out}" \
    -q -s "$@"

PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m pytest \
    benchmarks/bench_campaign.py \
    -m benchmark_suite \
    -q -s "$@"

PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m pytest \
    benchmarks/bench_telemetry_overhead.py \
    -m benchmark_suite \
    -q -s "$@"

PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m pytest \
    benchmarks/bench_campaign_faults.py \
    -m benchmark_suite \
    -q -s "$@"

PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m pytest \
    benchmarks/bench_backends.py \
    -m benchmark_suite \
    -q -s "$@"

PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m pytest \
    benchmarks/bench_vectorized.py \
    -m benchmark_suite \
    -q -s "$@"

PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m pytest \
    benchmarks/bench_flow_batching.py \
    -m benchmark_suite \
    -q -s "$@"

PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m pytest \
    benchmarks/bench_serve_overhead.py \
    -m benchmark_suite \
    -q -s "$@"

PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m pytest \
    benchmarks/bench_pipeline.py \
    -m benchmark_suite \
    -q -s "$@"

PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m pytest \
    benchmarks/bench_plans.py \
    -m benchmark_suite \
    -q -s "$@"
