#!/usr/bin/env bash
# Run the performance benchmarks and write the machine-readable results
# next to the repo root, so the BENCH_*.json trajectory can track the
# engine's speed across PRs.  Tier-1 test runs (`python -m pytest -x -q`)
# skip these.
#
# Two artefacts:
#   BENCH_substrate.json — pytest-benchmark timings of the fluid engine
#   BENCH_campaign.json  — campaign runner: cold serial vs cold parallel
#                          vs warm capture store, with hit/miss counters
#                          (written by benchmarks/bench_campaign.py)
#
# Usage: scripts/run_benchmarks.sh [substrate_output.json] [extra pytest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_substrate.json}"
shift || true

PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m pytest \
    benchmarks/bench_substrate_perf.py \
    --benchmark-only \
    --benchmark-json="${out}" \
    -q -s "$@"

PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m pytest \
    benchmarks/bench_campaign.py \
    -m benchmark_suite \
    -q -s "$@"
