#!/usr/bin/env bash
# Run the substrate performance benchmarks via pytest-benchmark and
# write the machine-readable results next to the repo root, so the
# BENCH_*.json trajectory can track the fluid engine's speed across
# PRs.  Tier-1 test runs (`python -m pytest -x -q`) skip these.
#
# Usage: scripts/run_benchmarks.sh [output.json] [extra pytest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_substrate.json}"
shift || true

PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" exec python -m pytest \
    benchmarks/bench_substrate_perf.py \
    --benchmark-only \
    --benchmark-json="${out}" \
    -q -s "$@"
