"""E14 — multi-tenant interference vs isolated runs.

Shape claims: every suite job completes; slowdown factors are bounded
(no starvation under the default scheduler at this load), and at least
some jobs experience measurable contention (mean slowdown >= 1).
"""

from benchmarks.conftest import run_experiment
from repro.experiments import figures


def test_e14_multitenant(benchmark):
    (table,) = run_experiment(benchmark, figures.e14_multitenant)
    assert len(table.rows) == 6

    slowdowns = [row[5] for row in table.rows]
    # All jobs finished with sane interference factors.
    assert all(0.5 < s < 5.0 for s in slowdowns)
    # Net contention exists but nobody starves.
    assert sum(slowdowns) / len(slowdowns) >= 0.95
