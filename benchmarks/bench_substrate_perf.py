"""Substrate performance micro-benchmarks.

Unlike the E/A benches (which regenerate evaluation artefacts once),
these measure the simulator's own throughput with real repetition —
the cost a user pays per experiment: event-loop rate, max-min rate
recomputation, and a full end-to-end job simulation.
"""

from repro.cluster.config import ClusterSpec, HadoopConfig
from repro.cluster.topology import build_topology
from repro.cluster.units import MB
from repro.jobs import make_job
from repro.mapreduce.cluster import HadoopCluster
from repro.net.fairshare import max_min_rates
from repro.simkit import Simulator


def test_perf_event_loop(benchmark):
    """Raw event throughput: 10k timer events through the heap."""

    def drive():
        sim = Simulator()
        count = [0]
        for i in range(10_000):
            sim.schedule(i * 0.001, lambda: count.__setitem__(0, count[0] + 1))
        sim.run()
        return count[0]

    assert benchmark(drive) == 10_000


def test_perf_max_min_allocation(benchmark):
    """One water-filling pass over 200 flows on a 64-link fabric."""
    links = [f"l{i}" for i in range(64)]
    capacities = {link: 1e9 for link in links}
    flow_links = {f"f{i}": [links[i % 64], links[(i * 7 + 3) % 64]]
                  for i in range(200)}

    rates = benchmark(max_min_rates, flow_links, capacities)
    assert len(rates) == 200


def test_perf_full_job_simulation(benchmark):
    """A complete 0.5 GiB terasort capture on 8 nodes, end to end."""

    def run_job():
        cluster = HadoopCluster(
            ClusterSpec(num_nodes=8, hosts_per_rack=4),
            HadoopConfig(block_size=32 * MB, num_reducers=4), seed=1)
        results, traces = cluster.run(
            [make_job("terasort", input_gb=0.5, job_id="perf")])
        return traces[0].flow_count()

    flows = benchmark(run_job)
    assert flows > 100


def test_perf_topology_routing(benchmark):
    """Path resolution over a 32-host leaf-spine with cold caches."""

    def route():
        topo = build_topology("leafspine", num_hosts=32, hosts_per_rack=8)
        hops = 0
        for src in topo.hosts[:8]:
            for dst in topo.hosts[24:]:
                hops += len(topo.path(src, dst))
        return hops

    assert benchmark(route) > 0
