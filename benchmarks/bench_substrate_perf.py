"""Substrate performance micro-benchmarks.

Unlike the E/A benches (which regenerate evaluation artefacts once),
these measure the simulator's own throughput with real repetition —
the cost a user pays per experiment: event-loop rate, max-min rate
recomputation (reference and incremental), and a full end-to-end job
simulation.  The full-job bench also prints the engine's perf counters
(rate recomputes, batched updates, allocator time) so the BENCH_*.json
trajectory tracks efficiency alongside wall time.
"""

from repro.cluster.config import ClusterSpec, HadoopConfig
from repro.cluster.topology import build_topology
from repro.cluster.units import MB
from repro.jobs import make_job
from repro.mapreduce.cluster import HadoopCluster
from repro.net.backend import ENGINE_NAMES
from repro.net.fairshare import FairShareAllocator, max_min_rates
from repro.simkit import Simulator


def _fabric(num_links=64, num_flows=200):
    links = [f"l{i}" for i in range(num_links)]
    capacities = {link: 1e9 for link in links}
    flow_links = {f"f{i}": [links[i % num_links], links[(i * 7 + 3) % num_links]]
                  for i in range(num_flows)}
    return links, capacities, flow_links


def test_perf_event_loop(benchmark):
    """Raw event throughput: 10k timer events through the heap."""

    def drive():
        sim = Simulator()
        count = [0]
        for i in range(10_000):
            sim.schedule(i * 0.001, lambda: count.__setitem__(0, count[0] + 1))
        sim.run()
        return count[0]

    assert benchmark(drive) == 10_000


def test_perf_event_cancellation_churn(benchmark):
    """Cancel/reschedule churn: the flow network's horizon pattern.

    Every firing event cancels a long-dated placeholder and schedules a
    replacement, exactly how ``FlowNetwork`` maintains its completion
    horizon.  Exercises the lazy heap compaction path.
    """

    def churn():
        sim = Simulator()
        placeholder = [sim.schedule(1e9, lambda: None)]

        def tick(i):
            placeholder[0].cancel()
            placeholder[0] = sim.schedule(1e9, lambda: None)

        for i in range(5_000):
            sim.schedule(i * 0.001, tick, i)
        sim.run(until=10.0)
        return sim.events_fired, sim.heap_compactions

    fired, compactions = benchmark(churn)
    assert fired == 5_000
    assert compactions > 0


def test_perf_max_min_allocation(benchmark):
    """One reference water-filling pass over 200 flows on a 64-link fabric."""
    _, capacities, flow_links = _fabric()

    rates = benchmark(max_min_rates, flow_links, capacities)
    assert len(rates) == 200


def test_perf_incremental_allocator_churn(benchmark):
    """Arrival/departure churn through the stateful allocator.

    200 resident flows; each iteration removes and re-adds one flow and
    recomputes — the fluid network's steady-state workload, where the
    reference would rebuild every membership dict from scratch.
    """
    _, capacities, flow_links = _fabric()

    def churn():
        allocator = FairShareAllocator(capacities)
        for flow, links in flow_links.items():
            allocator.add_flow(flow, links)
        for i in range(100):
            flow = f"f{i}"
            allocator.remove_flow(flow)
            allocator.add_flow(flow, flow_links[flow])
            rates = allocator.rates()
        return rates

    rates = benchmark(churn)
    assert len(rates) == 200


def test_perf_full_job_simulation(benchmark):
    """A complete 0.5 GiB terasort capture on 8 nodes, end to end."""

    perf = {}

    def run_job():
        cluster = HadoopCluster(
            ClusterSpec(num_nodes=8, hosts_per_rack=4),
            HadoopConfig(block_size=32 * MB, num_reducers=4), seed=1)
        results, traces = cluster.run(
            [make_job("terasort", input_gb=0.5, job_id="perf")])
        perf.update(cluster.perf_report())
        return traces[0].flow_count()

    flows = benchmark(run_job)
    print("\nsubstrate counters (one run):")
    for key in sorted(perf):
        value = perf[key]
        print(f"  {key} = {value:.6f}" if isinstance(value, float)
              else f"  {key} = {value}")
    assert flows > 100
    # Batching must actually coalesce: at most one recompute per flush,
    # and a visible number of same-instant updates folded together.
    assert perf["net.recomputes"] <= perf["net.flushes"]
    assert perf["net.flows_batched"] > 0


def test_perf_engine_sweep_full_job(benchmark):
    """The full-job capture swept across both fluid engines.

    An 8-node job is scalar's home turf (below a few hundred
    concurrent flows the numpy per-call overhead exceeds the dict
    work it replaces — the scale rungs live in bench_vectorized.py),
    so this asserts equivalence rather than speed: both engines must
    do identical allocator work — same recomputes, same bottleneck
    rounds, same flow population — and the per-engine counters are
    printed so the BENCH trajectory tracks both engines' efficiency.
    """
    reports = {}
    flow_counts = {}

    def sweep():
        for engine in ENGINE_NAMES:
            cluster = HadoopCluster(
                ClusterSpec(num_nodes=8, hosts_per_rack=4, engine=engine),
                HadoopConfig(block_size=32 * MB, num_reducers=4), seed=1)
            _, traces = cluster.run(
                [make_job("terasort", input_gb=0.5, job_id="perf")])
            reports[engine] = cluster.perf_report()
            flow_counts[engine] = traces[0].flow_count()
        return flow_counts

    benchmark(sweep)
    print("\nfluid engine counters (one run each):")
    for engine in ENGINE_NAMES:
        report = reports[engine]
        print(f"  {engine}: recomputes={report['net.recomputes']} "
              f"waterfill_rounds={report['net.waterfill_rounds']} "
              f"flushes={report['net.flushes']} "
              f"batch_admitted={report['net.flows_admitted_batched']} "
              f"bulk_harvests={report['net.bulk_harvests']} "
              f"done_skipped={report['net.done_signals_skipped']} "
              f"allocator_seconds={report['net.allocator_seconds']:.4f}")
    assert flow_counts["scalar"] == flow_counts["vectorized"]
    for key in ("net.recomputes", "net.waterfill_rounds", "net.flushes",
                "net.flows_batched", "net.flows_admitted_batched",
                "net.bulk_harvests", "net.done_signals_skipped"):
        assert reports["scalar"][key] == reports["vectorized"][key], key
    # The producers actually use the batched seam: write pipelines and
    # shuffle slow-start waves go through start_flows.
    assert reports["scalar"]["net.flows_admitted_batched"] > 0


def test_perf_topology_routing(benchmark):
    """Path resolution over a 32-host leaf-spine with cold caches."""

    def route():
        topo = build_topology("leafspine", num_hosts=32, hosts_per_rack=8)
        hops = 0
        for src in topo.hosts[:8]:
            for dst in topo.hosts[24:]:
                hops += len(topo.path(src, dst))
        return hops

    assert benchmark(route) > 0
