"""E8 — flow-size population vs dfs.blocksize.

Shape claims: map count halves as the block doubles; the median
HDFS-read flow *is* the block; and shuffle flow count shrinks with
fewer maps while the median shuffle flow grows proportionally.
"""

import pytest

from benchmarks.conftest import run_experiment
from repro.experiments import figures


def test_e08_blocksize(benchmark):
    (table,) = run_experiment(benchmark, figures.e08_blocksize)
    rows = {row[0]: row for row in table.rows}

    assert rows[16][1] == 64   # 1 GiB / 16 MiB
    assert rows[32][1] == 32
    assert rows[64][1] == 16

    for block_mb, row in rows.items():
        if row[2] > 0:  # read flows captured
            assert row[3] == pytest.approx(block_mb, rel=0.01)

    # Shuffle: fewer, larger flows as blocks grow.
    assert rows[16][4] > rows[64][4]
    assert rows[64][5] > 2 * rows[16][5]
