"""E17 — Hadoop replay under background cross-traffic.

Shape claims: Hadoop flow-completion-time inflation grows monotonically
with the offered background load; light load (20% on a few pairs) is
nearly free while heavy load (80% on many pairs) inflates FCTs by
several x.
"""

from benchmarks.conftest import run_experiment
from repro.experiments import figures


def test_e17_interference(benchmark):
    (table,) = run_experiment(benchmark, figures.e17_interference)
    inflations = [row[4] for row in table.rows]

    # Monotone non-decreasing inflation with load (small numeric slack).
    assert all(a <= b + 0.05 for a, b in zip(inflations, inflations[1:]))
    # Light load is nearly free; heavy load clearly is not.
    assert inflations[1] < 1.3
    assert inflations[-1] > 1.5
