"""E3 — per-component flow size CDFs with fitted distributions.

Shape claims: a fit is reported for every data component present; the
printed empirical/fit gap never exceeds the fit's own reported KS
distance (internal consistency); the shuffle population — the one the
paper's models centre on — is fitted well by a parametric family; and
HDFS-read flow sizes sit at the block size.
"""

import re

from benchmarks.conftest import run_experiment
from repro.experiments import figures


def _reported_ks(title):
    return float(re.search(r"KS=([0-9.]+)", title).group(1))


def test_e03_flow_size_cdf(benchmark):
    tables = run_experiment(benchmark, figures.e03_flow_size_cdf)
    assert len(tables) >= 2  # shuffle + hdfs_write at minimum

    for table in tables:
        assert table.rows
        # The KS statistic is the sup gap, so every printed gap <= KS.
        max_gap = max(abs(row[2] - row[3]) for row in table.rows)
        assert max_gap <= _reported_ks(table.title) + 0.05, table.title

    shuffle = next(t for t in tables if "shuffle" in t.title)
    assert _reported_ks(shuffle.title) < 0.2

    read_tables = [t for t in tables if "hdfs_read" in t.title]
    if read_tables:
        # Every read flow is one 32 MiB block (the campaign's block size).
        values = [row[1] for row in read_tables[0].rows]
        assert all(abs(v - 32 * 1024 * 1024) < 1024 for v in values)
