"""Crash-injection stress: the supervised pool survives killed workers.

A campaign point that SIGKILLs its own worker process on first contact
collapses the whole ProcessPoolExecutor — every in-flight future breaks,
not just the guilty one.  This stress run asserts the supervision layer
(PR 4) absorbs that: the pool is rebuilt, collateral victims are
rescheduled without being charged an attempt, the killer point
completes on retry, and the final traces are byte-identical to an
undisturbed serial run of the same points.

Wall-clock and supervision counters land in
``BENCH_campaign_faults.json`` at the repo root.

Run via ``scripts/run_benchmarks.sh`` or::

    pytest benchmarks/bench_campaign_faults.py -m benchmark_suite -q -s
"""

import json
import os
import signal
import tempfile
import time
from pathlib import Path

from repro.experiments.campaigns import CampaignConfig
from repro.experiments.runner import CampaignRunner, CapturePoint, derive_seed
from repro.experiments.supervision import RetryPolicy

SMALL = CampaignConfig(nodes=4, hosts_per_rack=2)
SIZES = [0.0625, 0.125]
WORKERS = 2
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_campaign_faults.json"


class KillOncePoint(CapturePoint):
    """SIGKILLs its worker the first time, simulates cleanly after.

    The sentinel file (shared between pool workers and the parent via
    the filesystem) records that the kill already happened, so retries
    — and the serial baseline run afterwards — take the clean path.
    """

    def simulate(self, telemetry=None):
        kwargs = dict(self.job_kwargs)
        sentinel = Path(kwargs["sentinel"])
        if not sentinel.exists():
            sentinel.write_text("killed")
            os.kill(os.getpid(), signal.SIGKILL)
        clean = CapturePoint(job=self.job, input_gb=self.input_gb,
                             seed=self.seed, cluster_spec=self.cluster_spec,
                             hadoop_config=self.hadoop_config, job_kwargs=(),
                             key_config=self.key_config)
        return clean.simulate(telemetry)


def _points(tmp):
    healthy = [CapturePoint.from_campaign(job, gb, derive_seed(7, index),
                                          SMALL)
               for job in ("grep", "wordcount")
               for index, gb in enumerate(SIZES)]
    killer = KillOncePoint.from_campaign(
        "grep", SIZES[0], 1337, SMALL,
        {"sentinel": str(Path(tmp) / "kill.once")})
    return healthy + [killer]


def _trace_bytes(trace):
    return "\n".join(
        [json.dumps({"meta": trace.meta.to_dict()})]
        + [json.dumps(flow.to_dict()) for flow in trace.flows]).encode()


def test_campaign_survives_sigkilled_worker():
    with tempfile.TemporaryDirectory(prefix="keddah-bench-faults-") as tmp:
        points = _points(tmp)
        runner = CampaignRunner(
            store=None, workers=WORKERS,
            retry_policy=RetryPolicy(max_attempts=3, base_delay=0.01))
        started = time.perf_counter()
        outcomes = runner.run(points)
        stressed_s = time.perf_counter() - started
        stats = runner.stats

        assert all(outcome is not None for outcome in outcomes)
        assert stats.pool_failures >= 1, \
            "the SIGKILL must register as a pool failure"
        assert stats.simulated == len(points)
        assert not runner.failures

        # Byte-identity against an undisturbed serial pass (the
        # sentinel now exists, so the killer point runs clean).
        serial_runner = CampaignRunner(store=None, workers=1)
        started = time.perf_counter()
        serial = serial_runner.run(points)
        serial_s = time.perf_counter() - started
        assert [_trace_bytes(trace) for _, trace in outcomes] \
            == [_trace_bytes(trace) for _, trace in serial], \
            "crash recovery must not change campaign output"

        report = {
            "points": len(points), "workers": WORKERS,
            "stressed_s": round(stressed_s, 4),
            "serial_clean_s": round(serial_s, 4),
            "recovery_overhead_s": round(stressed_s - serial_s, 4),
            "byte_identical": True,
            "stressed_runner": stats.to_dict(),
        }
        OUTPUT.write_text(json.dumps(report, indent=2) + "\n",
                          encoding="utf-8")
        print(f"\ncrash stress: {len(points)} points / {WORKERS} workers, "
              f"1 SIGKILL -> {stressed_s:.2f}s stressed vs {serial_s:.2f}s "
              f"clean serial, {stats.pool_failures} pool failure(s), "
              f"byte-identical -> {OUTPUT.name}")
