"""E10 — model validation: synthetic vs captured flow populations.

Shape claims: generated traffic matches captures tightly on flow counts
and volumes for every component, and the flow-size KS distance is small
for the high-count components that dominate each job's traffic (tiny
components with a handful of flows are noise-limited and excluded from
the KS aggregate, but still reported).
"""

from benchmarks.conftest import run_experiment
from repro.experiments import figures


def test_e10_validation(benchmark):
    (table,) = run_experiment(benchmark, figures.e10_validation)
    assert table.rows

    count_errors = [row[4] for row in table.rows]
    volume_errors = [row[7] for row in table.rows]
    assert sum(count_errors) / len(count_errors) < 0.15
    assert sum(volume_errors) / len(volume_errors) < 0.15

    # KS fidelity on statistically meaningful populations (>= 30 flows).
    ks_values = [row[8] for row in table.rows
                 if row[8] != "-" and row[2] >= 30]
    assert ks_values
    assert sum(ks_values) / len(ks_values) < 0.35

    # The dominant component of every job is reproduced tightly (the
    # bound leaves headroom over the worst observed error, 0.25 for
    # kmeans, whose dominant read traffic is iteration-count sensitive).
    best_per_job = {}
    for row in table.rows:
        job, captured_mib, volume_error = row[0], row[5], row[7]
        if captured_mib > best_per_job.get(job, (0.0, 0.0))[0]:
            best_per_job[job] = (captured_mib, volume_error)
    for job, (_, volume_error) in best_per_job.items():
        assert volume_error < 0.3, f"{job} dominant component off by {volume_error}"
