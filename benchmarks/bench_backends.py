"""Transport-backend benchmark: fluid vs analytic on an E12-style sweep.

Runs the cluster-size scaling campaign (terasort, weak scaling: input
and reducer count grow with the cluster, as in experiment E12) once
per transport backend and records wall-clock plus the correctness
contract: at every point the analytic backend must reproduce the fluid
backend's data-plane flow population *exactly* — same count, sizes,
endpoints and component tags — while only the timings (and therefore
JCT) are approximate.

The campaign runs in the timing-stable configuration the guarantee is
defined for (DESIGN.md "Transport backends"): ``placement_mode="keyed"``
and enough container slots for a single map wave, so no scheduling
decision rides on data-plane timing.

Writes ``BENCH_backends.json`` at the repo root and asserts the
headline acceptance number: >= 5x campaign speedup for analytic.

Run via ``scripts/run_benchmarks.sh`` or::

    pytest benchmarks/bench_backends.py -m benchmark_suite -q -s
"""

import collections
import json
import time
from pathlib import Path

from repro.experiments.campaigns import CampaignConfig
from repro.experiments.runner import CapturePoint

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_backends.json"

SEED = 42
MIN_SPEEDUP = 5.0

#: Weak-scaling ladder: (nodes, input_gb, reducers, containers/node).
#: containers_per_node keeps slots >= maps + reducers + AM at every
#: rung (32 MiB blocks -> 32 maps/GiB), the single-wave regime the
#: population-identity guarantee requires.
LADDER = [
    (16, 2.0, 16, 6),
    (32, 4.0, 32, 6),
    (64, 8.0, 32, 6),
]


def _population(trace):
    return collections.Counter(
        (flow.src, flow.dst, round(flow.size, 6), flow.component)
        for flow in trace.flows if flow.component != "control")


def _run(backend, nodes, input_gb, reducers, containers):
    point = CapturePoint.from_campaign(
        "terasort", input_gb, SEED,
        CampaignConfig(nodes=nodes, num_reducers=reducers,
                       containers_per_node=containers,
                       placement_mode="keyed", backend=backend))
    started = time.perf_counter()
    result, trace = point.simulate()
    return time.perf_counter() - started, result, trace


def test_analytic_backend_campaign_speedup():
    rows = []
    totals = {"fluid": 0.0, "analytic": 0.0}
    for nodes, input_gb, reducers, containers in LADDER:
        fluid_s, fluid_result, fluid_trace = _run(
            "fluid", nodes, input_gb, reducers, containers)
        analytic_s, analytic_result, analytic_trace = _run(
            "analytic", nodes, input_gb, reducers, containers)
        identical = _population(fluid_trace) == _population(analytic_trace)
        assert identical, \
            f"analytic flow population diverged at nodes={nodes} gb={input_gb}"
        totals["fluid"] += fluid_s
        totals["analytic"] += analytic_s
        jct_err = abs(analytic_result.completion_time
                      - fluid_result.completion_time) \
            / fluid_result.completion_time
        rows.append({
            "nodes": nodes, "input_gb": input_gb, "reducers": reducers,
            "containers_per_node": containers,
            "flows": len(fluid_trace.flows),
            "fluid_s": round(fluid_s, 4),
            "analytic_s": round(analytic_s, 4),
            "speedup": round(fluid_s / analytic_s, 2),
            "population_identical": identical,
            "jct_rel_error": round(jct_err, 4),
        })
        print(f"nodes={nodes:3d} gb={input_gb:4.1f} "
              f"fluid={fluid_s:6.2f}s analytic={analytic_s:5.2f}s "
              f"speedup={fluid_s / analytic_s:5.1f}x "
              f"jct_err={jct_err:6.1%} identical={identical}")

    speedup = totals["fluid"] / totals["analytic"]
    report = {
        "campaign": {"job": "terasort", "seed": SEED, "ladder": [
            {"nodes": n, "input_gb": g, "reducers": r,
             "containers_per_node": c} for n, g, r, c in LADDER],
            "placement_mode": "keyed"},
        "points": rows,
        "fluid_total_s": round(totals["fluid"], 4),
        "analytic_total_s": round(totals["analytic"], 4),
        "speedup_campaign": round(speedup, 2),
        "population_identical": all(row["population_identical"]
                                    for row in rows),
        "max_jct_rel_error": max(row["jct_rel_error"] for row in rows),
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"\nbackend bench: fluid {totals['fluid']:.2f}s, analytic "
          f"{totals['analytic']:.2f}s -> {speedup:.1f}x, populations "
          f"identical -> {OUTPUT.name}")

    assert speedup >= MIN_SPEEDUP, \
        f"analytic backend should be >={MIN_SPEEDUP}x faster over the " \
        f"campaign, got {speedup:.2f}x"
