"""E19 — flow summary statistics per (job, component).

Shape claims: HDFS-read flows are block-quantised (p50 == max == one
block); shuffle p99 exceeds p50 (partition skew); TeraSort's shuffle
carries more total bytes than WordCount's at the same input.
"""

from benchmarks.conftest import run_experiment
from repro.experiments import figures

BLOCK_KIB = 32 * 1024  # the campaign's 32 MiB block in KiB


def test_e19_summary_stats(benchmark):
    (table,) = run_experiment(benchmark, figures.e19_summary_stats)
    rows = {(row[0], row[1]): row for row in table.rows}

    for (job, component), row in rows.items():
        if component == "hdfs_read":
            assert row[4] == row[6] == BLOCK_KIB  # p50 == max == block

    for job in ("terasort", "wordcount"):
        shuffle = rows[(job, "shuffle")]
        assert shuffle[5] > shuffle[4]  # p99 > p50 (skew)

    assert rows[("terasort", "shuffle")][7] > rows[("wordcount", "shuffle")][7]
