"""E20 — capture sampling (1-in-N) vs model-input fidelity.

Shape claims: rescaled volume estimates stay essentially unbiased at
every sampling rate (bulk flows always leave samples), while flow
survival collapses well below 1 — so sampled captures support volume
laws but not flow-count/marginal models.
"""

from benchmarks.conftest import run_experiment
from repro.experiments import figures


def test_e20_sampled_capture(benchmark):
    (table,) = run_experiment(benchmark, figures.e20_sampled_capture)
    rows = {row[0]: row for row in table.rows}

    full = rows["full (1:1)"]
    for label in ("1:8", "1:64", "1:512"):
        sampled = rows[label]
        # Volume estimator stays within a few percent.
        assert sampled[4] < 0.1
        # Flow population is not recoverable.
        assert sampled[2] < 0.8
        assert sampled[1] < full[1]

    # Survival never improves as sampling gets coarser.
    assert rows["1:512"][2] <= rows["1:8"][2] + 0.05
