"""Telemetry overhead benchmark: the null path must stay (nearly) free.

The telemetry layer's contract is that an un-configured run pays
almost nothing: counters replaced same-cost integer attributes, span
sites guard on ``tracer.enabled`` or hit a no-op ``start``/``end``,
and no probe events are ever scheduled.  This bench pins that down two
ways on the canonical 0.5 GiB terasort:

* **per-site bound** — measure the cost of one disabled tracer no-op
  and multiply by the number of instrumentation touches the run would
  make (the span count of an enabled run, start+end per span); that
  total must stay under 3% of the disabled run's wall time;
* **end-to-end ratio** — a fully *enabled* run (memory sink, 1 s
  probes) must stay within 1.5x of the disabled run, so even observed
  runs remain usable for experiments.

Also asserts the null path emits exactly zero spans and probe samples.
Writes ``BENCH_telemetry.json`` at the repo root alongside the other
trajectory artefacts.

Run via ``scripts/run_benchmarks.sh`` or::

    pytest benchmarks/bench_telemetry_overhead.py -m benchmark_suite -q -s
"""

import json
import time
from pathlib import Path

import pytest

from repro.cluster.config import ClusterSpec, HadoopConfig
from repro.cluster.units import MB
from repro.jobs import make_job
from repro.mapreduce.cluster import HadoopCluster
from repro.obs import Telemetry
from repro.obs.trace import Tracer

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_telemetry.json"
RUNS = 3
NULL_PATH_BUDGET = 0.03      # per-site no-op total vs disabled wall time
ENABLED_RATIO_BUDGET = 1.5   # enabled wall time vs disabled wall time


def _run_job(telemetry):
    cluster = HadoopCluster(
        ClusterSpec(num_nodes=8, hosts_per_rack=4),
        HadoopConfig(block_size=32 * MB, num_reducers=4), seed=1,
        telemetry=telemetry)
    _, traces = cluster.run(
        [make_job("terasort", input_gb=0.5, job_id="tel_perf")])
    return traces[0].flow_count()


def _min_of_k(make_telemetry, k=RUNS):
    best, flows = float("inf"), 0
    for _ in range(k):
        telemetry = make_telemetry()
        started = time.perf_counter()
        flows = _run_job(telemetry)
        best = min(best, time.perf_counter() - started)
    return best, flows, telemetry


def _noop_call_cost(calls=200_000):
    """Seconds per disabled ``start``+``end`` pair, measured directly."""
    tracer = Tracer(enabled=False)
    started = time.perf_counter()
    for _ in range(calls):
        span = tracer.start("task", "t", 0.0)
        tracer.end(span, 1.0)
    return (time.perf_counter() - started) / calls


@pytest.mark.benchmark_suite
def test_telemetry_overhead_budgets():
    disabled_s, disabled_flows, disabled_tel = _min_of_k(Telemetry.disabled)
    enabled_s, enabled_flows, enabled_tel = _min_of_k(
        lambda: Telemetry.enabled_in_memory(probe_interval=1.0))

    # Same simulation either way.
    assert disabled_flows == enabled_flows

    # The null path really is null: no spans, no probes, live counters.
    assert disabled_tel.tracer.spans_started == 0
    assert disabled_tel.tracer.spans_emitted == 0
    assert disabled_tel.probes.total_samples() == 0
    assert disabled_tel.registry.value("sim.events_fired") > 0

    # Per-site bound: every span an enabled run records corresponds to
    # at most one disabled start+end no-op pair in the null path.
    span_sites = len(enabled_tel.spans)
    pair_cost = _noop_call_cost()
    null_path_cost = span_sites * pair_cost
    null_fraction = null_path_cost / disabled_s

    ratio = enabled_s / disabled_s
    report = {
        "disabled_s": round(disabled_s, 4),
        "enabled_s": round(enabled_s, 4),
        "enabled_over_disabled": round(ratio, 4),
        "span_sites": span_sites,
        "noop_pair_cost_us": round(pair_cost * 1e6, 4),
        "null_path_fraction": round(null_fraction, 6),
        "spans_emitted_enabled": enabled_tel.tracer.spans_emitted,
        "probe_samples_enabled": enabled_tel.probes.total_samples(),
    }
    OUTPUT.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print("\ntelemetry overhead:")
    for key in sorted(report):
        print(f"  {key} = {report[key]}")

    assert null_fraction < NULL_PATH_BUDGET, report
    assert ratio < ENABLED_RATIO_BUDGET, report
