"""E11 — replay validation: network behaviour of generated traffic.

Shape claims: replaying model-generated traffic produces volumes
matching the capture; the empirical arrival-curve generator reproduces
the capture's makespan closely (within ~35%), while the simpler
renewal-gap generator stays within an order of magnitude — quantifying
why the model carries the arrival curve at all.
"""

from benchmarks.conftest import run_experiment
from repro.experiments import figures


def test_e11_replay(benchmark):
    (table,) = run_experiment(benchmark, figures.e11_replay)
    rows = {row[0]: row for row in table.rows}
    captured = rows["captured"]
    gaps = rows["generated (renewal gaps)"]
    curve = rows["generated (arrival curve)"]

    # Volumes are comparable for both generators.
    for generated in (gaps, curve):
        assert abs(generated[2] - captured[2]) / captured[2] < 0.35

    # Temporal fidelity: the arrival curve is the accurate one.
    curve_ratio = curve[3] / captured[3]
    gaps_ratio = gaps[3] / captured[3]
    assert 0.65 < curve_ratio < 1.35
    assert 0.2 < gaps_ratio < 5.0
    assert abs(curve_ratio - 1.0) <= abs(gaps_ratio - 1.0)

    # All three replays actually load the network.
    assert all(row[5] > 0 for row in table.rows)
