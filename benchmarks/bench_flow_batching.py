"""Batched-admission benchmark: the start_flows seam vs the PR6 path.

Drives :class:`FlowNetwork` (vectorized engine) with synchronized
uniform waves — every wave admits thousands of equal-size flows in
constant-offset placement, so they drain in a handful of completion
batches and the measurement isolates exactly the per-flow lifecycle
overhead this PR removes.  Two arms:

* **pr6** — the pre-batching lifecycle, emulated faithfully: one heap
  event per flow calling ``start_flow``, the done-signal allocated
  eagerly at admission, and a per-flow completion harvest (each
  finished flow pays its own allocator removal, delivered-bytes fold
  and finish) — the shape of the seed at PR6.
* **batched** — the new seam end to end: one event per wave calling
  ``start_flows`` (wave-level path resolution, one allocator scatter,
  one flush), bulk harvest, lazy done-signals.

Both arms run the identical flow population on the identical
pre-warmed fat-tree, and a collected differential run asserts the
captured (src, dst, size, start, end, flow_id) tuples match
float-exact — the batching is a mechanical rearrangement, not a model
change (DESIGN.md "Batched admission").

Records, per rung: wall clock for both arms, per-flow overhead in
microseconds, speedup, and the byte-identity flag; then a batched-only
scale run on a >= 4096-host fat-tree (k=26, 4394 hosts).  Writes
``BENCH_flow_batching.json`` at the repo root and asserts the headline
numbers: >= 2x end-to-end at the >= 16k-flows-per-wave rung and a
completed >= 4096-host run.

Run via ``scripts/run_benchmarks.sh`` or::

    pytest benchmarks/bench_flow_batching.py -m benchmark_suite -q -s
"""

import json
import time
import types
from pathlib import Path

from repro.capture.collector import FlowCollector
from repro.cluster.topology import build_topology
from repro.net.backend import FlowRequest, TransportBackend, make_backend
from repro.net.network import _DONE_EPS_BYTES
from repro.simkit.core import Simulator

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_flow_batching.json"

MIN_SPEEDUP_16K = 2.0
MIN_SCALE_HOSTS = 4096

HOST_GBPS = 10.0
HOST_RATE = HOST_GBPS * 1e9 / 8.0

#: Wave-size rungs: (hosts, fattree_k, flows_per_wave, waves).  The
#: fabric stays fixed while the wave width sweeps, so the rungs show
#: how the removed per-flow overhead scales with wave size.
RUNGS = [
    (256, 12, 4096, 4),
    (256, 12, 16384, 4),
    (256, 12, 32768, 2),
]

#: Batched-only scale run: k=26 fat-tree (4394 hosts >= 4096).  Two
#: waves keep the wall clock in benchmark-suite territory — the ECMP
#: rate classes on a k=26 core make each standing recompute heavy, and
#: that cost is bench_vectorized.py's subject, not this file's.
SCALE_RUNG = (4394, 26, 16384, 2)

WAVE_PERIOD = 4.0


def _wave_flows(hosts, flows_per_wave):
    """Uniform-size constant-offset wave population.

    Equal sizes mean a wave's flows share fair rates and complete in
    few batches (ECMP rate classes apart), so end-to-end time is
    dominated by the admission/teardown machinery under test rather
    than by rate recomputation over a fragmenting population (that
    regime is bench_vectorized.py's)."""
    n = len(hosts)
    fair_rate = HOST_RATE / (flows_per_wave / n)
    return [(hosts[k % n], hosts[(k + n // 2) % n], fair_rate)
            for k in range(flows_per_wave)]


def _topology(hosts_n, fattree_k, cache={}):
    """One pre-warmed topology per fabric, shared by both arms."""
    key = (hosts_n, fattree_k)
    if key not in cache:
        topology = build_topology("fattree", num_hosts=hosts_n,
                                  host_gbps=HOST_GBPS, fattree_k=fattree_k)
        hosts = topology.hosts[:hosts_n]
        for index, src in enumerate(hosts):
            topology.path(src, hosts[(index + hosts_n // 2) % hosts_n])
        cache[key] = topology
    return cache[key]


def _emulate_pr6(net):
    """Rebind the PR6 per-flow lifecycle onto ``net``.

    Three reversions, mirroring the seed at PR6 exactly: the generic
    one-at-a-time ``start_flows`` loop, an eagerly-allocated done
    signal per flow, and a completion harvest that retires each flow
    individually — per-flow allocator removal (row scan, member-count
    decrements, delivered fold) and per-flow finish.
    """
    net.start_flows = types.MethodType(TransportBackend.start_flows, net)

    inner_start = net.start_flow

    def eager_start_flow(src, dst, size, max_rate=None, metadata=None,
                         parent_span=None):
        flow = inner_start(src, dst, size, max_rate=max_rate,
                           metadata=metadata, parent_span=parent_span)
        flow.done  # PR6 allocated the signal in Flow.__init__
        return flow

    net.start_flow = eager_start_flow

    def per_flow_harvest(self):
        vec = self._vec
        finished = (vec.finished(_DONE_EPS_BYTES) if vec is not None
                    else [flow for flow in self.active.values()
                          if flow.remaining <= _DONE_EPS_BYTES])
        now = self.sim.now
        for flow in finished:
            del self.active[flow.flow_id]
            if vec is not None:
                vec.remove(flow)
            else:
                self._allocator.remove_flow(flow.flow_id)
            flow.remaining = 0.0
            flow.rate = 0.0
            flow.end_time = now
            self.completed_count += 1
            self.total_bytes += flow.size
            self._note_completed(flow)
            self._finish(flow)

    net._harvest_finished = types.MethodType(per_flow_harvest, net)


def _run(arm, hosts_n, fattree_k, flows_per_wave, waves, collect=False):
    """Run the wave workload under one lifecycle arm; return evidence."""
    topology = _topology(hosts_n, fattree_k)
    sim = Simulator()
    net = make_backend("fluid", sim, topology, engine="vectorized")
    if arm == "pr6":
        _emulate_pr6(net)
    collector = FlowCollector(net) if collect else None
    population = _wave_flows(topology.hosts[:hosts_n], flows_per_wave)
    started = time.perf_counter()
    if arm == "batched":
        for wave in range(waves):
            requests = [FlowRequest(src, dst, size)
                        for src, dst, size in population]
            sim.schedule(wave * WAVE_PERIOD, net.start_flows, requests)
    else:
        for wave in range(waves):
            at = wave * WAVE_PERIOD
            for src, dst, size in population:
                sim.schedule(at, net.start_flow, src, dst, size)
    sim.run()
    elapsed = time.perf_counter() - started
    completed = int(
        sim.telemetry.registry.counter("net.flows_completed").value)
    assert completed == flows_per_wave * waves, \
        f"{arm}: {completed} of {flows_per_wave * waves} flows completed"
    tuples = None
    if collector is not None:
        tuples = sorted((r.src, r.dst, r.size, r.start, r.end, r.flow_id)
                        for r in collector.records)
    return {
        "elapsed_s": elapsed,
        "flows": completed,
        "perf": net.perf,
        "tuples": tuples,
    }


def test_batched_admission_speedup_and_scale():
    # Byte-identity differential first, collected, at the middle rung:
    # the PR6 lifecycle and the batched seam must capture the exact
    # same flows (timing rungs below run uncollected so the listener
    # cost does not blur the arms' difference).
    hosts_n, fattree_k, flows_per_wave, waves = RUNGS[1]
    pr6_ref = _run("pr6", hosts_n, fattree_k, flows_per_wave, 1,
                   collect=True)
    batched_ref = _run("batched", hosts_n, fattree_k, flows_per_wave, 1,
                       collect=True)
    byte_identical = pr6_ref["tuples"] == batched_ref["tuples"]
    assert byte_identical, "pr6 and batched arms captured different flows"

    rows = []
    for hosts_n, fattree_k, flows_per_wave, waves in RUNGS:
        pr6 = _run("pr6", hosts_n, fattree_k, flows_per_wave, waves)
        batched = _run("batched", hosts_n, fattree_k,
                       flows_per_wave, waves)
        assert batched["perf"]["flows_admitted_batched"] == \
            flows_per_wave * waves
        assert pr6["perf"]["flows_admitted_batched"] == 0
        assert pr6["perf"]["done_signals_skipped"] == 0
        speedup = pr6["elapsed_s"] / batched["elapsed_s"]
        flows = batched["flows"]
        rows.append({
            "hosts": hosts_n, "fattree_k": fattree_k,
            "flows_per_wave": flows_per_wave, "waves": waves,
            "flows": flows,
            "pr6_s": round(pr6["elapsed_s"], 4),
            "batched_s": round(batched["elapsed_s"], 4),
            "pr6_us_per_flow":
                round(pr6["elapsed_s"] / flows * 1e6, 2),
            "batched_us_per_flow":
                round(batched["elapsed_s"] / flows * 1e6, 2),
            "speedup": round(speedup, 2),
            "bulk_harvests": batched["perf"]["bulk_harvests"],
            "done_signals_skipped":
                batched["perf"]["done_signals_skipped"],
        })
        print(f"wave={flows_per_wave:6d} flows={flows:7d} "
              f"pr6={pr6['elapsed_s']:7.2f}s "
              f"batched={batched['elapsed_s']:6.2f}s "
              f"speedup={speedup:5.2f}x")

    hosts_n, fattree_k, flows_per_wave, waves = SCALE_RUNG
    scale = _run("batched", hosts_n, fattree_k, flows_per_wave, waves)
    print(f"scale run: hosts={hosts_n} flows={scale['flows']} "
          f"elapsed={scale['elapsed_s']:.1f}s "
          f"bulk_harvests={scale['perf']['bulk_harvests']}")

    speedup_16k = next(row["speedup"] for row in rows
                       if row["flows_per_wave"] >= 16384)
    report = {
        "workload": {
            "shape": "synchronized uniform waves, constant-offset "
                     "placement; vectorized engine both arms; pr6 arm "
                     "emulates per-flow admission/harvest/eager-signals",
            "host_gbps": HOST_GBPS,
            "wave_period_s": WAVE_PERIOD,
        },
        "rungs": rows,
        "speedup_16k": speedup_16k,
        "byte_identical": byte_identical,
        "scale_run": {
            "hosts": hosts_n, "fattree_k": fattree_k,
            "flows_per_wave": flows_per_wave, "waves": waves,
            "flows": scale["flows"],
            "completed": True,
            "batched_s": round(scale["elapsed_s"], 2),
            "us_per_flow":
                round(scale["elapsed_s"] / scale["flows"] * 1e6, 2),
            "flows_admitted_batched":
                scale["perf"]["flows_admitted_batched"],
            "bulk_harvests": scale["perf"]["bulk_harvests"],
            "done_signals_skipped":
                scale["perf"]["done_signals_skipped"],
        },
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"\nbatching bench: 16k-wave speedup {speedup_16k:.2f}x, "
          f"scale run {scale['flows']} flows on {hosts_n} hosts "
          f"-> {OUTPUT.name}")

    assert speedup_16k >= MIN_SPEEDUP_16K, \
        f"batched admission should be >={MIN_SPEEDUP_16K}x faster at the " \
        f"16k rung, got {speedup_16k:.2f}x"
    assert hosts_n >= MIN_SCALE_HOSTS and scale["flows"] == \
        flows_per_wave * waves
