"""E2 — total traffic vs input size per job type.

Shape claims: shuffle+write traffic grows monotonically and
near-linearly with input for the data-moving jobs (terasort,
wordcount, pagerank); grep and kmeans stay near-flat because their
shuffles/outputs are metadata-sized; terasort moves more bytes per
input GiB than grep at every size.
"""

from benchmarks.conftest import run_experiment
from repro.experiments import figures

LINEAR_JOBS = {"terasort", "wordcount", "pagerank"}
FLAT_JOBS = {"grep", "kmeans"}


def test_e02_input_scaling(benchmark):
    (table,) = run_experiment(benchmark, figures.e02_input_scaling)
    by_job = {}
    for job, gb, read, shuffle, write, total, per_gb in table.rows:
        by_job.setdefault(job, []).append((gb, shuffle + write))

    for job, rows in by_job.items():
        rows.sort()
        volumes = [volume for _, volume in rows]
        # Data-plane (shuffle+write) volume grows with input everywhere.
        assert all(a < b for a, b in zip(volumes, volumes[1:])), job
        growth = volumes[-1] / volumes[0]  # 0.25 -> 2 GiB = 8x input
        if job in LINEAR_JOBS:
            assert growth > 4.0, f"{job} should scale near-linearly"
        if job in FLAT_JOBS:
            assert growth < 4.0, f"{job} should scale sub-linearly"

    # Job ordering: terasort out-transfers grep at every size.
    terasort = dict(by_job["terasort"])
    grep = dict(by_job["grep"])
    assert all(terasort[gb] > grep[gb] for gb in terasort)
