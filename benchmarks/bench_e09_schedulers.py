"""E9 — scheduler comparison with concurrent jobs.

Shape claims: every scheduler finishes all jobs; FIFO's last-submitted
job waits longest (head-of-line blocking), so FIFO's worst-case JCT is
at least as bad as Fair's; makespans are broadly comparable (schedulers
reorder work, they don't create capacity).
"""

from benchmarks.conftest import run_experiment
from repro.experiments import figures


def test_e09_schedulers(benchmark):
    (table,) = run_experiment(benchmark, figures.e09_schedulers)

    by_scheduler = {}
    for scheduler, job, queue, jct, mean_jct, makespan in table.rows:
        by_scheduler.setdefault(scheduler, []).append((job, jct, makespan))

    assert set(by_scheduler) == {"fifo", "fair", "capacity", "drf"}
    for scheduler, rows in by_scheduler.items():
        assert len(rows) == 3
        assert all(jct > 0 for _, jct, _ in rows)

    worst = {scheduler: max(jct for _, jct, _ in rows)
             for scheduler, rows in by_scheduler.items()}
    makespans = {scheduler: rows[0][2] for scheduler, rows in by_scheduler.items()}

    # FIFO's straggler is no better than Fair's (head-of-line blocking).
    assert worst["fifo"] >= worst["fair"] * 0.85
    # Reordering, not capacity: makespans within 2x of each other.
    assert max(makespans.values()) < 2.0 * min(makespans.values())
