"""E1 — traffic volume breakdown by component per job type.

Regenerates the stacked per-job decomposition (HDFS read / shuffle /
HDFS write / control).  Shape claims: TeraSort is shuffle-dominated,
K-Means is read-dominated with a near-zero shuffle, and control traffic
is negligible for every job.
"""

from benchmarks.conftest import run_experiment
from repro.experiments import figures


def test_e01_breakdown(benchmark):
    (table,) = run_experiment(benchmark, figures.e01_breakdown)
    by_job = {row[0]: row for row in table.rows}

    # TeraSort: shuffle dominates everything else.
    terasort = by_job["terasort"]
    assert terasort[2] > terasort[1] and terasort[2] > terasort[3]

    # K-Means: shuffle is near zero; reads dominate its data traffic.
    kmeans = by_job["kmeans"]
    assert kmeans[6] < 0.05  # shuffle share
    assert kmeans[1] > kmeans[2]

    # Control plane is a rounding error of total volume for all jobs.
    for row in table.rows:
        assert row[4] < 0.01 * row[5]
