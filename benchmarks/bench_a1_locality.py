"""A1 ablation — locality-aware map binding vs oblivious baselines.

Shape claim: disabling locality-aware binding collapses node-local
reads and inflates HDFS-read network traffic by a large factor — the
justification for modelling delay scheduling's steady state at all.
"""

from benchmarks.conftest import run_experiment
from repro.experiments import figures


def test_a1_locality(benchmark):
    (table,) = run_experiment(benchmark, figures.a1_locality)
    rows = {row[0]: row for row in table.rows}
    aware = rows["default (aware)"]
    oblivious = rows["binding off"]

    # Aware binding keeps most reads node-local; oblivious does not.
    assert aware[1] > oblivious[1]
    # And oblivious binding moves several times more read bytes.
    assert oblivious[4] > 3 * max(aware[4], 1.0)
