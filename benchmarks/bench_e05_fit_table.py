"""E5 — best-fit distribution table per (job, component, metric).

Shape claims: the table covers every job in the mix, KS distances are
reported for every row, and the HDFS-read size rows are recognised as
(near-)degenerate block-sized populations, i.e. their best parametric
fit has tiny spread or the KS column flags the mismatch.
"""

from benchmarks.conftest import run_experiment
from repro.experiments import figures


def test_e05_fit_table(benchmark):
    (table,) = run_experiment(benchmark, figures.e05_fit_table)

    jobs = {row[0] for row in table.rows}
    assert jobs == {"terasort", "wordcount", "grep", "pagerank", "kmeans"}

    # Every row carries a valid KS statistic and a sample count.
    for row in table.rows:
        ks, n = row[5], row[6]
        assert 0.0 <= ks <= 1.0
        assert n >= 3

    # Shuffle sizes exist for every shuffling job and fit reasonably.
    shuffle_size_rows = [row for row in table.rows
                         if row[1] == "shuffle" and row[2] == "size"]
    assert len(shuffle_size_rows) >= 4
    assert min(row[5] for row in shuffle_size_rows) < 0.2
