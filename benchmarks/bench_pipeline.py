"""Pipeline DAG benchmark: cold DAG vs warm all-cached vs flat campaign.

Runs the built-in capture→classify→fit→replay→validate→report pipeline
(terasort + grep over three sizes) three ways:

* **cold flat** — the pre-DAG baseline: the same capture points through
  a storeless :class:`~repro.experiments.runner.CampaignRunner` (the
  capture work every flat experiment re-derives from scratch),
* **cold pipeline** — the full DAG in a fresh root: capture plus every
  downstream stage, journaled and digested,
* **warm pipeline** — a second runner over the same root: every node
  must be a cache hit (manifest + digest verification only).

Asserts the caching contract (zero re-executed nodes warm) and writes
the wall-clocks and the warm-skip speedup to ``BENCH_pipeline.json`` at
the repo root.

Run via ``scripts/run_benchmarks.sh`` or::

    pytest benchmarks/bench_pipeline.py -m benchmark_suite -q -s
"""

import json
import tempfile
import time
from pathlib import Path

from repro.experiments.dag import CACHED, DAGJournal, DAGRunner
from repro.experiments.pipelines import (
    PipelineSpec,
    build_pipeline,
    capture_point_payloads,
    _payload_point,
)
from repro.experiments.runner import CampaignRunner

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"

SPEC = PipelineSpec(jobs=("terasort", "grep"),
                    sizes_gb=(0.125, 0.25, 0.5), experiments=())


def test_pipeline_warm_dag_skips_all_work():
    points = [_payload_point(payload)
              for payload in capture_point_payloads(SPEC)]

    started = time.perf_counter()
    CampaignRunner(store=None, workers=1).run(points)
    flat_s = time.perf_counter() - started

    with tempfile.TemporaryDirectory(prefix="keddah-bench-pl-") as tmp:
        root = Path(tmp) / "pipeline"

        started = time.perf_counter()
        cold = DAGRunner(build_pipeline(SPEC), root).run()
        cold_s = time.perf_counter() - started
        assert cold.ok

        started = time.perf_counter()
        warm = DAGRunner(build_pipeline(SPEC), root).run()
        warm_s = time.perf_counter() - started
        assert warm.ok
        assert all(outcome.state == CACHED
                   for outcome in warm.outcomes.values()), \
            "warm pipeline must be cache hits only"
        counts = DAGJournal(root / "journal.jsonl").run_counts()
        assert all(count == 1 for count in counts.values()), \
            f"warm rerun re-executed nodes: {counts}"

    warm_speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    report = {
        "spec": SPEC.to_dict(),
        "capture_points": len(points),
        "nodes": len(warm.outcomes),
        "cold_flat_campaign_s": round(flat_s, 4),
        "cold_pipeline_s": round(cold_s, 4),
        "warm_pipeline_s": round(warm_s, 4),
        "pipeline_overhead_vs_flat_s": round(cold_s - flat_s, 4),
        "speedup_warm_vs_cold": round(warm_speedup, 3),
        "warm_cache_hits": len(warm.outcomes),
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"\npipeline bench: cold flat {flat_s:.2f}s, cold DAG {cold_s:.2f}s,"
          f" warm DAG {warm_s:.3f}s [{warm_speedup:.1f}x] -> {OUTPUT.name}")

    assert warm_speedup >= 3, \
        f"warm DAG should be >=3x faster than cold, got {warm_speedup:.1f}x"
