"""E4 — per-component flow inter-arrival CDFs with fitted distributions.

Shape claims: gaps are non-negative; printed empirical/fit gaps stay
within the fit's reported KS distance; shuffle arrivals are bursty
(heavy mass of small gaps, a long right tail) and parametrically
fittable.
"""

import re

from benchmarks.conftest import run_experiment
from repro.experiments import figures


def _reported_ks(title):
    return float(re.search(r"KS=([0-9.]+)", title).group(1))


def test_e04_arrival_cdf(benchmark):
    tables = run_experiment(benchmark, figures.e04_arrival_cdf)
    assert tables

    for table in tables:
        values = [row[1] for row in table.rows]
        assert all(v >= 0 for v in values)
        max_gap = max(abs(row[2] - row[3]) for row in table.rows)
        assert max_gap <= _reported_ks(table.title) + 0.05, table.title

    shuffle = [t for t in tables if "shuffle" in t.title]
    assert shuffle, "shuffle arrivals must be modelled"
    assert _reported_ks(shuffle[0].title) < 0.35
    # Bursty: the median gap is far below the maximum gap.
    rows = shuffle[0].rows
    median = [row[1] for row in rows if row[0] == "0.50"][0]
    maximum = rows[-1][1]
    assert maximum > 5 * max(median, 1e-9)
