"""A4 ablation — delay scheduling (locality wait).

Shape claim: on unreplicated input, waiting for the split-holding node
converts remote split reads into node-local ones and shrinks the
HDFS-read component, at a bounded completion-time cost.
"""

from benchmarks.conftest import run_experiment
from repro.experiments import figures


def test_a4_delay_scheduling(benchmark):
    (table,) = run_experiment(benchmark, figures.a4_delay_scheduling)
    rows = {row[0]: row for row in table.rows}
    eager, patient = rows[0.0], rows[6.0]

    # Waiting buys locality and removes read traffic.
    assert patient[1] > eager[1]
    assert patient[4] < eager[4]
    # At a bounded time cost.
    assert patient[5] < 2.0 * eager[5]
