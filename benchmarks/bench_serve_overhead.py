"""Serve-daemon overhead benchmark: observing a campaign must stay cheap.

``keddah campaign --serve-port N`` attaches an HTTP daemon, an event
broker and (optionally) an alert loop to a running campaign.  The PR 3
contract extends to all of it: serving is read-only, so captures stay
byte-identical, and the wall-clock cost of being watched must stay
under 3% even with a client polling ``/metrics`` + ``/snapshot`` in a
tight loop for the whole run.

Method: min-of-k over the same 4-point terasort campaign, (a) bare
runner, (b) runner + serve daemon + a poller scraping ``/metrics`` and
``/snapshot`` every 100 ms (an order of magnitude denser than a real
Prometheus scrape interval) + an alert engine evaluating every 250 ms.
Traces from both arms are serialised and byte-compared.  Writes
``BENCH_serve.json`` at the repo root.

Run via ``scripts/run_benchmarks.sh`` or::

    pytest benchmarks/bench_serve_overhead.py -m benchmark_suite -q -s
"""

import json
import threading
import time
import urllib.request
from pathlib import Path

import pytest

from repro.cluster.config import ClusterSpec, HadoopConfig
from repro.cluster.units import MB
from repro.experiments.runner import CampaignRunner, CapturePoint
from repro.obs import AlertEngine, AlertRule, EventBroker, Telemetry
from repro.obs.server import serve_telemetry

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_serve.json"
RUNS = 3
OVERHEAD_BUDGET = 0.03  # served wall time vs bare wall time
SCRAPE_INTERVAL_S = 0.1

_SPEC = ClusterSpec(num_nodes=8, hosts_per_rack=4)
_CONFIG = HadoopConfig(block_size=32 * MB, num_reducers=4)


def _points():
    return [CapturePoint.from_configs("terasort", 4.0 + index,
                                      100 + index, _SPEC, _CONFIG)
            for index in range(4)]


def _trace_bytes(outcomes):
    lines = []
    for _, trace in outcomes:
        lines.append(json.dumps({"meta": trace.meta.to_dict()}))
        lines.extend(json.dumps(flow.to_dict()) for flow in trace.flows)
    return "\n".join(lines).encode()


def _run_bare():
    runner = CampaignRunner(telemetry=Telemetry.disabled())
    started = time.perf_counter()
    outcomes = runner.run(_points())
    return time.perf_counter() - started, outcomes


def _run_served():
    telemetry = Telemetry.disabled()
    broker = EventBroker()
    engine = AlertEngine(
        [AlertRule("progress", "metric:campaign.points_completed",
                   value=0.0)], broker=broker)
    runner = CampaignRunner(telemetry=telemetry, events=broker)
    polls = 0
    stop = threading.Event()
    with serve_telemetry(telemetry, broker=broker, engine=engine,
                         alert_interval=0.25) as server:
        def scrape():
            nonlocal polls
            while not stop.wait(SCRAPE_INTERVAL_S):
                for endpoint in ("/metrics", "/snapshot"):
                    try:
                        with urllib.request.urlopen(
                                server.url + endpoint, timeout=2) as response:
                            response.read()
                        polls += 1
                    except OSError:
                        return

        poller = threading.Thread(target=scrape, daemon=True)
        poller.start()
        started = time.perf_counter()
        outcomes = runner.run(_points())
        elapsed = time.perf_counter() - started
        stop.set()
        poller.join(timeout=5)
        firing = engine.firing()
    return elapsed, outcomes, polls, firing, broker.published


def _min_of_k(fn, k=RUNS):
    best = None
    for _ in range(k):
        result = fn()
        if best is None or result[0] < best[0]:
            best = result
    return best


@pytest.mark.benchmark_suite
def test_serve_overhead_budget():
    bare_s, bare_outcomes = _min_of_k(_run_bare)
    served_s, served_outcomes, polls, firing, published = \
        _min_of_k(_run_served)

    # Observation is read-only: flow-for-flow identical captures.
    bare_bytes = _trace_bytes(bare_outcomes)
    served_bytes = _trace_bytes(served_outcomes)
    assert bare_bytes == served_bytes, "serving changed the captured bytes"

    overhead = served_s / bare_s - 1.0
    report = {
        "bare_s": round(bare_s, 4),
        "served_s": round(served_s, 4),
        "overhead_fraction": round(overhead, 4),
        "polls_during_fastest_run": polls,
        "events_published": published,
        "alerts_firing_at_end": firing,
        "captures_byte_identical": bare_bytes == served_bytes,
        "points": len(bare_outcomes),
    }
    OUTPUT.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print("\nserve overhead:")
    for key in sorted(report):
        print(f"  {key} = {report[key]}")

    assert firing == ["progress"], "alert engine never saw progress"
    assert overhead < OVERHEAD_BUDGET, report
