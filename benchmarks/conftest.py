"""Shared helpers for the benchmark harness.

Each ``bench_*`` file regenerates one evaluation artefact (table or
figure) from DESIGN.md's E/A index: it re-runs the underlying capture
campaign from scratch (the process-local capture cache is cleared
first so timings are honest), prints the regenerated rows, and asserts
the qualitative claim the paper's artefact makes (who wins, what
scales, where the crossover sits).

Run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest

from repro.analysis.tables import Table, render_table
from repro.experiments.campaigns import clear_cache


def run_experiment(benchmark, experiment, **kwargs):
    """Benchmark one experiment end-to-end and print its tables."""
    def fresh():
        clear_cache()
        return experiment(**kwargs)

    tables = benchmark.pedantic(fresh, rounds=1, iterations=1)
    for table in tables:
        print("\n" + render_table(table))
    assert tables and all(isinstance(table, Table) for table in tables)
    return tables


def column(table, name):
    return table.column(name)
