"""Shared helpers for the benchmark harness.

Each ``bench_*`` file regenerates one evaluation artefact (table or
figure) from DESIGN.md's E/A index: it re-runs the underlying capture
campaign (the process-local memo is cleared first so per-experiment
timings are honest), prints the regenerated rows, and asserts the
qualitative claim the paper's artefact makes (who wins, what scales,
where the crossover sits).

The whole suite shares one persistent capture store
(:class:`repro.experiments.store.CaptureStore`): the first experiment
to need a given (job, size, config, seed) point simulates and
publishes it; every later experiment — in this file or any other —
reads it back instead of re-simulating.  Set ``KEDDAH_CAPTURE_STORE``
to persist the store across benchmark invocations; by default a fresh
session-scoped directory is used, so one invocation's timings never
borrow heat from a previous run.

Run with::

    pytest benchmarks/ --benchmark-only
"""

import os
import tempfile

import pytest

from repro.analysis.tables import Table, render_table
from repro.experiments.campaigns import cache_stats, clear_cache, set_store
from repro.experiments.store import STORE_ENV_VAR, CaptureStore


def pytest_configure(config):
    """Install the session-wide capture store before any benchmark runs."""
    root = os.environ.get(STORE_ENV_VAR, "").strip()
    if not root:
        root = tempfile.mkdtemp(prefix="keddah-capture-store-")
    set_store(CaptureStore(root))


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    stats = cache_stats()
    terminalreporter.write_line(f"keddah capture cache: {stats}")


def pytest_collection_modifyitems(config, items):
    """Mark every benchmark item and skip them outside benchmark mode.

    Tier-1 verification (``python -m pytest -x -q``) must stay fast, so
    anything collected from ``benchmarks/`` is marked ``benchmark_suite``
    and skipped unless the run opts in via pytest-benchmark's own flags
    (``--benchmark-only`` / ``--benchmark-enable``) or an explicit
    ``-m benchmark_suite`` selection — ``scripts/run_benchmarks.sh``
    passes ``--benchmark-only``.
    """
    bench_mode = (
        config.getoption("--benchmark-only", default=False)
        or config.getoption("--benchmark-enable", default=False)
        or "benchmark" in (getattr(config.option, "markexpr", "") or ""))
    skip = pytest.mark.skip(
        reason="benchmarks are skipped by default; run scripts/run_benchmarks.sh "
               "or pass --benchmark-only")
    for item in items:
        if item.fspath and "benchmarks" in str(item.fspath):
            item.add_marker(pytest.mark.benchmark_suite)
            if not bench_mode:
                item.add_marker(skip)


def run_experiment(benchmark, experiment, **kwargs):
    """Benchmark one experiment end-to-end and print its tables.

    Clears the in-memory memo (not the shared store) so the timing
    reflects at most one simulation per point per session, never free
    same-process memo hits.
    """
    def fresh():
        clear_cache()
        return experiment(**kwargs)

    tables = benchmark.pedantic(fresh, rounds=1, iterations=1)
    for table in tables:
        print("\n" + render_table(table))
    assert tables and all(isinstance(table, Table) for table in tables)
    return tables


def column(table, name):
    return table.column(name)
