"""Fluid-engine benchmark: vectorized vs scalar water-filling at scale.

Drives :class:`FlowNetwork` directly (no Hadoop layer on top) with
synchronized wave workloads on fat-tree fabrics at three scale rungs
(64 / 256 / 1024 hosts).  A wave launches thousands of concurrent
flows in balanced constant-offset placement; sizes step per *lap*
(one flow per host per lap), so completions arrive in many distinct
batches and every batch forces a full advance + harvest + recompute
over the standing population — exactly the regime where the scalar
allocator's per-flow Python loops dominate and the vectorized
engine's O(rounds) numpy water-fill pays off.  ECMP pair hashing on
the canonical fat-tree (every link at host speed) adds real core
contention, so rates fragment into classes and recomputes resolve in
several bottleneck rounds, not an idealised single one.

Records, per rung: wall-clock for both engines, speedup, allocator
round/recompute counters, and the byte-identity flag — both engines
must produce the *identical* sorted list of (src, dst, size, start,
end) tuples, float-exact, because the vectorized engine is
bit-compatible by construction (DESIGN.md "Vectorized fluid engine").
A final vectorized-only scale run completes a 1024-host fat-tree
campaign with >= 1e6 flows.

Writes ``BENCH_vectorized.json`` at the repo root and asserts the two
headline acceptance numbers: >= 10x on the 64-host rung and a
completed >= 1e6-flow 1024-host run.

Run via ``scripts/run_benchmarks.sh`` or::

    pytest benchmarks/bench_vectorized.py -m benchmark_suite -q -s
"""

import json
import time
from pathlib import Path

from repro.capture.collector import FlowCollector
from repro.cluster.topology import build_topology
from repro.net.backend import make_backend
from repro.simkit.core import Simulator

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_vectorized.json"

MIN_SPEEDUP_64 = 10.0
MIN_SCALE_FLOWS = 1_000_000

HOST_GBPS = 10.0
HOST_RATE = HOST_GBPS * 1e9 / 8.0  # bytes/s on the access link

#: Scale rungs: (hosts, fattree_k, flows_per_wave, waves).  Placement
#: is a constant half-ring offset, so only ``hosts`` distinct
#: (src, dst) pairs exist (ECMP path lookups amortise) and each host
#: sources and sinks exactly flows_per_wave/hosts flows.
RUNGS = [
    (64, 8, 24576, 1),
    (256, 12, 32768, 1),
    (1024, 16, 32768, 1),
]

#: The vectorized-only scale run: 64 waves x 16384 flows = 1,048,576
#: flows through a 1024-host fat-tree.
SCALE_RUNG = (1024, 16, 16384, 64)

#: Wave spacing, seconds.  Generous enough that every wave drains
#: before the next starts (lap sizes are sized to ~0.5..1.5 s at the
#: initial fair share), keeping waves independent and the slot
#: free-list exercised between them.
WAVE_PERIOD = 4.0


def _wave_flows(hosts, flows_per_wave):
    """Balanced (src, dst, size) population for one wave.

    The size steps per lap (``k // n``) rather than per flow: a lap
    holds one flow per host, so when a lap's flows complete they drain
    every access link together and the next recompute runs against a
    still-uniform population.  ECMP collisions on core links split
    each lap into a handful of completion batches on top of that.
    """
    n = len(hosts)
    laps = flows_per_wave // n
    fair_rate = HOST_RATE / (flows_per_wave / n)
    flows = []
    for k in range(flows_per_wave):
        src = hosts[k % n]
        dst = hosts[(k + n // 2) % n]
        size = fair_rate * (0.5 + (k // n + 1) / laps)
        flows.append((src, dst, size))
    return flows


def _topology(hosts_n, fattree_k, cache={}):
    """One pre-warmed topology per rung, shared by both engine runs.

    ECMP path discovery is topology infrastructure, identical for both
    engines and cached per (src, dst) pair, so it must not be charged
    to whichever engine happens to run first.
    """
    key = (hosts_n, fattree_k)
    if key not in cache:
        topology = build_topology("fattree", num_hosts=hosts_n,
                                  host_gbps=HOST_GBPS, fattree_k=fattree_k)
        hosts = topology.hosts[:hosts_n]
        for index, src in enumerate(hosts):
            topology.path(src, hosts[(index + hosts_n // 2) % hosts_n])
        cache[key] = topology
    return cache[key]


def _run_waves(engine, hosts_n, fattree_k, flows_per_wave, waves,
               collect=True):
    """Run the wave workload on one engine; return timing + evidence."""
    topology = _topology(hosts_n, fattree_k)
    sim = Simulator()
    net = make_backend("fluid", sim, topology, engine=engine)
    collector = FlowCollector(net) if collect else None
    population = _wave_flows(topology.hosts[:hosts_n], flows_per_wave)
    started = time.perf_counter()
    for wave in range(waves):
        at = wave * WAVE_PERIOD
        for src, dst, size in population:
            sim.schedule(at, net.start_flow, src, dst, size)
    sim.run()
    elapsed = time.perf_counter() - started
    completed = int(
        sim.telemetry.registry.counter("net.flows_completed").value)
    assert completed == flows_per_wave * waves, \
        f"{engine}: {completed} of {flows_per_wave * waves} flows completed"
    tuples = None
    if collector is not None:
        tuples = sorted((r.src, r.dst, r.size, r.start, r.end)
                        for r in collector.records)
    return {
        "elapsed_s": elapsed,
        "flows": completed,
        "perf": net.perf,
        "tuples": tuples,
    }


def test_vectorized_engine_speedup_and_scale():
    rows = []
    for hosts_n, fattree_k, flows_per_wave, waves in RUNGS:
        scalar = _run_waves("scalar", hosts_n, fattree_k,
                            flows_per_wave, waves)
        vectorized = _run_waves("vectorized", hosts_n, fattree_k,
                                flows_per_wave, waves)
        identical = scalar["tuples"] == vectorized["tuples"]
        assert identical, \
            f"engines diverged at hosts={hosts_n}: flow tuples differ"
        assert scalar["perf"]["recomputes"] == \
            vectorized["perf"]["recomputes"]
        assert scalar["perf"]["waterfill_rounds"] == \
            vectorized["perf"]["waterfill_rounds"]
        speedup = scalar["elapsed_s"] / vectorized["elapsed_s"]
        rows.append({
            "hosts": hosts_n, "fattree_k": fattree_k,
            "flows_per_wave": flows_per_wave, "waves": waves,
            "flows": vectorized["flows"],
            "scalar_s": round(scalar["elapsed_s"], 4),
            "vectorized_s": round(vectorized["elapsed_s"], 4),
            "speedup": round(speedup, 2),
            "byte_identical": identical,
            "recomputes": vectorized["perf"]["recomputes"],
            "waterfill_rounds": vectorized["perf"]["waterfill_rounds"],
        })
        print(f"hosts={hosts_n:5d} flows={vectorized['flows']:7d} "
              f"scalar={scalar['elapsed_s']:7.2f}s "
              f"vectorized={vectorized['elapsed_s']:6.2f}s "
              f"speedup={speedup:5.1f}x identical={identical}")

    hosts_n, fattree_k, flows_per_wave, waves = SCALE_RUNG
    scale = _run_waves("vectorized", hosts_n, fattree_k, flows_per_wave,
                       waves, collect=False)
    print(f"scale run: hosts={hosts_n} flows={scale['flows']} "
          f"elapsed={scale['elapsed_s']:.1f}s "
          f"rounds={scale['perf']['waterfill_rounds']}")

    report = {
        "workload": {
            "shape": "synchronized waves, constant-offset placement, "
                     "per-lap size classes",
            "host_gbps": HOST_GBPS,
            "wave_period_s": WAVE_PERIOD,
        },
        "rungs": rows,
        "speedup_64": next(row["speedup"] for row in rows
                           if row["hosts"] == 64),
        "byte_identical_all_rungs": all(row["byte_identical"]
                                        for row in rows),
        "scale_run": {
            "hosts": hosts_n, "fattree_k": fattree_k,
            "flows_per_wave": flows_per_wave, "waves": waves,
            "flows": scale["flows"],
            "completed": True,
            "vectorized_s": round(scale["elapsed_s"], 2),
            "recomputes": scale["perf"]["recomputes"],
            "waterfill_rounds": scale["perf"]["waterfill_rounds"],
            "allocator_seconds":
                round(scale["perf"]["allocator_seconds"], 4),
        },
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"\nvectorized bench: 64-host speedup "
          f"{report['speedup_64']:.1f}x, scale run {scale['flows']} "
          f"flows -> {OUTPUT.name}")

    assert report["speedup_64"] >= MIN_SPEEDUP_64, \
        f"vectorized engine should be >={MIN_SPEEDUP_64}x faster on the " \
        f"64-host rung, got {report['speedup_64']:.2f}x"
    assert scale["flows"] >= MIN_SCALE_FLOWS, \
        f"scale run should complete >={MIN_SCALE_FLOWS} flows, " \
        f"got {scale['flows']}"
