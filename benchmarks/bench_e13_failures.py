"""E13 — node-failure recovery traffic.

Shape claims: a DataNode crash triggers block-sized re-replication
flows restoring the replication factor; a whole-node crash additionally
loses containers; the job survives both with a completion-time penalty
but no failure.
"""

from benchmarks.conftest import run_experiment
from repro.experiments import figures


def test_e13_failures(benchmark):
    (table,) = run_experiment(benchmark, figures.e13_failures)
    rows = {row[0]: row for row in table.rows}

    healthy = rows["healthy"]
    dn_crash = rows["datanode crash"]
    node_crash = rows["whole node crash"]

    # No recovery traffic without a fault.
    assert healthy[3] == 0 and healthy[4] == 0 and healthy[5] == 0
    # The DN crash re-replicates every lost block (32 MiB each here).
    assert dn_crash[4] > 0
    assert dn_crash[3] == dn_crash[4] * 32
    # A machine crash also expires containers, and costs more time.
    assert node_crash[5] >= dn_crash[5]
    assert node_crash[1] >= healthy[1]
    # Every scenario completes.
    assert not any(row[6] for row in table.rows)
