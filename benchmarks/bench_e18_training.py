"""E18 — model fidelity vs number of training input sizes.

Shape claims: a model trained on one input size must extrapolate
proportionally and misses the affine components badly (large mean
volume error); adding a second size pins the affine law and collapses
the error; three sizes refine it further.  The shuffle component —
nearly proportional — is predicted decently even from one size.
"""

from benchmarks.conftest import run_experiment
from repro.experiments import figures


def test_e18_training_sensitivity(benchmark):
    (table,) = run_experiment(benchmark, figures.e18_training_sensitivity)
    assert len(table.rows) == 3

    mean_errors = [row[4] for row in table.rows]
    # One size is much worse than two; two no worse than ~one; three best.
    assert mean_errors[0] > 2.0 * mean_errors[1]
    assert mean_errors[2] <= mean_errors[1] + 0.05

    # The near-proportional shuffle survives even single-size training.
    shuffle_errors = [row[2] for row in table.rows]
    assert all(err < 0.5 for err in shuffle_errors)
