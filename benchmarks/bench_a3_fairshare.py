"""A3 ablation — max-min shared links vs an uncontended lower bound.

Shape claim: the shared-link replay is strictly slower than the
uncontended bound (contention is real and the fluid model captures
it), but within a small factor — the network is not the only
bottleneck for these traces.
"""

from benchmarks.conftest import run_experiment
from repro.experiments import figures


def test_a3_fairshare(benchmark):
    (table,) = run_experiment(benchmark, figures.a3_fairshare)
    rows = {row[0]: row for row in table.rows}
    shared = rows["max-min shared links"]
    bound = rows["uncontended bound"]

    # Contention can only slow flows down.
    assert shared[1] >= bound[1] * 0.999
    assert shared[2] >= bound[2] * 0.999
    # But the trace's own pacing dominates: within 3x of the bound.
    assert shared[1] < 3.0 * bound[1]
