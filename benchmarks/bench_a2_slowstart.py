"""A2 ablation — reducer slow-start vs the shuffle arrival process.

Shape claims: raising the slow-start fraction pushes the first shuffle
fetch later (reducers wait for more completed maps), and at 1.0 the
lost map/shuffle overlap costs completion time versus the default.
"""

from benchmarks.conftest import run_experiment
from repro.experiments import figures


def test_a2_slowstart(benchmark):
    (table,) = run_experiment(benchmark, figures.a2_slowstart)
    rows = {row[0]: row for row in table.rows}

    # First fetch moves later as slow-start grows.
    assert rows[1.0][1] > rows[0.05][1]
    # Losing all overlap costs JCT.
    assert rows[1.0][4] > rows[0.05][4]
