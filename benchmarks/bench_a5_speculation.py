"""A5 ablation — speculative execution under stragglers.

Shape claims: with 25% of attempts slowed 20x, enabling speculation
shortens both the worst map duration and the job completion time, at
the cost of duplicate launches and extra HDFS-read traffic.
"""

from benchmarks.conftest import run_experiment
from repro.experiments import figures


def test_a5_speculation(benchmark):
    (table,) = run_experiment(benchmark, figures.a5_speculation)
    rows = {row[0]: row for row in table.rows}
    off, on = rows["off"], rows["on"]

    # Speculation actually launched duplicates...
    assert on[3] > 0
    assert on[4] > off[4]
    # ...which cost extra read traffic...
    assert on[5] >= off[5]
    # ...and bought a shorter tail and JCT.
    assert on[2] < off[2]
    assert on[1] < off[1]
