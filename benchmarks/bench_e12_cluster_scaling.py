"""E12 — traffic and completion time vs cluster size.

Shape claims: as the cluster grows, map locality dilutes — HDFS-read
traffic and the cross-rack share both rise monotonically — and the
completion time improves from 4 to 8 nodes (parallelism) before the
remote-read tax erodes the gains at 32 nodes with a fixed reducer
count.
"""

from benchmarks.conftest import run_experiment
from repro.experiments import figures


def test_e12_cluster_scaling(benchmark):
    (table,) = run_experiment(benchmark, figures.e12_cluster_scaling)
    rows = sorted(table.rows)  # by node count

    nodes = [row[0] for row in rows]
    assert nodes == [4, 8, 16, 32]

    reads = [row[3] for row in rows]
    cross = [row[6] for row in rows]
    jct = {row[0]: row[7] for row in rows}

    # Locality dilution: read traffic and cross-rack share grow.
    assert all(a <= b for a, b in zip(reads, reads[1:]))
    assert reads[-1] > reads[0]
    assert all(a <= b + 0.05 for a, b in zip(cross, cross[1:]))
    assert cross[-1] > cross[0]

    # Early parallelism pays off.
    assert jct[8] < jct[4]
