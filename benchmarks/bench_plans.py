"""Workload-plan benchmark: a chained plan vs its stages run in isolation.

The point of the plan layer is that chained Hadoop workloads are not
the sum of their parts: dependent stages serialise behind their
upstream's HDFS commit, inter-stage bytes travel the real write/read
path, and the cluster sees one long campaign instead of three cold
starts.  This benchmark runs the TPCx-HS chain (HSGen → HSSort →
HSValidate) once as a plan and once as three isolated single-job
captures of the same kinds and volume, and records:

* host wall-clock for the plan run vs the isolated runs,
* per-stage simulated JCT and wire volume (from the plan's stage
  manifest / flow attribution),
* the chaining cost: plan completion vs the isolated jobs' JCTs.

Writes ``BENCH_plans.json`` at the repo root.

Run via ``scripts/run_benchmarks.sh`` or::

    pytest benchmarks/bench_plans.py -m benchmark_suite -q -s
"""

import json
import time
from pathlib import Path

from repro.analysis.plans import stage_breakdown
from repro.experiments.campaigns import CampaignConfig, clear_cache
from repro.experiments.runner import CapturePoint, PlanPoint

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_plans.json"

SEED = 42
SCALE = 0.5  # GiB through the chain
CONFIG = CampaignConfig()  # canonical 8-node campaign cluster

#: The chain's stages as isolated single-job equivalents.
ISOLATED = [("teragen", SCALE), ("terasort", SCALE), ("grep", SCALE)]


def _run_plan():
    point = PlanPoint.from_campaign("tpcx-hs", SEED, CONFIG,
                                    {"scale": SCALE})
    started = time.perf_counter()
    result, trace = point.simulate()
    return time.perf_counter() - started, result, trace


def _run_isolated(job, input_gb):
    point = CapturePoint.from_campaign(job, input_gb, SEED, CONFIG)
    started = time.perf_counter()
    result, trace = point.simulate()
    return time.perf_counter() - started, result, trace


def test_chained_plan_vs_isolated_stages():
    clear_cache()
    mb = 1024.0 * 1024.0

    plan_s, plan_result, plan_trace = _run_plan()
    assert not plan_result.failed
    stage_rows = []
    for row in stage_breakdown(plan_trace):
        stage_rows.append({
            "stage": row["stage"], "kind": row["kind"],
            "jct_s": round(row["jct"], 3) if row["jct"] is not None else None,
            "maps": row["num_maps"], "reduces": row["num_reduces"],
            "shuffle_mb": round(row["shuffle_bytes"] / mb, 1),
            "wire_mb": round(row["wire_bytes"] / mb, 1),
            "flows": row["wire_flows"],
        })
        label = row["stage"]
        jct = f"{row['jct']:7.2f}s" if row["jct"] is not None else "      -"
        print(f"stage {label:12s} jct={jct} "
              f"wire={row['wire_bytes'] / mb:8.1f}MiB "
              f"flows={row['wire_flows']:4d}")

    isolated_rows = []
    isolated_wall = 0.0
    for job, input_gb in ISOLATED:
        wall_s, result, trace = _run_isolated(job, input_gb)
        isolated_wall += wall_s
        isolated_rows.append({
            "job": job, "input_gb": input_gb,
            "jct_s": round(result.completion_time, 3),
            "wall_s": round(wall_s, 4),
            "wire_mb": round(sum(f.size for f in trace.flows) / mb, 1),
        })
        print(f"isolated {job:10s} jct={result.completion_time:7.2f}s "
              f"wall={wall_s:6.2f}s")

    # Chaining serialises the dependent stages: the plan's completion
    # covers at least the longest isolated equivalent.
    longest_isolated = max(row["jct_s"] for row in isolated_rows)
    assert plan_result.completion_time >= longest_isolated

    completed = [s for s in plan_result.stages if s.job is not None]
    chained_jct = sum(s.job.completion_time for s in completed)
    report = {
        "plan": {"name": "tpcx-hs", "scale": SCALE, "seed": SEED,
                 "nodes": CONFIG.nodes},
        "plan_wall_s": round(plan_s, 4),
        "plan_completion_s": round(plan_result.completion_time, 3),
        "plan_flows": plan_trace.flow_count(),
        "stages": stage_rows,
        "isolated": isolated_rows,
        "isolated_wall_s": round(isolated_wall, 4),
        "chained_jct_sum_s": round(chained_jct, 3),
        "chaining_overhead_s": round(
            plan_result.completion_time - chained_jct, 3),
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"\nplan bench: plan wall {plan_s:.2f}s "
          f"(completion {plan_result.completion_time:.2f}s) vs isolated "
          f"wall {isolated_wall:.2f}s -> {OUTPUT.name}")
