"""E16 — leave-one-out cross-validation of the scaling laws.

Shape claim: models fitted with one input size held out predict that
size's shuffle volume within tens of percent — the linear count/volume
laws extrapolate, which is what makes generated traffic for unseen
sizes trustworthy.
"""

from benchmarks.conftest import run_experiment
from repro.experiments import figures


def test_e16_crossval(benchmark):
    (table,) = run_experiment(benchmark, figures.e16_crossval)
    assert table.rows

    shuffle_rows = [row for row in table.rows if row[2] == "shuffle"]
    assert shuffle_rows
    errors = [row[7] for row in shuffle_rows if row[7] != "inf"]
    # Every held-out shuffle prediction lands within 50%, mean within 25%.
    assert max(errors) < 0.5
    assert sum(errors) / len(errors) < 0.25

    # The (structurally constant) write component is predicted exactly
    # for most holdouts.
    write_rows = [row for row in table.rows if row[2] == "hdfs_write"]
    good = [row for row in write_rows if row[7] != "inf" and row[7] < 0.1]
    assert len(good) >= len(write_rows) // 2
