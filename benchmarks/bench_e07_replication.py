"""E7 — HDFS write traffic vs replication factor.

Shape claims: write traffic is ~(replication - 1) x the generated
bytes — zero network copies at r=1, one at r=2, two at r=3 — and
rack-aware placement keeps cross-rack bytes at ~one copy regardless
of r >= 2.
"""

import pytest

from benchmarks.conftest import run_experiment
from repro.experiments import figures


def test_e07_replication(benchmark):
    (table,) = run_experiment(benchmark, figures.e07_replication)
    rows = {row[0]: row for row in table.rows}

    generated_mib = 1024.0
    overhead = 30.0  # jar staging + history

    assert rows[1][1] < overhead
    assert rows[2][1] == pytest.approx(1 * generated_mib, rel=0.1)
    assert rows[3][1] == pytest.approx(2 * generated_mib, rel=0.1)

    # Cross-rack write bytes: about one copy for r in {2, 3}.
    assert rows[2][4] == pytest.approx(generated_mib, rel=0.25)
    assert rows[3][4] == pytest.approx(generated_mib, rel=0.35)
