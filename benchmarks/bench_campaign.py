"""Campaign-runner benchmark: cold serial vs cold parallel vs warm store.

Runs the representative evaluation campaign (the five-job HiBench-style
mix x the canonical four input sizes, default
:class:`~repro.experiments.campaigns.CampaignConfig`) three ways:

* **cold serial** — no store, one process: the pre-runner baseline,
* **cold parallel** — empty store, 4 workers: the fan-out path,
* **warm store** — same store, second run: pure store reads.

Asserts the subsystem's correctness contract (parallel and warm-store
traces byte-identical to serial; zero simulations on a warm store) and
writes the measured wall-clock numbers plus hit/miss counters to
``BENCH_campaign.json`` at the repo root, so the trajectory of campaign
throughput is tracked across PRs alongside ``BENCH_substrate.json``.

Run via ``scripts/run_benchmarks.sh`` or::

    pytest benchmarks/bench_campaign.py -m benchmark_suite -q -s
"""

import json
import os
import tempfile
import time
from pathlib import Path

from repro.experiments.campaigns import (
    DEFAULT_JOBS,
    DEFAULT_SEED,
    DEFAULT_SIZES_GB,
    CampaignConfig,
)
from repro.experiments.runner import CampaignRunner, CapturePoint, derive_seed
from repro.experiments.store import CaptureStore

WORKERS = 4
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_campaign.json"


def _campaign_points():
    campaign = CampaignConfig()
    return [CapturePoint.from_campaign(job, gb, derive_seed(DEFAULT_SEED, index),
                                       campaign)
            for job in DEFAULT_JOBS
            for index, gb in enumerate(DEFAULT_SIZES_GB)]


def _trace_bytes(trace):
    return "\n".join(
        [json.dumps({"meta": trace.meta.to_dict()})]
        + [json.dumps(flow.to_dict()) for flow in trace.flows]).encode()


def _timed(runner, points):
    started = time.perf_counter()
    outcomes = runner.run(points)
    return time.perf_counter() - started, outcomes


def test_campaign_cold_parallel_and_warm_store():
    points = _campaign_points()
    cpus = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") \
        else (os.cpu_count() or 1)

    serial_s, serial = _timed(CampaignRunner(store=None, workers=1), points)

    with tempfile.TemporaryDirectory(prefix="keddah-bench-store-") as root:
        store = CaptureStore(root)
        parallel_runner = CampaignRunner(store=store, workers=WORKERS)
        parallel_s, parallel = _timed(parallel_runner, points)
        assert parallel_runner.stats.simulated == len(points)

        warm_runner = CampaignRunner(store=store, workers=WORKERS)
        warm_s, warm = _timed(warm_runner, points)
        assert warm_runner.stats.simulated == 0, \
            "warm store must resolve every point without simulating"
        assert warm_runner.stats.store_hits == len(points)

        serial_bytes = [_trace_bytes(trace) for _, trace in serial]
        assert serial_bytes == [_trace_bytes(trace) for _, trace in parallel], \
            "parallel campaign output must be byte-identical to serial"
        assert serial_bytes == [_trace_bytes(trace) for _, trace in warm], \
            "warm-store campaign output must be byte-identical to serial"

        warm_speedup = serial_s / warm_s if warm_s > 0 else float("inf")
        parallel_speedup = serial_s / parallel_s if parallel_s > 0 else 0.0
        report = {
            "campaign": {"jobs": DEFAULT_JOBS, "sizes_gb": DEFAULT_SIZES_GB,
                         "points": len(points), "seed": DEFAULT_SEED},
            "cpus": cpus,
            "workers": WORKERS,
            "cold_serial_s": round(serial_s, 4),
            "cold_parallel_s": round(parallel_s, 4),
            "warm_store_s": round(warm_s, 4),
            "speedup_cold_parallel": round(parallel_speedup, 3),
            "speedup_warm_store": round(warm_speedup, 3),
            "byte_identical": True,
            "store": store.stats.to_dict(),
            "warm_runner": warm_runner.stats.to_dict(),
            "parallel_runner": parallel_runner.stats.to_dict(),
        }
        OUTPUT.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
        print(f"\ncampaign bench: cold serial {serial_s:.2f}s, cold parallel "
              f"({WORKERS} workers, {cpus} cpu) {parallel_s:.2f}s "
              f"[{parallel_speedup:.2f}x], warm store {warm_s:.3f}s "
              f"[{warm_speedup:.1f}x] -> {OUTPUT.name}")

    assert warm_speedup >= 10, \
        f"warm store should be >=10x faster than cold serial, got {warm_speedup:.1f}x"
    # Process fan-out can only beat serial when there are cores to fan
    # out to; on a single-CPU runner the numbers are still recorded.
    if cpus >= WORKERS:
        assert parallel_speedup >= 2, \
            f"expected >=2x cold-parallel speedup on {cpus} cpus, " \
            f"got {parallel_speedup:.2f}x"
