"""E15 — traffic over time: the job's phase structure.

Shape claims (on ``sort``, whose replicated output creates a real write
wave): the three data components peak in pipeline order — HDFS reads
before (or with) the shuffle, the shuffle before the output writes —
which is the phase signature the generated traffic's start-offset laws
must preserve.
"""

from benchmarks.conftest import run_experiment
from repro.experiments import figures


def test_e15_phase_profile(benchmark):
    (table,) = run_experiment(benchmark, figures.e15_phase_profile)
    assert len(table.rows) > 3

    # Recover per-component peak times from the table itself.
    header_index = {name: i for i, name in enumerate(table.headers)}
    peaks = {}
    for name, index in header_index.items():
        if name == "t (s)":
            continue
        column = [row[index] for row in table.rows]
        if max(column) > 0:
            peaks[name] = table.rows[column.index(max(column))][0]

    assert "shuffle MiB/s" in peaks
    if "hdfs_read MiB/s" in peaks:
        assert peaks["hdfs_read MiB/s"] <= peaks["shuffle MiB/s"]
    if "hdfs_write MiB/s" in peaks:
        assert peaks["shuffle MiB/s"] <= peaks["hdfs_write MiB/s"]
