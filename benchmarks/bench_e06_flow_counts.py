"""E6 — flow count scaling vs input size and vs reducer count.

Shape claims: map count equals input/blocksize; captured shuffle flows
track the maps x reduces law from below (local fetches are silent);
doubling reducers roughly doubles shuffle flows while shrinking the
median flow size by about half.
"""

from benchmarks.conftest import run_experiment
from repro.experiments import figures


def test_e06_flow_counts(benchmark):
    by_size, by_reducers = run_experiment(benchmark, figures.e06_flow_counts)

    for gb, maps, reduces, reads, shuffles, law, writes in by_size.rows:
        assert maps == int(gb * 1024 / 32)  # 32 MiB blocks
        assert 0 < shuffles <= law

    shuffle_counts = [row[4] for row in by_size.rows]
    assert shuffle_counts == sorted(shuffle_counts)  # grows with input

    counts = {row[0]: row[2] for row in by_reducers.rows}
    medians = {row[0]: row[4] for row in by_reducers.rows}
    # Doubling reducers: flow count up ~2x (within slack), median down.
    assert counts[16] > 3 * counts[2]
    assert medians[2] > 3 * medians[16]
