"""Tests for the workload library: profiles, catalog, make_job."""

import numpy as np
import pytest

from repro.cluster.units import MB
from repro.jobs import JobProfile, JobSpec, job_catalog, make_job
from repro.jobs.base import register_profile

EXPECTED_KINDS = {"terasort", "sort", "wordcount", "grep", "pagerank",
                  "kmeans", "join", "teragen", "dfsio-write", "dfsio-read",
                  "bayes", "nutchindexing"}


def test_catalog_contains_the_full_mix():
    assert set(job_catalog()) == EXPECTED_KINDS


def test_every_profile_constructs_and_validates():
    for kind, factory in job_catalog().items():
        profile = factory()
        assert profile.kind == kind
        assert profile.map_cpu_rate > 0
        assert profile.iterations >= 1


def test_make_job_builds_spec_with_defaults():
    spec = make_job("terasort", input_gb=2.0)
    assert spec.kind == "terasort"
    assert spec.input_bytes == 2.0 * 1024 * MB
    assert spec.job_id.startswith("job_terasort_")
    assert spec.input_path.endswith("/input")
    assert spec.output_path.endswith("/output")


def test_make_job_unique_ids():
    a = make_job("grep", input_gb=1.0)
    b = make_job("grep", input_gb=1.0)
    assert a.job_id != b.job_id


def test_make_job_profile_overrides():
    spec = make_job("pagerank", input_gb=1.0, iterations=5)
    assert spec.profile.iterations == 5
    spec = make_job("terasort", input_gb=1.0, map_selectivity=0.5)
    assert spec.profile.map_selectivity == 0.5


def test_make_job_unknown_kind():
    with pytest.raises(ValueError):
        make_job("bitcoin-miner", input_gb=1.0)


def test_job_spec_validation_and_overrides():
    with pytest.raises(ValueError):
        JobSpec(profile=job_catalog()["grep"](), input_bytes=-1.0)
    spec = make_job("grep", input_gb=1.0)
    changed = spec.with_overrides(num_reducers=7, queue="prod")
    assert changed.num_reducers == 7
    assert changed.queue == "prod"
    assert spec.num_reducers is None  # original untouched


def test_profile_validation():
    with pytest.raises(ValueError):
        JobProfile(kind="x", map_selectivity=-0.1)
    with pytest.raises(ValueError):
        JobProfile(kind="x", map_cpu_rate=0.0)
    with pytest.raises(ValueError):
        JobProfile(kind="x", iterations=0)
    with pytest.raises(ValueError):
        JobProfile(kind="x", partition_skew=-1.0)


def test_partition_weights_sum_to_one_and_respect_skew():
    rng = np.random.default_rng(0)
    uniform = JobProfile(kind="u", partition_skew=0.0)
    weights = uniform.partition_weights(8, rng)
    assert weights.sum() == pytest.approx(1.0)
    assert np.allclose(weights, 1.0 / 8)

    skewed = JobProfile(kind="s", partition_skew=1.5)
    weights = skewed.partition_weights(8, rng)
    assert weights.sum() == pytest.approx(1.0)
    assert weights.max() / weights.min() > 5.0  # visible skew
    with pytest.raises(ValueError):
        skewed.partition_weights(0, rng)


def test_partition_weight_order_varies_per_job():
    profile = JobProfile(kind="s", partition_skew=1.0)
    a = profile.partition_weights(8, np.random.default_rng(1))
    b = profile.partition_weights(8, np.random.default_rng(2))
    assert sorted(a) == pytest.approx(sorted(b))  # same shape
    assert list(a) != list(b)  # shuffled placement


def test_generator_profiles_are_map_only():
    for kind in ("teragen", "dfsio-write", "dfsio-read"):
        profile = job_catalog()[kind]()
        assert profile.map_only
    assert job_catalog()["teragen"]().is_generator
    assert not job_catalog()["dfsio-read"]().is_generator


def test_register_profile_rejects_duplicates():
    with pytest.raises(ValueError):
        @register_profile("terasort")
        def duplicate(**kwargs):  # pragma: no cover - never called
            return None


def test_iterative_profiles_chain_correctly():
    pagerank = job_catalog()["pagerank"]()
    assert pagerank.iterations == 3
    assert not pagerank.reread_input
    kmeans = job_catalog()["kmeans"]()
    assert kmeans.reread_input
