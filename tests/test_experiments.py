"""Tests for the experiment harness (small parameterisations)."""

import pytest

from repro.analysis.tables import Table
from repro.experiments import figures
from repro.experiments.campaigns import CampaignConfig, capture, capture_campaign, clear_cache


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


def test_capture_is_cached():
    result_a, trace_a = capture("grep", 0.25, seed=1)
    result_b, trace_b = capture("grep", 0.25, seed=1)
    assert trace_a is trace_b  # memoised, not re-simulated


def test_capture_cache_distinguishes_parameters():
    _, trace_a = capture("grep", 0.25, seed=1)
    _, trace_b = capture("grep", 0.25, seed=2)
    assert trace_a is not trace_b
    _, trace_c = capture("grep", 0.25, seed=1,
                         campaign=CampaignConfig(num_reducers=2))
    assert trace_c is not trace_a


def test_capture_campaign_returns_one_trace_per_size():
    traces = capture_campaign("grep", sizes_gb=[0.125, 0.25], seed=1)
    assert len(traces) == 2
    assert traces[0].meta.input_bytes < traces[1].meta.input_bytes


def test_campaign_config_builders():
    campaign = CampaignConfig(nodes=4, block_mb=16, scheduler="fair")
    spec = campaign.cluster_spec()
    config = campaign.hadoop_config()
    assert spec.num_nodes == 4
    assert config.block_size == 16 * 1024 * 1024
    assert config.scheduler == "fair"


def test_e01_small_parameterisation():
    tables = figures.e01_breakdown(input_gb=0.25, jobs=["grep", "terasort"])
    assert len(tables) == 1
    table = tables[0]
    assert [row[0] for row in table.rows] == ["grep", "terasort"]
    grep_row, terasort_row = table.rows
    assert terasort_row[2] > grep_row[2]  # terasort shuffles more


def test_e03_tables_have_fit_column():
    tables = figures.e03_flow_size_cdf(input_gb=0.25)
    assert tables
    for table in tables:
        assert isinstance(table, Table)
        assert table.headers[-1] == "fit"


def test_e05_small():
    (table,) = figures.e05_fit_table(jobs=["terasort"], input_gb=0.25)
    assert all(row[0] == "terasort" for row in table.rows)
    metrics = {(row[1], row[2]) for row in table.rows}
    assert ("shuffle", "size") in metrics


def test_e10_small_validation():
    (table,) = figures.e10_validation(jobs=["grep"],
                                      fit_sizes_gb=[0.125, 0.25],
                                      target_gb=0.25)
    assert table.rows
    shuffle_rows = [row for row in table.rows if row[1] == "shuffle"]
    assert shuffle_rows
    assert shuffle_rows[0][4] < 0.5  # count error on the shuffle


def test_all_experiments_registry_is_complete():
    expected = {f"e{i:02d}" for i in range(1, 21)} | {"a1", "a2", "a3", "a4", "a5"}
    assert set(figures.ALL_EXPERIMENTS) == expected
    assert all(callable(fn) for fn in figures.ALL_EXPERIMENTS.values())
