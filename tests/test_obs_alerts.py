"""Alert rule parsing and the threshold/derivative/absence engine."""

import json

import pytest

from repro.obs import (
    AlertEngine,
    AlertRule,
    EventBroker,
    MemorySink,
    MetricsRegistry,
    ProbeLog,
    Tracer,
    load_rules,
    parse_rule,
    parse_rules,
)


# -- parsing -------------------------------------------------------------------------


def test_parse_rule_defaults_and_signal_split():
    rule = parse_rule({"name": "hot", "signal": "probe:net.util",
                       "value": 0.9})
    assert rule.type == "threshold"
    assert rule.op == ">"
    assert rule.signal_kind == "probe"
    assert rule.signal_name == "net.util"


@pytest.mark.parametrize("data,match", [
    ({"name": "x", "signal": "probe:s", "typo": 1}, "unknown key"),
    ({"name": "x"}, "at least"),
    ({"name": "x", "signal": "bogus"}, "bad signal"),
    ({"name": "x", "signal": "probe:s", "type": "weird"}, "unknown type"),
    ({"name": "x", "signal": "probe:s", "op": "~"}, "unknown op"),
    ({"name": "x", "signal": "probe:s", "type": "derivative",
      "window_s": 0}, "window_s > 0"),
    ({"name": "x", "signal": "probe:s", "for_s": -1}, "for_s"),
])
def test_parse_rule_rejects_bad_schemas(data, match):
    with pytest.raises(ValueError, match=match):
        parse_rule(data)


def test_parse_rules_accepts_wrapped_doc_and_rejects_duplicates():
    doc = {"rules": [{"name": "a", "signal": "metric:m"},
                     {"name": "b", "signal": "probe:p"}]}
    assert [r.name for r in parse_rules(doc)] == ["a", "b"]
    doc["rules"].append({"name": "a", "signal": "metric:other"})
    with pytest.raises(ValueError, match="duplicate"):
        parse_rules(doc)


def test_load_rules_from_file(tmp_path):
    path = tmp_path / "rules.json"
    path.write_text(json.dumps([{"name": "n", "signal": "metric:m",
                                 "value": 3}]))
    (rule,) = load_rules(path)
    assert rule.value == 3.0


# -- threshold rules -----------------------------------------------------------------


def _probe_log(name, samples):
    log = ProbeLog()
    for t, v in samples:
        log.sample(name, t, v)
    return log


def test_threshold_fires_and_resolves_edge_triggered():
    engine = AlertEngine([AlertRule("hot", "probe:util", value=0.9)])
    probes = _probe_log("util", [(0.0, 0.5)])
    assert engine.evaluate(probes=probes, now=0.0) == []
    probes.sample("util", 1.0, 0.95)
    (fired,) = engine.evaluate(probes=probes, now=1.0)
    assert (fired["status"], fired["value"]) == ("firing", 0.95)
    # Still breached: no new transition.
    assert engine.evaluate(probes=probes, now=2.0) == []
    assert engine.firing() == ["hot"]
    probes.sample("util", 3.0, 0.2)
    (resolved,) = engine.evaluate(probes=probes, now=3.0)
    assert resolved["status"] == "resolved"
    assert engine.firing() == []


def test_for_s_debounce_requires_sustained_breach():
    engine = AlertEngine([AlertRule("hot", "probe:util", value=0.9,
                                    for_s=2.0)])
    probes = _probe_log("util", [(0.0, 0.95)])
    assert engine.evaluate(probes=probes, now=0.0) == []
    # Breach lapses before for_s: pending resets, no event ever fires.
    probes.sample("util", 1.0, 0.1)
    assert engine.evaluate(probes=probes, now=1.0) == []
    probes.sample("util", 2.0, 0.95)
    assert engine.evaluate(probes=probes, now=2.0) == []
    probes.sample("util", 4.0, 0.95)
    (fired,) = engine.evaluate(probes=probes, now=4.0)
    assert fired["status"] == "firing"


def test_metric_threshold_over_registry_and_snapshot():
    registry = MetricsRegistry()
    registry.counter("campaign.quarantined").inc(2)
    rule = AlertRule("q", "metric:campaign.quarantined", value=0.0)
    engine = AlertEngine([rule])
    (fired,) = engine.evaluate(metrics=registry, now=0.0)
    assert fired["value"] == 2.0
    # Snapshot lists (the DirSource path) behave identically.
    engine2 = AlertEngine([rule])
    (fired2,) = engine2.evaluate(metrics=registry.snapshot(), now=0.0)
    assert fired2["value"] == 2.0


# -- derivative rules ----------------------------------------------------------------


def test_probe_derivative_uses_actual_irregular_spacing():
    # Samples at t=0,1,5 with values 0,1,13: the window [1,5] slope is
    # (13-1)/(5-1)=3, not (13-0)/5 — irregular gaps must divide by the
    # real dt of the samples inside the window.
    engine = AlertEngine([AlertRule("ramp", "probe:depth",
                                    type="derivative", value=2.5,
                                    window_s=4.0)])
    probes = _probe_log("depth", [(0.0, 0.0), (1.0, 1.0), (5.0, 13.0)])
    (fired,) = engine.evaluate(probes=probes, now=5.0)
    assert fired["value"] == pytest.approx(3.0)


def test_probe_derivative_not_evaluable_with_one_windowed_sample():
    engine = AlertEngine([AlertRule("ramp", "probe:depth",
                                    type="derivative", value=0.0,
                                    window_s=1.0)])
    probes = _probe_log("depth", [(0.0, 0.0), (10.0, 5.0)])
    # Only the t=10 sample is inside [9, 10]: no slope, no transition.
    assert engine.evaluate(probes=probes, now=10.0) == []


def test_metric_derivative_across_evaluations():
    registry = MetricsRegistry()
    counter = registry.counter("points")
    engine = AlertEngine([AlertRule("rate", "metric:points",
                                    type="derivative", value=1.5)])
    counter.inc(0)
    assert engine.evaluate(metrics=registry, now=0.0) == []  # no history yet
    counter.inc(10)
    (fired,) = engine.evaluate(metrics=registry, now=2.0)
    assert fired["value"] == pytest.approx(5.0)


# -- absence rules -------------------------------------------------------------------


def test_probe_absence_fires_on_silence_and_missing_series():
    engine = AlertEngine([AlertRule("quiet", "probe:util", type="absence",
                                    window_s=2.0)])
    # Series missing entirely: fires.
    (fired,) = engine.evaluate(probes=ProbeLog(), now=0.0)
    assert fired["status"] == "firing"
    # Fresh sample: resolves; then silence past the window: fires again.
    probes = _probe_log("util", [(10.0, 1.0)])
    (resolved,) = engine.evaluate(probes=probes, now=10.5)
    assert resolved["status"] == "resolved"
    (refired,) = engine.evaluate(probes=probes, now=13.0)
    assert refired["status"] == "firing"


def test_metric_absence_tests_registration():
    engine = AlertEngine([AlertRule("gone", "metric:nope", type="absence",
                                    window_s=1.0)])
    (fired,) = engine.evaluate(metrics=MetricsRegistry(), now=0.0)
    assert fired["status"] == "firing"


# -- event fan-out -------------------------------------------------------------------


def test_transitions_reach_broker_and_trace_sink():
    broker = EventBroker()
    subscription = broker.subscribe()
    sink = MemorySink()
    tracer = Tracer(sink=sink, enabled=True)
    engine = AlertEngine([AlertRule("hot", "probe:util", value=0.9)],
                         broker=broker, tracer=tracer)
    probes = _probe_log("util", [(1.0, 0.99)])
    engine.evaluate(probes=probes, now=1.0)
    event = subscription.get(timeout=1.0)
    assert (event["kind"], event["rule"], event["status"]) == \
        ("alert", "hot", "firing")
    (span,) = sink.spans
    assert span.kind == "event"
    assert span.name == "alert:hot"
    assert span.attrs["status"] == "firing"
    subscription.close()
    # The engine's own bounded history keeps the transition too.
    assert engine.to_dict()["events"][-1]["rule"] == "hot"
    assert engine.to_dict()["states"]["hot"]["firing"] is True
