"""The engine axis: selection, validation, invariance of keys and RNG.

The engine knob must reach the fluid backend from every entry point
(ClusterSpec, CampaignConfig, api, CLI, replay), reject junk with a
readable error at each of them, and — because both engines produce
byte-identical captures — stay *out* of every cache/store key.
"""

import pytest

from repro.capture.records import JobTrace
from repro.cli import build_parser
from repro.cluster.config import ClusterSpec, HadoopConfig
from repro.cluster.topology import build_topology
from repro.cluster.units import MB
from repro.experiments.campaigns import CampaignConfig
from repro.experiments.runner import CapturePoint
from repro.generation.replay import replay_trace
from repro.net.backend import ENGINE_NAMES, make_backend
from repro.net.network import FlowNetwork
from repro.simkit.core import Simulator

pytest.importorskip("numpy")


def _sim():
    return Simulator()


def _topology():
    return build_topology("tree", num_hosts=4, hosts_per_rack=2)


# -- validation at every layer ---------------------------------------------------------


def test_engine_names_registry():
    assert ENGINE_NAMES == ("scalar", "vectorized")


def test_flow_network_rejects_unknown_engine():
    with pytest.raises(ValueError, match="unknown fluid engine 'turbo'"):
        FlowNetwork(_sim(), _topology(), engine="turbo")


def test_cluster_spec_rejects_unknown_engine():
    with pytest.raises(ValueError, match="unknown engine"):
        ClusterSpec(engine="turbo")


def test_campaign_config_rejects_unknown_engine():
    with pytest.raises(ValueError, match="unknown engine"):
        CampaignConfig(engine="turbo").cluster_spec()


def test_cli_rejects_unknown_engine(capsys):
    parser = build_parser()
    for argv in (["capture", "--job", "terasort", "-o", "x.jsonl",
                  "--engine", "turbo"],
                 ["campaign", "--job", "terasort", "--engine", "turbo"],
                 ["replay", "trace.jsonl", "--engine", "turbo"]):
        with pytest.raises(SystemExit) as excinfo:
            parser.parse_args(argv)
        assert excinfo.value.code == 2
        assert "--engine" in capsys.readouterr().err


def test_cli_accepts_engine_on_all_three_commands():
    parser = build_parser()
    capture = parser.parse_args(["capture", "--job", "terasort",
                                 "-o", "x.jsonl", "--engine", "vectorized"])
    assert capture.engine == "vectorized"
    campaign = parser.parse_args(["campaign", "--job", "terasort",
                                  "--engine", "vectorized"])
    assert campaign.engine == "vectorized"
    replay = parser.parse_args(["replay", "t.jsonl", "--engine", "scalar"])
    assert replay.engine == "scalar"


# -- plumbing ---------------------------------------------------------------------------


def test_make_backend_passes_engine_to_fluid():
    net = make_backend("fluid", _sim(), _topology(), engine="vectorized")
    assert net.engine == "vectorized"
    assert net.perf["engine"] == "vectorized"
    assert type(net.allocator).__name__ == "VectorizedFairShareAllocator"


def test_make_backend_defaults_to_scalar():
    net = make_backend("fluid", _sim(), _topology())
    assert net.engine == "scalar"
    assert type(net.allocator).__name__ == "FairShareAllocator"


def test_non_fluid_backends_ignore_engine():
    analytic = make_backend("analytic", _sim(), _topology(),
                            engine="vectorized")
    record = make_backend("record", _sim(), _topology(), engine="vectorized")
    assert analytic.name == "analytic"
    assert record.name == "record"


def test_engine_gauge_and_perf_counters():
    sim = _sim()
    net = make_backend("fluid", sim, _topology(), engine="vectorized")
    snapshot = sim.telemetry.registry.snapshot()
    gauges = {entry["name"] for entry in snapshot}
    assert "net.engine" in gauges
    assert "net.waterfill_rounds" in gauges
    engine_rows = [entry for entry in snapshot
                   if entry["name"] == "net.engine"]
    assert {"engine": "vectorized"} in [entry["labels"]
                                        for entry in engine_rows]
    for key in ("engine", "recomputes", "waterfill_rounds",
                "allocator_seconds", "flushes"):
        assert key in net.perf


# -- key invariance ---------------------------------------------------------------------


def test_cluster_spec_to_dict_omits_engine():
    spec = ClusterSpec(engine="vectorized")
    data = spec.to_dict()
    assert "engine" not in data
    # Round trips both with and without the field present.
    assert ClusterSpec.from_dict(data).engine == "scalar"
    data["engine"] = "vectorized"
    assert ClusterSpec.from_dict(data).engine == "vectorized"


def test_campaign_config_to_dict_omits_engine():
    assert "engine" not in CampaignConfig(engine="vectorized").to_dict()


def test_capture_point_keys_are_engine_invariant():
    scalar = CapturePoint.from_campaign(
        "terasort", 0.25, 7, CampaignConfig(engine="scalar"))
    vectorized = CapturePoint.from_campaign(
        "terasort", 0.25, 7, CampaignConfig(engine="vectorized"))
    assert scalar.key() == vectorized.key()
    assert scalar.logical_key() == vectorized.logical_key()
    # ...while the spec carried to workers still knows the engine.
    assert vectorized.cluster_spec.engine == "vectorized"


# -- end-to-end reach -------------------------------------------------------------------


def _capture_trace():
    from repro.api import run_capture

    return run_capture("terasort", input_gb=0.1, nodes=4, seed=3,
                       config=HadoopConfig(block_size=32 * MB,
                                           num_reducers=1))


def test_replay_engines_agree():
    trace = _capture_trace()
    scalar = replay_trace(trace, engine="scalar")
    vectorized = replay_trace(trace, engine="vectorized")
    assert scalar.flow_count == vectorized.flow_count
    assert scalar.total_bytes == vectorized.total_bytes
    assert scalar.makespan == vectorized.makespan
    assert scalar.mean_flow_duration == vectorized.mean_flow_duration


def test_api_run_capture_engine_override():
    from repro.api import run_capture

    trace = run_capture("terasort", input_gb=0.1, nodes=4, seed=3,
                        config=HadoopConfig(block_size=32 * MB,
                                            num_reducers=1),
                        engine="vectorized")
    assert isinstance(trace, JobTrace)
    assert trace.flow_count() > 0
