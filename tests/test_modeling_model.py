"""Tests for Ecdf, scaling laws and the assembled job traffic model."""

import numpy as np
import pytest

from repro.capture.records import CaptureMeta, FlowRecord, JobTrace
from repro.cluster.units import GB
from repro.modeling.empirical import Ecdf, log_spaced_grid, summarize
from repro.modeling.model import JobTrafficModel, fit_job_model
from repro.modeling.scaling import LinearLaw


def make_trace(job_id, input_gb, shuffle_sizes, read_sizes=(), start_gap=1.0):
    meta = CaptureMeta(job_id=job_id, job_kind="testjob",
                       input_bytes=input_gb * GB,
                       submit_time=0.0, finish_time=10.0 * input_gb,
                       cluster={"num_nodes": 8, "hosts_per_rack": 4},
                       hadoop={"replication": 3})
    flows = []
    t = 1.0
    for size in shuffle_sizes:
        flows.append(FlowRecord(src="h001", dst="h002", src_rack=0, dst_rack=0,
                                src_port=13562, dst_port=50001, size=size,
                                start=t, end=t + 1, component="shuffle"))
        t += start_gap
    t = 0.5
    for size in read_sizes:
        flows.append(FlowRecord(src="h003", dst="h004", src_rack=0, dst_rack=0,
                                src_port=50010, dst_port=50002, size=size,
                                start=t, end=t + 1, component="hdfs_read"))
        t += start_gap
    return JobTrace(meta=meta, flows=flows)


# -- Ecdf ------------------------------------------------------------------------


def test_ecdf_basic_steps():
    ecdf = Ecdf([1.0, 2.0, 3.0, 4.0])
    assert ecdf(0.5) == 0.0
    assert ecdf(1.0) == 0.25
    assert ecdf(2.5) == 0.5
    assert ecdf(10.0) == 1.0


def test_ecdf_quantiles():
    ecdf = Ecdf([10.0, 20.0, 30.0, 40.0])
    assert ecdf.quantile(0.25) == 10.0
    assert ecdf.quantile(0.5) == 20.0
    assert ecdf.quantile(1.0) == 40.0
    with pytest.raises(ValueError):
        ecdf.quantile(1.5)


def test_ecdf_needs_samples():
    with pytest.raises(ValueError):
        Ecdf([])


def test_ecdf_points_are_plot_ready():
    xs, ys = Ecdf([3.0, 1.0, 2.0]).points()
    assert list(xs) == [1.0, 2.0, 3.0]
    assert list(ys) == pytest.approx([1 / 3, 2 / 3, 1.0])


def test_summarize():
    stats = summarize([1.0, 2.0, 3.0, 4.0])
    assert stats["n"] == 4
    assert stats["mean"] == 2.5
    assert stats["sum"] == 10.0
    assert summarize([])["n"] == 0


def test_log_spaced_grid():
    grid = log_spaced_grid([1.0, 1000.0], points=4)
    assert grid[0] == pytest.approx(1.0)
    assert grid[-1] == pytest.approx(1000.0)
    assert log_spaced_grid([0.0]) == [0.0]
    assert log_spaced_grid([5.0, 5.0]) == [5.0]


# -- LinearLaw --------------------------------------------------------------------


def test_linear_law_fit_and_predict():
    law = LinearLaw.fit([1.0, 2.0, 4.0], [10.0, 20.0, 40.0])
    assert law.slope == pytest.approx(10.0)
    assert law.intercept == pytest.approx(0.0, abs=1e-9)
    assert law.predict(8.0) == pytest.approx(80.0)


def test_linear_law_single_point_goes_through_origin():
    law = LinearLaw.fit([2.0], [10.0])
    assert law.predict(4.0) == pytest.approx(20.0)


def test_linear_law_constant_x_uses_mean():
    law = LinearLaw.fit([2.0, 2.0], [10.0, 14.0])
    assert law.predict(2.0) == pytest.approx(12.0)


def test_linear_law_nonneg_clamps():
    law = LinearLaw(slope=1.0, intercept=-10.0)
    assert law.predict_nonneg(3.0) == 0.0


def test_linear_law_roundtrip_and_validation():
    law = LinearLaw(2.5, -1.0)
    assert LinearLaw.from_dict(law.to_dict()) == law
    with pytest.raises(ValueError):
        LinearLaw.fit([], [])
    with pytest.raises(ValueError):
        LinearLaw.fit([1.0], [1.0, 2.0])


# -- fit_job_model ------------------------------------------------------------------


def test_fit_job_model_counts_scale_linearly():
    traces = [
        make_trace("a", 1.0, shuffle_sizes=[100.0] * 10),
        make_trace("b", 2.0, shuffle_sizes=[100.0] * 20),
        make_trace("c", 4.0, shuffle_sizes=[100.0] * 40),
    ]
    model = fit_job_model(traces)
    shuffle = model.components["shuffle"]
    assert shuffle.expected_count(8.0) == 80
    assert shuffle.expected_volume(8.0) == pytest.approx(8000.0, rel=0.01)
    assert model.kind == "testjob"
    assert model.num_traces == 3


def test_fit_job_model_absent_component_is_skipped():
    traces = [make_trace("a", 1.0, shuffle_sizes=[100.0] * 5)]
    model = fit_job_model(traces)
    assert "hdfs_write" not in model.components
    assert model.component("hdfs_write") is None


def test_fit_job_model_start_offsets_preserved():
    traces = [make_trace("a", 1.0, shuffle_sizes=[100.0] * 5,
                         read_sizes=[50.0] * 5)]
    model = fit_job_model(traces)
    # Reads start at 0.5, shuffle at 1.0 (relative to submit).
    assert model.components["hdfs_read"].start_law.predict(1.0) == pytest.approx(0.5)
    assert model.components["shuffle"].start_law.predict(1.0) == pytest.approx(1.0)


def test_fit_job_model_rejects_mixed_kinds():
    a = make_trace("a", 1.0, shuffle_sizes=[1.0])
    b = make_trace("b", 1.0, shuffle_sizes=[1.0])
    b.meta.job_kind = "other"
    with pytest.raises(ValueError):
        fit_job_model([a, b])
    with pytest.raises(ValueError):
        fit_job_model([])


def test_model_json_roundtrip(tmp_path):
    traces = [make_trace("a", 1.0, shuffle_sizes=list(np.linspace(10, 500, 30)))]
    model = fit_job_model(traces)
    path = tmp_path / "model.json"
    model.to_json(path)
    loaded = JobTrafficModel.from_json(path)
    assert loaded.kind == model.kind
    assert set(loaded.components) == set(model.components)
    original = model.components["shuffle"]
    clone = loaded.components["shuffle"]
    assert clone.count_law == original.count_law
    assert np.allclose(clone.size_dist.cdf([50.0, 100.0]),
                       original.size_dist.cdf([50.0, 100.0]))


def test_duration_law_fits_completion_times():
    traces = [
        make_trace("a", 1.0, shuffle_sizes=[1.0]),
        make_trace("b", 2.0, shuffle_sizes=[1.0]),
    ]
    model = fit_job_model(traces)
    assert model.expected_duration(3.0) == pytest.approx(30.0)
