"""Unit + property tests for distributions and fitting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.modeling.distributions import (
    CANDIDATE_FAMILIES,
    DegenerateDistribution,
    EmpiricalDistribution,
    FittedDistribution,
    distribution_from_dict,
    fit_family,
)
from repro.modeling.fitting import fit_best, fit_candidates
from repro.modeling.ks import ks_one_sample, ks_two_sample


def test_fit_exponential_recovers_rate():
    rng = np.random.default_rng(0)
    data = rng.exponential(scale=5.0, size=4000)
    fitted = fit_family("exponential", data)
    assert fitted.params[1] == pytest.approx(5.0, rel=0.1)  # scale
    assert fitted.mean() == pytest.approx(5.0, rel=0.1)


def test_fit_lognormal_recovers_parameters():
    rng = np.random.default_rng(1)
    data = rng.lognormal(mean=2.0, sigma=0.5, size=4000)
    fitted = fit_family("lognormal", data)
    sigma, _, scale = fitted.params
    assert sigma == pytest.approx(0.5, rel=0.1)
    assert np.log(scale) == pytest.approx(2.0, rel=0.1)


def test_fit_normal():
    rng = np.random.default_rng(2)
    data = rng.normal(loc=10.0, scale=2.0, size=4000)
    fitted = fit_family("normal", data)
    assert fitted.params[0] == pytest.approx(10.0, rel=0.05)
    assert fitted.params[1] == pytest.approx(2.0, rel=0.1)


def test_fit_candidates_ranks_true_family_first():
    rng = np.random.default_rng(3)
    data = rng.exponential(scale=2.0, size=3000)
    reports = fit_candidates(data)
    # Exponential (or its gamma/weibull superset) must rank on top.
    assert reports[0].family in ("exponential", "gamma", "weibull")
    assert reports[0].ks.statistic < 0.05
    # Reports are sorted by KS.
    stats = [report.ks.statistic for report in reports]
    assert stats == sorted(stats)


def test_fit_best_returns_degenerate_for_constant_data():
    fitted = fit_best([128.0] * 50)
    assert isinstance(fitted, DegenerateDistribution)
    assert fitted.value == 128.0
    assert fitted.cdf([127.0, 128.0, 129.0]).tolist() == [0.0, 1.0, 1.0]


def test_fit_best_falls_back_to_empirical_for_bimodal_data():
    # Two sharp modes no single candidate family can represent.
    data = [1.0] * 400 + [1000.0] * 400
    fitted = fit_best(data, empirical_threshold=0.1)
    assert isinstance(fitted, EmpiricalDistribution)


def test_fit_rejects_empty():
    with pytest.raises(ValueError):
        fit_best([])
    with pytest.raises(ValueError):
        fit_family("normal", [])
    with pytest.raises(ValueError):
        fit_candidates([])


def test_sampling_matches_fitted_distribution():
    rng = np.random.default_rng(4)
    data = rng.lognormal(mean=1.0, sigma=0.4, size=3000)
    fitted = fit_family("lognormal", data)
    draws = fitted.sample(3000, np.random.default_rng(5))
    result = ks_two_sample(data, draws)
    assert result.statistic < 0.05


def test_empirical_distribution_sampling():
    data = np.concatenate([np.full(500, 10.0), np.full(500, 90.0)])
    dist = EmpiricalDistribution.from_samples(data)
    draws = dist.sample(2000, np.random.default_rng(6))
    near_low = np.mean(np.abs(draws - 10.0) < 5.0)
    near_high = np.mean(np.abs(draws - 90.0) < 5.0)
    assert near_low == pytest.approx(0.5, abs=0.1)
    assert near_high == pytest.approx(0.5, abs=0.1)


def test_empirical_compresses_large_samples():
    dist = EmpiricalDistribution.from_samples(np.arange(10_000.0), max_points=128)
    assert dist.quantiles.size == 128
    assert dist.mean() == pytest.approx(4999.5, rel=0.01)


def test_serialisation_roundtrip_all_kinds():
    rng = np.random.default_rng(7)
    candidates = [
        fit_family("weibull", rng.weibull(1.5, 500) * 3.0),
        DegenerateDistribution(42.0),
        EmpiricalDistribution.from_samples(rng.random(100)),
    ]
    for dist in candidates:
        clone = distribution_from_dict(dist.to_dict())
        xs = [0.1, 1.0, 10.0]
        assert np.allclose(clone.cdf(xs), dist.cdf(xs))


def test_distribution_from_dict_rejects_garbage():
    with pytest.raises(ValueError):
        distribution_from_dict({"kind": "quantum"})
    with pytest.raises(ValueError):
        FittedDistribution("cauchy", [0, 1])


def test_ks_two_sample_distinguishes():
    rng = np.random.default_rng(8)
    same = ks_two_sample(rng.normal(size=800), rng.normal(size=800))
    different = ks_two_sample(rng.normal(size=800), rng.normal(loc=3.0, size=800))
    assert same.accept(alpha=0.01)
    assert not different.accept(alpha=0.01)
    with pytest.raises(ValueError):
        ks_two_sample([], [1.0])


def test_ks_one_sample_empty_rejected():
    with pytest.raises(ValueError):
        ks_one_sample([], lambda x: x)


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    scale=st.floats(min_value=0.1, max_value=1e6),
    n=st.integers(min_value=20, max_value=500),
)
def test_fit_best_always_returns_usable_distribution(seed, scale, n):
    """Whatever the data, fit_best yields something that samples and CDFs."""
    rng = np.random.default_rng(seed)
    data = rng.exponential(scale=scale, size=n)
    fitted = fit_best(data)
    draws = fitted.sample(16, rng)
    assert draws.shape == (16,)
    assert np.all(np.isfinite(draws))
    cdf = fitted.cdf(np.sort(data))
    assert np.all((cdf >= 0) & (cdf <= 1.0 + 1e-9))
    assert np.all(np.diff(cdf) >= -1e-9)  # monotone
