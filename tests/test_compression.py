"""Tests for map-output compression's effect on traffic."""

import pytest

from repro.cluster.config import ClusterSpec, HadoopConfig
from repro.cluster.units import MB
from repro.jobs import make_job
from repro.mapreduce.cluster import HadoopCluster


def run(compress, ratio=0.45, seed=13):
    config = HadoopConfig(block_size=32 * MB, num_reducers=4,
                          compress_map_output=compress,
                          compression_ratio=ratio)
    cluster = HadoopCluster(ClusterSpec(num_nodes=8, hosts_per_rack=4),
                            config, seed=seed)
    results, traces = cluster.run(
        [make_job("terasort", input_gb=0.5, job_id="comp")])
    return results[0], traces[0]


def test_compression_shrinks_shuffle_traffic():
    plain_result, plain_trace = run(compress=False)
    compressed_result, compressed_trace = run(compress=True, ratio=0.45)
    plain_shuffle = plain_result.rounds[0].shuffle_bytes
    compressed_shuffle = compressed_result.rounds[0].shuffle_bytes
    assert compressed_shuffle == pytest.approx(plain_shuffle * 0.45, rel=1e-6)
    assert (compressed_trace.total_bytes("shuffle")
            < plain_trace.total_bytes("shuffle"))


def test_compression_preserves_logical_output():
    plain_result, _ = run(compress=False)
    compressed_result, _ = run(compress=True)
    # The reducer's logical input (and hence output) is unchanged.
    assert compressed_result.output_bytes == pytest.approx(
        plain_result.output_bytes, rel=1e-6)


def test_compression_speeds_up_shuffle_bound_jobs():
    plain_result, _ = run(compress=False)
    compressed_result, _ = run(compress=True)
    # Less data on the wire can't make the job slower (same seed).
    assert (compressed_result.completion_time
            <= plain_result.completion_time * 1.05)


def test_compression_ratio_validation():
    with pytest.raises(ValueError):
        HadoopConfig(compression_ratio=0.0)
    with pytest.raises(ValueError):
        HadoopConfig(compression_ratio=1.5)
    HadoopConfig(compression_ratio=1.0)  # identity codec is legal
