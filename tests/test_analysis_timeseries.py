"""Tests for the traffic-over-time analysis."""

import numpy as np
import pytest

from repro.analysis.timeseries import (
    component_activity_spans,
    component_peak_times,
    phase_profile,
    throughput_series,
)
from repro.capture.records import CaptureMeta, FlowRecord, JobTrace


def flow(component, size, start, end, dport=49000):
    return FlowRecord(src="h000", dst="h001", src_rack=0, dst_rack=0,
                      src_port=13562, dst_port=dport, size=size,
                      start=start, end=end, component=component)


def make_trace(flows, submit=0.0):
    meta = CaptureMeta(job_id="j", job_kind="terasort", input_bytes=1e9,
                       submit_time=submit, finish_time=submit + 100.0)
    return JobTrace(meta=meta, flows=flows)


def test_series_conserves_bytes():
    trace = make_trace([
        flow("hdfs_read", 1000.0, 0.0, 2.0),
        flow("shuffle", 5000.0, 1.0, 4.5),
        flow("hdfs_write", 2000.0, 4.0, 6.0),
    ])
    series = throughput_series(trace, bin_seconds=1.0)
    assert series["hdfs_read"].sum() == pytest.approx(1000.0)
    assert series["shuffle"].sum() == pytest.approx(5000.0)
    assert series["hdfs_write"].sum() == pytest.approx(2000.0)


def test_series_spreads_flow_over_its_lifetime():
    trace = make_trace([flow("shuffle", 4000.0, 0.0, 4.0)])
    series = throughput_series(trace, bin_seconds=1.0)
    # Uniform rate: 1000 B in each of the four bins.
    assert list(series["shuffle"][:4]) == pytest.approx([1000.0] * 4)


def test_zero_duration_flow_lands_in_one_bin():
    trace = make_trace([flow("shuffle", 500.0, 2.5, 2.5)])
    series = throughput_series(trace, bin_seconds=1.0)
    assert series["shuffle"][2] == pytest.approx(500.0)
    assert series["shuffle"].sum() == pytest.approx(500.0)


def test_series_relative_to_submit_time():
    trace = make_trace([flow("shuffle", 100.0, 12.0, 13.0)], submit=10.0)
    series = throughput_series(trace, bin_seconds=1.0)
    assert series["shuffle"][2] == pytest.approx(100.0)


def test_series_rejects_bad_bins():
    with pytest.raises(ValueError):
        throughput_series(make_trace([]), bin_seconds=0.0)


def test_peak_times_ordered_by_phase():
    trace = make_trace([
        flow("hdfs_read", 9000.0, 0.0, 1.0),
        flow("shuffle", 9000.0, 3.0, 4.0),
        flow("hdfs_write", 9000.0, 6.0, 7.0),
    ])
    peaks = component_peak_times(trace, bin_seconds=1.0)
    assert peaks["hdfs_read"] < peaks["shuffle"] < peaks["hdfs_write"]


def test_activity_spans():
    trace = make_trace([
        flow("shuffle", 1.0, 2.0, 5.0),
        flow("shuffle", 1.0, 4.0, 9.0),
    ])
    spans = component_activity_spans(trace)
    assert spans["shuffle"] == (2.0, 9.0)
    assert "hdfs_read" not in spans


def test_phase_profile_table_shape():
    trace = make_trace([
        flow("hdfs_read", 1048576.0, 0.0, 1.0),
        flow("shuffle", 2097152.0, 1.0, 3.0),
    ])
    table = phase_profile(trace, bin_seconds=1.0)
    assert table.headers[0] == "t (s)"
    assert any("shuffle" in h for h in table.headers)
    # 1 MiB in bin 0 of the read series -> 1 MiB/s.
    read_col = table.headers.index("hdfs_read MiB/s")
    assert table.rows[0][read_col] == pytest.approx(1.0)


# -- probe-output-driven cases (telemetry integration) -------------------------------


@pytest.fixture(scope="module")
def probed_capture():
    from repro.api import run_capture
    from repro.obs import Telemetry

    telemetry = Telemetry.enabled_in_memory(probe_interval=0.5)
    trace = run_capture("terasort", input_gb=0.25, nodes=4, seed=11,
                        telemetry=telemetry)
    return telemetry, trace


def test_series_conserves_bytes_on_real_capture(probed_capture):
    _, trace = probed_capture
    series = throughput_series(trace, bin_seconds=1.0)
    # Per component (the series omits control-plane flows), binning
    # must conserve every byte the capture recorded.
    for component, values in series.items():
        if component == "time":
            continue
        expected = sum(flow.size for flow in trace.flows
                       if flow.component == component)
        assert values.sum() == pytest.approx(expected), component


def test_activity_spans_overlap_probe_activity(probed_capture):
    telemetry, trace = probed_capture
    spans = component_activity_spans(trace)
    assert "shuffle" in spans
    shuffle_start, shuffle_end = spans["shuffle"]
    # While the shuffle was active, the probes saw live flows.
    active = telemetry.probes.series["net.active_flows"]
    during = [value for t, value in zip(active.times, active.values)
              if shuffle_start <= t <= shuffle_end]
    assert during and max(during) > 0


def test_probe_throughput_agrees_with_series_activity(probed_capture):
    telemetry, trace = probed_capture
    series = throughput_series(trace, bin_seconds=1.0)
    assert any(values.max() > 0 for values in series.values())
    throughput = telemetry.probes.series["net.throughput_gbps"]
    assert throughput.peak > 0
    # Probe peak happens while the trace still shows traffic.
    start, end = trace.time_range() if hasattr(trace, "time_range") else (
        min(flow.start for flow in trace.flows),
        max(flow.end for flow in trace.flows))
    assert start - 1.0 <= throughput.peak_time <= end + 1.0
