"""Unit tests for the fluid FlowNetwork simulator."""

import pytest

from repro.cluster.topology import build_topology
from repro.cluster.units import GBPS
from repro.net.network import FlowNetwork
from repro.simkit import Simulator


def make_network(num_hosts=4, host_gbps=1.0, kind="star", **kwargs):
    sim = Simulator()
    topo = build_topology(kind, num_hosts=num_hosts, host_gbps=host_gbps, **kwargs)
    return sim, topo, FlowNetwork(sim, topo)


def test_single_flow_completes_at_line_rate():
    sim, topo, net = make_network(host_gbps=1.0)
    size = 1.0 * GBPS  # exactly one second at line rate
    flow = net.start_flow(topo.hosts[0], topo.hosts[1], size)
    sim.run()
    assert flow.finished
    assert flow.end_time == pytest.approx(1.0, rel=1e-6)
    assert flow.mean_rate == pytest.approx(1.0 * GBPS, rel=1e-6)


def test_two_flows_sharing_source_nic_halve():
    sim, topo, net = make_network()
    size = 1.0 * GBPS
    a = net.start_flow(topo.hosts[0], topo.hosts[1], size)
    b = net.start_flow(topo.hosts[0], topo.hosts[2], size)
    sim.run()
    # Both share h0's uplink: each takes 2 s.
    assert a.end_time == pytest.approx(2.0, rel=1e-6)
    assert b.end_time == pytest.approx(2.0, rel=1e-6)


def test_disjoint_flows_do_not_interact():
    sim, topo, net = make_network(num_hosts=4)
    size = 1.0 * GBPS
    a = net.start_flow(topo.hosts[0], topo.hosts[1], size)
    b = net.start_flow(topo.hosts[2], topo.hosts[3], size)
    sim.run()
    assert a.end_time == pytest.approx(1.0, rel=1e-6)
    assert b.end_time == pytest.approx(1.0, rel=1e-6)


def test_departure_releases_bandwidth_to_survivor():
    sim, topo, net = make_network()
    rate = 1.0 * GBPS
    short = net.start_flow(topo.hosts[0], topo.hosts[1], 0.5 * rate)
    long = net.start_flow(topo.hosts[0], topo.hosts[2], 1.0 * rate)
    sim.run()
    # Share until short finishes at t=1 (0.5 GB at half rate); long then
    # has 0.5 GB left at full rate -> finishes t=1.5.
    assert short.end_time == pytest.approx(1.0, rel=1e-6)
    assert long.end_time == pytest.approx(1.5, rel=1e-6)


def test_late_arrival_slows_existing_flow():
    sim, topo, net = make_network()
    rate = 1.0 * GBPS
    first = net.start_flow(topo.hosts[0], topo.hosts[1], 1.0 * rate)
    flows = {}

    def start_second():
        flows["second"] = net.start_flow(topo.hosts[0], topo.hosts[2], 1.0 * rate)

    sim.schedule(0.5, start_second)
    sim.run()
    # first: 0.5 s alone + 1 s shared = 1.5 s total; second transfers
    # 0.5 GB while sharing then its last 0.5 GB at full rate -> t=2.0.
    assert first.end_time == pytest.approx(1.5, rel=1e-6)
    assert flows["second"].end_time == pytest.approx(2.0, rel=1e-6)


def test_max_rate_cap_limits_flow():
    sim, topo, net = make_network(host_gbps=1.0)
    cap = 0.25 * GBPS
    flow = net.start_flow(topo.hosts[0], topo.hosts[1], 1.0 * GBPS, max_rate=cap)
    sim.run()
    assert flow.end_time == pytest.approx(4.0, rel=1e-6)


def test_local_flow_completes_at_cap_without_links():
    sim, topo, net = make_network()
    host = topo.hosts[0]
    flow = net.start_flow(host, host, 100.0, max_rate=50.0)
    sim.run()
    assert flow.local
    assert flow.end_time == pytest.approx(2.0)
    assert flow.links == []
    assert net.link_bytes == {}


def test_zero_size_flow_completes_immediately():
    sim, topo, net = make_network()
    flow = net.start_flow(topo.hosts[0], topo.hosts[1], 0.0)
    sim.run()
    assert flow.finished
    assert flow.end_time == pytest.approx(0.0)


def test_listener_sees_every_completion():
    sim, topo, net = make_network()
    seen = []
    net.add_listener(lambda flow: seen.append(flow.flow_id))
    flows = [net.start_flow(topo.hosts[0], topo.hosts[1], 1000.0,
                            metadata={"k": i}) for i in range(3)]
    sim.run()
    assert sorted(seen) == sorted(flow.flow_id for flow in flows)
    assert net.completed_count == 3
    assert net.total_bytes == pytest.approx(3000.0)


def test_done_signal_wakes_waiting_process():
    sim, topo, net = make_network()
    results = []

    def sender(sim):
        flow = net.start_flow(topo.hosts[0], topo.hosts[1], 1.0 * GBPS)
        completed = yield flow.done
        results.append((sim.now, completed is flow))

    sim.process(sender(sim))
    sim.run()
    assert len(results) == 1
    assert results[0][0] == pytest.approx(1.0, rel=1e-6)
    assert results[0][1]


def test_link_utilisation_accounting():
    sim, topo, net = make_network(host_gbps=1.0)
    src, dst = topo.hosts[0], topo.hosts[1]
    net.start_flow(src, dst, 1.0 * GBPS)
    sim.run()
    path = topo.path(src, dst)
    first_hop = (path[0], path[1])
    assert net.link_bytes[first_hop] == pytest.approx(1.0 * GBPS, rel=1e-6)
    assert net.utilisation(first_hop) == pytest.approx(1.0, rel=1e-6)


def test_cross_rack_flow_constrained_by_oversubscribed_uplink():
    sim, topo, net = make_network(num_hosts=8, kind="tree", hosts_per_rack=4,
                                  host_gbps=1.0, oversubscription=4.0)
    # Uplink = 4 hosts * 1 Gbit / 4 = 1 Gbit shared by rack.
    rate = 1.0 * GBPS
    a = net.start_flow(topo.hosts_in_rack(0)[0], topo.hosts_in_rack(1)[0], rate)
    b = net.start_flow(topo.hosts_in_rack(0)[1], topo.hosts_in_rack(1)[1], rate)
    sim.run()
    # Different source NICs but shared 1 Gbit uplink -> 2 s each.
    assert a.end_time == pytest.approx(2.0, rel=1e-6)
    assert b.end_time == pytest.approx(2.0, rel=1e-6)


def test_metadata_is_preserved():
    sim, topo, net = make_network()
    flow = net.start_flow(topo.hosts[0], topo.hosts[1], 10.0,
                          metadata={"job": "j1", "component": "shuffle"})
    sim.run()
    assert flow.metadata == {"job": "j1", "component": "shuffle"}


def test_negative_size_rejected():
    sim, topo, net = make_network()
    with pytest.raises(ValueError):
        net.start_flow(topo.hosts[0], topo.hosts[1], -1.0)


def test_many_flows_conservation_of_bytes():
    sim, topo, net = make_network(num_hosts=6)
    total = 0.0
    for i in range(20):
        src = topo.hosts[i % 6]
        dst = topo.hosts[(i * 3 + 1) % 6]
        if src == dst:
            continue
        net.start_flow(src, dst, 1000.0 * (i + 1))
        total += 1000.0 * (i + 1)
    sim.run()
    assert net.total_bytes == pytest.approx(total)
    assert not net.active


def test_batch_context_coalesces_same_instant_starts():
    sim, topo, net = make_network(num_hosts=4)
    size = 1.0 * GBPS
    with net.batch():
        a = net.start_flow(topo.hosts[0], topo.hosts[1], size)
        b = net.start_flow(topo.hosts[0], topo.hosts[2], size)
    sim.run()
    # Physics unchanged by batching...
    assert a.end_time == pytest.approx(2.0, rel=1e-6)
    assert b.end_time == pytest.approx(2.0, rel=1e-6)
    # ...but the two same-instant arrivals folded into recomputes bounded
    # by the number of flushes.
    perf = net.perf
    assert perf["updates_requested"] >= 2
    assert perf["recomputes"] <= perf["flushes"]
    assert perf["flows_batched"] >= 1


def test_legacy_mode_recomputes_per_update():
    sim, topo, net = make_network(num_hosts=4)
    net.batch_updates = False
    size = 1.0 * GBPS
    a = net.start_flow(topo.hosts[0], topo.hosts[1], size)
    b = net.start_flow(topo.hosts[0], topo.hosts[2], size)
    sim.run()
    assert a.end_time == pytest.approx(2.0, rel=1e-6)
    assert b.end_time == pytest.approx(2.0, rel=1e-6)
    assert net.perf["flushes"] == 0
    assert net.perf["recomputes"] >= net.perf["updates_requested"]


def test_allocator_membership_tracks_active_flows():
    sim, topo, net = make_network(num_hosts=4)
    size = 1.0 * GBPS
    net.start_flow(topo.hosts[0], topo.hosts[1], size)
    assert len(net.allocator) == 1
    sim.run()
    assert len(net.allocator) == 0
    assert net.perf["allocator_seconds"] >= 0.0
