"""Unit + property tests for block placement policies."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.topology import build_topology
from repro.hdfs.placement import DefaultPlacementPolicy, RandomPlacementPolicy


def hosts(num=16, per_rack=4):
    return build_topology("tree", num_hosts=num, hosts_per_rack=per_rack).hosts


def test_default_first_replica_is_writer():
    pool = hosts()
    policy = DefaultPlacementPolicy()
    rng = np.random.default_rng(0)
    writer = pool[5]
    targets = policy.choose_targets(pool, 3, writer, rng)
    assert targets[0] == writer


def test_default_second_replica_off_rack_third_same_rack_as_second():
    pool = hosts()
    policy = DefaultPlacementPolicy()
    rng = np.random.default_rng(0)
    writer = pool[0]
    for _ in range(50):
        first, second, third = policy.choose_targets(pool, 3, writer, rng)
        assert second.rack != first.rack
        assert third.rack == second.rack
        assert third != second


def test_default_targets_are_distinct_hosts():
    pool = hosts()
    policy = DefaultPlacementPolicy()
    rng = np.random.default_rng(1)
    for replication in (1, 2, 3, 5):
        targets = policy.choose_targets(pool, replication, pool[3], rng)
        assert len(targets) == replication
        assert len(set(targets)) == replication


def test_default_single_rack_degrades_to_distinct_nodes():
    pool = build_topology("star", num_hosts=6).hosts  # all rack 0
    policy = DefaultPlacementPolicy()
    rng = np.random.default_rng(2)
    targets = policy.choose_targets(pool, 3, pool[0], rng)
    assert len(set(targets)) == 3
    assert targets[0] == pool[0]


def test_default_replication_clamped_to_cluster_size():
    pool = build_topology("star", num_hosts=2).hosts
    policy = DefaultPlacementPolicy()
    targets = policy.choose_targets(pool, 3, pool[0], np.random.default_rng(0))
    assert len(targets) == 2


def test_default_writer_not_a_datanode_picks_random_first():
    pool = hosts()
    outsider = build_topology("star", num_hosts=1).hosts[0]
    policy = DefaultPlacementPolicy()
    targets = policy.choose_targets(pool, 3, outsider, np.random.default_rng(0))
    assert targets[0] in pool


def test_random_policy_distinct_hosts():
    pool = hosts()
    policy = RandomPlacementPolicy()
    rng = np.random.default_rng(3)
    targets = policy.choose_targets(pool, 3, pool[0], rng)
    assert len(set(targets)) == 3


def test_random_policy_ignores_writer_preference():
    pool = hosts(num=32, per_rack=8)
    policy = RandomPlacementPolicy()
    rng = np.random.default_rng(4)
    hits = sum(policy.choose_targets(pool, 3, pool[0], rng)[0] == pool[0]
               for _ in range(200))
    # Writer should appear first ~1/32 of the time, far below always.
    assert hits < 40


def test_empty_pool_raises():
    with pytest.raises(ValueError):
        DefaultPlacementPolicy().choose_targets([], 3, None, np.random.default_rng(0))
    with pytest.raises(ValueError):
        RandomPlacementPolicy().choose_targets([], 3, None, np.random.default_rng(0))


@settings(max_examples=100, deadline=None)
@given(
    num_hosts=st.integers(min_value=1, max_value=40),
    per_rack=st.integers(min_value=1, max_value=10),
    replication=st.integers(min_value=1, max_value=6),
    writer_index=st.integers(min_value=0, max_value=39),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_default_policy_properties(num_hosts, per_rack, replication, writer_index, seed):
    pool = build_topology("tree", num_hosts=num_hosts, hosts_per_rack=per_rack).hosts
    writer = pool[writer_index % num_hosts]
    targets = DefaultPlacementPolicy().choose_targets(
        pool, replication, writer, np.random.default_rng(seed))
    # Size is min(replication, cluster), all distinct, writer-first.
    assert len(targets) == min(replication, num_hosts)
    assert len(set(targets)) == len(targets)
    assert targets[0] == writer
    # Rack-awareness whenever a second rack exists.
    if len(targets) >= 2 and len({h.rack for h in pool}) > 1:
        assert targets[1].rack != targets[0].rack
