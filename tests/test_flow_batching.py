"""Batched admission differential: ``start_flows`` vs one-at-a-time.

The contract under test (DESIGN.md "Batched admission"): for every
substrate, admitting a wave through the array-in/array-out
``start_flows`` seam is *observationally identical* to looping
``start_flow`` over the same requests — same flow ids, same captured
bytes, same completion ordering — while doing the bookkeeping (path
resolution, allocator insertion, rate recomputation, heap events) in
bulk.  The sequential reference arm is the generic
``TransportBackend.start_flows`` loop, bound over the same instance.
"""

import json
import random
import types

import pytest

from repro.capture.collector import FlowCollector
from repro.cluster.topology import build_topology
from repro.cluster.units import GBPS
from repro.net.backend import FlowRequest, TransportBackend, make_backend
from repro.net.network import FlowNetwork
from repro.simkit import Simulator

MB = 1e6

#: Every substrate crossed with the setup-delay axis (hop_latency > 0
#: routes admissions through the delayed-activation path, which groups
#: same-setup flows into one event).
SUBSTRATES = [
    ("fluid", {"engine": "scalar"}),
    ("fluid", {"engine": "vectorized"}),
    ("fluid", {"engine": "scalar", "hop_latency": 20e-6}),
    ("fluid", {"engine": "vectorized", "hop_latency": 20e-6}),
    ("analytic", {}),
    ("analytic", {"hop_latency": 20e-6}),
    ("record", {}),
]

SUBSTRATE_IDS = [
    f"{name}-{cfg.get('engine', 'na')}{'-lat' if cfg.get('hop_latency') else ''}"
    for name, cfg in SUBSTRATES
]


def _make(substrate):
    name, cfg = substrate
    sim = Simulator()
    topo = build_topology("tree", num_hosts=8, hosts_per_rack=4,
                          host_gbps=1.0, oversubscription=2.0)
    return sim, topo, make_backend(name, sim, topo, **cfg)


def _force_sequential(net):
    """Rebind the generic one-at-a-time loop over the native override."""
    net.start_flows = types.MethodType(TransportBackend.start_flows, net)


def _capture(substrate, sequential, driver):
    sim, topo, net = _make(substrate)
    if sequential:
        _force_sequential(net)
    collector = FlowCollector(net, include_local=True)
    driver(net, sim, topo)
    return [json.dumps(record.to_dict(), sort_keys=True)
            for record in collector.records]


def _mixed_waves(net, sim, topo):
    """A deterministic scenario exercising every admission flavour:
    cross-rack, rate-capped, host-local, zero-size, plus singleton
    admissions interleaved between two batched waves."""
    hosts = topo.hosts

    def wave_a():
        net.start_flows([
            FlowRequest(hosts[0], hosts[5], 8 * MB,
                        metadata={"component": "shuffle", "src_port": 13562,
                                  "dst_port": 40001}),
            FlowRequest(hosts[1], hosts[6], 4 * MB, max_rate=0.2 * GBPS,
                        metadata={"component": "hdfs_write", "src_port": 50010,
                                  "dst_port": 40002}),
            FlowRequest(hosts[2], hosts[2], 2 * MB,
                        metadata={"component": "hdfs_write"}),
            FlowRequest(hosts[3], hosts[0], 0.0,
                        metadata={"component": "shuffle"}),
            FlowRequest(hosts[0], hosts[6], 6 * MB,
                        metadata={"component": "shuffle", "src_port": 13562,
                                  "dst_port": 40003}),
        ])

    def wave_b():
        net.start_flows([
            FlowRequest(hosts[k % 8], hosts[(k + 4) % 8], (1 + k) * MB,
                        metadata={"component": "shuffle",
                                  "src_port": 7000 + k, "dst_port": 8000 + k})
            for k in range(6)
        ])

    sim.schedule(0.0, wave_a)
    sim.schedule(0.02, net.start_flow, hosts[1], hosts[4], 3 * MB)
    sim.schedule(0.05, wave_b)
    sim.run()


@pytest.mark.parametrize("substrate", SUBSTRATES, ids=SUBSTRATE_IDS)
def test_batched_equals_sequential_mixed_waves(substrate):
    batched = _capture(substrate, False, _mixed_waves)
    sequential = _capture(substrate, True, _mixed_waves)
    assert batched, "scenario produced no captured flows"
    assert batched == sequential


def _churn_driver(seed, waves):
    """A seeded mixed single/batch admission schedule, built up-front so
    both arms replay the identical operation sequence."""

    def driver(net, sim, topo):
        rng = random.Random(seed)
        hosts = topo.hosts
        now = 0.0
        for _ in range(waves):
            now += rng.random() * 0.2
            if rng.random() < 0.6:
                count = rng.randint(2, 9)
                requests = []
                for k in range(count):
                    src = hosts[rng.randrange(len(hosts))]
                    roll = rng.random()
                    if roll < 0.1:
                        dst, size = src, rng.uniform(0.5, 4.0) * MB
                    elif roll < 0.2:
                        dst, size = hosts[rng.randrange(len(hosts))], 0.0
                    else:
                        dst = hosts[rng.randrange(len(hosts))]
                        size = rng.uniform(0.5, 8.0) * MB
                    cap = 0.25 * GBPS if rng.random() < 0.3 else None
                    requests.append(FlowRequest(
                        src, dst, size, max_rate=cap,
                        metadata={"component": "shuffle",
                                  "src_port": rng.randrange(1024, 65536),
                                  "dst_port": rng.randrange(1024, 65536)}))
                sim.schedule(now, net.start_flows, requests)
            else:
                src = hosts[rng.randrange(len(hosts))]
                dst = hosts[rng.randrange(len(hosts))]
                sim.schedule(now, net.start_flow, src, dst,
                             rng.uniform(0.5, 8.0) * MB)
        sim.run()

    return driver


@pytest.mark.parametrize("substrate", SUBSTRATES, ids=SUBSTRATE_IDS)
def test_batched_equals_sequential_random_churn(substrate):
    driver = _churn_driver(seed=0xBA7C4, waves=40)
    batched = _capture(substrate, False, driver)
    sequential = _capture(substrate, True, driver)
    assert len(batched) > 40
    assert batched == sequential


# -- bulk harvest ----------------------------------------------------------------


def test_bulk_harvest_fires_listeners_in_admission_order():
    sim, topo, net = _make(("fluid", {"engine": "vectorized"}))
    completed = []
    net.add_listener(lambda flow: completed.append(flow.flow_id))
    drained = []
    net.add_drained_listener(lambda: drained.append(sim.now))
    hosts = topo.hosts
    # Two equal-size flows on disjoint paths complete at the same
    # instant — one harvest retires both.
    flows = net.start_flows([FlowRequest(hosts[0], hosts[1], 4 * MB),
                             FlowRequest(hosts[2], hosts[3], 4 * MB)])
    sim.run()
    assert completed == [flows[0].flow_id, flows[1].flow_id]
    assert len(drained) == 1
    assert net.perf["bulk_harvests"] == 1


@pytest.mark.parametrize("engine", ["scalar", "vectorized"])
def test_harvest_counters_match_across_engines(engine):
    sim, topo, net = _make(("fluid", {"engine": engine}))
    hosts = topo.hosts
    net.start_flows([FlowRequest(hosts[k], hosts[(k + 4) % 8], 2 * MB)
                     for k in range(4)])
    sim.run()
    assert net.completed_count == 4
    assert net.active == {}
    assert net.perf["flows_admitted_batched"] == 4
    assert net.perf["bulk_harvests"] >= 1


# -- lazy done signals -----------------------------------------------------------


def test_done_signal_is_lazy_and_prefires_after_completion():
    sim, topo, net = _make(("fluid", {"engine": "scalar"}))
    flow = net.start_flow(topo.hosts[0], topo.hosts[1], 1 * MB)
    assert flow._done is None
    sim.run()
    assert flow.finished
    assert net.perf["done_signals_skipped"] == 1
    # A late waiter still sees a fired signal carrying the flow.
    signal = flow.done
    assert signal.fired and signal.payload is flow
    assert sim.telemetry.registry.counter("net.done_signals").value == 1


def test_done_signal_materialized_early_fires_at_completion():
    sim, topo, net = _make(("fluid", {"engine": "scalar"}))
    flow = net.start_flow(topo.hosts[0], topo.hosts[1], 1 * MB)
    signal = flow.done
    assert not signal.fired
    sim.run()
    assert signal.fired and signal.payload is flow
    assert net.perf["done_signals_skipped"] == 0


def test_cancelled_flow_keeps_done_unfired():
    sim, topo, net = _make(("fluid", {"engine": "scalar"}))
    flow = net.start_flow(topo.hosts[0], topo.hosts[1], 1000 * MB)
    sim.schedule(0.1, net.cancel_flow, flow)
    sim.run()
    assert not flow.finished
    assert not flow.done.fired


# -- seam plumbing ---------------------------------------------------------------


@pytest.mark.parametrize("substrate", SUBSTRATES, ids=SUBSTRATE_IDS)
def test_empty_wave_is_a_noop(substrate):
    sim, topo, net = _make(substrate)
    assert net.start_flows([]) == []
    sim.run()
    assert net.completed_count == 0


@pytest.mark.parametrize("substrate", SUBSTRATES, ids=SUBSTRATE_IDS)
def test_wave_returns_flows_in_request_order(substrate):
    sim, topo, net = _make(substrate)
    hosts = topo.hosts
    requests = [FlowRequest(hosts[k % 8], hosts[(k + 3) % 8], (1 + k) * MB)
                for k in range(5)]
    flows = net.start_flows(requests)
    assert [flow.size for flow in flows] == [request.size
                                             for request in requests]
    ids = [flow.flow_id for flow in flows]
    assert ids == sorted(ids)
    sim.run()


def test_flow_ids_are_per_network():
    first = _make(("fluid", {"engine": "scalar"}))
    second = _make(("analytic", {}))
    for sim, topo, net in (first, second):
        flow = net.start_flow(topo.hosts[0], topo.hosts[1], 1 * MB)
        assert flow.flow_id == 1
        sim.run()


def test_flow_network_native_start_flows_is_overridden():
    # Guard against the differential silently comparing the generic
    # loop to itself: the fluid backend must define its own override.
    assert FlowNetwork.start_flows is not TransportBackend.start_flows
