"""Unit tests for topology construction and routing."""

import pytest

from repro.cluster.topology import Host, Switch, build_topology
from repro.cluster.units import GBPS


def test_star_connects_all_hosts_to_one_switch():
    topo = build_topology("star", num_hosts=5)
    assert topo.kind == "star"
    assert len(topo.hosts) == 5
    switches = [n for n in topo.graph.nodes if isinstance(n, Switch)]
    assert len(switches) == 1
    assert all(host.rack == 0 for host in topo.hosts)


def test_tree_rack_assignment_and_path_length():
    topo = build_topology("tree", num_hosts=16, hosts_per_rack=4)
    assert topo.racks == [0, 1, 2, 3]
    a, b = topo.hosts_in_rack(0)[0], topo.hosts_in_rack(0)[1]
    same_rack_path = topo.path(a, b)
    assert len(same_rack_path) == 3  # host - tor - host
    c = topo.hosts_in_rack(2)[0]
    cross_rack_path = topo.path(a, c)
    assert len(cross_rack_path) == 5  # host - tor - core - tor - host


def test_path_to_self_is_trivial():
    topo = build_topology("star", num_hosts=3)
    host = topo.hosts[0]
    assert topo.path(host, host) == [host]
    assert topo.edges_on_path([host]) == []


def test_path_is_deterministic():
    topo = build_topology("leafspine", num_hosts=16, hosts_per_rack=4)
    a, b = topo.hosts[0], topo.hosts[12]
    assert topo.path(a, b) == topo.path(a, b)


def test_leafspine_spreads_pairs_over_spines():
    topo = build_topology("leafspine", num_hosts=32, hosts_per_rack=8)
    spines_used = set()
    src_rack = topo.hosts_in_rack(0)
    dst_rack = topo.hosts_in_rack(1)
    for src in src_rack:
        for dst in dst_rack:
            path = topo.path(src, dst)
            spine = [n for n in path if isinstance(n, Switch) and n.tier == "spine"]
            assert len(spine) == 1
            spines_used.add(spine[0].name)
    assert len(spines_used) > 1  # ECMP actually spreads load


def test_tree_uplink_capacity_honours_oversubscription():
    topo = build_topology("tree", num_hosts=8, hosts_per_rack=4,
                          host_gbps=1.0, oversubscription=2.0)
    tor = next(n for n in topo.graph.nodes
               if isinstance(n, Switch) and n.tier == "tor")
    core = next(n for n in topo.graph.nodes
                if isinstance(n, Switch) and n.tier == "core")
    host = topo.hosts[0]
    host_capacity = topo.capacity(host, next(iter(topo.graph.neighbors(host))))
    assert host_capacity == pytest.approx(1.0 * GBPS)
    # 4 hosts/rack at 1 Gbit over 2:1 oversubscription -> 2 Gbit uplink.
    assert topo.capacity(tor, core) == pytest.approx(2.0 * GBPS)


def test_fattree_k4_supports_16_hosts():
    topo = build_topology("fattree", num_hosts=16, fattree_k=4)
    assert len(topo.hosts) == 16
    # k=4 fat-tree: 4 core + 8 agg + 8 edge switches.
    switches = [n for n in topo.graph.nodes if isinstance(n, Switch)]
    assert len(switches) == 20
    a, b = topo.hosts[0], topo.hosts[15]
    path = topo.path(a, b)
    assert len(path) == 7  # host-edge-agg-core-agg-edge-host


def test_fattree_rejects_too_many_hosts():
    with pytest.raises(ValueError):
        build_topology("fattree", num_hosts=32, fattree_k=4)


def test_fattree_auto_k():
    topo = build_topology("fattree", num_hosts=20)
    assert len(topo.hosts) == 20  # k=6 chosen automatically (54 max)


def test_unknown_kind_raises():
    with pytest.raises(ValueError):
        build_topology("butterfly", num_hosts=4)


def test_invalid_params_raise():
    with pytest.raises(ValueError):
        build_topology("star", num_hosts=0)
    with pytest.raises(ValueError):
        build_topology("star", num_hosts=4, host_gbps=0)


def test_host_lookup_by_name():
    topo = build_topology("star", num_hosts=4)
    assert topo.host("h002") == topo.hosts[2]
    with pytest.raises(KeyError):
        topo.host("h099")


def test_bisection_links_tree():
    topo = build_topology("tree", num_hosts=8, hosts_per_rack=4)
    crossing = topo.bisection_links()
    assert len(crossing) == 2  # two ToR-core edges
    assert all(isinstance(u, Switch) and isinstance(v, Switch) for u, v in crossing)
