"""The ``keddah pipeline`` verb: run, plan, resume, status, and top."""

import json

import pytest

from repro.cli import main
from repro.experiments.pipelines import load_spec

TINY = ["--job", "grep", "--sizes-gb", "0.0625,0.125",
        "--experiments", ""]


@pytest.fixture(scope="module")
def pipeline_dir(tmp_path_factory):
    root = tmp_path_factory.mktemp("cli-pipeline") / "pl"
    assert main(["pipeline", "run", "--dir", str(root), *TINY,
                 "--telemetry"]) == 0
    return root


def test_run_saves_spec_and_writes_all_stage_dirs(pipeline_dir):
    spec = load_spec(pipeline_dir)
    assert spec.jobs == ("grep",)
    assert spec.sizes_gb == (0.0625, 0.125)
    names = {path.name.split("@")[0]
             for path in (pipeline_dir / "nodes").iterdir()}
    assert names == {"capture", "classify", "fit", "replay", "validate",
                     "report"}
    report = next(pipeline_dir.glob("nodes/report@*/work/report.md"))
    assert "pipeline" in report.read_text(encoding="utf-8").lower()


def test_plan_is_all_cached_after_a_run(pipeline_dir, capsys):
    assert main(["pipeline", "plan", "--dir", str(pipeline_dir),
                 *TINY]) == 0
    out = capsys.readouterr().out
    assert out.count("cached") >= 6
    assert "run" in out  # the action column header / legend

    # --dry-run on the run verb is the same plan, and executes nothing.
    assert main(["pipeline", "run", "--dry-run", "--dir",
                 str(pipeline_dir), *TINY]) == 0


def test_warm_rerun_is_all_cache_hits(pipeline_dir, capsys):
    assert main(["pipeline", "run", "--dir", str(pipeline_dir),
                 *TINY]) == 0
    out = capsys.readouterr().out
    assert "cached" in out


def test_status_reports_journal_and_cache_state(pipeline_dir, capsys):
    assert main(["pipeline", "status", "--dir", str(pipeline_dir)]) == 0
    out = capsys.readouterr().out
    assert "fit" in out and "report" in out


def test_config_edit_via_flags_invalidates_fit_and_downstream(
        pipeline_dir, capsys):
    # Default training is all-but-largest; training on both sizes is a
    # real fit-config edit, so the plan re-runs fit and marks its
    # descendants stale while upstream stays cached.
    assert main(["pipeline", "plan", "--dir", str(pipeline_dir), *TINY,
                 "--fit-sizes-gb", "0.0625,0.125"]) == 0
    actions = {}
    for line in capsys.readouterr().out.splitlines():
        parts = line.split()
        if parts and parts[0] in {"capture", "classify", "fit", "replay",
                                  "validate", "report"}:
            actions[parts[0]] = parts[2]
    assert actions["capture"] == "cached"
    assert actions["classify"] == "cached"
    assert actions["replay"] == "cached"
    assert actions["fit"] == "run"
    assert actions["validate"] == "stale-upstream"
    assert actions["report"] == "stale-upstream"


def test_top_renders_node_labelled_pipeline_telemetry(pipeline_dir, capsys):
    assert main(["top", str(pipeline_dir)]) == 0
    out = capsys.readouterr().out
    assert "node=capture" in out
    assert "pipeline.runs" in out


def test_bad_spec_values_are_rejected_cleanly(tmp_path, capsys):
    assert main(["pipeline", "run", "--dir", str(tmp_path / "pl"),
                 "--sizes-gb", "not-a-number"]) == 2
    assert "bad pipeline spec" in capsys.readouterr().out


def test_status_without_a_pipeline_is_a_clean_error(tmp_path, capsys):
    assert main(["pipeline", "status", "--dir",
                 str(tmp_path / "missing")]) == 2


def test_run_failure_returns_nonzero_and_keeps_partial_work(tmp_path,
                                                            capsys):
    # grep at a size not in the capture sweep cannot happen via the CLI
    # (the spec derives everything), so exercise the failure path with a
    # deadline that no capture stage can meet.
    root = tmp_path / "pl"
    code = main(["pipeline", "run", "--dir", str(root), *TINY,
                 "--deadline", "0.000001", "--retries", "1",
                 "--on-failure", "skip-descendants"])
    assert code == 1
    out = capsys.readouterr().out
    assert "quarantined" in out
    assert (root / "journal.jsonl").exists()
    assert json.loads((root / "quarantine.jsonl").read_text(
        encoding="utf-8").splitlines()[0])
