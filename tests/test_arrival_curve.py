"""Tests for the empirical arrival-curve generation mode."""

import numpy as np
import pytest

from repro.experiments.campaigns import capture_campaign
from repro.generation.generator import generate_trace
from repro.modeling.ks import ks_two_sample
from repro.modeling.model import JobTrafficModel, fit_job_model


@pytest.fixture(scope="module")
def model():
    return fit_job_model(capture_campaign("terasort",
                                          sizes_gb=[0.25, 0.5, 1.0], seed=81))


def test_model_carries_arrival_curve_and_span_law(model):
    shuffle = model.components["shuffle"]
    assert shuffle.arrival_curve is not None
    assert shuffle.span_law.predict_nonneg(1.0) > 0
    # Normalised positions live in [0, 1].
    draws = shuffle.arrival_curve.sample(100, np.random.default_rng(0))
    assert np.all(draws >= -1e-9) and np.all(draws <= 1 + 1e-9)


def test_curve_mode_spans_match_the_law(model):
    trace = generate_trace(model, input_gb=1.0, seed=1, arrivals="curve")
    shuffle_starts = trace.flow_starts("shuffle")
    span = shuffle_starts[-1] - shuffle_starts[0]
    predicted = model.components["shuffle"].span_law.predict_nonneg(1.0)
    assert span <= predicted * 1.01
    assert span >= 0.3 * predicted  # samples cover most of the curve


def test_curve_mode_starts_sorted_and_offset(model):
    trace = generate_trace(model, input_gb=0.5, seed=2, arrivals="curve")
    starts = [flow.start for flow in trace.flows]
    assert starts == sorted(starts)
    shuffle = model.components["shuffle"]
    first = trace.flow_starts("shuffle")[0]
    assert first >= shuffle.start_law.predict_nonneg(0.5) - 1e-9


def test_curve_mode_matches_captured_arrival_shape(model):
    """The curve mode reproduces the capture's start-time distribution."""
    captured = capture_campaign("terasort", sizes_gb=[1.0], seed=81 + 2)[0]
    curve = generate_trace(model, input_gb=1.0, seed=3, arrivals="curve")
    cap_starts = captured.flow_starts("shuffle")
    curve_starts = curve.flow_starts("shuffle")
    # Compare normalised shapes (absolute offsets differ by model error).
    def norm(starts):
        lo, hi = starts[0], starts[-1]
        return [(s - lo) / (hi - lo) for s in starts] if hi > lo else starts
    ks_curve = ks_two_sample(norm(cap_starts), norm(curve_starts))
    assert ks_curve.statistic < 0.3


def test_invalid_arrivals_mode_rejected(model):
    with pytest.raises(ValueError):
        generate_trace(model, input_gb=1.0, arrivals="psychic")


def test_curve_survives_serialisation(tmp_path, model):
    path = tmp_path / "m.json"
    model.to_json(path)
    loaded = JobTrafficModel.from_json(path)
    shuffle = loaded.components["shuffle"]
    assert shuffle.arrival_curve is not None
    assert shuffle.span_law == model.components["shuffle"].span_law
    trace = generate_trace(loaded, input_gb=1.0, seed=4, arrivals="curve")
    assert trace.flow_count() > 0


def test_gaps_mode_unaffected(model):
    a = generate_trace(model, input_gb=0.5, seed=5, arrivals="gaps")
    b = generate_trace(model, input_gb=0.5, seed=5)
    assert [(f.size, f.start) for f in a.flows] == \
           [(f.size, f.start) for f in b.flows]
