"""Property-based tests for the simulation kernel."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simkit import Resource, Simulator, Store


@settings(max_examples=100, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=50))
def test_events_always_execute_in_time_order(delays):
    sim = Simulator()
    executed = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: executed.append((sim.now, d)))
    sim.run()
    times = [t for t, _ in executed]
    assert times == sorted(times)
    assert len(executed) == len(delays)
    # Each callback ran exactly at its scheduled time.
    assert all(t == d for t, d in executed)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=100.0,
                          allow_nan=False), min_size=1, max_size=30),
       st.integers(min_value=1, max_value=5))
def test_resource_never_exceeds_capacity(hold_times, capacity):
    sim = Simulator()
    resource = Resource(sim, capacity)
    concurrency = [0]
    peak = [0]

    def worker(sim, hold):
        yield resource.acquire()
        concurrency[0] += 1
        peak[0] = max(peak[0], concurrency[0])
        yield sim.timeout(hold)
        concurrency[0] -= 1
        resource.release()

    for hold in hold_times:
        sim.process(worker(sim, hold))
    sim.run()
    assert peak[0] <= capacity
    assert concurrency[0] == 0
    assert resource.in_use == 0


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1000),
                min_size=1, max_size=40),
       st.integers(min_value=1, max_value=8))
def test_store_delivers_every_item_exactly_once(items, consumers):
    sim = Simulator()
    store = Store(sim)
    received = []
    total = len(items)
    claimed = [0]

    def consumer(sim):
        while claimed[0] < total:
            claimed[0] += 1
            item = yield store.get()
            received.append(item)

    for _ in range(consumers):
        sim.process(consumer(sim))
    for offset, item in enumerate(items):
        sim.schedule(offset * 0.1, store.put, item)
    sim.run()
    assert sorted(received) == sorted(items)
    assert len(store) == 0


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.floats(min_value=0, max_value=100,
                                    allow_nan=False),
                          st.booleans()),
                min_size=1, max_size=30))
def test_cancelled_events_never_fire(schedule):
    sim = Simulator()
    fired = []
    events = []
    for delay, cancel in schedule:
        event = sim.schedule(delay, lambda d=delay: fired.append(d))
        events.append((event, cancel))
    for event, cancel in events:
        if cancel:
            event.cancel()
    sim.run()
    expected = sorted(d for (d, cancel) in schedule if not cancel)
    assert sorted(fired) == expected
