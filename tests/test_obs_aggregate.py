"""Registry deltas, the aggregate merge target and the event broker."""

import threading

import pytest

from repro.obs import (
    AggregateRegistry,
    DeltaTracker,
    EventBroker,
    MetricsRegistry,
    delta_envelope,
    registry_delta,
)
from repro.obs.aggregate import WORKER_LABEL


# -- registry_delta / DeltaTracker ---------------------------------------------------


def test_counter_delta_carries_only_movement():
    registry = MetricsRegistry()
    registry.counter("a").inc(3)
    registry.counter("b").inc(1)
    before = registry.snapshot()
    registry.counter("a").inc(2)
    delta = registry_delta(before, registry.snapshot())
    assert [(e["name"], e["value"]) for e in delta] == [("a", 2.0)]


def test_new_metrics_appear_whole_and_zero_counters_drop():
    registry = MetricsRegistry()
    registry.counter("seen").inc(5)
    before = registry.snapshot()
    registry.counter("fresh").inc(7)
    registry.counter("idle")  # created but never incremented
    delta = registry_delta(before, registry.snapshot())
    assert [(e["name"], e["value"]) for e in delta] == [("fresh", 7.0)]


def test_gauge_delta_is_its_level():
    registry = MetricsRegistry()
    registry.gauge("depth").set(4.0)
    before = registry.snapshot()
    registry.gauge("depth").set(9.0)
    delta = registry_delta(before, registry.snapshot())
    assert [(e["name"], e["value"]) for e in delta] == [("depth", 9.0)]


def test_histogram_delta_is_per_bucket():
    registry = MetricsRegistry()
    hist = registry.histogram("lat", buckets=(1.0, 10.0))
    hist.observe(0.5)
    before = registry.snapshot()
    hist.observe(0.5)
    hist.observe(5.0)
    (entry,) = registry_delta(before, registry.snapshot())
    assert entry["counts"] == [1, 1, 0]
    assert entry["count"] == 2
    assert entry["sum"] == pytest.approx(5.5)


def test_delta_tracker_deltas_reassemble_the_registry():
    registry = MetricsRegistry()
    tracker = DeltaTracker(registry, source="w1")
    target = AggregateRegistry()
    registry.counter("points").inc(2)
    target.apply(tracker.delta())
    registry.counter("points").inc(3)
    registry.gauge("depth").set(1.5)
    target.apply(tracker.delta())
    assert target.registry.value("points") == 5.0
    assert target.registry.value("depth", **{WORKER_LABEL: "w1"}) == 1.5
    # Envelope ids increase per source.
    assert tracker.delta()["delta_id"] == "seq-3"


# -- AggregateRegistry ---------------------------------------------------------------


def _worker_envelope(source, delta_id, counter=0.0, gauge=None):
    registry = MetricsRegistry()
    if counter:
        registry.counter("sim.events_fired").inc(counter)
    if gauge is not None:
        registry.gauge("net.active").set(gauge)
    return delta_envelope(registry, source=source, delta_id=delta_id)


def test_counters_sum_unlabeled_across_sources():
    aggregate = AggregateRegistry()
    aggregate.apply(_worker_envelope("w1", "p1", counter=10))
    aggregate.apply(_worker_envelope("w2", "p2", counter=32))
    # The cluster-wide total lands on the plain, unlabeled counter —
    # the same series Telemetry.absorb fed, so end-of-run assertions
    # keep working unchanged.
    assert aggregate.registry.value("sim.events_fired") == 42.0


def test_gauges_get_per_worker_series_instead_of_clobbering():
    aggregate = AggregateRegistry()
    aggregate.apply(_worker_envelope("w1", "p1", gauge=3.0))
    aggregate.apply(_worker_envelope("w2", "p2", gauge=8.0))
    registry = aggregate.registry
    assert registry.value("net.active", **{WORKER_LABEL: "w1"}) == 3.0
    assert registry.value("net.active", **{WORKER_LABEL: "w2"}) == 8.0
    # Last write wins *within* a source.
    aggregate.apply(_worker_envelope("w1", "p3", gauge=5.0))
    assert registry.value("net.active", **{WORKER_LABEL: "w1"}) == 5.0


def test_redelivery_is_idempotent():
    aggregate = AggregateRegistry()
    envelope = _worker_envelope("w1", "point-abc", counter=7)
    assert aggregate.apply(envelope) is True
    assert aggregate.apply(dict(envelope)) is False
    assert aggregate.registry.value("sim.events_fired") == 7.0
    assert aggregate.stats()["duplicates_dropped"] == 1
    # The same delta_id from a different source is a different delta.
    assert aggregate.apply(_worker_envelope("w2", "point-abc", counter=1))
    assert aggregate.registry.value("sim.events_fired") == 8.0


def test_histograms_bucket_merge_and_mismatch_raises():
    worker = MetricsRegistry()
    worker.histogram("lat", buckets=(1.0, 10.0)).observe(0.5)
    worker.histogram("lat", buckets=(1.0, 10.0)).observe(20.0)
    aggregate = AggregateRegistry()
    aggregate.apply(delta_envelope(worker, source="w1", delta_id="d1"))
    merged = aggregate.registry.histogram("lat", buckets=(1.0, 10.0))
    assert merged.counts == [1, 0, 1]
    assert merged.count == 2
    bad = MetricsRegistry()
    bad.histogram("lat", buckets=(2.0, 20.0)).observe(1.0)
    with pytest.raises(ValueError, match="bucket mismatch"):
        aggregate.apply(delta_envelope(bad, source="w1", delta_id="d2"))


def test_callback_gauges_are_never_overwritten():
    aggregate = AggregateRegistry()
    aggregate.registry.gauge("net.active", fn=lambda: 99.0,
                             **{WORKER_LABEL: "w1"})
    aggregate.apply(_worker_envelope("w1", "p1", gauge=3.0))
    assert aggregate.registry.value("net.active", **{WORKER_LABEL: "w1"}) == 99.0


def test_aggregate_onto_an_existing_live_registry():
    live = MetricsRegistry()
    live.counter("campaign.points").inc(4)
    aggregate = AggregateRegistry(live)
    aggregate.apply(_worker_envelope("w1", "p1", counter=6))
    assert live.value("campaign.points") == 4.0
    assert live.value("sim.events_fired") == 6.0
    assert aggregate.sources() == ["w1"]


def test_concurrent_apply_is_safe():
    aggregate = AggregateRegistry()

    def worker(source):
        for index in range(50):
            aggregate.apply(_worker_envelope(source, f"d{index}", counter=1))

    threads = [threading.Thread(target=worker, args=(f"w{n}",))
               for n in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert aggregate.registry.value("sim.events_fired") == 200.0
    assert aggregate.stats()["deltas_applied"] == 200


# -- EventBroker ---------------------------------------------------------------------


def test_broker_delivers_and_stamps_sequence():
    broker = EventBroker()
    subscription = broker.subscribe()
    broker.publish("point", job="terasort")
    broker.publish("alert", rule="hot")
    first = subscription.get(timeout=1.0)
    second = subscription.get(timeout=1.0)
    assert (first["kind"], first["job"]) == ("point", "terasort")
    assert second["seq"] == first["seq"] + 1
    subscription.close()
    assert broker.subscriber_count() == 0


def test_broker_replay_for_late_subscribers():
    broker = EventBroker(history=4)
    for index in range(10):
        broker.publish("point", index=index)
    late = broker.subscribe(replay=3)
    replayed = [late.get(timeout=0.1)["index"] for _ in range(3)]
    assert replayed == [7, 8, 9]
    assert late.get(timeout=0.01) is None  # history bounded at 4
    late.close()


def test_slow_subscriber_sheds_instead_of_blocking():
    broker = EventBroker(subscriber_capacity=2)
    subscription = broker.subscribe()
    for index in range(5):
        broker.publish("point", index=index)
    assert subscription.dropped == 3
    assert subscription.get(timeout=0.1)["index"] == 0
    subscription.close()
