"""Tests for delay scheduling (locality-wait map binding)."""

import pytest

from repro.cluster.config import ClusterSpec, HadoopConfig
from repro.cluster.units import MB
from repro.jobs import make_job
from repro.mapreduce.cluster import HadoopCluster


def run_with_delay(delay, seed=9, replication=1, input_gb=0.25):
    """Unreplicated input concentrates blocks; delay should pay off."""
    config = HadoopConfig(block_size=32 * MB, num_reducers=2,
                          replication=replication,
                          delay_scheduling_s=delay)
    cluster = HadoopCluster(ClusterSpec(num_nodes=8, hosts_per_rack=4),
                            config, seed=seed)
    spec = make_job("terasort", input_gb=input_gb, job_id="delaytest")
    results, traces = cluster.run([spec])
    return results[0], traces[0]


def test_delay_scheduling_improves_locality_on_sparse_replicas():
    eager_result, eager_trace = run_with_delay(0.0)
    patient_result, patient_trace = run_with_delay(6.0)
    eager_round = eager_result.rounds[0]
    patient_round = patient_result.rounds[0]
    # With replication 1 each split lives on exactly one node: waiting
    # for that node's heartbeats converts remote reads into local ones.
    assert patient_round.node_local_reads > eager_round.node_local_reads
    assert (patient_trace.total_bytes("hdfs_read")
            < eager_trace.total_bytes("hdfs_read"))


def test_delay_scheduling_costs_time():
    eager_result, _ = run_with_delay(0.0)
    patient_result, _ = run_with_delay(6.0)
    # Declined containers mean later task starts: the patient run can't
    # be dramatically faster, and typically is slower or equal.
    assert (patient_result.completion_time
            >= eager_result.completion_time * 0.7)


def test_job_completes_with_delay_and_reducers():
    # Regression: declined containers must never let reducers consume
    # the whole cluster and deadlock the map phase.
    result, trace = run_with_delay(10.0, replication=1)
    assert not result.failed
    assert result.rounds[0].num_maps == 8
    assert result.rounds[0].shuffle_bytes > 0


def test_zero_delay_preserves_default_behaviour():
    result, _ = run_with_delay(0.0, replication=3)
    assert not result.failed


def test_config_validates_delay():
    with pytest.raises(ValueError):
        HadoopConfig(delay_scheduling_s=-1.0)
