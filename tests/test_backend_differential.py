"""Differential suite: the transport backends against each other.

The contract under test (DESIGN.md "Transport backends"):

* ``analytic`` reproduces the fluid backend's *flow population* —
  count, size, endpoints and component tag of every data-plane flow —
  exactly at timing-stable points (``placement_mode="keyed"``, enough
  container slots for a single map wave), while only approximating
  flow timings and therefore JCT.
* ``record`` replays a trace's schedule at zero cost, and its output
  round-trips through the ns-3/CSV exporters byte-for-byte.
* store keys separate backends; the logical key (and hence the job's
  RNG streams) does not.

JCT tolerance band: the analytic approximation holds rates fixed per
admission wave, so completion times drift from the fluid reference.
Observed relative error on the pinned points is 0.2%–15%; the asserted
band is 25% to stay stable across refactors without letting the
approximation rot silently.
"""

import collections

import pytest

from repro.capture.records import JobTrace
from repro.experiments.campaigns import CampaignConfig
from repro.experiments.runner import CapturePoint
from repro.generation.export import to_flow_schedule_csv, to_ns3_script
from repro.generation.replay import replay_trace
from repro.obs import Telemetry

JCT_TOLERANCE = 0.25

#: Timing-stable campaign: keyed (AM + reducer) placement and enough
#: containers that every map is granted before the first completion —
#: the configuration under which the analytic backend guarantees an
#: identical flow population (see DESIGN.md).
STABLE = dict(nodes=16, num_reducers=16, containers_per_node=10,
              placement_mode="keyed")

POINTS = [("terasort", 1.0, 42), ("grep", 1.0, 42), ("wordcount", 1.0, 42)]


def capture(backend, job, input_gb, seed):
    point = CapturePoint.from_campaign(
        job, input_gb, seed, CampaignConfig(backend=backend, **STABLE))
    return point.simulate()


def population(trace):
    """The data-plane flow population: everything but timing."""
    return collections.Counter(
        (flow.src, flow.dst, round(flow.size, 6), flow.component)
        for flow in trace.flows if flow.component != "control")


@pytest.fixture(scope="module")
def runs():
    out = {}
    for job, input_gb, seed in POINTS:
        out[job] = {backend: capture(backend, job, input_gb, seed)
                    for backend in ("fluid", "analytic")}
    return out


@pytest.mark.parametrize("job", [job for job, _, _ in POINTS])
def test_analytic_flow_population_identical(runs, job):
    _, fluid = runs[job]["fluid"]
    _, analytic = runs[job]["analytic"]
    assert population(fluid) == population(analytic)


@pytest.mark.parametrize("job", [job for job, _, _ in POINTS])
def test_analytic_flow_count_and_bytes_identical(runs, job):
    _, fluid = runs[job]["fluid"]
    _, analytic = runs[job]["analytic"]
    # Control flows are excluded: heartbeats tick for as long as the
    # job runs, and run length is exactly what analytic approximates.
    data = lambda tr: [f for f in tr.flows if f.component != "control"]
    assert len(data(fluid)) == len(data(analytic))
    assert sum(f.size for f in data(fluid)) == \
        pytest.approx(sum(f.size for f in data(analytic)), rel=1e-9)


@pytest.mark.parametrize("job", [job for job, _, _ in POINTS])
def test_analytic_jct_within_tolerance(runs, job):
    fluid_result, _ = runs[job]["fluid"]
    analytic_result, _ = runs[job]["analytic"]
    fluid_jct = fluid_result.completion_time
    analytic_jct = analytic_result.completion_time
    assert fluid_jct > 0
    assert abs(analytic_jct - fluid_jct) / fluid_jct < JCT_TOLERANCE


def test_analytic_timings_actually_differ(runs):
    # Guard against the suite silently comparing fluid to itself: the
    # analytic backend is an approximation, so *some* flow end time
    # must differ even though the population matches.
    _, fluid = runs["terasort"]["fluid"]
    _, analytic = runs["terasort"]["analytic"]
    assert any(abs(a.end - b.end) > 1e-9
               for a, b in zip(fluid.flows, analytic.flows))


# -- record backend: exporter round-trip -----------------------------------------


def test_record_replay_round_trips_exports(runs, tmp_path):
    """Replaying a fluid trace through ``record`` re-emits the same
    schedule, so the ns-3/CSV exports are byte-identical to exporting
    the fluid trace directly — the "export without a fluid run" path.
    """
    _, fluid = runs["terasort"]["fluid"]
    report = replay_trace(fluid, backend="record")
    assert report.flow_count == len(fluid.flows)
    replayed = JobTrace(meta=fluid.meta, flows=report.records)

    direct_csv, via_record_csv = tmp_path / "a.csv", tmp_path / "b.csv"
    assert to_flow_schedule_csv(fluid, direct_csv) == \
        to_flow_schedule_csv(replayed, via_record_csv)
    assert direct_csv.read_bytes() == via_record_csv.read_bytes()

    direct_ns3, via_record_ns3 = tmp_path / "a.cc", tmp_path / "b.cc"
    assert to_ns3_script(fluid, direct_ns3) == \
        to_ns3_script(replayed, via_record_ns3)
    assert direct_ns3.read_bytes() == via_record_ns3.read_bytes()


def test_record_replay_is_zero_cost(runs):
    _, fluid = runs["terasort"]["fluid"]
    report = replay_trace(fluid, backend="record")
    # Flows complete instantly: the replay's makespan collapses to the
    # schedule's span, with no transfer time added on top.
    last_start = max(f.start for f in fluid.flows) - \
        min(f.start for f in fluid.flows)
    assert report.makespan <= last_start + 1e-6
    assert all(duration == pytest.approx(0.0) for duration in
               report.flow_durations)


# -- store-key isolation ---------------------------------------------------------


def _point(backend, placement_mode="keyed"):
    config = CampaignConfig(backend=backend, nodes=16, num_reducers=16,
                            containers_per_node=10,
                            placement_mode=placement_mode)
    return CapturePoint.from_campaign("terasort", 1.0, 42, config)


def test_store_keys_separate_backends():
    keys = {backend: _point(backend).key()
            for backend in ("fluid", "analytic", "record")}
    assert len(set(keys.values())) == 3


def test_logical_key_shared_across_backends():
    logical = {backend: _point(backend).logical_key()
               for backend in ("fluid", "analytic", "record")}
    assert len(set(logical.values())) == 1
    # ... and it is what seeds the job id, so all backends run the
    # same RNG streams.
    assert _point("fluid").key() != _point("fluid").logical_key()


def test_key_dict_carries_backend_discriminator():
    assert _point("analytic").key_dict()["backend"] == "analytic"


def test_placement_mode_is_part_of_the_key():
    assert _point("fluid", "keyed").key() != _point("fluid", "grant").key()


# -- telemetry -------------------------------------------------------------------


def test_backend_visible_in_telemetry():
    telemetry = Telemetry.enabled_in_memory()
    point = CapturePoint.from_campaign(
        "grep", 0.25, 3, CampaignConfig(backend="analytic", nodes=4))
    point.simulate(telemetry=telemetry)
    gauge = telemetry.registry.get("net.backend", backend="analytic")
    assert gauge is not None and gauge.value == 1.0
    jobs = [span for span in telemetry.spans if span.kind == "job"]
    assert jobs and all(span.attrs.get("backend") == "analytic"
                        for span in jobs)
