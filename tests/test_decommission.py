"""Tests for graceful DataNode decommissioning."""

import pytest

from repro.cluster.config import ClusterSpec, HadoopConfig
from repro.cluster.units import MB
from repro.faults import DECOMMISSION, FaultEvent, FaultInjector
from repro.mapreduce.cluster import HadoopCluster


def make_cluster(seed=61):
    return HadoopCluster(ClusterSpec(num_nodes=8, hosts_per_rack=4),
                         HadoopConfig(block_size=32 * MB, num_reducers=2),
                         seed=seed)


def test_decommission_drains_and_retires_the_node():
    cluster = make_cluster()
    cluster.dfs.preload_file("/data", 256 * MB)  # 8 blocks, r=3
    victim = cluster.workers[1]
    held_before = len(cluster.namenode.blocks_on(victim))
    injector = FaultInjector(
        cluster, [FaultEvent(1.0, DECOMMISSION, victim.name)])
    cluster.sim.run()

    # Node fully drained and retired.
    assert cluster.namenode.blocks_on(victim) == []
    assert cluster.namenode.is_dead(victim)
    assert not cluster.namenode.is_decommissioning(victim)
    # Every block still has its full replica set.
    for location in cluster.namenode.locate_file("/data"):
        assert len(location.replicas) == 3
        assert victim not in location.replicas
    # The drain copied exactly the replicas the node held.
    assert injector.report.blocks_rereplicated == held_before


def test_decommissioning_node_serves_reads_during_drain():
    cluster = make_cluster(seed=62)
    locations = cluster.dfs.preload_file("/data", 32 * MB)
    replica = locations[0].replicas[0]
    cluster.namenode.start_decommission(replica)
    # Node-local read is still served by the draining node.
    assert cluster.namenode.choose_replica_for_read(
        locations[0].block, replica) == replica


def test_decommissioning_node_gets_no_new_placements():
    cluster = make_cluster(seed=63)
    victim = cluster.workers[0]
    cluster.namenode.start_decommission(victim)
    cluster.namenode.create_file("/new")
    for _ in range(20):
        location = cluster.namenode.allocate_block("/new", 32 * MB, 3, None)
        assert victim not in location.replicas


def test_decommission_traffic_is_hdfs_write():
    cluster = make_cluster(seed=64)
    cluster.dfs.preload_file("/data", 128 * MB)
    victim = cluster.workers[2]
    FaultInjector(cluster, [FaultEvent(0.5, DECOMMISSION, victim.name)])
    cluster.sim.run()
    copies = [r for r in cluster.collector.records
              if r.service == "re-replication"]
    assert copies
    assert all(r.component == "hdfs_write" for r in copies)
    assert all(r.src != victim.name or True for r in copies)  # victim may source


def test_decommission_during_job_keeps_it_green():
    from repro.jobs import make_job

    cluster = make_cluster(seed=65)
    victim = cluster.workers[6]
    FaultInjector(cluster, [FaultEvent(3.0, DECOMMISSION, victim.name)])
    results, _ = cluster.run([make_job("wordcount", input_gb=0.5)])
    assert not results[0].failed
    assert cluster.namenode.is_dead(victim)


def test_decommission_under_load_serves_reads_and_drains_fully():
    """Drain concurrent with a running terasort: the node keeps serving
    reads mid-drain, every copy completes, and nothing is left
    under-replicated."""
    from repro.jobs import make_job

    # Dry-run to learn where the AM lands so the drain never hits it.
    dry = make_cluster(seed=66)
    dry_results, _ = dry.run([make_job("terasort", input_gb=0.5, job_id="dry")])
    am_host = dry_results[0].rounds[0].am_host

    cluster = make_cluster(seed=66)
    victim = next(h for h in cluster.workers if h.name != am_host)
    injector = FaultInjector(
        cluster, [FaultEvent(3.0, DECOMMISSION, victim.name)])

    observed = {}

    def probe():
        namenode = cluster.namenode
        observed["decommissioning"] = namenode.is_decommissioning(victim)
        held = namenode.blocks_on(victim)
        observed["held"] = len(held)
        if held:
            observed["read_choice"] = namenode.choose_replica_for_read(
                held[0].block, victim)

    cluster.sim.schedule_at(3.2, probe)
    results, _ = cluster.run([make_job("terasort", input_gb=0.5, job_id="dry")])

    # The job stayed green through the drain.
    assert not results[0].failed
    # Mid-drain the node was still a registered, readable replica:
    # node-local reads kept landing on it.
    assert observed["decommissioning"] is True
    assert observed["held"] > 0
    assert observed["read_choice"] == victim
    # The drain ran to completion: node empty, retired, every block of
    # every file back at its full replica set with no copies lost.
    assert cluster.namenode.blocks_on(victim) == []
    assert cluster.namenode.is_dead(victim)
    assert not cluster.namenode.is_decommissioning(victim)
    assert injector.report.unrecoverable_blocks == 0
    assert injector.report.blocks_rereplicated > 0
    # No block anywhere lost its last replica to the drain; input
    # blocks (replication 3) are back at full strength.  Output and
    # job-resource files legitimately use other factors (terasort
    # writes output at replication 1, the JAR stages wide).
    for path in cluster.namenode.list_files():
        for location in cluster.namenode.locate_file(path):
            assert victim not in location.replicas
            assert len(location.replicas) >= 1
            if "/input" in path:
                assert len(location.replicas) == 3
