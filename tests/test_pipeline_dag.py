"""The crash-safe pipeline DAG: wiring, caching, journal, propagation."""

import json
import shutil

import pytest

from repro.experiments.dag import (
    BLOCKED,
    CACHED,
    CONTINUE,
    DONE,
    FAIL_FAST,
    QUARANTINED,
    RUNNING,
    SKIP_DESCENDANTS,
    SKIPPED,
    DAGJournal,
    DAGRunner,
    PipelineCycleError,
    PipelineDAG,
    PipelineDefinitionError,
    PipelineFailed,
    StageNode,
    StageOutputMissing,
    digest_path,
    node_signature,
)
from repro.experiments.supervision import Quarantine, RetryPolicy

ONE_SHOT = RetryPolicy(max_attempts=1, base_delay=0.0, max_delay=0.0)
FAST_RETRIES = RetryPolicy(max_attempts=3, base_delay=0.0, max_delay=0.0)


def _emit(text):
    """A stage fn writing ``text`` + its config + its inputs' contents."""

    def stage(context):
        parts = [str(text)]
        parts.extend(f"{key}={value}"
                     for key, value in sorted(context.config.items()))
        for name in sorted(context.inputs):
            parts.append(
                context.input(name).read_text(encoding="utf-8").strip())
        for output in context.out_paths:
            context.write_output(output, "|".join(parts) + "\n")

    return stage


def _chain(tmp_path, *, poison=None, config=None):
    """a -> b -> c plus an independent z-indep, all fn-based."""

    def boom(context):
        raise ValueError("poisoned stage")

    dag = PipelineDAG("t")
    dag.add(StageNode("a", "emit", config=(config or {}).get("a", {}),
                      out_paths={"out": "a.txt"}, fn=_emit("A")))
    dag.add(StageNode("b", "emit", config=(config or {}).get("b", {}),
                      in_paths={"up": ("a", "out")},
                      out_paths={"out": "b.txt"},
                      fn=boom if poison == "b" else _emit("B")))
    dag.add(StageNode("c", "emit", in_paths={"up": ("b", "out")},
                      out_paths={"out": "c.txt"}, fn=_emit("C")))
    dag.add(StageNode("z-indep", "emit", out_paths={"out": "z.txt"},
                      fn=_emit("Z")))
    return dag


# -- structure ----------------------------------------------------------------------


def test_topological_order_is_deterministic_and_respects_edges(tmp_path):
    dag = _chain(tmp_path)
    order = dag.topological_order()
    assert order.index("a") < order.index("b") < order.index("c")
    assert order == dag.topological_order()
    assert set(order) == {"a", "b", "c", "z-indep"}


def test_cycle_detection_names_the_cycle_members():
    dag = PipelineDAG("cyclic")
    dag.add(StageNode("x", "emit", in_paths={"up": ("y", "out")},
                      out_paths={"out": "x.txt"}, fn=_emit("X")))
    dag.add(StageNode("y", "emit", in_paths={"up": ("x", "out")},
                      out_paths={"out": "y.txt"}, fn=_emit("Y")))
    with pytest.raises(PipelineCycleError) as err:
        dag.validate()
    assert "x" in str(err.value) and "y" in str(err.value)


def test_bad_wiring_is_rejected():
    dag = PipelineDAG("bad")
    dag.add(StageNode("n", "emit", in_paths={"up": ("ghost", "out")},
                      out_paths={"out": "n.txt"}, fn=_emit("N")))
    with pytest.raises(PipelineDefinitionError, match="unknown upstream"):
        dag.validate()

    dag2 = PipelineDAG("bad2")
    dag2.add(StageNode("a", "emit", out_paths={"out": "a.txt"},
                       fn=_emit("A")))
    dag2.add(StageNode("n", "emit", in_paths={"up": ("a", "nope")},
                       out_paths={"out": "n.txt"}, fn=_emit("N")))
    with pytest.raises(PipelineDefinitionError, match="unknown output"):
        dag2.validate()

    with pytest.raises(PipelineDefinitionError, match="no out_paths"):
        PipelineDAG("bad3").add(StageNode("n", "emit", fn=_emit("N")))

    dag4 = PipelineDAG("bad4")
    dag4.add(StageNode("n", "emit", out_paths={"out": "n.txt"}))
    with pytest.raises(PipelineDefinitionError, match="duplicate"):
        dag4.add(StageNode("n", "emit", out_paths={"out": "n.txt"}))


def test_descendants_are_transitive():
    dag = _chain(None)
    assert dag.descendants("a") == ["b", "c"]
    assert dag.descendants("b") == ["c"]
    assert dag.descendants("z-indep") == []


# -- signatures and digests ---------------------------------------------------------


def test_signature_changes_with_config_and_upstream_digest():
    node = StageNode("n", "emit", config={"k": 1},
                     in_paths={"up": ("a", "out")},
                     out_paths={"out": "n.txt"})
    base = node_signature(node, {"up": "d1"})
    assert node_signature(node, {"up": "d1"}) == base
    assert node_signature(node, {"up": "d2"}) != base
    edited = StageNode("n", "emit", config={"k": 2},
                       in_paths={"up": ("a", "out")},
                       out_paths={"out": "n.txt"})
    assert node_signature(edited, {"up": "d1"}) != base


def test_digest_path_ignores_dot_prefixed_bookkeeping(tmp_path):
    tree = tmp_path / "out"
    tree.mkdir()
    (tree / "data.txt").write_text("payload", encoding="utf-8")
    before = digest_path(tree)
    (tree / ".tmp-dropping.tmp").write_text("junk", encoding="utf-8")
    (tree / ".pred.json").write_text("{}", encoding="utf-8")
    assert digest_path(tree) == before
    (tree / "data.txt").write_text("payload2", encoding="utf-8")
    assert digest_path(tree) != before
    with pytest.raises(StageOutputMissing):
        digest_path(tmp_path / "missing")


# -- caching and invalidation -------------------------------------------------------


def test_run_then_rerun_hits_cache_with_zero_reexecution(tmp_path):
    root = tmp_path / "pl"
    first = DAGRunner(_chain(tmp_path), root, retry_policy=ONE_SHOT).run()
    assert first.states() == {"a": DONE, "b": DONE, "c": DONE,
                              "z-indep": DONE}
    assert first.ok
    assert first.artifact("c", "out").read_text(
        encoding="utf-8") == "C|B|A\n"

    second = DAGRunner(_chain(tmp_path), root, retry_policy=ONE_SHOT).run()
    assert second.states() == {name: CACHED for name in second.states()}
    journal = DAGJournal(root / "journal.jsonl")
    assert journal.run_counts() == {"a": 1, "b": 1, "c": 1, "z-indep": 1}


def test_config_edit_invalidates_exactly_node_and_descendants(tmp_path):
    root = tmp_path / "pl"
    DAGRunner(_chain(tmp_path), root, retry_policy=ONE_SHOT).run()

    edited = _chain(tmp_path, config={"b": {"tuned": True}})
    runner = DAGRunner(edited, root, retry_policy=ONE_SHOT)
    actions = {entry["node"]: entry["action"] for entry in runner.plan()}
    assert actions == {"a": "cached", "b": "run", "c": "stale-upstream",
                       "z-indep": "cached"}

    result = runner.run()
    assert result.states() == {"a": CACHED, "b": DONE, "c": DONE,
                               "z-indep": CACHED}
    # b re-keyed: both the old and new stage dirs exist, isolated.
    assert len(list((root / "nodes").glob("b@*"))) == 2


def test_cascade_cuts_off_when_upstream_bytes_are_unchanged(tmp_path):
    root = tmp_path / "pl"
    DAGRunner(_chain(tmp_path), root, retry_policy=ONE_SHOT).run()

    def same_bytes_b(context):
        context.write_output("out", "B|" + context.input("up").read_text(
            encoding="utf-8").strip() + "\n")

    edited = _chain(tmp_path)
    node = edited.node("b")
    edited._nodes["b"] = StageNode("b", "emit", config={"retuned": 1},
                                   in_paths=node.in_paths,
                                   out_paths=node.out_paths,
                                   fn=same_bytes_b)
    result = DAGRunner(edited, root, retry_policy=ONE_SHOT).run()
    # b re-ran under a new signature but reproduced identical bytes,
    # so the content-addressed cascade stops there: c stays cached.
    assert result.states() == {"a": CACHED, "b": DONE, "c": CACHED,
                               "z-indep": CACHED}


def test_pipeline_dir_is_relocatable(tmp_path):
    old_root = tmp_path / "old" / "pl"
    DAGRunner(_chain(tmp_path), old_root, retry_policy=ONE_SHOT).run()
    new_root = tmp_path / "moved-elsewhere"
    shutil.move(str(old_root), str(new_root))

    runner = DAGRunner(_chain(tmp_path), new_root, retry_policy=ONE_SHOT)
    result = runner.run()
    assert result.states() == {name: CACHED for name in result.states()}
    assert result.artifact("c", "out").read_text(
        encoding="utf-8") == "C|B|A\n"


def test_corrupt_manifest_forces_rerun(tmp_path):
    root = tmp_path / "pl"
    first = DAGRunner(_chain(tmp_path), root, retry_policy=ONE_SHOT).run()
    manifest = root / first.outcomes["b"].dir / "outputs.json"
    manifest.write_text("{ not json", encoding="utf-8")

    runner = DAGRunner(_chain(tmp_path), root, retry_policy=ONE_SHOT)
    actions = {entry["node"]: entry["action"] for entry in runner.plan()}
    assert actions["a"] == "cached" and actions["b"] == "run"


def test_tampered_output_bytes_fail_verification(tmp_path):
    root = tmp_path / "pl"
    first = DAGRunner(_chain(tmp_path), root, retry_policy=ONE_SHOT).run()
    first.artifact("b", "out").write_text("tampered\n", encoding="utf-8")

    verifying = DAGRunner(_chain(tmp_path), root, retry_policy=ONE_SHOT)
    actions = {entry["node"]: entry["action"] for entry in verifying.plan()}
    assert actions["b"] == "run"

    trusting = DAGRunner(_chain(tmp_path), root, retry_policy=ONE_SHOT,
                         verify_outputs=False)
    actions = {entry["node"]: entry["action"] for entry in trusting.plan()}
    assert actions["b"] == "cached"


# -- failure propagation ------------------------------------------------------------


def test_fail_fast_blocks_descendants_and_skips_the_rest(tmp_path):
    runner = DAGRunner(_chain(tmp_path, poison="b"), tmp_path / "pl",
                       retry_policy=ONE_SHOT, on_failure=FAIL_FAST)
    with pytest.raises(PipelineFailed) as err:
        runner.run()
    result = err.value.result
    assert result.states() == {"a": DONE, "b": QUARANTINED, "c": BLOCKED,
                               "z-indep": SKIPPED}
    assert not result.ok
    assert result.failures and result.failures[0].attempts == 1


def test_continue_finishes_independent_branches_then_raises(tmp_path):
    runner = DAGRunner(_chain(tmp_path, poison="b"), tmp_path / "pl",
                       retry_policy=ONE_SHOT, on_failure=CONTINUE)
    with pytest.raises(PipelineFailed) as err:
        runner.run()
    result = err.value.result
    assert result.states() == {"a": DONE, "b": QUARANTINED, "c": BLOCKED,
                               "z-indep": DONE}


def test_skip_descendants_returns_partial_result_without_raising(tmp_path):
    runner = DAGRunner(_chain(tmp_path, poison="b"), tmp_path / "pl",
                       retry_policy=ONE_SHOT, on_failure=SKIP_DESCENDANTS)
    result = runner.run()
    assert result.states() == {"a": DONE, "b": QUARANTINED, "c": BLOCKED,
                               "z-indep": DONE}
    manifest = result.manifest()
    assert manifest["ok"] is False
    assert manifest["nodes"]["c"]["state"] == BLOCKED


def test_bad_propagation_mode_is_rejected(tmp_path):
    with pytest.raises(ValueError, match="on_failure"):
        DAGRunner(_chain(tmp_path), tmp_path / "pl", on_failure="explode")


# -- retries and quarantine ---------------------------------------------------------


def test_transient_failure_is_retried_to_success(tmp_path):
    sentinel = tmp_path / "already-failed"

    def flaky(context):
        if not sentinel.exists():
            sentinel.write_text("x", encoding="utf-8")
            raise OSError("transient worker loss")
        context.write_output("out", "ok\n")

    dag = PipelineDAG("flaky")
    dag.add(StageNode("f", "emit", out_paths={"out": "f.txt"}, fn=flaky))
    result = DAGRunner(dag, tmp_path / "pl",
                       retry_policy=FAST_RETRIES).run()
    assert result.states() == {"f": DONE}
    assert result.outcomes["f"].attempts == 2


def test_quarantine_sidecar_dedupes_across_resume_cycles(tmp_path):
    root = tmp_path / "pl"
    for _ in range(2):
        runner = DAGRunner(_chain(tmp_path, poison="b"), root,
                           retry_policy=ONE_SHOT,
                           quarantine=Quarantine(root / "quarantine.jsonl"),
                           on_failure=SKIP_DESCENDANTS)
        runner.run()
    failures = Quarantine.load(root / "quarantine.jsonl")
    assert len(failures) == 1
    assert failures[0].occurrences == 2
    assert failures[0].attempts == 2
    assert "b" in failures[0].job


# -- journal ------------------------------------------------------------------------


def test_journal_records_full_transition_history(tmp_path):
    root = tmp_path / "pl"
    DAGRunner(_chain(tmp_path), root, retry_policy=ONE_SHOT).run()
    journal = DAGJournal(root / "journal.jsonl")
    by_node = {}
    for transition in journal.transitions:
        by_node.setdefault(transition["node"], []).append(
            transition["state"])
    assert by_node["a"] == [RUNNING, DONE]
    last = journal.last_states()
    assert last["c"]["state"] == DONE
    assert last["c"]["signature"]


def test_journal_tolerates_torn_tail(tmp_path):
    root = tmp_path / "pl"
    DAGRunner(_chain(tmp_path), root, retry_policy=ONE_SHOT).run()
    path = root / "journal.jsonl"
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"transition": {"node": "c", "sta')
    journal = DAGJournal(path)
    assert journal.truncated_lines == 1
    assert journal.run_counts() == {"a": 1, "b": 1, "c": 1, "z-indep": 1}
    # And the runner still resumes cleanly on top of it.
    result = DAGRunner(_chain(tmp_path), root, retry_policy=ONE_SHOT).run()
    assert result.ok


def test_journal_header_and_format(tmp_path):
    DAGJournal(tmp_path / "j.jsonl", pipeline="demo")
    first = json.loads(
        (tmp_path / "j.jsonl").read_text(encoding="utf-8").splitlines()[0])
    assert first["dag_journal"]["pipeline"] == "demo"


# -- deadlines ----------------------------------------------------------------------


def test_deadline_kills_a_registry_stage(tmp_path):
    dag = PipelineDAG("slow")
    dag.add(StageNode("napper", "sleep", config={"seconds": 30.0},
                      out_paths={"marker": "marker.txt"}))
    runner = DAGRunner(
        dag, tmp_path / "pl",
        retry_policy=RetryPolicy(max_attempts=1, deadline_s=1.5),
        on_failure=SKIP_DESCENDANTS)
    result = runner.run()
    assert result.states() == {"napper": QUARANTINED}
    assert "deadline" in result.outcomes["napper"].reason.lower()
