"""Failure-injection tests: recovery traffic and task re-execution."""

import pytest

from repro.cluster.config import ClusterSpec, HadoopConfig
from repro.cluster.units import MB
from repro.faults import (DATANODE, DECOMMISSION, NODE, NODEMANAGER,
                          FaultEvent, FaultInjector)
from repro.hdfs.namenode import BlockLostError
from repro.jobs import make_job
from repro.mapreduce.cluster import HadoopCluster


def make_cluster(nodes=8, seed=1, **config_overrides):
    defaults = dict(block_size=32 * MB, num_reducers=2)
    defaults.update(config_overrides)
    return HadoopCluster(ClusterSpec(num_nodes=nodes, hosts_per_rack=4),
                         HadoopConfig(**defaults), seed=seed)


def test_fault_event_validation():
    with pytest.raises(ValueError):
        FaultEvent(-1.0, DATANODE, "h000")
    with pytest.raises(ValueError):
        FaultEvent(1.0, "gremlin", "h000")


def test_injector_rejects_unknown_host_and_bad_streams():
    cluster = make_cluster()
    with pytest.raises(ValueError):
        FaultInjector(cluster, [FaultEvent(1.0, DATANODE, "h999")])
    with pytest.raises(ValueError):
        FaultInjector(cluster, [], max_replication_streams=0)


def test_datanode_death_triggers_rereplication_traffic():
    cluster = make_cluster()
    # Preload a file so blocks exist, then kill a DN mid-air.
    cluster.dfs.preload_file("/data", 256 * MB)  # 8 blocks x 3 replicas
    victim = cluster.workers[2]
    injector = FaultInjector(cluster, [FaultEvent(1.0, DATANODE, victim.name)])
    cluster.start()
    cluster.sim.schedule(60.0, cluster.stop)
    cluster.sim.run()

    lost_replicas = sum(1 for location in cluster.namenode.locate_file("/data")
                        if victim in location.replicas)
    assert lost_replicas == 0  # victim pruned everywhere
    # Every under-replicated block restored, with real traffic.
    assert injector.report.blocks_rereplicated > 0
    assert injector.report.rereplication_bytes == pytest.approx(
        injector.report.blocks_rereplicated * 32 * MB)
    rerep_flows = [r for r in cluster.collector.records
                   if r.service == "re-replication"]
    assert len(rerep_flows) == injector.report.blocks_rereplicated
    assert all(r.component == "hdfs_write" for r in rerep_flows)
    # Replication factor restored to 3 for affected blocks.
    for location in cluster.namenode.locate_file("/data"):
        assert len(location.replicas) == 3


def test_rereplication_respects_stream_limit():
    cluster = make_cluster()
    cluster.dfs.preload_file("/data", 512 * MB)
    victim = cluster.workers[0]
    injector = FaultInjector(cluster, [FaultEvent(0.5, DATANODE, victim.name)],
                             max_replication_streams=1)
    cluster.sim.run()
    flows = sorted((r.start, r.end) for r in cluster.collector.records
                   if r.service == "re-replication")
    # With one stream, transfers never overlap.
    for (s1, e1), (s2, e2) in zip(flows, flows[1:]):
        assert s2 >= e1 - 1e-9


def test_reads_avoid_dead_replicas():
    cluster = make_cluster()
    locations = cluster.dfs.preload_file("/data", 32 * MB)
    replicas = list(locations[0].replicas)
    cluster.namenode.mark_dead(replicas[0])
    reader = replicas[0]  # the dead node itself would be node-local
    chosen = cluster.namenode.choose_replica_for_read(locations[0].block, reader)
    assert chosen != replicas[0]


def test_block_lost_when_all_replicas_die():
    cluster = make_cluster()
    locations = cluster.dfs.preload_file("/data", 32 * MB)
    for replica in list(locations[0].replicas):
        cluster.namenode.mark_dead(replica)
    outsider = next(h for h in cluster.workers
                    if not cluster.namenode.is_dead(h))
    with pytest.raises(BlockLostError):
        cluster.namenode.choose_replica_for_read(locations[0].block, outsider)


def _am_host_of(kind, input_gb, seed):
    """Dry-run the job to learn where the AM lands (deterministic)."""
    dry = make_cluster(nodes=8, seed=seed)
    results, _ = dry.run([make_job(kind, input_gb=input_gb, job_id="dry")])
    return results[0].rounds[0].am_host


def test_nodemanager_death_reexecutes_tasks_and_job_completes():
    am_host = _am_host_of("terasort", 0.5, seed=3)
    cluster = make_cluster(nodes=8, seed=3)
    victim = next(h for h in cluster.workers if h.name != am_host)
    injector = FaultInjector(cluster, [FaultEvent(3.0, NODEMANAGER, victim.name)])
    spec = make_job("terasort", input_gb=0.5, job_id="dry")
    results, traces = cluster.run([spec])
    result = results[0]
    assert not result.failed
    assert result.finish_time > 0
    assert result.rounds[0].num_maps == 16
    # The job still produced its full output despite lost containers.
    assert result.rounds[0].shuffle_bytes > 0
    assert injector.report.containers_lost >= 0


def test_whole_node_crash_mid_job_recovers():
    am_host = _am_host_of("wordcount", 0.5, seed=5)
    cluster = make_cluster(nodes=8, seed=5)
    victim = next(h for h in cluster.workers if h.name != am_host)
    injector = FaultInjector(cluster, [FaultEvent(4.0, NODE, victim.name)])
    spec = make_job("wordcount", input_gb=0.5, job_id="dry")
    results, traces = cluster.run([spec])
    assert not results[0].failed
    # The dead node serves no *new* reads after the failure: any read
    # flow sourced there must have started before the fault fired
    # (in-flight transfers are allowed to finish).
    late_reads = [r for r in cluster.collector.records
                  if r.component == "hdfs_read" and r.src == victim.name
                  and r.start > 4.0 and r.service == "dfs-read"]
    assert late_reads == []


def test_am_container_loss_fails_the_job():
    # Find which node hosts the AM (first heartbeating node), then kill it.
    cluster = make_cluster(nodes=4, seed=2)
    spec = make_job("grep", input_gb=0.25)
    # The AM lands on the first node to heartbeat (phase 0) -> workers[0].
    victim = cluster.workers[0]
    FaultInjector(cluster, [FaultEvent(2.0, NODEMANAGER, victim.name)])
    results, traces = cluster.run([spec])
    result = results[0]
    # Either the AM was on the victim (job fails) or it wasn't (job
    # completes after re-execution); both must terminate cleanly.
    assert result.finish_time > 0
    assert cluster.sim.pending() == 0
    if result.failed:
        assert result.rounds[0].failed


def _blocks_held_by(cluster, path, host):
    return sum(1 for location in cluster.namenode.locate_file(path)
               if host in location.replicas)


def test_duplicate_datanode_events_inject_once():
    cluster = make_cluster()
    cluster.dfs.preload_file("/data", 96 * MB)
    victim = cluster.workers[2]
    held = _blocks_held_by(cluster, "/data", victim)
    injector = FaultInjector(cluster, [FaultEvent(1.0, DATANODE, victim.name),
                                       FaultEvent(2.0, DATANODE, victim.name)])
    cluster.sim.run()
    report = injector.report
    assert len(report.injected) == 1
    assert report.duplicates_ignored == 1
    # One round of re-replication, not two: each lost replica restored
    # exactly once, replication factor back to 3 (never 4).
    assert report.blocks_rereplicated == held
    for location in cluster.namenode.locate_file("/data"):
        assert len(location.replicas) == 3


def test_crash_during_decommission_does_not_double_copy():
    cluster = make_cluster()
    cluster.dfs.preload_file("/data", 96 * MB)
    victim = cluster.workers[1]
    held = _blocks_held_by(cluster, "/data", victim)
    assert held > 0
    # The crash lands while the drain is still copying replicas away;
    # the draining DataNode is already claimed, so the kill must not
    # re-prune its (still-registered) replicas and copy them again.
    injector = FaultInjector(cluster, [FaultEvent(1.0, DECOMMISSION, victim.name),
                                       FaultEvent(1.5, DATANODE, victim.name)])
    cluster.sim.run()
    report = injector.report
    assert len(report.injected) == 1
    assert report.duplicates_ignored == 1
    assert report.blocks_rereplicated == held
    assert report.unrecoverable_blocks == 0
    for location in cluster.namenode.locate_file("/data"):
        assert len(location.replicas) == 3
        assert victim not in location.replicas


def test_node_event_after_datanode_kill_still_takes_nodemanager():
    cluster = make_cluster()
    cluster.dfs.preload_file("/data", 96 * MB)
    victim = cluster.workers[4]
    injector = FaultInjector(cluster, [FaultEvent(1.0, DATANODE, victim.name),
                                       FaultEvent(2.0, NODE, victim.name)])
    cluster.sim.run()
    report = injector.report
    # The NODE event finds the DataNode already down but the
    # NodeManager still up: it partially applies, so it counts as
    # injected, not as a duplicate.
    assert len(report.injected) == 2
    assert report.duplicates_ignored == 0
    for location in cluster.namenode.locate_file("/data"):
        assert len(location.replicas) == 3


def test_fault_report_counts_consistent():
    cluster = make_cluster()
    cluster.dfs.preload_file("/data", 96 * MB)
    victim = cluster.workers[3]
    injector = FaultInjector(cluster, [FaultEvent(1.0, NODE, victim.name)])
    cluster.sim.run()
    report = injector.report
    assert len(report.injected) == 1
    assert report.blocks_rereplicated + report.unrecoverable_blocks >= 0
    assert report.rereplication_bytes >= 0
