"""Single-stage plan ≡ legacy single-job capture, byte for byte.

The tentpole contract of the workload-plan layer: running
``WorkloadPlan.single(spec)`` through :meth:`HadoopCluster.run_plan`
produces *exactly* the capture that ``HadoopCluster.run([spec])``
does — same trace bytes on disk, same per-round result numbers —
across every backend × engine combination.  This is what licenses the
plan executor to subsume the single-job path: anything previously
validated against ``JobDriver`` captures stays valid.

``scripts/check.sh`` runs this module as the workload-plan
differential gate.
"""

import pytest

from repro.cluster.config import ClusterSpec, HadoopConfig
from repro.cluster.units import MB
from repro.jobs import WorkloadPlan, make_job
from repro.mapreduce.cluster import HadoopCluster

COMBOS = [("fluid", "scalar"), ("fluid", "vectorized"),
          ("analytic", "scalar")]


def _cluster(backend, engine, seed=11):
    return HadoopCluster(
        ClusterSpec(num_nodes=4, hosts_per_rack=2,
                    backend=backend, engine=engine),
        HadoopConfig(block_size=32 * MB, num_reducers=2), seed=seed)


def _spec(kind="terasort"):
    # An explicit job id keeps both paths off the process id stream.
    return make_job(kind, input_gb=0.0625, job_id=f"job_{kind}_diff")


def _capture_legacy(backend, engine, kind):
    results, traces = _cluster(backend, engine).run([_spec(kind)])
    return results[0], traces[0]


def _capture_plan(backend, engine, kind):
    plan = WorkloadPlan.single(_spec(kind))
    result, trace = _cluster(backend, engine).run_plan(plan)
    return result.stages[0].job, trace


def _jsonl(trace, tmp_path, name):
    path = tmp_path / name
    trace.to_jsonl(path)
    return path.read_bytes()


@pytest.mark.parametrize("backend,engine", COMBOS)
def test_trivial_plan_capture_is_byte_identical(backend, engine, tmp_path):
    legacy_result, legacy_trace = _capture_legacy(backend, engine, "terasort")
    plan_result, plan_trace = _capture_plan(backend, engine, "terasort")
    assert (_jsonl(plan_trace, tmp_path, "plan.jsonl")
            == _jsonl(legacy_trace, tmp_path, "legacy.jsonl"))
    assert plan_result.to_dict() == legacy_result.to_dict()


@pytest.mark.parametrize("kind", ["wordcount", "pagerank"])
def test_trivial_plan_identity_covers_other_profiles(kind, tmp_path):
    """Aggregation and iterative (multi-round) jobs ride the same path."""
    legacy_result, legacy_trace = _capture_legacy("fluid", "scalar", kind)
    plan_result, plan_trace = _capture_plan("fluid", "scalar", kind)
    assert (_jsonl(plan_trace, tmp_path, "plan.jsonl")
            == _jsonl(legacy_trace, tmp_path, "legacy.jsonl"))
    assert plan_result.to_dict() == legacy_result.to_dict()


def test_trivial_plan_result_reports_the_wrapped_stage():
    plan_result, _ = _capture_plan("fluid", "scalar", "terasort")
    # The PlanResult wrapper around the identity path still records a
    # completed single stage, so downstream plan handling is uniform.
    cluster = _cluster("fluid", "scalar")
    plan = WorkloadPlan.single(_spec("terasort"))
    result, _ = cluster.run_plan(plan)
    assert [s.name for s in result.stages] == ["job"]
    assert result.stages[0].completed
    assert result.completion_time == plan_result.completion_time
