"""CLI surface of the supervision layer: campaign failure summaries,
--journal/--resume, and store verify/repair."""

import json

import pytest

from repro.cli import main
from repro.experiments.campaigns import clear_cache, set_store
from repro.experiments.runner import CapturePoint

CAMPAIGN_ARGS = ["campaign", "--job", "grep", "--sizes-gb", "0.0625,0.125",
                 "--nodes", "4", "--hosts-per-rack", "2"]


@pytest.fixture(autouse=True)
def isolated_caches():
    clear_cache()
    set_store(None)
    yield
    clear_cache()
    set_store(None)


def test_campaign_journal_then_resume_simulates_nothing(tmp_path, capsys):
    journal = tmp_path / "journal.jsonl"
    assert main(CAMPAIGN_ARGS + ["--journal", str(journal)]) == 0
    assert journal.exists()
    capsys.readouterr()

    clear_cache()  # resume must come from the journal, not the memo
    assert main(CAMPAIGN_ARGS + ["--resume", str(journal)]) == 0
    out = capsys.readouterr().out
    assert "resuming from" in out
    assert "2 resumed" in out
    assert "0 simulated" in out


def test_campaign_rejects_zero_retries(capsys):
    assert main(CAMPAIGN_ARGS + ["--retries", "0"]) == 2
    assert "--retries" in capsys.readouterr().out


def test_campaign_failure_exits_nonzero_with_readable_summary(
        tmp_path, monkeypatch, capsys):
    real = CapturePoint.simulate

    def poisoned(self, telemetry=None):
        if self.input_gb == 0.125:
            raise ValueError("injected poison")
        return real(self, telemetry)

    monkeypatch.setattr(CapturePoint, "simulate", poisoned)
    journal = tmp_path / "journal.jsonl"
    code = main(CAMPAIGN_ARGS + ["--journal", str(journal)])
    out = capsys.readouterr().out

    assert code == 1
    # Per-point summary, not a raw traceback dump.
    assert "Traceback" not in out
    assert "quarantined" in out
    assert "ValueError" in out
    assert "injected poison" in out
    # The healthy point still resolved and was journaled.
    assert "0.062" in out
    # The quarantine sidecar defaults next to the journal.
    sidecar = tmp_path / "quarantine.jsonl"
    assert sidecar.exists()
    record = json.loads(sidecar.read_text().splitlines()[0])
    assert record["job"] == "grep"
    assert record["input_gb"] == 0.125
    assert str(sidecar) in out


def test_store_verify_and_repair_cycle(tmp_path, capsys):
    store_dir = tmp_path / "store"
    trace = tmp_path / "trace.jsonl"
    assert main(["capture", "--job", "grep", "--input-gb", "0.0625",
                 "--nodes", "4", "--seed", "3", "-o", str(trace),
                 "--store", str(store_dir)]) == 0
    assert main(["store", "verify", "--store", str(store_dir)]) == 0
    capsys.readouterr()

    entry = next((store_dir / "objects").glob("*/*.jsonl"))
    entry.write_text("garbage")
    assert main(["store", "verify", "--store", str(store_dir)]) == 1
    assert "corrupt" in capsys.readouterr().out

    assert main(["store", "repair", "--store", str(store_dir)]) == 0
    out = capsys.readouterr().out
    assert "quarantined" in out
    assert (store_dir / "quarantine" / entry.name).exists()
    assert main(["store", "verify", "--store", str(store_dir)]) == 0
