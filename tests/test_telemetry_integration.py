"""End-to-end telemetry: span trees, byte-identity, campaign merging."""

import pickle

import pytest

from repro.api import run_capture
from repro.experiments.campaigns import CampaignConfig
from repro.experiments.runner import CampaignRunner, CapturePoint
from repro.obs import NULL_SINK, Telemetry, TelemetryConfig


def trace_bytes(trace):
    """Canonical byte content of a capture (meta + flows, in order)."""
    import json

    lines = [json.dumps({"meta": trace.meta.to_dict()}, sort_keys=True)]
    lines.extend(json.dumps(flow.to_dict(), sort_keys=True)
                 for flow in trace.flows)
    return "\n".join(lines)


@pytest.fixture(scope="module")
def observed_run():
    telemetry = Telemetry.enabled_in_memory(probe_interval=0.5)
    trace = run_capture("terasort", input_gb=0.25, nodes=4, seed=7,
                        job_id="job_tel", telemetry=telemetry)
    return telemetry, trace


def test_span_tree_covers_the_pipeline(observed_run):
    telemetry, _ = observed_run
    kinds = {span.kind for span in telemetry.spans}
    assert {"job", "round", "stage", "task", "fetch", "hdfs_write",
            "flow"} <= kinds


def test_span_tree_shape(observed_run):
    telemetry, _ = observed_run
    spans = telemetry.spans
    jobs = [span for span in spans if span.kind == "job"]
    assert len(jobs) == 1
    assert jobs[0].parent_id is None
    rounds = [span for span in spans if span.kind == "round"]
    assert len(rounds) == 1
    assert rounds[0].parent_id == jobs[0].span_id
    stages = [span for span in spans if span.kind == "stage"]
    assert sorted(stage.name.rsplit(".", 1)[1] for stage in stages) == \
        ["map", "reduce"]
    assert all(stage.parent_id == rounds[0].span_id for stage in stages)
    tasks = [span for span in spans if span.kind == "task"]
    assert tasks and all("host" in task.attrs for task in tasks)


def test_span_times_nest_within_parents(observed_run):
    telemetry, _ = observed_run
    spans = telemetry.spans
    by_id = {span.span_id: span for span in spans}
    checked = 0
    for span in spans:
        parent = by_id.get(span.parent_id)
        if parent is None:
            continue
        assert span.start >= parent.start - 1e-9, (span, parent)
        assert span.end <= parent.end + 1e-9, (span, parent)
        checked += 1
    assert checked > 20


def test_flow_spans_match_network_counters(observed_run):
    telemetry, _ = observed_run
    flow_spans = [span for span in telemetry.spans if span.kind == "flow"]
    assert len(flow_spans) == \
        int(telemetry.registry.value("net.flows_completed"))
    # Job-pipeline flows hang off lifecycle spans; infrastructure flows
    # (control heartbeats, input seeding) legitimately float free.
    by_id = {span.span_id for span in telemetry.spans}
    shuffle = [span for span in flow_spans
               if span.attrs.get("component") == "shuffle"]
    assert shuffle
    assert all(span.parent_id in by_id for span in shuffle)


def test_every_span_is_closed(observed_run):
    telemetry, _ = observed_run
    assert telemetry.spans
    assert all(span.end is not None for span in telemetry.spans)
    assert telemetry.tracer.spans_emitted == len(telemetry.spans)


def test_registry_covers_every_layer(observed_run):
    telemetry, _ = observed_run
    value = telemetry.registry.value
    assert value("sim.events_fired") > 0
    assert value("net.flows_completed") > 0
    assert value("hdfs.blocks_written") > 0
    assert value("hdfs.nn.blocks_allocated") > 0
    assert value("yarn.containers_granted") > 0
    assert value("yarn.scheduler_selections", policy="fifo") > 0


def test_enabled_telemetry_keeps_capture_bytes_identical():
    baseline = run_capture("terasort", input_gb=0.25, nodes=4, seed=7,
                           job_id="job_tel")
    observed = run_capture("terasort", input_gb=0.25, nodes=4, seed=7,
                           job_id="job_tel",
                           telemetry=Telemetry.enabled_in_memory(
                               probe_interval=0.5))
    assert trace_bytes(baseline) == trace_bytes(observed)


def test_disabled_telemetry_emits_nothing():
    telemetry = Telemetry.disabled()
    run_capture("terasort", input_gb=0.25, nodes=4, seed=7,
                telemetry=telemetry)
    assert telemetry.sink is NULL_SINK
    assert telemetry.spans == []
    assert telemetry.tracer.spans_started == 0
    assert telemetry.tracer.spans_emitted == 0
    assert telemetry.probes.total_samples() == 0
    # Counters still work on the null path: they replaced the perf dicts.
    assert telemetry.registry.value("sim.events_fired") > 0


def test_telemetry_config_is_picklable_recipe():
    config = TelemetryConfig(enabled=True, probe_interval=2.0, sink="memory")
    clone = pickle.loads(pickle.dumps(config))
    telemetry = clone.build()
    assert telemetry.enabled
    assert telemetry.probe_interval == 2.0
    assert type(telemetry.sink).__name__ == "MemorySink"
    disabled = TelemetryConfig().build()
    assert disabled.sink is NULL_SINK


def test_telemetry_config_rejects_unknown_sink():
    with pytest.raises(ValueError):
        TelemetryConfig(enabled=True, sink="teapot").build_sink()


def test_snapshot_absorb_merges_counters():
    worker = Telemetry.disabled()
    worker.registry.counter("sim.events_fired").inc(10)
    parent = Telemetry.enabled_in_memory()
    parent.registry.counter("sim.events_fired").inc(1)
    parent.absorb(worker.snapshot())
    parent.absorb(None)  # tolerated
    assert parent.registry.value("sim.events_fired") == 11.0


def _points(sizes=(0.125, 0.25)):
    campaign = CampaignConfig(nodes=4, hosts_per_rack=2, num_reducers=2)
    return [CapturePoint.from_campaign("terasort", size, 90 + index, campaign)
            for index, size in enumerate(sizes)]


def test_campaign_serial_telemetry_accumulates_in_place():
    telemetry = Telemetry.enabled_in_memory(probe_interval=0.5)
    runner = CampaignRunner(workers=1, telemetry=telemetry)
    outcomes = runner.run(_points())
    assert len(outcomes) == 2
    assert telemetry.registry.value("campaign.simulated") == 2.0
    assert telemetry.registry.value("campaign.parallel_simulated") == 0.0
    # Two jobs' spans share the parent sink.
    assert len([s for s in telemetry.spans if s.kind == "job"]) == 2
    assert telemetry.registry.value("net.flows_completed") > 0


def test_campaign_parallel_telemetry_absorbs_workers():
    points = _points()
    serial = CampaignRunner(workers=1).run(points)

    telemetry = Telemetry.enabled_in_memory(probe_interval=0.5)
    runner = CampaignRunner(workers=2, telemetry=telemetry)
    parallel = runner.run(points)

    # Same bytes regardless of execution mode, telemetry on or off.
    for (_, serial_trace), (_, parallel_trace) in zip(serial, parallel):
        assert trace_bytes(serial_trace) == trace_bytes(parallel_trace)
    assert telemetry.registry.value("campaign.parallel_simulated") == 2.0
    # Workers' engine counters came back and merged.
    assert telemetry.registry.value("sim.events_fired") > 0
    assert telemetry.registry.value("net.flows_completed") > 0
    assert runner.stats.simulated == 2


def test_runner_stats_compat_view():
    runner = CampaignRunner(workers=1)
    points = _points(sizes=(0.125,)) * 2  # the same point twice
    runner.run(points)
    stats = runner.stats
    assert stats.points == 2
    assert stats.simulated == 1  # duplicate point simulated once
    assert stats.to_dict()["parallel_simulated"] == 0
