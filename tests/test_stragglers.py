"""Tests for stragglers, heterogeneous nodes and speculation's payoff."""

import pytest

from repro.cluster.config import ClusterSpec, HadoopConfig
from repro.cluster.units import MB
from repro.jobs import make_job
from repro.mapreduce.cluster import HadoopCluster


def run(seed=31, straggler_prob=0.0, speculative=False, node_speed_sigma=0.0,
        kind="terasort", input_gb=0.5):
    spec = ClusterSpec(num_nodes=8, hosts_per_rack=4,
                       node_speed_sigma=node_speed_sigma)
    config = HadoopConfig(block_size=32 * MB, num_reducers=4,
                          straggler_prob=straggler_prob,
                          straggler_slowdown=8.0,
                          speculative=speculative)
    cluster = HadoopCluster(spec, config, seed=seed)
    results, traces = cluster.run(
        [make_job(kind, input_gb=input_gb, job_id="straggle")])
    return cluster, results[0]


def test_config_validation():
    with pytest.raises(ValueError):
        HadoopConfig(straggler_prob=1.5)
    with pytest.raises(ValueError):
        HadoopConfig(straggler_slowdown=0.5)
    with pytest.raises(ValueError):
        ClusterSpec(node_speed_sigma=-1.0)


def test_stragglers_stretch_the_map_tail():
    _, smooth = run(straggler_prob=0.0)
    _, straggly = run(straggler_prob=0.25)
    smooth_max = max(smooth.rounds[0].map_durations)
    straggly_max = max(straggly.rounds[0].map_durations)
    assert straggly_max > 2.0 * smooth_max
    assert straggly.completion_time > smooth.completion_time


def test_heterogeneous_nodes_have_distinct_speeds():
    cluster, result = run(node_speed_sigma=0.4)
    speeds = list(cluster.node_speed.values())
    assert len(set(round(s, 6) for s in speeds)) > 1
    assert all(speed > 0 for speed in speeds)
    assert not result.failed


def test_homogeneous_cluster_speed_factors_are_one():
    cluster, _ = run(node_speed_sigma=0.0)
    assert all(speed == 1.0 for speed in cluster.node_speed.values())


def test_speculation_cuts_the_straggler_tail():
    # Map-dominated workload with violent stragglers: the regime
    # speculation exists for.  Aggregate over seeds: it must win.
    def tail_run(seed, speculative):
        spec = ClusterSpec(num_nodes=8, hosts_per_rack=4)
        config = HadoopConfig(block_size=64 * MB, num_reducers=2,
                              straggler_prob=0.25,
                              straggler_slowdown=20.0,
                              speculative=speculative)
        cluster = HadoopCluster(spec, config, seed=seed)
        results, _ = cluster.run(
            [make_job("wordcount", input_gb=1.0, job_id="tail")])
        return results[0]

    plain_jcts = []
    speculative_jcts = []
    attempts = 0
    for seed in (41, 42, 43):
        plain = tail_run(seed, speculative=False)
        spec = tail_run(seed, speculative=True)
        plain_jcts.append(plain.completion_time)
        speculative_jcts.append(spec.completion_time)
        attempts += spec.rounds[0].speculative_attempts
        assert not spec.failed
    assert attempts > 0  # speculation actually triggered somewhere
    assert sum(speculative_jcts) < sum(plain_jcts)


def test_speculation_never_corrupts_shuffle_accounting():
    _, result = run(seed=47, straggler_prob=0.3, speculative=True)
    round0 = result.rounds[0]
    # Duplicate completions must not double-feed reducers.
    assert round0.shuffle_bytes == pytest.approx(round0.map_output_bytes)
