"""The live observability daemon: endpoints, live updates, CLI wiring."""

import json
import re
import threading
import time
import urllib.request

import pytest

from repro.api import run_capture
from repro.cli import main
from repro.cluster.config import ClusterSpec, HadoopConfig
from repro.cluster.units import MB
from repro.experiments.runner import CampaignRunner, CapturePoint
from repro.obs import AlertEngine, AlertRule, EventBroker, Telemetry
from repro.obs.export import write_telemetry
from repro.obs.server import (
    ENDPOINTS,
    DirSource,
    LiveSource,
    ObservabilityServer,
    serve_directory,
    serve_telemetry,
)

_CONFIG = HadoopConfig(block_size=16 * MB, num_reducers=2, replication=2)
_SPEC = ClusterSpec(num_nodes=4, hosts_per_rack=2)


def _get(url, timeout=5):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, response.headers, response.read()


def _get_json(url):
    status, _, body = _get(url)
    assert status == 200
    return json.loads(body)


def _observed_telemetry():
    telemetry = Telemetry.enabled_in_memory(probe_interval=0.5)
    run_capture("terasort", input_gb=0.125, nodes=4, seed=3,
                config=_CONFIG, hosts_per_rack=2, telemetry=telemetry)
    return telemetry


# -- endpoints over a live telemetry -------------------------------------------------


def test_live_endpoints_round_trip():
    telemetry = _observed_telemetry()
    with serve_telemetry(telemetry) as server:
        health = _get_json(server.url + "/healthz")
        assert health["status"] == "ok"
        assert health["source"]["kind"] == "live"
        assert sorted(health["endpoints"]) == sorted(ENDPOINTS)

        status, headers, body = _get(server.url + "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        text = body.decode()
        assert "# HELP sim_events_fired" in text
        assert "# TYPE sim_events_fired counter" in text
        assert re.search(r"^sim_events_fired \d", text, re.M)

        snapshot = _get_json(server.url + "/snapshot")
        assert any(entry["name"] == "sim.events_fired"
                   for entry in snapshot)

        probes = _get_json(server.url + "/probes")
        assert "net.active_flows" in probes

        spans = _get_json(server.url + "/spans")
        assert any(span["kind"] == "job" for span in spans)
        limited = _get_json(server.url + "/spans?limit=3")
        assert len(limited) == 3
        assert limited == spans[-3:]

        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url + "/nope")
        assert excinfo.value.code == 404
    # Stopped: the port no longer accepts.
    with pytest.raises(OSError):
        _get(server.url + "/healthz", timeout=0.5)


def test_events_sse_stream_with_replay_and_max():
    broker = EventBroker()
    broker.publish("point", index=0)
    telemetry = Telemetry.disabled()
    with serve_telemetry(telemetry, broker=broker) as server:
        broker.publish("point", index=1)
        status, headers, body = _get(
            server.url + "/events?replay=2&max=2")
        assert status == 200
        assert headers["Content-Type"] == "text/event-stream"
        frames = [frame for frame in body.decode().split("\n\n")
                  if frame.startswith("event:")]
        payloads = [json.loads(frame.split("data: ", 1)[1])
                    for frame in frames]
        assert [p["index"] for p in payloads] == [0, 1]
        assert all(p["kind"] == "point" for p in payloads)


def test_alert_loop_publishes_into_events_stream():
    telemetry = _observed_telemetry()
    broker = EventBroker()
    engine = AlertEngine([AlertRule("fired", "metric:sim.events_fired",
                                    value=0.0)], broker=broker)
    server = ObservabilityServer(LiveSource(telemetry), broker=broker,
                                 engine=engine, alert_interval=0.02)
    with server:
        deadline = time.monotonic() + 5.0
        while not engine.firing() and time.monotonic() < deadline:
            time.sleep(0.01)
        assert engine.firing() == ["fired"]
        alerts = _get_json(server.url + "/alerts")
        assert alerts["states"]["fired"]["firing"] is True
        assert alerts["events"][-1]["rule"] == "fired"
        health = _get_json(server.url + "/healthz")
        assert health["alerts_firing"] == ["fired"]
        # The transition is also an SSE event.
        status, _, body = _get(server.url + "/events?replay=50&max=1")
        assert "\"kind\": \"alert\"" in body.decode()


# -- the acceptance criterion: /metrics updates DURING a campaign --------------------


def test_metrics_update_live_during_campaign():
    telemetry = Telemetry.disabled()
    broker = EventBroker()
    runner = CampaignRunner(telemetry=telemetry, events=broker)
    points = [CapturePoint.from_configs("terasort", 0.125, seed, _SPEC,
                                        _CONFIG)
              for seed in range(5)]
    observed = []
    with serve_telemetry(telemetry, broker=broker) as server:
        def poll():
            while not done.is_set():
                _, _, body = _get(server.url + "/metrics")
                for line in body.decode().splitlines():
                    if line.startswith("campaign_points_completed "):
                        observed.append(float(line.split()[-1]))
                time.sleep(0.005)

        done = threading.Event()
        poller = threading.Thread(target=poll, daemon=True)
        poller.start()
        try:
            runner.run(points)
        finally:
            done.set()
            poller.join(timeout=5)
        # Progress was visible while the campaign ran: at least two
        # distinct intermediate counts strictly below the final total.
        distinct = sorted(set(observed))
        assert len(distinct) >= 2, f"no live updates observed: {observed}"
        assert distinct == sorted(value for value in distinct
                                  if 0.0 <= value <= 5.0)
        # And the /events stream carried per-point progress.
        kinds = [event["kind"] for event in broker.history]
        assert kinds.count("point") == 5
        assert kinds[0] == "campaign" and kinds[-1] == "campaign"
        completions = [event["completed"] for event in broker.history
                       if event["kind"] == "point"]
        assert completions == [1, 2, 3, 4, 5]


def test_capture_bytes_identical_with_server_attached(tmp_path):
    def capture(path, serve):
        telemetry = Telemetry.enabled_in_memory(probe_interval=0.5)
        server = None
        stop = threading.Event()
        poller = None
        if serve:
            server = serve_telemetry(telemetry)

            def hammer():
                while not stop.is_set():
                    _get(server.url + "/metrics")
                    _get(server.url + "/snapshot")

            poller = threading.Thread(target=hammer, daemon=True)
            poller.start()
        point = CapturePoint.from_configs("wordcount", 0.125, 11, _SPEC,
                                          _CONFIG)
        try:
            _, trace = point.simulate(telemetry=telemetry)
        finally:
            stop.set()
            if poller is not None:
                poller.join(timeout=5)
            if server is not None:
                server.stop()
        trace.to_jsonl(str(path))
        return path.read_bytes()

    plain = capture(tmp_path / "plain.jsonl", serve=False)
    served = capture(tmp_path / "served.jsonl", serve=True)
    assert plain == served


# -- directory source ----------------------------------------------------------------


def test_dir_source_serves_and_reloads(tmp_path):
    telemetry = _observed_telemetry()
    write_telemetry(telemetry, tmp_path)
    with serve_directory(tmp_path) as server:
        health = _get_json(server.url + "/healthz")
        assert health["source"]["kind"] == "dir"
        _, _, body = _get(server.url + "/metrics")
        assert b"sim_events_fired" in body
        probes = _get_json(server.url + "/probes")
        assert "net.active_flows" in probes
        reloads = server.source.reloads
        # Rewrite the artefacts: the next request picks the change up.
        telemetry.registry.counter("extra.counter").inc(7)
        write_telemetry(telemetry, tmp_path)
        _, _, body = _get(server.url + "/metrics")
        assert b"extra_counter 7.0" in body
        assert server.source.reloads > reloads


def test_dir_source_degrades_on_partial_writes(tmp_path):
    telemetry = _observed_telemetry()
    write_telemetry(telemetry, tmp_path)
    # A torn probes.json and a truncated spans.jsonl, mid-stream.
    (tmp_path / "probes.json").write_text('{"net.active_flows": {"na')
    spans_path = tmp_path / "spans.jsonl"
    spans_path.write_bytes(spans_path.read_bytes()[:-20])
    with pytest.warns(UserWarning, match="probes.json"):
        source = DirSource(tmp_path)
    assert source.probes().series == {}
    assert source.metrics_snapshot()  # metrics.json survived
    with ObservabilityServer(source) as server:
        _, _, body = _get(server.url + "/metrics")
        assert b"sim_events_fired" in body
        assert _get_json(server.url + "/probes") == {}
        spans = _get_json(server.url + "/spans")
        assert spans  # parseable prefix survived the truncated tail


def _fake_pipeline_dir(tmp_path):
    """A pipeline root: run-level telemetry plus two node telemetry dirs."""
    (tmp_path / "pipeline.json").write_text("{}", encoding="utf-8")
    run_level = Telemetry.enabled_in_memory()
    run_level.registry.counter("pipeline.runs").inc()
    write_telemetry(run_level, tmp_path / "telemetry")
    for node, signature in (("capture", "aa" * 6), ("fit", "bb" * 6)):
        telemetry = Telemetry.enabled_in_memory()
        telemetry.registry.counter("stage.work").inc(3)
        telemetry.probes.sample("stage.load", 1.0, 0.5)
        write_telemetry(telemetry,
                        tmp_path / "nodes" / f"{node}@{signature}"
                        / "telemetry")
    return tmp_path


def test_dir_source_aggregates_pipeline_layout_under_node_labels(tmp_path):
    source = DirSource(_fake_pipeline_dir(tmp_path))
    assert source.kind == "pipeline-dir"
    snapshot = source.metrics_snapshot()
    by_label = {entry.get("labels", {}).get("node")
                for entry in snapshot if entry["name"] == "stage.work"}
    assert by_label == {"capture", "fit"}
    unlabelled = [entry for entry in snapshot
                  if entry["name"] == "pipeline.runs"]
    assert unlabelled and "node" not in unlabelled[0].get("labels", {})

    text = source.prometheus()
    assert 'stage_work{node="capture"} 3.0' in text
    assert 'stage_work{node="fit"} 3.0' in text

    assert set(source.probes().series) == {"capture/stage.load",
                                           "fit/stage.load"}


def test_dir_source_pipeline_reloads_on_node_change(tmp_path):
    source = DirSource(_fake_pipeline_dir(tmp_path))
    reloads = source.reloads
    telemetry = Telemetry.enabled_in_memory()
    telemetry.registry.counter("stage.work").inc(9)
    write_telemetry(telemetry,
                    tmp_path / "nodes" / ("replay@" + "cc" * 6)
                    / "telemetry")
    source.refresh()
    assert source.reloads > reloads
    assert 'stage_work{node="replay"} 9.0' in source.prometheus()


def test_load_telemetry_dir_strict_still_raises(tmp_path):
    from repro.obs.export import load_telemetry_dir

    (tmp_path / "metrics.json").write_text("[not json")
    with pytest.warns(UserWarning, match="metrics.json"):
        metrics, _, _ = load_telemetry_dir(tmp_path)
    assert metrics == []
    with pytest.raises(ValueError):
        load_telemetry_dir(tmp_path, strict=True)


# -- CLI: keddah serve / keddah top / campaign --serve-port --------------------------


def test_cli_top_renders_telemetry_dir(tmp_path, capsys):
    telemetry = _observed_telemetry()
    write_telemetry(telemetry, tmp_path)
    assert main(["top", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "cluster metrics" in out
    assert "sim.events_fired" in out
    assert "net.active_flows" in out


def test_cli_top_renders_a_running_daemon(capsys):
    telemetry = _observed_telemetry()
    with serve_telemetry(telemetry) as server:
        assert main(["top", server.url]) == 0
    out = capsys.readouterr().out
    assert "live source" in out
    assert "sim.events_fired" in out


def test_cli_top_rejects_bogus_source(capsys):
    assert main(["top", "/no/such/place"]) == 2
    assert main(["top", "http://127.0.0.1:9"]) == 2


def test_cli_serve_for_seconds_and_missing_dir(tmp_path, capsys):
    telemetry = _observed_telemetry()
    write_telemetry(telemetry, tmp_path)
    assert main(["serve", "--telemetry", str(tmp_path),
                 "--for-seconds", "0.05"]) == 0
    out = capsys.readouterr().out
    assert f"serving telemetry dir {tmp_path}" in out
    assert "/metrics" in out
    assert main(["serve", "--telemetry", str(tmp_path / "missing")]) == 2


def test_cli_campaign_serve_port_serves_live_metrics(capsys):
    observed = []
    holder = {}

    def poll():
        deadline = time.monotonic() + 30
        while "url" not in holder and time.monotonic() < deadline:
            time.sleep(0.002)
        while not holder.get("done"):
            try:
                _, _, body = _get(holder["url"] + "/metrics", timeout=1)
            except OSError:
                break
            for line in body.decode().splitlines():
                if line.startswith("campaign_points_completed "):
                    observed.append(float(line.split()[-1]))
            time.sleep(0.002)

    poller = threading.Thread(target=poll, daemon=True)
    poller.start()

    import sys

    real_write = sys.stdout.write

    def sniffing_write(text):
        match = re.search(r"http://127\.0\.0\.1:\d+", text)
        if match and "url" not in holder:
            holder["url"] = match.group(0)
        return real_write(text)

    sys.stdout.write = sniffing_write
    try:
        rc = main(["campaign", "--job", "terasort", "--sizes-gb",
                   "0.125,0.1875,0.25,0.3125,0.375,0.5", "--nodes", "4",
                   "--workers", "1", "--serve-port", "0"])
    finally:
        sys.stdout.write = real_write
        holder["done"] = True
    poller.join(timeout=10)
    assert rc == 0
    out = capsys.readouterr().out
    assert "live observability at http://127.0.0.1:" in out
    assert "serve daemon:" in out
    assert len(set(observed)) >= 2, \
        f"campaign /metrics never updated mid-run: {observed}"
