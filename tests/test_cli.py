"""End-to-end tests for the keddah CLI."""

import json

import pytest

from repro.capture.records import JobTrace
from repro.cli import build_parser, main
from repro.modeling.model import JobTrafficModel


@pytest.fixture(scope="module")
def captured(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "trace.jsonl"
    code = main(["capture", "--job", "terasort", "--input-gb", "0.25",
                 "--nodes", "8", "--seed", "3", "-o", str(path)])
    assert code == 0
    return path


def test_capture_writes_loadable_trace(captured):
    trace = JobTrace.from_jsonl(captured)
    assert trace.meta.job_kind == "terasort"
    assert trace.flow_count() > 0


def test_fit_and_generate_roundtrip(captured, tmp_path):
    model_path = tmp_path / "model.json"
    assert main(["fit", str(captured), "-o", str(model_path)]) == 0
    model = JobTrafficModel.from_json(model_path)
    assert model.kind == "terasort"

    synthetic_path = tmp_path / "synthetic.jsonl"
    assert main(["generate", "--model", str(model_path),
                 "--input-gb", "0.5", "--seed", "1",
                 "-o", str(synthetic_path)]) == 0
    synthetic = JobTrace.from_jsonl(synthetic_path)
    assert synthetic.meta.extra["synthetic"] is True
    assert synthetic.flow_count() > 0


def test_replay_command(captured, capsys):
    assert main(["replay", str(captured)]) == 0
    out = capsys.readouterr().out
    assert "makespan" in out


def test_report_command(captured, capsys):
    assert main(["report", str(captured)]) == 0
    out = capsys.readouterr().out
    assert "shuffle" in out
    assert "completion time" in out


def test_export_csv_and_ns3(captured, tmp_path, capsys):
    csv_path = tmp_path / "schedule.csv"
    assert main(["export", str(captured), "--format", "csv",
                 "-o", str(csv_path)]) == 0
    assert csv_path.read_text().startswith("start,src,dst")

    cc_path = tmp_path / "replay.cc"
    assert main(["export", str(captured), "--format", "ns3",
                 "-o", str(cc_path)]) == 0
    assert "BulkSendHelper" in cc_path.read_text()


def test_parser_rejects_unknown_job():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["capture", "--job", "mystery", "-o", "x"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_capture_with_scheduler_flag(tmp_path):
    path = tmp_path / "fair.jsonl"
    assert main(["capture", "--job", "grep", "--input-gb", "0.125",
                 "--scheduler", "fair", "-o", str(path)]) == 0
    trace = JobTrace.from_jsonl(path)
    assert trace.meta.hadoop["scheduler"] == "fair"
