"""Tests for ModelBundle and synthetic workload generation."""

import pytest

from repro.cluster.config import HadoopConfig
from repro.cluster.units import GB, MB
from repro.experiments.campaigns import capture_campaign
from repro.generation.replay import replay_trace
from repro.generation.workload import ScheduledJob, generate_workload_trace, split_workload_trace
from repro.modeling.bundle import ModelBundle


@pytest.fixture(scope="module")
def bundle():
    traces = []
    for kind in ("terasort", "grep"):
        traces.extend(capture_campaign(kind, sizes_gb=[0.125, 0.25], seed=11))
    return ModelBundle.fit(traces)


def test_bundle_fit_groups_by_kind(bundle):
    assert bundle.kinds() == ["grep", "terasort"]
    assert len(bundle) == 2
    assert "terasort" in bundle
    assert bundle.get("terasort").kind == "terasort"


def test_bundle_get_unknown_kind_raises(bundle):
    with pytest.raises(KeyError):
        bundle.get("mystery")
    with pytest.raises(ValueError):
        ModelBundle.fit([])


def test_bundle_save_and_load(tmp_path, bundle):
    paths = bundle.save(tmp_path / "models")
    assert len(paths) == 2
    loaded = ModelBundle.load(tmp_path / "models")
    assert loaded.kinds() == bundle.kinds()
    with pytest.raises(FileNotFoundError):
        ModelBundle.load(tmp_path / "empty")


def test_generate_workload_merges_jobs(bundle):
    schedule = [
        ScheduledJob("terasort", input_gb=0.25, start_s=0.0),
        ScheduledJob("grep", input_gb=0.25, start_s=10.0),
        ScheduledJob("terasort", input_gb=0.125, start_s=20.0),
    ]
    workload = generate_workload_trace(bundle, schedule, seed=3)
    assert workload.meta.job_kind == "workload"
    assert workload.meta.input_bytes == pytest.approx(0.625 * GB)
    job_ids = {flow.job_id for flow in workload.flows}
    assert len(job_ids) == 3
    starts = [flow.start for flow in workload.flows]
    assert starts == sorted(starts)
    # The second job's flows begin at/after its scheduled start.
    grep_flows = [f for f in workload.flows if "grep" in f.job_id]
    assert min(f.start for f in grep_flows) >= 10.0


def test_workload_schedule_validation(bundle):
    with pytest.raises(ValueError):
        generate_workload_trace(bundle, [])
    with pytest.raises(ValueError):
        ScheduledJob("terasort", input_gb=-1.0)
    with pytest.raises(ValueError):
        ScheduledJob("terasort", input_gb=1.0, start_s=-5.0)
    with pytest.raises(KeyError):
        generate_workload_trace(bundle, [ScheduledJob("kmeans", 0.1)])


def test_split_workload_roundtrip(bundle):
    schedule = [ScheduledJob("terasort", input_gb=0.25, start_s=0.0),
                ScheduledJob("grep", input_gb=0.125, start_s=5.0)]
    workload = generate_workload_trace(bundle, schedule, seed=4)
    parts = split_workload_trace(workload)
    assert len(parts) == 2
    assert sum(len(part.flows) for part in parts) == len(workload.flows)
    kinds = sorted(part.meta.job_kind for part in parts)
    assert kinds == ["grep", "terasort"]
    assert parts[0].meta.input_bytes == pytest.approx(0.25 * GB)


def test_workload_is_replayable(bundle):
    schedule = [ScheduledJob("terasort", input_gb=0.25, start_s=0.0),
                ScheduledJob("terasort", input_gb=0.25, start_s=2.0)]
    workload = generate_workload_trace(bundle, schedule, seed=5)
    report = replay_trace(workload)
    assert report.flow_count == len(workload.flows)
    assert report.makespan >= 2.0


def test_workload_generation_is_deterministic(bundle):
    schedule = [ScheduledJob("grep", input_gb=0.25)]
    a = generate_workload_trace(bundle, schedule, seed=6)
    b = generate_workload_trace(bundle, schedule, seed=6)
    assert [(f.size, f.start) for f in a.flows] == \
           [(f.size, f.start) for f in b.flows]
