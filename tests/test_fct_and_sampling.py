"""Tests for the analytic TCP FCT model and sampled-capture modelling."""

import numpy as np
import pytest

from repro.capture.pcap import PacketRecord, synthesize_packets
from repro.capture.records import FlowRecord
from repro.capture.sampling import (
    assemble_sampled,
    sample_packets,
    sampling_loss,
    scale_sampled_flows,
)
from repro.net.fct import compare_to_fluid, slow_start_rounds, tcp_fct

GBPS = 1e9 / 8.0


# -- tcp fct ---------------------------------------------------------------------


def test_zero_byte_flow_costs_one_rtt():
    assert tcp_fct(0, rtt=0.001, bandwidth=GBPS) == pytest.approx(0.001)


def test_bulk_flow_approaches_line_rate():
    size = 1.0 * GBPS  # one second of data
    fct = tcp_fct(size, rtt=0.0001, bandwidth=GBPS)
    assert fct == pytest.approx(1.0, rel=0.02)


def test_small_flow_is_rtt_dominated():
    size = 14_480  # 10 segments: fits in the initial window
    rtt = 0.01
    fct = tcp_fct(size, rtt=rtt, bandwidth=GBPS)
    # Handshake + ~no slow-start rounds + negligible serialisation.
    assert fct < 3 * rtt
    assert fct >= rtt


def test_slow_start_rounds_double_each_rtt():
    # 100 segments with IW10 and a huge BDP: 10+20+40+80 -> 4 rounds.
    size = 100 * 1448
    assert slow_start_rounds(size, rtt=0.1, bandwidth=10 * GBPS) == 4
    assert slow_start_rounds(0, rtt=0.1, bandwidth=GBPS) == 0


def test_fct_monotone_in_size_and_rtt():
    sizes = [1e3, 1e5, 1e7, 1e9]
    fcts = [tcp_fct(s, rtt=0.001, bandwidth=GBPS) for s in sizes]
    assert fcts == sorted(fcts)
    assert tcp_fct(1e6, 0.01, GBPS) > tcp_fct(1e6, 0.001, GBPS)


def test_fct_validation():
    with pytest.raises(ValueError):
        tcp_fct(-1, 0.001, GBPS)
    with pytest.raises(ValueError):
        tcp_fct(1, -0.1, GBPS)
    with pytest.raises(ValueError):
        tcp_fct(1, 0.001, 0)


def test_compare_to_fluid_flags_small_flow_optimism():
    sizes = [1e3, 1e9]
    # The fluid model gives size/bandwidth durations.
    fluid = [s / GBPS for s in sizes]
    comparisons = compare_to_fluid(sizes, fluid, rtt=0.001, bandwidth=GBPS)
    small, big = comparisons
    assert small.ratio < 0.1  # fluid wildly optimistic for tiny flows
    assert big.ratio == pytest.approx(1.0, rel=0.05)
    with pytest.raises(ValueError):
        compare_to_fluid([1.0], [], rtt=0.001, bandwidth=GBPS)


# -- sampling --------------------------------------------------------------------


def flow(size, dport, start=0.0):
    return FlowRecord(src="h001", dst="h002", src_rack=0, dst_rack=0,
                      src_port=13562, dst_port=dport, size=size,
                      start=start, end=start + 2.0, component="shuffle")


def test_sample_packets_rate_one_is_identity():
    packets = synthesize_packets(flow(10_000.0, 49000))
    assert sample_packets(packets, rate=1) == packets


def test_sample_packets_keeps_about_one_in_n():
    packets = synthesize_packets(flow(10_000_000.0, 49000))
    sampled = sample_packets(packets, rate=10, seed=1)
    assert len(sampled) == pytest.approx(len(packets) / 10, rel=0.2)


def test_scale_recovers_volume_of_large_flows():
    packets = synthesize_packets(flow(50_000_000.0, 49000))
    flows = assemble_sampled(packets, rate=16, seed=2)
    assert len(flows) == 1
    assert flows[0].size == pytest.approx(50_000_000.0, rel=0.15)


def test_small_flows_vanish_under_sampling():
    rng = np.random.default_rng(3)
    packets = []
    for index in range(200):  # 200 one-packet flows
        packets.append(PacketRecord(float(index), "h001", "h002",
                                    13562, 40000 + index, 500))
    flows = assemble_sampled(packets, rate=20, seed=3)
    # Roughly 1/20 of single-packet flows survive.
    assert len(flows) < 40


def test_sampling_loss_report():
    original_packets = [p for dport in (49000, 49001)
                        for p in synthesize_packets(flow(20_000_000.0, dport))]
    from repro.capture.pcap import assemble_flows

    original = assemble_flows(original_packets)
    sampled = assemble_sampled(original_packets, rate=8, seed=4)
    loss = sampling_loss(original, sampled)
    assert loss["original_flows"] == 2
    assert 0 < loss["flow_survival"] <= 1.0
    assert loss["volume_error"] < 0.2


def test_sampling_validation():
    with pytest.raises(ValueError):
        sample_packets([], rate=0)
    with pytest.raises(ValueError):
        scale_sampled_flows([], rate=0)
