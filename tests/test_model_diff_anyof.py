"""Tests for sim.any_of and the model diff utility."""

import pytest

from repro.cluster.units import MB
from repro.experiments.campaigns import CampaignConfig, capture_campaign
from repro.modeling.diff import diff_models, diff_table
from repro.modeling.model import fit_job_model
from repro.simkit import SimulationError, Simulator


# -- any_of --------------------------------------------------------------------


def test_any_of_fires_with_first_completion():
    sim = Simulator()
    results = []

    def child(sim, delay, value):
        yield sim.timeout(delay)
        return value

    def parent(sim):
        winner = yield sim.any_of([sim.process(child(sim, 3.0, "slow")),
                                   sim.process(child(sim, 1.0, "fast"))])
        results.append((sim.now, winner))

    sim.process(parent(sim))
    sim.run()
    assert results == [(1.0, (1, "fast"))]


def test_any_of_as_timeout_pattern():
    sim = Simulator()
    outcomes = []

    def slow_work(sim):
        yield sim.timeout(100.0)
        return "done"

    def guarded(sim):
        index, payload = yield sim.any_of(
            [sim.process(slow_work(sim)), sim.timeout(5.0, "deadline")])
        outcomes.append((index, payload, sim.now))

    sim.process(guarded(sim))
    sim.run()
    assert outcomes[0] == (1, "deadline", 5.0)


def test_any_of_empty_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.any_of([])


# -- model diff ------------------------------------------------------------------


@pytest.fixture(scope="module")
def models():
    before = fit_job_model(capture_campaign(
        "teragen", sizes_gb=[0.25, 0.5], seed=91,
        campaign=CampaignConfig(replication=2)))
    after = fit_job_model(capture_campaign(
        "teragen", sizes_gb=[0.25, 0.5], seed=91,
        campaign=CampaignConfig(replication=3)))
    return before, after


def test_diff_detects_replication_change(models):
    before, after = models
    diffs = diff_models(before, after, at_gb=1.0)
    write = diffs["hdfs_write"]
    # r=2 puts 1 copy on the wire, r=3 puts 2: volume roughly doubles.
    assert write.volume_change == pytest.approx(1.0, abs=0.35)
    assert write.count_after > write.count_before


def test_diff_table_renders(models):
    before, after = models
    table = diff_table(before, after, at_gb=1.0, labels=("r2", "r3"))
    assert "r2 -> r3" in table.title
    components = [row[0] for row in table.rows]
    assert "hdfs_write" in components
    write_row = next(row for row in table.rows if row[0] == "hdfs_write")
    assert write_row[5].startswith("+")  # volume grew


def test_diff_handles_missing_component(models):
    before, after = models
    # teragen has no shuffle in either model; a synthetic component in
    # one only shows as "new".
    from repro.modeling.model import ComponentModel
    from repro.modeling.distributions import DegenerateDistribution
    from repro.modeling.scaling import LinearLaw

    after.components["shuffle"] = ComponentModel(
        component="shuffle",
        size_dist=DegenerateDistribution(1.0 * MB),
        interarrival_dist=DegenerateDistribution(0.1),
        count_law=LinearLaw(10.0, 0.0),
        volume_law=LinearLaw(10.0 * MB, 0.0))
    try:
        diffs = diff_models(before, after)
        assert diffs["shuffle"].volume_change == float("inf")
        table = diff_table(before, after)
        shuffle_row = next(r for r in table.rows if r[0] == "shuffle")
        assert shuffle_row[5] == "new"
    finally:
        del after.components["shuffle"]
