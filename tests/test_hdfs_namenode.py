"""Unit tests for the NameNode."""

import numpy as np
import pytest

from repro.cluster.topology import build_topology
from repro.hdfs.namenode import NameNode


@pytest.fixture
def namenode():
    topo = build_topology("tree", num_hosts=8, hosts_per_rack=4)
    return NameNode(host=topo.hosts[0], datanodes=topo.hosts,
                    rng=np.random.default_rng(0)), topo


def test_create_and_list_files(namenode):
    nn, _ = namenode
    nn.create_file("/a")
    nn.create_file("/b")
    assert nn.list_files() == ["/a", "/b"]
    assert nn.exists("/a")
    assert not nn.exists("/c")


def test_create_duplicate_raises(namenode):
    nn, _ = namenode
    nn.create_file("/a")
    with pytest.raises(FileExistsError):
        nn.create_file("/a")


def test_allocate_blocks_and_file_size(namenode):
    nn, topo = namenode
    nn.create_file("/data")
    nn.allocate_block("/data", 100, replication=3, writer=topo.hosts[0])
    nn.allocate_block("/data", 50, replication=3, writer=topo.hosts[0])
    blocks = nn.blocks_of("/data")
    assert [block.index for block in blocks] == [0, 1]
    assert nn.file_size("/data") == 150
    assert nn.total_blocks() == 2
    assert nn.used_bytes(with_replicas=False) == 150
    assert nn.used_bytes(with_replicas=True) == 450


def test_allocate_into_missing_file_raises(namenode):
    nn, topo = namenode
    with pytest.raises(FileNotFoundError):
        nn.allocate_block("/nope", 10, 3, topo.hosts[0])


def test_delete_file_frees_blocks(namenode):
    nn, topo = namenode
    nn.create_file("/tmp")
    location = nn.allocate_block("/tmp", 10, 3, topo.hosts[0])
    nn.delete_file("/tmp")
    assert not nn.exists("/tmp")
    with pytest.raises(KeyError):
        nn.locate(location.block)
    with pytest.raises(FileNotFoundError):
        nn.delete_file("/tmp")


def test_locate_file_returns_all_locations(namenode):
    nn, topo = namenode
    nn.create_file("/f")
    nn.allocate_block("/f", 10, 2, topo.hosts[1])
    nn.allocate_block("/f", 10, 2, topo.hosts[1])
    locations = nn.locate_file("/f")
    assert len(locations) == 2
    assert all(len(location.replicas) == 2 for location in locations)


def test_choose_replica_prefers_node_local(namenode):
    nn, topo = namenode
    nn.create_file("/f")
    location = nn.allocate_block("/f", 10, 3, topo.hosts[2])
    for replica in location.replicas:
        assert nn.choose_replica_for_read(location.block, replica) == replica


def test_choose_replica_prefers_rack_local(namenode):
    nn, topo = namenode
    nn.create_file("/f")
    writer = topo.hosts_in_rack(0)[0]
    location = nn.allocate_block("/f", 10, 3, writer)
    # A rack-0 host that holds no replica should be served from rack 0
    # when a rack-0 replica exists.
    rack0_replicas = [r for r in location.replicas if r.rack == 0]
    readers = [h for h in topo.hosts_in_rack(0) if h not in location.replicas]
    if rack0_replicas and readers:
        chosen = nn.choose_replica_for_read(location.block, readers[0])
        assert chosen.rack == 0


def test_requires_datanodes():
    topo = build_topology("star", num_hosts=2)
    with pytest.raises(ValueError):
        NameNode(host=topo.hosts[0], datanodes=[])


def test_block_location_helpers(namenode):
    nn, topo = namenode
    nn.create_file("/f")
    location = nn.allocate_block("/f", 10, 3, topo.hosts[0])
    assert location.primary == topo.hosts[0]
    assert location.on_host(topo.hosts[0])
    assert 0 in location.racks()
