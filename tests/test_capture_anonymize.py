"""Tests for capture anonymisation."""

import numpy as np
import pytest

from repro.capture.anonymize import anonymize_trace, anonymize_traces
from repro.experiments.campaigns import capture, capture_campaign
from repro.modeling.model import fit_job_model


@pytest.fixture(scope="module")
def trace():
    return capture("terasort", 0.25, seed=51)[1]


def test_hosts_are_pseudonymised_consistently(trace):
    anonymous = anonymize_trace(trace, salt="secret")
    original_hosts = {f.src for f in trace.flows} | {f.dst for f in trace.flows}
    anonymous_hosts = ({f.src for f in anonymous.flows}
                       | {f.dst for f in anonymous.flows})
    # Bijective renaming: same cardinality, no original name survives.
    assert len(anonymous_hosts) == len(original_hosts)
    assert not (anonymous_hosts & original_hosts)
    assert all(host.startswith("node-") for host in anonymous_hosts)
    # Pairings preserved flow-by-flow.
    mapping = {}
    for original, anonymous_flow in zip(trace.flows, anonymous.flows):
        mapping.setdefault(original.src, anonymous_flow.src)
        assert mapping[original.src] == anonymous_flow.src


def test_different_salts_are_unlinkable(trace):
    a = anonymize_trace(trace, salt="alpha")
    b = anonymize_trace(trace, salt="beta")
    hosts_a = {f.src for f in a.flows}
    hosts_b = {f.src for f in b.flows}
    assert not (hosts_a & hosts_b)


def test_structure_is_preserved(trace):
    anonymous = anonymize_trace(trace, salt="s")
    assert anonymous.flow_count() == trace.flow_count()
    assert anonymous.total_bytes() == trace.total_bytes()
    for original, anon in zip(trace.flows, anonymous.flows):
        assert anon.size == original.size
        assert anon.src_rack == original.src_rack
        assert anon.component == original.component
        assert anon.duration == pytest.approx(original.duration)
    # Times rebased to submission.
    assert anonymous.meta.submit_time == 0.0
    assert min(f.start for f in anonymous.flows) >= 0.0


def test_identifying_metadata_removed(trace):
    anonymous = anonymize_trace(trace, salt="s")
    assert anonymous.meta.job_id != trace.meta.job_id
    assert anonymous.meta.job_id.startswith("job-")
    assert anonymous.meta.extra == {"anonymized": True}
    assert anonymous.meta.seed == 0
    assert set(anonymous.meta.cluster) <= {
        "num_nodes", "hosts_per_rack", "topology", "host_gbps",
        "oversubscription", "disk_read_rate", "disk_write_rate",
        "containers_per_node", "hop_latency_s", "node_speed_sigma"}


def test_salt_required(trace):
    with pytest.raises(ValueError):
        anonymize_trace(trace, salt="")


def test_fitting_anonymised_traces_matches_original():
    traces = capture_campaign("wordcount", sizes_gb=[0.125, 0.25], seed=52)
    anonymous = anonymize_traces(traces, salt="campaign")
    original_model = fit_job_model(traces)
    anonymous_model = fit_job_model(anonymous)
    for component in original_model.components:
        original_component = original_model.components[component]
        anonymous_component = anonymous_model.components[component]
        assert anonymous_component.count_law == original_component.count_law
        xs = np.array([1e3, 1e6, 1e8])
        assert np.allclose(anonymous_component.size_dist.cdf(xs),
                           original_component.size_dist.cdf(xs))
