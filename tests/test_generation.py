"""Tests for the generation stage: sampling, replay, export."""

import csv

import numpy as np
import pytest

from repro.capture.classifier import classify_flow
from repro.capture.records import CaptureMeta, FlowRecord, JobTrace
from repro.cluster.units import GB
from repro.generation.export import to_flow_schedule_csv, to_ns3_script
from repro.generation.generator import generate_trace, worker_names
from repro.generation.replay import replay_trace
from repro.modeling.model import fit_job_model


def captured_trace(input_gb=1.0, n_shuffle=40, n_read=10):
    rng = np.random.default_rng(0)
    meta = CaptureMeta(job_id=f"cap{input_gb}", job_kind="testjob",
                       input_bytes=input_gb * GB,
                       submit_time=0.0, finish_time=30.0 * input_gb,
                       cluster={"num_nodes": 8, "hosts_per_rack": 4,
                                "topology": "tree", "host_gbps": 1.0,
                                "oversubscription": 1.0,
                                "disk_read_rate": 157286400.0,
                                "disk_write_rate": 125829120.0,
                                "containers_per_node": 4},
                       hadoop={"replication": 3})
    flows = []
    t = 2.0
    for i in range(int(n_shuffle * input_gb)):
        size = float(rng.lognormal(np.log(5e6), 0.4))
        flows.append(FlowRecord(src=f"h{1 + i % 8:03d}", dst=f"h{1 + (i + 3) % 8:03d}",
                                src_rack=0, dst_rack=1, src_port=13562,
                                dst_port=49000 + i, size=size, start=t, end=t + 1,
                                component="shuffle"))
        t += float(rng.exponential(0.2))
    t = 0.5
    for i in range(int(n_read * input_gb)):
        flows.append(FlowRecord(src=f"h{1 + i % 8:03d}", dst=f"h{1 + (i + 1) % 8:03d}",
                                src_rack=0, dst_rack=0, src_port=50010,
                                dst_port=48000 + i, size=64e6, start=t, end=t + 2,
                                component="hdfs_read"))
        t += 0.5
    return JobTrace(meta=meta, flows=flows)


@pytest.fixture(scope="module")
def model():
    return fit_job_model([captured_trace(1.0), captured_trace(2.0),
                          captured_trace(4.0)])


def test_worker_names_match_topology_convention(model):
    names = worker_names(model)
    assert len(names) == 8
    assert names[0] == ("h000", 0)
    assert names[-1] == ("h007", 1)


def test_generated_counts_follow_scaling_law(model):
    trace = generate_trace(model, input_gb=8.0, seed=1)
    shuffle = trace.component("shuffle")
    assert len(shuffle) == pytest.approx(320, abs=10)
    reads = trace.component("hdfs_read")
    assert len(reads) == pytest.approx(80, abs=5)


def test_generated_volume_is_calibrated(model):
    trace = generate_trace(model, input_gb=2.0, seed=2)
    expected = model.components["shuffle"].expected_volume(2.0)
    assert trace.total_bytes("shuffle") == pytest.approx(expected, rel=1e-6)


def test_generation_without_calibration_still_close(model):
    trace = generate_trace(model, input_gb=2.0, seed=2, calibrate_volume=False)
    expected = model.components["shuffle"].expected_volume(2.0)
    assert trace.total_bytes("shuffle") == pytest.approx(expected, rel=0.5)


def test_generated_flows_are_classifiable_and_marked_synthetic(model):
    trace = generate_trace(model, input_gb=1.0, seed=3)
    assert trace.meta.extra["synthetic"] is True
    for flow in trace.flows:
        assert classify_flow(flow).value == flow.component
        assert flow.src != flow.dst


def test_generated_starts_are_sorted_and_offset(model):
    trace = generate_trace(model, input_gb=1.0, seed=4)
    starts = [flow.start for flow in trace.flows]
    assert starts == sorted(starts)
    reads = trace.flow_starts("hdfs_read")
    shuffles = trace.flow_starts("shuffle")
    # Component phase structure survives: reads begin before shuffle.
    assert reads[0] < shuffles[0]


def test_generation_is_deterministic(model):
    a = generate_trace(model, input_gb=1.0, seed=5)
    b = generate_trace(model, input_gb=1.0, seed=5)
    assert [(f.src, f.dst, f.size, f.start) for f in a.flows] == \
           [(f.src, f.dst, f.size, f.start) for f in b.flows]
    c = generate_trace(model, input_gb=1.0, seed=6)
    assert [(f.size) for f in a.flows] != [(f.size) for f in c.flows]


def test_generate_rejects_negative_input(model):
    with pytest.raises(ValueError):
        generate_trace(model, input_gb=-1.0)


# -- replay ------------------------------------------------------------------------


def test_replay_conserves_bytes_and_counts():
    trace = captured_trace(1.0)
    report = replay_trace(trace)
    assert report.flow_count == len(trace.flows)
    assert report.total_bytes == pytest.approx(trace.total_bytes())
    assert report.makespan > 0
    assert set(report.component_bytes) == {"shuffle", "hdfs_read"}


def test_replay_synthetic_trace(model):
    synthetic = generate_trace(model, input_gb=1.0, seed=7)
    report = replay_trace(synthetic)
    assert report.flow_count == len(synthetic.flows)
    assert 0 < report.peak_link_utilisation <= 1.0 + 1e-9
    assert report.mean_flow_duration > 0


def test_replay_time_scale_compresses_schedule():
    trace = captured_trace(1.0)
    slow = replay_trace(trace, time_scale=1.0)
    fast = replay_trace(trace, time_scale=0.1)
    assert fast.makespan < slow.makespan


def test_replay_maps_unknown_hosts():
    trace = captured_trace(1.0)
    for flow in trace.flows:
        flow.src = "alien-" + flow.src
    report = replay_trace(trace)
    assert report.flow_count == len(trace.flows)


def test_replay_rejects_bad_time_scale():
    with pytest.raises(ValueError):
        replay_trace(captured_trace(1.0), time_scale=0.0)


# -- export -------------------------------------------------------------------------


def test_flow_schedule_csv(tmp_path, model):
    trace = generate_trace(model, input_gb=1.0, seed=8)
    path = tmp_path / "schedule.csv"
    count = to_flow_schedule_csv(trace, path)
    assert count == len(trace.flows)
    with path.open() as handle:
        rows = list(csv.DictReader(handle))
    assert len(rows) == count
    assert float(rows[0]["start"]) == pytest.approx(0.0)
    starts = [float(row["start"]) for row in rows]
    assert starts == sorted(starts)
    assert {row["component"] for row in rows} <= {"shuffle", "hdfs_read",
                                                  "hdfs_write", "control"}


def test_ns3_export_is_structurally_valid(tmp_path, model):
    trace = generate_trace(model, input_gb=1.0, seed=9)
    path = tmp_path / "replay.cc"
    count = to_ns3_script(trace, path)
    text = path.read_text()
    assert count == len(trace.flows)
    assert text.count("BulkSendHelper") == count
    assert "PacketSinkHelper" in text
    assert "Simulator::Run()" in text
    assert text.count("{") == text.count("}")
    hosts = {flow.src for flow in trace.flows} | {flow.dst for flow in trace.flows}
    assert f"nodes.Create({len(hosts)})" in text
