"""Tests for model health checks."""

import pytest

from repro.experiments.campaigns import capture, capture_campaign
from repro.modeling.health import ModelWarning, check_model, is_healthy
from repro.modeling.model import fit_job_model
from repro.modeling.scaling import LinearLaw


def test_well_fed_model_is_mostly_clean():
    model = fit_job_model(capture_campaign("terasort",
                                           sizes_gb=[0.25, 0.5, 1.0],
                                           seed=95))
    warnings = check_model(model)
    # No model-level warnings about trace counts or sizes.
    model_level = [w for w in warnings if not w.component and w.severity == "warn"]
    assert model_level == []
    # The shuffle component (hundreds of flows) raises nothing severe.
    shuffle_warns = [w for w in warnings
                     if w.component == "shuffle" and w.severity == "warn"]
    assert shuffle_warns == []


def test_single_trace_model_warns():
    model = fit_job_model([capture("terasort", 0.5, seed=96)[1]])
    warnings = check_model(model)
    assert any("1 trace" in w.message for w in warnings)
    assert any("one input size" in w.message for w in warnings)
    assert not is_healthy(model)


def test_negative_slope_is_flagged():
    model = fit_job_model(capture_campaign("terasort",
                                           sizes_gb=[0.25, 0.5, 1.0],
                                           seed=97))
    shuffle = model.components["shuffle"]
    shuffle.count_law = LinearLaw(slope=-5.0, intercept=100.0)
    warnings = check_model(model)
    assert any("negative slope" in w.message and w.component == "shuffle"
               for w in warnings)


def test_warning_rendering():
    warning = ModelWarning("warn", "shuffle", "too thin")
    assert str(warning) == "WARN: [shuffle] too thin"
    model_level = ModelWarning("info", "", "fine")
    assert str(model_level) == "INFO: fine"
