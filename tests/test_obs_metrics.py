"""Tests for the metrics registry: counters, gauges, histograms."""

import pytest

from repro.obs.metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry


def test_counter_get_or_create_shares_instrument():
    registry = MetricsRegistry()
    a = registry.counter("net.flows", direction="rx")
    b = registry.counter("net.flows", direction="rx")
    assert a is b
    a.inc()
    a.value += 2
    assert registry.value("net.flows", direction="rx") == 3.0


def test_counter_labels_distinguish_instruments():
    registry = MetricsRegistry()
    rx = registry.counter("net.flows", direction="rx")
    tx = registry.counter("net.flows", direction="tx")
    assert rx is not tx
    rx.inc(5)
    assert registry.value("net.flows", direction="tx") == 0.0
    assert len(registry) == 2


def test_settable_gauge():
    registry = MetricsRegistry()
    gauge = registry.gauge("queue.depth")
    gauge.set(7)
    gauge.inc(3)
    gauge.dec(1)
    assert registry.value("queue.depth") == 9.0


def test_callback_gauge_reads_lazily():
    registry = MetricsRegistry()
    state = {"n": 1}
    registry.gauge("heap.size", fn=lambda: state["n"])
    state["n"] = 42
    assert registry.value("heap.size") == 42.0


def test_histogram_bucket_placement():
    histogram = Histogram("latency", buckets=(1.0, 10.0, 100.0))
    for value in (0.5, 1.0, 5.0, 10.0, 50.0, 1000.0):
        histogram.observe(value)
    # counts: <=1, <=10, <=100, overflow
    assert histogram.counts == [2, 2, 1, 1]
    assert histogram.cumulative_counts() == [2, 4, 5, 6]
    assert histogram.count == 6
    assert histogram.sum == pytest.approx(1066.5)
    assert histogram.mean == pytest.approx(1066.5 / 6)


def test_histogram_rejects_empty_buckets():
    with pytest.raises(ValueError):
        Histogram("bad", buckets=())


def test_timeit_observes_into_histogram():
    registry = MetricsRegistry()
    with registry.timeit("store.io_seconds"):
        pass
    histogram = registry.get("store.io_seconds")
    assert histogram.count == 1
    assert histogram.sum >= 0.0
    assert tuple(histogram.buckets) == DEFAULT_BUCKETS


def test_metrics_sorted_and_value_of_missing_is_zero():
    registry = MetricsRegistry()
    registry.counter("b")
    registry.counter("a")
    assert [m.name for m in registry.metrics()] == ["a", "b"]
    assert registry.value("missing") == 0.0
    assert registry.get("missing") is None


def test_snapshot_merge_adds_counters_and_histograms():
    worker = MetricsRegistry()
    worker.counter("events").inc(10)
    worker.histogram("dt", buckets=(1.0, 2.0)).observe(1.5)

    parent = MetricsRegistry()
    parent.counter("events").inc(1)
    parent.merge(worker.snapshot())
    parent.merge(worker.snapshot())

    assert parent.value("events") == 21.0
    merged = parent.get("dt")
    assert merged.count == 2
    assert merged.counts == [0, 2, 0]


def test_merge_overwrites_settable_but_not_callback_gauges():
    worker = MetricsRegistry()
    worker.gauge("depth").set(5)
    worker.gauge("live").set(99)

    parent = MetricsRegistry()
    parent.gauge("depth").set(1)
    parent.gauge("live", fn=lambda: 3)
    parent.merge(worker.snapshot())

    assert parent.value("depth") == 5.0
    assert parent.value("live") == 3.0  # callback wins over snapshot


def test_merge_rejects_bucket_mismatch():
    worker = MetricsRegistry()
    worker.histogram("dt", buckets=(1.0, 2.0)).observe(0.5)
    parent = MetricsRegistry()
    parent.histogram("dt", buckets=(5.0, 6.0))
    with pytest.raises(ValueError):
        parent.merge(worker.snapshot())


def test_merge_rejects_unknown_type():
    with pytest.raises(ValueError):
        MetricsRegistry().merge([{"type": "summary", "name": "x",
                                  "labels": {}, "value": 1}])


def test_snapshot_is_plain_data():
    import json

    registry = MetricsRegistry()
    registry.counter("c", job="terasort").inc()
    registry.gauge("g").set(2)
    registry.histogram("h", buckets=(1.0,)).observe(0.5)
    text = json.dumps(registry.snapshot())
    assert "terasort" in text


# -- Prometheus exposition format ----------------------------------------------------


def test_prometheus_text_has_help_and_type_per_family():
    from repro.obs.export import prometheus_text

    registry = MetricsRegistry()
    registry.counter("sim.events_fired").inc(3)
    registry.gauge("queue.depth").set(2.0)
    registry.histogram("fit.seconds", buckets=(1.0, 10.0)).observe(0.5)
    text = prometheus_text(registry)
    assert "# HELP sim_events_fired keddah metric sim.events_fired\n" in text
    assert "# TYPE sim_events_fired counter\n" in text
    assert "# TYPE queue_depth gauge\n" in text
    assert "# TYPE fit_seconds histogram\n" in text
    # One header pair per family even with several label sets.
    registry.counter("sim.events_fired", kind="timer").inc(1)
    text = prometheus_text(registry)
    assert text.count("# TYPE sim_events_fired counter") == 1


def test_prometheus_help_text_overrides_and_escapes():
    from repro.obs.export import prometheus_text

    registry = MetricsRegistry()
    registry.counter("a").inc(1)
    text = prometheus_text(registry,
                           help_texts={"a": "line\none \\ backslash"})
    assert "# HELP a line\\none \\\\ backslash\n" in text


def test_prometheus_label_values_escape_specials():
    from repro.obs.export import prometheus_text

    registry = MetricsRegistry()
    registry.counter("weird.name", path='say "hi"\nc:\\tmp').inc(2)
    text = prometheus_text(registry)
    assert 'weird_name{path="say \\"hi\\"\\nc:\\\\tmp"} 2.0\n' in text
    # And the escaped form survives a round-trip of the spec's rules.
    value = text.split('path="', 1)[1].rsplit('"} ', 1)[0]
    unescaped = (value.replace("\\\\", "\0").replace('\\"', '"')
                 .replace("\\n", "\n").replace("\0", "\\"))
    assert unescaped == 'say "hi"\nc:\\tmp'
