"""Tests for the top-level convenience API (the README's surface)."""

import pytest

import repro
from repro import fit_job_model, generate_trace, replay_trace, run_capture, run_capture_campaign
from repro.cluster.config import ClusterSpec, HadoopConfig
from repro.cluster.units import MB

CONFIG = HadoopConfig(block_size=32 * MB, num_reducers=2)


def test_lazy_exports_resolve():
    assert repro.__version__ == "1.0.0"
    assert callable(repro.run_capture)
    assert repro.TrafficComponent.SHUFFLE.value == "shuffle"
    with pytest.raises(AttributeError):
        repro.not_a_symbol


def test_run_capture_roundtrip():
    trace = run_capture("wordcount", input_gb=0.25, nodes=4, seed=1,
                        config=CONFIG)
    assert trace.meta.job_kind == "wordcount"
    assert trace.meta.cluster["num_nodes"] == 4
    assert trace.flow_count() > 0


def test_run_capture_respects_cluster_spec():
    spec = ClusterSpec(num_nodes=4, hosts_per_rack=2, topology="star")
    trace = run_capture("grep", input_gb=0.125, cluster_spec=spec,
                        config=CONFIG)
    assert trace.meta.cluster["topology"] == "star"


def test_run_capture_passes_job_kwargs():
    trace = run_capture("terasort", input_gb=0.25, nodes=4, seed=1,
                        config=CONFIG, num_reducers=3)
    assert trace.meta.num_reduces == 3


def test_campaign_covers_sizes_and_repeats():
    traces = run_capture_campaign("grep", [0.125, 0.25], nodes=4,
                                  seed=5, repeats=2, config=CONFIG)
    assert len(traces) == 4
    sizes = sorted({trace.meta.input_bytes for trace in traces})
    assert len(sizes) == 2
    seeds = {trace.meta.seed for trace in traces}
    assert len(seeds) == 4  # all runs independent


def test_full_pipeline_via_api():
    traces = run_capture_campaign("terasort", [0.125, 0.25], nodes=4,
                                  seed=2, config=CONFIG)
    model = fit_job_model(traces)
    synthetic = generate_trace(model, input_gb=0.5, seed=3)
    assert synthetic.meta.job_kind == "terasort"
    report = replay_trace(synthetic)
    assert report.flow_count == len(synthetic.flows)
    assert report.makespan > 0
