"""Tests for hotspot analysis and the related CLI surfaces."""

import pytest

from repro.analysis.hotspots import hotspot_table, imbalance_factor, per_host_traffic
from repro.capture.records import CaptureMeta, FlowRecord, JobTrace


def flow(src, dst, size, component="shuffle"):
    return FlowRecord(src=src, dst=dst, src_rack=0, dst_rack=0,
                      src_port=13562, dst_port=49000, size=size,
                      start=0.0, end=1.0, component=component)


def make_trace(flows):
    return JobTrace(meta=CaptureMeta(job_id="j", job_kind="t",
                                     input_bytes=1e9), flows=flows)


def test_per_host_traffic_directions():
    trace = make_trace([flow("a", "b", 100.0), flow("a", "c", 50.0),
                        flow("c", "b", 25.0)])
    stats = per_host_traffic(trace)
    assert stats["a"]["tx_bytes"] == 150.0
    assert stats["a"]["rx_bytes"] == 0.0
    assert stats["b"]["rx_bytes"] == 125.0
    assert stats["b"]["rx_flows"] == 2
    assert stats["c"]["tx_flows"] == 1


def test_per_host_traffic_component_filter():
    trace = make_trace([flow("a", "b", 100.0, "shuffle"),
                        flow("a", "b", 900.0, "hdfs_write")])
    stats = per_host_traffic(trace, component="shuffle")
    assert stats["b"]["rx_bytes"] == 100.0


def test_imbalance_factor_even_vs_skewed():
    even = make_trace([flow("a", "b", 100.0), flow("b", "a", 100.0)])
    assert imbalance_factor(even, "rx") == pytest.approx(1.0)
    skewed = make_trace([flow("a", "b", 300.0), flow("b", "c", 1.0),
                         flow("c", "a", 1.0)])
    assert imbalance_factor(skewed, "rx") > 2.5


def test_imbalance_factor_validation_and_empty():
    with pytest.raises(ValueError):
        imbalance_factor(make_trace([]), "sideways")
    assert imbalance_factor(make_trace([]), "rx") == 0.0


def test_hotspot_table_ranks_by_rx():
    trace = make_trace([flow("a", "hot", 1000.0), flow("b", "hot", 1000.0),
                        flow("hot", "cold", 1.0)])
    table = hotspot_table(trace, top=2)
    assert table.rows[0][0] == "hot"
    assert len(table.rows) == 2
    assert "imbalance" in table.notes[0]


def test_cli_validate_and_hotspots(tmp_path, capsys):
    from repro.cli import main

    trace_path = tmp_path / "t.jsonl"
    make_trace([flow("a", "b", 100.0)]).to_jsonl(trace_path)
    assert main(["validate", str(trace_path), str(trace_path)]) == 0
    out = capsys.readouterr().out
    assert "count err" in out
    assert "0" in out  # identical traces -> zero errors

    assert main(["report", str(trace_path), "--hotspots"]) == 0
    out = capsys.readouterr().out
    assert "traffic hotspots" in out


# -- probe-output-driven cases (telemetry integration) -------------------------------


@pytest.fixture(scope="module")
def probed_capture():
    from repro.api import run_capture
    from repro.obs import Telemetry

    telemetry = Telemetry.enabled_in_memory(probe_interval=0.5)
    trace = run_capture("terasort", input_gb=0.25, nodes=4, seed=11,
                        telemetry=telemetry)
    return telemetry, trace


def test_per_host_traffic_conserves_capture_bytes(probed_capture):
    _, trace = probed_capture
    stats = per_host_traffic(trace)
    assert sum(host["tx_bytes"] for host in stats.values()) == \
        pytest.approx(trace.total_bytes())
    assert sum(host["rx_bytes"] for host in stats.values()) == \
        pytest.approx(trace.total_bytes())


def test_hotspot_receivers_match_hdfs_write_counters(probed_capture):
    telemetry, trace = probed_capture
    stats = per_host_traffic(trace, component="hdfs_write")
    written = sum(host["rx_bytes"] for host in stats.values())
    # Replication fans each block out to several receivers, so the bytes
    # received as hdfs_write are at least the client-level write volume.
    assert written > 0
    assert telemetry.registry.value("hdfs.bytes_written") > 0


def test_imbalance_on_real_capture_is_sane(probed_capture):
    _, trace = probed_capture
    factor = imbalance_factor(trace, "rx")
    assert factor >= 1.0
    table = hotspot_table(trace, top=4)
    assert 0 < len(table.rows) <= 4
