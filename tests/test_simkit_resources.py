"""Unit tests for Resource and Store."""

import pytest

from repro.simkit import Resource, SimulationError, Simulator, Store


def test_resource_limits_concurrency():
    sim = Simulator()
    resource = Resource(sim, capacity=2)
    active = []
    peak = []

    def worker(sim, tag):
        yield resource.acquire()
        active.append(tag)
        peak.append(len(active))
        yield sim.timeout(1.0)
        active.remove(tag)
        resource.release()

    for tag in range(5):
        sim.process(worker(sim, tag))
    sim.run()
    assert max(peak) == 2
    assert sim.now == pytest.approx(3.0)  # ceil(5/2) batches of 1s


def test_resource_grants_fifo():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    order = []

    def worker(sim, tag, hold):
        yield resource.acquire()
        order.append(tag)
        yield sim.timeout(hold)
        resource.release()

    for tag in range(4):
        sim.process(worker(sim, tag, hold=1.0))
    sim.run()
    assert order == [0, 1, 2, 3]


def test_resource_counters():
    sim = Simulator()
    resource = Resource(sim, capacity=2, name="slots")

    def worker(sim):
        yield resource.acquire()
        yield sim.timeout(10.0)
        resource.release()

    for _ in range(3):
        sim.process(worker(sim))
    sim.run(until=1.0)
    assert resource.in_use == 2
    assert resource.available == 0
    assert resource.queued == 1
    sim.run()
    assert resource.in_use == 0
    assert resource.queued == 0


def test_release_idle_resource_raises():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    with pytest.raises(SimulationError):
        resource.release()


def test_resource_rejects_zero_capacity():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Resource(sim, capacity=0)


def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(sim):
        item = yield store.get()
        got.append((sim.now, item))

    store.put("ready")
    sim.process(consumer(sim))
    sim.run()
    assert got == [(0.0, "ready")]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(sim):
        item = yield store.get()
        got.append((sim.now, item))

    sim.process(consumer(sim))
    sim.schedule(4.0, store.put, "late")
    sim.run()
    assert got == [(4.0, "late")]


def test_store_fifo_pairing_of_items_and_getters():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(sim, tag):
        item = yield store.get()
        got.append((tag, item))

    sim.process(consumer(sim, "first"))
    sim.process(consumer(sim, "second"))
    sim.schedule(1.0, store.put, "a")
    sim.schedule(2.0, store.put, "b")
    sim.run()
    assert got == [("first", "a"), ("second", "b")]


def test_store_len_and_drain():
    sim = Simulator()
    store = Store(sim)
    store.put(1)
    store.put(2)
    assert len(store) == 2
    assert store.drain() == [1, 2]
    assert len(store) == 0
    assert store.pending_getters == 0
