"""Unit tests for the discrete-event kernel."""

import pytest

from repro.simkit import Interrupt, SimulationError, Simulator


def test_schedule_runs_in_time_order():
    sim = Simulator()
    out = []
    sim.schedule(2.0, out.append, "b")
    sim.schedule(1.0, out.append, "a")
    sim.schedule(3.0, out.append, "c")
    sim.run()
    assert out == ["a", "b", "c"]
    assert sim.now == 3.0


def test_same_time_events_run_in_fifo_order():
    sim = Simulator()
    out = []
    for tag in range(10):
        sim.schedule(1.0, out.append, tag)
    sim.run()
    assert out == list(range(10))


def test_priority_breaks_time_ties():
    sim = Simulator()
    out = []
    sim.schedule(1.0, out.append, "low", priority=5)
    sim.schedule(1.0, out.append, "high", priority=-5)
    sim.run()
    assert out == ["high", "low"]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    out = []
    event = sim.schedule(1.0, out.append, "x")
    event.cancel()
    sim.run()
    assert out == []


def test_scheduling_in_the_past_raises():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(1.0, lambda: None)


def test_run_until_stops_and_advances_clock():
    sim = Simulator()
    out = []
    sim.schedule(1.0, out.append, 1)
    sim.schedule(10.0, out.append, 10)
    sim.run(until=5.0)
    assert out == [1]
    assert sim.now == 5.0
    sim.run()
    assert out == [1, 10]


def test_process_timeout_sequence():
    sim = Simulator()
    trace = []

    def worker(sim):
        trace.append(sim.now)
        yield sim.timeout(1.0)
        trace.append(sim.now)
        yield sim.timeout(2.5)
        trace.append(sim.now)

    sim.process(worker(sim))
    sim.run()
    assert trace == [0.0, 1.0, 3.5]


def test_process_return_value_via_join():
    sim = Simulator()
    results = []

    def child(sim):
        yield sim.timeout(2.0)
        return 42

    def parent(sim):
        value = yield sim.process(child(sim))
        results.append((sim.now, value))

    sim.process(parent(sim))
    sim.run()
    assert results == [(2.0, 42)]


def test_joining_finished_process_resumes_immediately():
    sim = Simulator()
    results = []

    def child(sim):
        yield sim.timeout(1.0)
        return "done"

    def parent(sim, child_process):
        yield sim.timeout(5.0)
        value = yield child_process
        results.append((sim.now, value))

    child_process = sim.process(child(sim))
    sim.process(parent(sim, child_process))
    sim.run()
    assert results == [(5.0, "done")]


def test_signal_broadcast_to_multiple_waiters():
    sim = Simulator()
    got = []
    signal = sim.signal("go")

    def waiter(sim, tag):
        payload = yield signal
        got.append((tag, sim.now, payload))

    sim.process(waiter(sim, "a"))
    sim.process(waiter(sim, "b"))
    sim.schedule(3.0, signal.fire, "payload")
    sim.run()
    assert got == [("a", 3.0, "payload"), ("b", 3.0, "payload")]


def test_signal_fire_twice_raises():
    sim = Simulator()
    signal = sim.signal()
    signal.fire(1)
    with pytest.raises(SimulationError):
        signal.fire(2)


def test_signal_fail_throws_into_waiter():
    sim = Simulator()
    caught = []

    def waiter(sim, signal):
        try:
            yield signal
        except ValueError as exc:
            caught.append(str(exc))

    signal = sim.signal()
    sim.process(waiter(sim, signal))
    sim.schedule(1.0, signal.fail, ValueError("boom"))
    sim.run()
    assert caught == ["boom"]


def test_signal_on_fire_callback():
    sim = Simulator()
    got = []
    signal = sim.signal()
    signal.on_fire(got.append)
    sim.schedule(1.0, signal.fire, "x")
    sim.run()
    assert got == ["x"]
    # Registering after fire still delivers.
    signal.on_fire(got.append)
    sim.run()
    assert got == ["x", "x"]


def test_interrupt_waiting_process():
    sim = Simulator()
    trace = []

    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
            trace.append("slept")
        except Interrupt as interrupt:
            trace.append(("interrupted", sim.now, interrupt.cause))

    process = sim.process(sleeper(sim))
    sim.schedule(2.0, process.interrupt, "preempted")
    sim.run()
    assert trace == [("interrupted", 2.0, "preempted")]
    assert not process.alive
    # Interrupting a dead process is a no-op.
    process.interrupt()
    sim.run()


def test_interrupted_timeout_does_not_fire_later():
    sim = Simulator()
    trace = []

    def sleeper(sim):
        try:
            yield sim.timeout(10.0)
            trace.append("woke")
        except Interrupt:
            yield sim.timeout(50.0)
            trace.append("second sleep done")

    process = sim.process(sleeper(sim))
    sim.schedule(1.0, process.interrupt)
    sim.run()
    assert trace == ["second sleep done"]
    assert sim.now == 51.0


def test_all_of_waits_for_every_input():
    sim = Simulator()
    results = []

    def child(sim, delay, value):
        yield sim.timeout(delay)
        return value

    def parent(sim):
        children = [sim.process(child(sim, d, d * 10)) for d in (3.0, 1.0, 2.0)]
        payloads = yield sim.all_of(children)
        results.append((sim.now, payloads))

    sim.process(parent(sim))
    sim.run()
    assert results == [(3.0, [30.0, 10.0, 20.0])]


def test_all_of_empty_fires_immediately():
    sim = Simulator()
    results = []

    def parent(sim):
        payloads = yield sim.all_of([])
        results.append((sim.now, payloads))

    sim.process(parent(sim))
    sim.run()
    assert results == [(0.0, [])]


def test_yielding_garbage_raises():
    sim = Simulator()

    def bad(sim):
        yield 3.14

    sim.process(bad(sim))
    with pytest.raises(SimulationError):
        sim.run()


def test_pending_counts_live_events():
    sim = Simulator()
    event_a = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending() == 2
    event_a.cancel()
    assert sim.pending() == 1


def test_heap_compaction_discards_cancelled_backlog():
    sim = Simulator()
    # Build a large cancelled backlog behind one live event, then check
    # the kernel compacted the heap instead of carrying the dead weight.
    live = sim.schedule(1.0, lambda: None)
    doomed = [sim.schedule(100.0 + i, lambda: None) for i in range(300)]
    for event in doomed:
        event.cancel()
    assert sim.pending() == 1
    assert sim.heap_compactions >= 1
    sim.run()
    assert sim.now == 1.0
    assert sim.events_fired == 1
    assert sim.events_cancelled == 300
    assert live.popped


def test_perf_snapshot_tracks_counters():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    event.cancel()
    sim.schedule(2.0, lambda: None)
    sim.run()
    perf = sim.perf
    assert perf["events_fired"] == 1
    assert perf["events_cancelled"] == 1
    assert perf["pending"] == 0
    assert perf["heap_size"] >= 0


def test_cancel_is_idempotent_for_counters():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    event.cancel()
    event.cancel()
    assert sim.events_cancelled == 1
    assert sim.pending() == 0
