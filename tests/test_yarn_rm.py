"""Integration tests: ResourceManager + NodeManagers over the network."""

import pytest

from repro.capture.collector import FlowCollector
from repro.capture.records import TrafficComponent
from repro.cluster.topology import build_topology
from repro.net.network import FlowNetwork
from repro.simkit import Simulator
from repro.yarn.containers import Resources
from repro.yarn.nodemanager import NodeManager
from repro.yarn.resourcemanager import Application, ResourceManager
from repro.yarn.schedulers import make_scheduler


class CountingApp(Application):
    """Test double: wants a fixed number of containers."""

    def __init__(self, app_id, wanted, queue="default", accept=True):
        self.app_id = app_id
        self.queue = queue
        self.wanted = wanted
        self.accept = accept
        self.granted = []

    def pending_count(self):
        return self.wanted - len(self.granted) if self.accept else self.wanted

    def on_container_granted(self, container):
        if not self.accept:
            return False
        self.granted.append(container)
        return True


def make_yarn(num_hosts=4, scheduler="fifo", capacity=Resources(4, 4096)):
    sim = Simulator()
    topo = build_topology("star", num_hosts=num_hosts + 1)
    net = FlowNetwork(sim, topo)
    collector = FlowCollector(net)
    master, workers = topo.hosts[0], topo.hosts[1:]
    rm = ResourceManager(sim, net, master, make_scheduler(scheduler))
    nodes = [NodeManager(sim, net, host, rm, capacity,
                         heartbeat_interval=1.0, phase=0.1 * (index + 1))
             for index, host in enumerate(workers)]
    return sim, rm, nodes, collector, master, workers


def test_allocation_happens_at_heartbeats():
    sim, rm, nodes, collector, master, workers = make_yarn(num_hosts=2)
    app = CountingApp("app1", wanted=3)
    rm.submit_application(app)
    for node in nodes:
        node.start_heartbeats()
    sim.run(until=0.05)
    assert app.granted == []  # first heartbeat fires at t=0.1
    sim.run(until=2.0)
    assert len(app.granted) == 3
    for node in nodes:
        node.stop_heartbeats()
    sim.run()


def test_grants_respect_node_capacity():
    sim, rm, nodes, collector, *_ = make_yarn(
        num_hosts=2, capacity=Resources(2, 2048))
    app = CountingApp("app1", wanted=10)
    rm.submit_application(app)
    for node in nodes:
        node.start_heartbeats()
    sim.run(until=3.0)
    for node in nodes:
        node.stop_heartbeats()
    sim.run()
    # 2 nodes x 2 slots = 4 containers max.
    assert len(app.granted) == 4
    per_node = {}
    for container in app.granted:
        per_node[container.host.name] = per_node.get(container.host.name, 0) + 1
    assert all(count <= 2 for count in per_node.values())


def test_release_makes_room_for_more_grants():
    sim, rm, nodes, collector, *_ = make_yarn(num_hosts=1, capacity=Resources(1, 1024))
    app = CountingApp("app1", wanted=2)
    rm.submit_application(app)
    nodes[0].start_heartbeats()
    sim.run(until=0.5)
    assert len(app.granted) == 1
    rm.release_container(app.granted[0])
    sim.run(until=2.0)
    assert len(app.granted) == 2
    nodes[0].stop_heartbeats()
    sim.run()


def test_declining_app_does_not_livelock_heartbeat():
    sim, rm, nodes, collector, *_ = make_yarn(num_hosts=1)
    decliner = CountingApp("nope", wanted=5, accept=False)
    taker = CountingApp("yes", wanted=1)
    rm.submit_application(decliner)
    rm.submit_application(taker)
    nodes[0].start_heartbeats()
    sim.run(until=1.5)
    nodes[0].stop_heartbeats()
    sim.run()
    # FIFO would serve the decliner first; after it declines the taker
    # must still be served within the same heartbeat.
    assert len(taker.granted) == 1


def test_fifo_starves_second_app_until_release():
    sim, rm, nodes, collector, *_ = make_yarn(num_hosts=1, scheduler="fifo",
                                              capacity=Resources(2, 2048))
    first = CountingApp("first", wanted=2)
    second = CountingApp("second", wanted=2)
    rm.submit_application(first)
    rm.submit_application(second)
    nodes[0].start_heartbeats()
    sim.run(until=2.0)
    assert len(first.granted) == 2
    assert len(second.granted) == 0
    for container in first.granted:
        rm.release_container(container)
    first.wanted = 2  # no more demand (granted == wanted)
    sim.run(until=4.0)
    assert len(second.granted) == 2
    nodes[0].stop_heartbeats()
    sim.run()


def test_fair_interleaves_two_apps():
    sim, rm, nodes, collector, *_ = make_yarn(num_hosts=1, scheduler="fair",
                                              capacity=Resources(4, 4096))
    a = CountingApp("a", wanted=4)
    b = CountingApp("b", wanted=4)
    rm.submit_application(a)
    rm.submit_application(b)
    nodes[0].start_heartbeats()
    sim.run(until=2.0)
    nodes[0].stop_heartbeats()
    sim.run()
    assert len(a.granted) == 2
    assert len(b.granted) == 2


def test_nm_heartbeats_create_control_flows():
    sim, rm, nodes, collector, master, workers = make_yarn(num_hosts=2)
    for node in nodes:
        node.start_heartbeats()
    sim.run(until=5.0)
    for node in nodes:
        node.stop_heartbeats()
    sim.run()
    control = [r for r in collector.records
               if r.service == "nm-heartbeat"]
    assert len(control) >= 8
    assert all(r.dst == master.name and r.dst_port == 8031 for r in control)


def test_submission_rpc_flow():
    sim, rm, nodes, collector, master, workers = make_yarn()
    app = CountingApp("app1", wanted=0)
    rm.submit_application(app, client_host=workers[0])
    sim.run()
    submissions = [r for r in collector.records if r.service == "job-submission"]
    assert len(submissions) == 1
    assert submissions[0].dst_port == 8032
    assert submissions[0].component == TrafficComponent.CONTROL.value


def test_duplicate_submission_rejected():
    sim, rm, nodes, *_ = make_yarn()
    app = CountingApp("app1", wanted=1)
    rm.submit_application(app)
    with pytest.raises(ValueError):
        rm.submit_application(app)


def test_release_unknown_container_raises():
    sim, rm, nodes, *_ = make_yarn()
    from repro.yarn.containers import Container
    ghost = Container(host=nodes[0].host, app_id="x", resources=Resources())
    with pytest.raises(KeyError):
        rm.release_container(ghost)


def test_cluster_total_sums_node_capacities():
    sim, rm, nodes, *_ = make_yarn(num_hosts=3, capacity=Resources(4, 4096))
    assert rm.cluster_total == Resources(12, 12288)
