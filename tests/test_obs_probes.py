"""Tests for periodic probes: series maths, sampling, lifecycle."""

import pytest

from repro.api import run_capture
from repro.obs import ClusterProbes, ProbeLog, ProbeSeries, Telemetry

EXPECTED_SERIES = {"net.active_flows", "net.throughput_gbps",
                   "net.link_utilisation_mean", "net.link_utilisation_max",
                   "sim.backlog", "yarn.queue_depth"}


def test_probe_series_stats():
    series = ProbeSeries("x")
    series.append(0.0, 1.0)
    series.append(1.0, 5.0)
    series.append(2.0, 3.0)
    assert len(series) == 3
    assert series.mean == pytest.approx(3.0)
    assert series.peak == 5.0
    assert series.peak_time == 1.0


def test_empty_series_stats_are_zero():
    series = ProbeSeries("x")
    assert series.mean == 0.0
    assert series.peak == 0.0
    assert series.peak_time == 0.0


def test_probe_log_roundtrip():
    log = ProbeLog()
    log.sample("a", 0.0, 1.0)
    log.sample("a", 1.0, 2.0)
    log.sample("b", 0.0, 9.0)
    clone = ProbeLog.from_dict(log.to_dict())
    assert clone.series["a"].values == [1.0, 2.0]
    assert clone.series["b"].times == [0.0]
    assert clone.total_samples() == 3


def test_probes_reject_bad_interval():
    with pytest.raises(ValueError):
        ClusterProbes(cluster=None, interval=0.0)


def test_cluster_probes_sample_during_run():
    telemetry = Telemetry.enabled_in_memory(probe_interval=0.5)
    run_capture("terasort", input_gb=0.25, nodes=4, seed=5,
                telemetry=telemetry)
    probes = telemetry.probes
    assert EXPECTED_SERIES <= set(probes.series)
    flows = probes.series["net.active_flows"]
    # t=0 baseline plus one sample per interval across the run.
    assert len(flows) >= 3
    assert flows.times[0] == 0.0
    assert flows.times == sorted(flows.times)
    assert flows.peak > 0  # the job did move traffic
    # Utilisation is a fraction of capacity.
    for value in probes.series["net.link_utilisation_max"].values:
        assert 0.0 <= value <= 1.0 + 1e-9


def test_disabled_telemetry_schedules_no_probes():
    telemetry = Telemetry.disabled()
    run_capture("terasort", input_gb=0.25, nodes=4, seed=5,
                telemetry=telemetry)
    assert telemetry.probes.total_samples() == 0
    assert telemetry.probe_interval == 0.0


# -- bounded series (max_samples downsampling) ---------------------------------------


def test_max_samples_bounds_length_with_stride_doubling():
    series = ProbeSeries("s", max_samples=8)
    for index in range(100):
        series.append(float(index), float(index))
    assert len(series) <= 8
    assert series.samples_seen == 100
    assert series.stride == 16
    # Survivors are exactly the arrival indices divisible by the stride.
    assert series.times == [t for t in range(100) if t % 16 == 0]


def test_downsampled_aggregates_stay_exact():
    series = ProbeSeries("s", max_samples=4)
    values = [3.0, 1.0, 7.0, 2.0, 9.5, 0.5, 4.0, 8.0, 1.5, 6.0]
    for index, value in enumerate(values):
        series.append(float(index), value)
    assert series.mean == pytest.approx(sum(values) / len(values))
    assert series.peak == 9.5
    assert series.peak_time == 4.0  # even if the sample itself was thinned
    assert len(series) <= 4


def test_downsampling_is_deterministic_in_arrival_index():
    def build(times):
        series = ProbeSeries("s", max_samples=4)
        for index, t in enumerate(times):
            series.append(t, float(index))
        return series.values

    # Same arrival count, wildly different timestamps: identical keeps.
    assert build([float(i) for i in range(20)]) == \
        build([i * 0.37 + 5 for i in range(20)])


def test_max_samples_roundtrips_with_exact_aggregates():
    series = ProbeSeries("s", max_samples=4)
    for index in range(33):
        series.append(float(index), float(index % 7))
    clone = ProbeSeries.from_dict(series.to_dict())
    assert clone.times == series.times
    assert clone.samples_seen == 33
    assert clone.mean == pytest.approx(series.mean)
    assert clone.peak == series.peak
    assert clone.peak_time == series.peak_time
    assert clone.stride == series.stride
    # Appends keep honouring the restored stride.
    clone.append(33.0, 1.0)
    assert clone.samples_seen == 34


def test_unbounded_series_keep_legacy_dict_format():
    series = ProbeSeries("s")
    series.append(0.0, 1.0)
    assert set(series.to_dict()) == {"name", "t", "v"}


def test_max_samples_validation_and_log_inheritance():
    with pytest.raises(ValueError):
        ProbeSeries("s", max_samples=1)
    log = ProbeLog(max_samples=8)
    for index in range(50):
        log.sample("a", float(index), 1.0)
    assert len(log.series["a"]) <= 8
    assert log.series["a"].samples_seen == 50
