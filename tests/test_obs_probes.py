"""Tests for periodic probes: series maths, sampling, lifecycle."""

import pytest

from repro.api import run_capture
from repro.obs import ClusterProbes, ProbeLog, ProbeSeries, Telemetry

EXPECTED_SERIES = {"net.active_flows", "net.throughput_gbps",
                   "net.link_utilisation_mean", "net.link_utilisation_max",
                   "sim.backlog", "yarn.queue_depth"}


def test_probe_series_stats():
    series = ProbeSeries("x")
    series.append(0.0, 1.0)
    series.append(1.0, 5.0)
    series.append(2.0, 3.0)
    assert len(series) == 3
    assert series.mean == pytest.approx(3.0)
    assert series.peak == 5.0
    assert series.peak_time == 1.0


def test_empty_series_stats_are_zero():
    series = ProbeSeries("x")
    assert series.mean == 0.0
    assert series.peak == 0.0
    assert series.peak_time == 0.0


def test_probe_log_roundtrip():
    log = ProbeLog()
    log.sample("a", 0.0, 1.0)
    log.sample("a", 1.0, 2.0)
    log.sample("b", 0.0, 9.0)
    clone = ProbeLog.from_dict(log.to_dict())
    assert clone.series["a"].values == [1.0, 2.0]
    assert clone.series["b"].times == [0.0]
    assert clone.total_samples() == 3


def test_probes_reject_bad_interval():
    with pytest.raises(ValueError):
        ClusterProbes(cluster=None, interval=0.0)


def test_cluster_probes_sample_during_run():
    telemetry = Telemetry.enabled_in_memory(probe_interval=0.5)
    run_capture("terasort", input_gb=0.25, nodes=4, seed=5,
                telemetry=telemetry)
    probes = telemetry.probes
    assert EXPECTED_SERIES <= set(probes.series)
    flows = probes.series["net.active_flows"]
    # t=0 baseline plus one sample per interval across the run.
    assert len(flows) >= 3
    assert flows.times[0] == 0.0
    assert flows.times == sorted(flows.times)
    assert flows.peak > 0  # the job did move traffic
    # Utilisation is a fraction of capacity.
    for value in probes.series["net.link_utilisation_max"].values:
        assert 0.0 <= value <= 1.0 + 1e-9


def test_disabled_telemetry_schedules_no_probes():
    telemetry = Telemetry.disabled()
    run_capture("terasort", input_gb=0.25, nodes=4, seed=5,
                telemetry=telemetry)
    assert telemetry.probes.total_samples() == 0
    assert telemetry.probe_interval == 0.0
