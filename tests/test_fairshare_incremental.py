"""Differential tests: FairShareAllocator vs the reference allocator.

The incremental allocator is only allowed to exist because it is
indistinguishable from :func:`repro.net.fairshare.max_min_rates`:

* randomized topologies/caps (>= 200 cases) must agree within 1e-6,
* arbitrary add/remove churn must leave the persistent state exactly
  equivalent to a from-scratch build,
* a seeded end-to-end terasort must produce flow-for-flow identical
  traces with batching on and off (the legacy recompute-per-change
  mode).

The vectorized engine (:mod:`repro.net.vectorized`) is held to the
same oracle *plus* a stronger end-to-end pin: a seeded terasort's
capture must be **byte-identical** across engines, because both
perform the same IEEE-754 round arithmetic by construction.
"""

import random

import pytest

from repro.cluster.config import ClusterSpec, HadoopConfig
from repro.cluster.units import MB
from repro.jobs import make_job
from repro.mapreduce.cluster import HadoopCluster
from repro.net.fairshare import (
    FairShareAllocator,
    allocation_is_feasible,
    bottlenecked_flows,
    max_min_rates,
)

try:
    from repro.net.vectorized import VectorizedFairShareAllocator
    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - numpy is in the toolchain
    HAVE_NUMPY = False

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY,
                                 reason="vectorized engine needs numpy")

REL_TOL = 1e-6


def _random_scenario(rng):
    """One random fabric: links with capacities, flows with paths/caps."""
    num_links = rng.randint(1, 12)
    links = [f"l{i}" for i in range(num_links)]
    capacities = {link: rng.uniform(1.0, 1000.0) for link in links}
    num_flows = rng.randint(1, 24)
    flow_links = {}
    caps = {}
    for index in range(num_flows):
        path_len = rng.randint(0 if rng.random() < 0.1 else 1,
                               min(4, num_links))
        flow_links[f"f{index}"] = rng.sample(links, path_len)
        if rng.random() < 0.4:
            caps[f"f{index}"] = rng.uniform(0.5, 2000.0)
    return capacities, flow_links, caps


def _build_allocator(capacities, flow_links, caps):
    allocator = FairShareAllocator(capacities)
    for flow, links in flow_links.items():
        allocator.add_flow(flow, links, caps.get(flow))
    return allocator


def _assert_rates_match(incremental, reference, context=""):
    assert set(incremental) == set(reference), context
    for flow, expected in reference.items():
        got = incremental[flow]
        if expected == float("inf"):
            assert got == float("inf"), f"{context}: {flow}"
        else:
            assert got == pytest.approx(expected, rel=REL_TOL), (
                f"{context}: flow {flow}: incremental={got} reference={expected}")


def test_differential_200_randomized_cases():
    """>= 200 random fabrics: heap allocator == reference water-filling."""
    for seed in range(250):
        rng = random.Random(seed)
        capacities, flow_links, caps = _random_scenario(rng)
        reference = max_min_rates(flow_links, capacities, caps)
        allocator = _build_allocator(capacities, flow_links, caps)
        incremental = allocator.rates()
        _assert_rates_match(incremental, reference, context=f"seed {seed}")
        routed = {f: l for f, l in flow_links.items() if l}
        assert allocation_is_feasible(
            {f: incremental[f] for f in routed}, routed, capacities)


def test_differential_add_remove_churn():
    """Interleaved add/remove sequences keep state equal to a fresh build."""
    for seed in range(40):
        rng = random.Random(1000 + seed)
        capacities, flow_links, caps = _random_scenario(rng)
        allocator = FairShareAllocator(capacities)
        active = {}
        pool = list(flow_links)
        for step in range(60):
            if active and (rng.random() < 0.4 or not pool):
                flow = rng.choice(list(active))
                del active[flow]
                allocator.remove_flow(flow)
            elif pool:
                flow = pool.pop(rng.randrange(len(pool)))
                active[flow] = flow_links[flow]
                allocator.add_flow(flow, flow_links[flow], caps.get(flow))
            reference = max_min_rates(
                active, capacities, {f: caps[f] for f in active if f in caps})
            _assert_rates_match(allocator.rates(), reference,
                                context=f"seed {seed} step {step}")


def test_allocator_rejects_misuse():
    allocator = FairShareAllocator({"l": 10.0})
    with pytest.raises(ValueError):
        allocator.set_capacity("bad", 0.0)
    with pytest.raises(KeyError):
        allocator.add_flow("f", ["unknown-link"])
    allocator.add_flow("f", ["l"])
    with pytest.raises(ValueError):
        allocator.add_flow("f", ["l"])  # duplicate
    with pytest.raises(ValueError):
        allocator.add_flow("g", ["l"], cap=-1.0)
    with pytest.raises(KeyError):
        allocator.remove_flow("never-added")
    assert len(allocator) == 1 and "f" in allocator
    allocator.remove_flow("f")
    assert len(allocator) == 0


def test_allocator_counts_recomputes_and_time():
    allocator = FairShareAllocator({"l": 100.0})
    allocator.add_flow("a", ["l"])
    allocator.add_flow("b", ["l"], cap=10.0)
    first = allocator.rates()
    assert first["a"] == pytest.approx(90.0)
    assert first["b"] == pytest.approx(10.0)
    allocator.remove_flow("b")
    second = allocator.rates()
    assert second == {"a": pytest.approx(100.0)}
    assert allocator.recomputes == 2
    assert allocator.allocator_seconds >= 0.0


def test_linkless_flows_get_cap_or_infinity():
    allocator = FairShareAllocator()
    allocator.add_flow("free", [])
    allocator.add_flow("capped", [], cap=7.0)
    rates = allocator.rates()
    assert rates["free"] == float("inf")
    assert rates["capped"] == 7.0


def _run_terasort(batch_updates):
    cluster = HadoopCluster(
        ClusterSpec(num_nodes=8, hosts_per_rack=4),
        HadoopConfig(block_size=32 * MB, num_reducers=2), seed=7)
    cluster.net.batch_updates = batch_updates
    results, traces = cluster.run(
        [make_job("terasort", input_gb=0.25, job_id="equiv")])
    assert not results[0].failed
    return cluster, traces[0]


def _comparable(trace):
    """Flow records minus process-global counters.

    ``flow_id`` and the ephemeral port numbers are derived from
    module-level ``itertools.count`` streams (flow ids, write ids,
    block ids), so the second simulation in one process draws different
    values regardless of any engine change.  Endpoints, sizes and the
    *exact* start/end timestamps — the statistics Keddah models — stay.
    """
    return [
        (r.src, r.dst, r.size, r.start, r.end,
         r.component, r.service, r.job_id)
        for r in trace.flows
    ]


def test_seeded_terasort_trace_identical_with_and_without_batching():
    """Tentpole pin: batching must not change the captured traffic at all.

    Same seed, same job, batched vs legacy recompute-per-change mode:
    every flow's endpoints, ports, size and (exact) start/end times must
    match.  Only the number of rate recomputations may differ.
    """
    batched_cluster, batched = _run_terasort(True)
    legacy_cluster, legacy = _run_terasort(False)
    assert _comparable(batched) == _comparable(legacy)
    # The whole point: batching strictly reduces recompute work.
    assert batched_cluster.net.perf["recomputes"] < legacy_cluster.net.perf["recomputes"]
    assert batched_cluster.net.perf["flows_batched"] > 0
    assert legacy_cluster.net.perf["flushes"] == 0


# -- the vectorized engine vs the scalar oracle ---------------------------------------


def _build_vectorized(capacities, flow_links, caps):
    allocator = VectorizedFairShareAllocator(capacities)
    for flow, links in flow_links.items():
        allocator.add_flow(flow, links, caps.get(flow))
    return allocator


@needs_numpy
def test_vectorized_differential_250_randomized_cases():
    """>= 250 random fabrics: numpy water-filling == scalar oracle."""
    for seed in range(250):
        rng = random.Random(seed)
        capacities, flow_links, caps = _random_scenario(rng)
        oracle = _build_allocator(capacities, flow_links, caps).rates()
        vectorized = _build_vectorized(capacities, flow_links, caps).rates()
        _assert_rates_match(vectorized, oracle, context=f"seed {seed}")
        routed = {f: l for f, l in flow_links.items() if l}
        assert allocation_is_feasible(
            {f: vectorized[f] for f in routed}, routed, capacities)


@needs_numpy
def test_vectorized_differential_churn_and_capacity_updates():
    """Add/remove churn + live capacity changes track the scalar engine."""
    for seed in range(40):
        rng = random.Random(2000 + seed)
        capacities, flow_links, caps = _random_scenario(rng)
        scalar = FairShareAllocator(capacities)
        vectorized = VectorizedFairShareAllocator(capacities)
        active = {}
        pool = list(flow_links)
        for step in range(60):
            roll = rng.random()
            if active and (roll < 0.35 or not pool):
                flow = rng.choice(list(active))
                del active[flow]
                scalar.remove_flow(flow)
                vectorized.remove_flow(flow)
            elif roll < 0.45:
                link = rng.choice(list(capacities))
                capacities[link] = rng.uniform(1.0, 1000.0)
                scalar.set_capacity(link, capacities[link])
                vectorized.set_capacity(link, capacities[link])
            elif pool:
                flow = pool.pop(rng.randrange(len(pool)))
                active[flow] = flow_links[flow]
                scalar.add_flow(flow, flow_links[flow], caps.get(flow))
                vectorized.add_flow(flow, flow_links[flow], caps.get(flow))
            _assert_rates_match(vectorized.rates(), scalar.rates(),
                                context=f"seed {seed} step {step}")


@needs_numpy
def test_vectorized_rates_are_bitwise_equal_to_scalar():
    """Stronger than 1e-6: identical round arithmetic → identical bits.

    This is what makes captures byte-identical across engines; if this
    ever regresses, the end-to-end byte pin below explains *where*.
    """
    for seed in range(100):
        rng = random.Random(seed)
        capacities, flow_links, caps = _random_scenario(rng)
        oracle = _build_allocator(capacities, flow_links, caps).rates()
        vectorized = _build_vectorized(capacities, flow_links, caps).rates()
        assert oracle == vectorized, f"seed {seed}"


@needs_numpy
def test_vectorized_rejects_misuse_like_scalar():
    allocator = VectorizedFairShareAllocator({"l": 10.0})
    with pytest.raises(ValueError):
        allocator.set_capacity("bad", 0.0)
    with pytest.raises(KeyError):
        allocator.add_flow("f", ["unknown-link"])
    allocator.add_flow("f", ["l"])
    with pytest.raises(ValueError):
        allocator.add_flow("f", ["l"])  # duplicate
    with pytest.raises(ValueError):
        allocator.add_flow("g", ["l"], cap=-1.0)
    with pytest.raises(KeyError):
        allocator.remove_flow("never-added")
    assert len(allocator) == 1 and "f" in allocator
    allocator.remove_flow("f")
    assert len(allocator) == 0


@needs_numpy
def test_vectorized_linkless_and_counters():
    allocator = VectorizedFairShareAllocator({"l": 100.0})
    allocator.add_flow("free", [])
    allocator.add_flow("capped", [], cap=7.0)
    allocator.add_flow("a", ["l"])
    rates = allocator.rates()
    assert rates["free"] == float("inf")
    assert rates["capped"] == 7.0
    assert rates["a"] == pytest.approx(100.0)
    assert all(isinstance(rate, float) for rate in rates.values())
    allocator.remove_flow("a")
    allocator.rates()
    assert allocator.recomputes == 2
    assert allocator.rounds >= 1
    assert allocator.allocator_seconds >= 0.0


@needs_numpy
def test_vectorized_slot_recycling_reuses_storage():
    """Heavy add/remove churn recycles slots instead of growing arrays."""
    allocator = VectorizedFairShareAllocator({"l": 100.0})
    for round_index in range(50):
        for index in range(8):
            allocator.add_flow(f"f{round_index}_{index}", ["l"])
        rates = allocator.rates()
        assert len(rates) == 8
        for index in range(8):
            allocator.remove_flow(f"f{round_index}_{index}")
    # 8 concurrent flows ever; storage must not have grown past the
    # initial geometric doublings for that population.
    assert allocator._hi <= 16


# -- tolerance-aware helpers (engine-agnostic rate dicts) ------------------------------


def test_allocation_is_feasible_accepts_tolerant_rates():
    capacities = {"l": 100.0}
    flow_links = {"a": ["l"], "b": ["l"]}
    assert allocation_is_feasible({"a": 50.0, "b": 50.0}, flow_links, capacities)
    # A hair over capacity stays feasible within the tolerance...
    assert allocation_is_feasible({"a": 50.0, "b": 50.0 + 4e-5},
                                  flow_links, capacities)
    # ...a real violation does not.
    assert not allocation_is_feasible({"a": 60.0, "b": 50.0},
                                      flow_links, capacities)
    # Flows missing from the rate dict (e.g. not yet allocated) and
    # linkless flows are simply not load; they never crash the check.
    assert allocation_is_feasible({"a": 100.0},
                                  {"a": ["l"], "ghost": ["l"], "free": []},
                                  capacities)


@needs_numpy
def test_helpers_accept_rates_from_either_engine():
    import numpy as np

    capacities = {"l": 100.0, "m": 50.0}
    flow_links = {"a": ["l", "m"], "b": ["l"], "free": []}
    scalar_rates = _build_allocator(capacities, flow_links, {}).rates()
    vector_rates = _build_vectorized(capacities, flow_links, {}).rates()
    for rates in (scalar_rates, vector_rates,
                  {f: np.float64(r) for f, r in vector_rates.items()
                   if r != float("inf")}):
        assert allocation_is_feasible(rates, flow_links, capacities)
        bottled = bottlenecked_flows(rates, flow_links, capacities)
        assert bottled["a"] and bottled["b"]
    assert bottlenecked_flows(scalar_rates, flow_links, capacities)["free"]


def test_bottlenecked_flows_skips_missing_and_coerces():
    capacities = {"l": 100.0}
    flow_links = {"a": ["l"], "ghost": ["l"]}
    bottled = bottlenecked_flows({"a": 100.0}, flow_links, capacities)
    assert bottled == {"a": True}
    capped = bottlenecked_flows({"c": 7.0}, {"c": ["l"]}, capacities,
                                caps={"c": 7.0})
    assert capped["c"]


# -- end-to-end: byte-identical captures across engines --------------------------------


def _reset_counter_streams():
    """Rewind the process-global id streams the capture bytes embed.

    Container/block ids come from module-level ``itertools.count``
    streams, so the *second* simulation in one process would differ in
    ids (and the ports derived from them) for reasons that have nothing
    to do with the engine under test.  Flow ids no longer need
    rewinding: each backend owns its own stream.  Job ids come from the
    per-kind :class:`repro.jobs.base.JobIdStream` fallback, rewound via
    its public reset helper.
    """
    import itertools

    import repro.hdfs.blocks as blocks
    import repro.jobs.base as jobs_base
    import repro.yarn.containers as containers

    jobs_base.reset_default_ids()
    containers._container_ids = itertools.count(1)
    blocks._block_ids = itertools.count(1)


def _run_terasort_engine(engine):
    _reset_counter_streams()
    cluster = HadoopCluster(
        ClusterSpec(num_nodes=8, hosts_per_rack=4, engine=engine),
        HadoopConfig(block_size=32 * MB, num_reducers=2), seed=7)
    results, traces = cluster.run(
        [make_job("terasort", input_gb=0.25, job_id="equiv")])
    assert not results[0].failed
    return cluster, traces[0]


@needs_numpy
def test_seeded_terasort_capture_byte_identical_across_engines(tmp_path):
    """The tentpole acceptance pin: same seed, two engines, same bytes.

    Full-precision float timestamps and sizes are serialised with no
    rounding, so this only passes if every allocated rate is IEEE-754
    identical between the scalar and vectorized water-filling.
    """
    scalar_cluster, scalar_trace = _run_terasort_engine("scalar")
    vector_cluster, vector_trace = _run_terasort_engine("vectorized")
    scalar_path = tmp_path / "scalar.jsonl"
    vector_path = tmp_path / "vectorized.jsonl"
    scalar_trace.to_jsonl(str(scalar_path))
    vector_trace.to_jsonl(str(vector_path))
    assert scalar_path.read_bytes() == vector_path.read_bytes()
    # Both engines did the same logical work, counted identically.
    assert (scalar_cluster.net.perf["recomputes"]
            == vector_cluster.net.perf["recomputes"])
    assert (scalar_cluster.net.perf["waterfill_rounds"]
            == vector_cluster.net.perf["waterfill_rounds"])
    assert scalar_cluster.net.perf["engine"] == "scalar"
    assert vector_cluster.net.perf["engine"] == "vectorized"
