"""Differential tests: FairShareAllocator vs the reference allocator.

The incremental allocator is only allowed to exist because it is
indistinguishable from :func:`repro.net.fairshare.max_min_rates`:

* randomized topologies/caps (>= 200 cases) must agree within 1e-6,
* arbitrary add/remove churn must leave the persistent state exactly
  equivalent to a from-scratch build,
* a seeded end-to-end terasort must produce flow-for-flow identical
  traces with batching on and off (the legacy recompute-per-change
  mode).
"""

import random

import pytest

from repro.cluster.config import ClusterSpec, HadoopConfig
from repro.cluster.units import MB
from repro.jobs import make_job
from repro.mapreduce.cluster import HadoopCluster
from repro.net.fairshare import FairShareAllocator, allocation_is_feasible, max_min_rates

REL_TOL = 1e-6


def _random_scenario(rng):
    """One random fabric: links with capacities, flows with paths/caps."""
    num_links = rng.randint(1, 12)
    links = [f"l{i}" for i in range(num_links)]
    capacities = {link: rng.uniform(1.0, 1000.0) for link in links}
    num_flows = rng.randint(1, 24)
    flow_links = {}
    caps = {}
    for index in range(num_flows):
        path_len = rng.randint(0 if rng.random() < 0.1 else 1,
                               min(4, num_links))
        flow_links[f"f{index}"] = rng.sample(links, path_len)
        if rng.random() < 0.4:
            caps[f"f{index}"] = rng.uniform(0.5, 2000.0)
    return capacities, flow_links, caps


def _build_allocator(capacities, flow_links, caps):
    allocator = FairShareAllocator(capacities)
    for flow, links in flow_links.items():
        allocator.add_flow(flow, links, caps.get(flow))
    return allocator


def _assert_rates_match(incremental, reference, context=""):
    assert set(incremental) == set(reference), context
    for flow, expected in reference.items():
        got = incremental[flow]
        if expected == float("inf"):
            assert got == float("inf"), f"{context}: {flow}"
        else:
            assert got == pytest.approx(expected, rel=REL_TOL), (
                f"{context}: flow {flow}: incremental={got} reference={expected}")


def test_differential_200_randomized_cases():
    """>= 200 random fabrics: heap allocator == reference water-filling."""
    for seed in range(250):
        rng = random.Random(seed)
        capacities, flow_links, caps = _random_scenario(rng)
        reference = max_min_rates(flow_links, capacities, caps)
        allocator = _build_allocator(capacities, flow_links, caps)
        incremental = allocator.rates()
        _assert_rates_match(incremental, reference, context=f"seed {seed}")
        routed = {f: l for f, l in flow_links.items() if l}
        assert allocation_is_feasible(
            {f: incremental[f] for f in routed}, routed, capacities)


def test_differential_add_remove_churn():
    """Interleaved add/remove sequences keep state equal to a fresh build."""
    for seed in range(40):
        rng = random.Random(1000 + seed)
        capacities, flow_links, caps = _random_scenario(rng)
        allocator = FairShareAllocator(capacities)
        active = {}
        pool = list(flow_links)
        for step in range(60):
            if active and (rng.random() < 0.4 or not pool):
                flow = rng.choice(list(active))
                del active[flow]
                allocator.remove_flow(flow)
            elif pool:
                flow = pool.pop(rng.randrange(len(pool)))
                active[flow] = flow_links[flow]
                allocator.add_flow(flow, flow_links[flow], caps.get(flow))
            reference = max_min_rates(
                active, capacities, {f: caps[f] for f in active if f in caps})
            _assert_rates_match(allocator.rates(), reference,
                                context=f"seed {seed} step {step}")


def test_allocator_rejects_misuse():
    allocator = FairShareAllocator({"l": 10.0})
    with pytest.raises(ValueError):
        allocator.set_capacity("bad", 0.0)
    with pytest.raises(KeyError):
        allocator.add_flow("f", ["unknown-link"])
    allocator.add_flow("f", ["l"])
    with pytest.raises(ValueError):
        allocator.add_flow("f", ["l"])  # duplicate
    with pytest.raises(ValueError):
        allocator.add_flow("g", ["l"], cap=-1.0)
    with pytest.raises(KeyError):
        allocator.remove_flow("never-added")
    assert len(allocator) == 1 and "f" in allocator
    allocator.remove_flow("f")
    assert len(allocator) == 0


def test_allocator_counts_recomputes_and_time():
    allocator = FairShareAllocator({"l": 100.0})
    allocator.add_flow("a", ["l"])
    allocator.add_flow("b", ["l"], cap=10.0)
    first = allocator.rates()
    assert first["a"] == pytest.approx(90.0)
    assert first["b"] == pytest.approx(10.0)
    allocator.remove_flow("b")
    second = allocator.rates()
    assert second == {"a": pytest.approx(100.0)}
    assert allocator.recomputes == 2
    assert allocator.allocator_seconds >= 0.0


def test_linkless_flows_get_cap_or_infinity():
    allocator = FairShareAllocator()
    allocator.add_flow("free", [])
    allocator.add_flow("capped", [], cap=7.0)
    rates = allocator.rates()
    assert rates["free"] == float("inf")
    assert rates["capped"] == 7.0


def _run_terasort(batch_updates):
    cluster = HadoopCluster(
        ClusterSpec(num_nodes=8, hosts_per_rack=4),
        HadoopConfig(block_size=32 * MB, num_reducers=2), seed=7)
    cluster.net.batch_updates = batch_updates
    results, traces = cluster.run(
        [make_job("terasort", input_gb=0.25, job_id="equiv")])
    assert not results[0].failed
    return cluster, traces[0]


def _comparable(trace):
    """Flow records minus process-global counters.

    ``flow_id`` and the ephemeral port numbers are derived from
    module-level ``itertools.count`` streams (flow ids, write ids,
    block ids), so the second simulation in one process draws different
    values regardless of any engine change.  Endpoints, sizes and the
    *exact* start/end timestamps — the statistics Keddah models — stay.
    """
    return [
        (r.src, r.dst, r.size, r.start, r.end,
         r.component, r.service, r.job_id)
        for r in trace.flows
    ]


def test_seeded_terasort_trace_identical_with_and_without_batching():
    """Tentpole pin: batching must not change the captured traffic at all.

    Same seed, same job, batched vs legacy recompute-per-change mode:
    every flow's endpoints, ports, size and (exact) start/end times must
    match.  Only the number of rate recomputations may differ.
    """
    batched_cluster, batched = _run_terasort(True)
    legacy_cluster, legacy = _run_terasort(False)
    assert _comparable(batched) == _comparable(legacy)
    # The whole point: batching strictly reduces recompute work.
    assert batched_cluster.net.perf["recomputes"] < legacy_cluster.net.perf["recomputes"]
    assert batched_cluster.net.perf["flows_batched"] > 0
    assert legacy_cluster.net.perf["flushes"] == 0
