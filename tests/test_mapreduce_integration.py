"""Integration tests: full MapReduce jobs on the simulated cluster."""

import pytest

from repro.capture.records import TrafficComponent
from repro.cluster.config import ClusterSpec, HadoopConfig
from repro.cluster.units import MB
from repro.jobs import make_job
from repro.mapreduce.cluster import HadoopCluster


def run_one(kind="terasort", input_gb=0.5, nodes=8, seed=1, config=None,
            cluster_kwargs=None, **job_kwargs):
    config = config or HadoopConfig(block_size=64 * MB, num_reducers=4)
    cluster = HadoopCluster(
        ClusterSpec(num_nodes=nodes, hosts_per_rack=4), config, seed=seed,
        **(cluster_kwargs or {}))
    spec = make_job(kind, input_gb=input_gb, **job_kwargs)
    results, traces = cluster.run([spec])
    return cluster, results[0], traces[0]


def test_terasort_task_counts():
    cluster, result, trace = run_one("terasort", input_gb=0.5)
    # 512 MiB / 64 MiB blocks = 8 maps; 4 configured reducers.
    assert result.num_maps == 8
    assert result.num_reduces == 4
    assert result.completion_time > 0


def test_shuffle_flow_count_is_maps_times_reduces():
    cluster, result, trace = run_one("terasort", input_gb=0.5)
    shuffle = trace.component(TrafficComponent.SHUFFLE)
    # Host-local fetches never reach the wire, so captured <= maps x reduces.
    assert 0 < len(shuffle) <= result.num_maps * result.num_reduces
    # Shuffle volume ~ input for a 1:1 map (jitter is mean-1).
    assert result.rounds[0].shuffle_bytes == pytest.approx(0.5 * 1024 * MB, rel=0.25)


def test_terasort_unreplicated_output_writes_little():
    cluster, result, trace = run_one("terasort", input_gb=0.5)
    write_bytes = trace.total_bytes(TrafficComponent.HDFS_WRITE)
    # replication=1 output stays local; only jar staging + history cross.
    assert write_bytes < 30 * MB


def test_sort_replicated_output_writes_much_more():
    config = HadoopConfig(block_size=64 * MB, num_reducers=4, replication=3)
    cluster, result, trace = run_one("sort", input_gb=0.5, config=config)
    write_bytes = trace.total_bytes(TrafficComponent.HDFS_WRITE)
    # (3-1) network copies of ~512 MiB of output.
    assert write_bytes == pytest.approx(2 * 0.5 * 1024 * MB, rel=0.3)


def test_wordcount_shuffle_much_smaller_than_input():
    cluster, result, trace = run_one("wordcount", input_gb=0.5)
    shuffle = result.rounds[0].shuffle_bytes
    assert shuffle < 0.3 * 0.5 * 1024 * MB  # selectivity 0.15 + jitter


def test_grep_is_read_dominated():
    cluster, result, trace = run_one("grep", input_gb=0.5)
    read_bytes = trace.total_bytes(TrafficComponent.HDFS_READ)
    shuffle_bytes = trace.total_bytes(TrafficComponent.SHUFFLE)
    assert result.rounds[0].shuffle_bytes < 0.05 * 0.5 * 1024 * MB
    # Unless every split was node-local, reads dominate shuffle.
    if read_bytes > 0:
        assert read_bytes > shuffle_bytes


def test_teragen_is_pure_write():
    config = HadoopConfig(block_size=64 * MB, replication=3)
    cluster, result, trace = run_one("teragen", input_gb=0.5, config=config)
    assert result.num_reduces == 0
    assert trace.total_bytes(TrafficComponent.SHUFFLE) == 0
    assert trace.total_bytes(TrafficComponent.HDFS_READ) < 20 * MB  # jar localisation
    # 512 MiB written at replication 3: 2 copies cross the network.
    assert trace.total_bytes(TrafficComponent.HDFS_WRITE) == pytest.approx(
        2 * 0.5 * 1024 * MB, rel=0.2)
    assert result.output_bytes == pytest.approx(0.5 * 1024 * MB, rel=0.2)


def test_dfsio_read_is_pure_read():
    cluster, result, trace = run_one("dfsio-read", input_gb=0.5)
    assert trace.total_bytes(TrafficComponent.SHUFFLE) == 0
    assert result.rounds[0].shuffle_bytes == 0
    assert result.output_bytes == 0


def test_pagerank_runs_multiple_chained_rounds():
    cluster, result, trace = run_one("pagerank", input_gb=0.25, iterations=2)
    assert len(result.rounds) == 2
    # Round 1 reads round 0's output (carryover ~0.9 of input).
    assert result.rounds[1].input_bytes == pytest.approx(
        result.rounds[0].output_bytes, rel=0.01)
    assert result.rounds[1].submit_time >= result.rounds[0].finish_time


def test_kmeans_rereads_input_every_round():
    cluster, result, trace = run_one("kmeans", input_gb=0.25, iterations=3)
    assert len(result.rounds) == 3
    size = 0.25 * 1024 * MB
    for round_result in result.rounds:
        assert round_result.input_bytes == pytest.approx(size, rel=0.01)
        assert round_result.shuffle_bytes < 0.01 * size


def test_flows_carry_job_id_and_components():
    cluster, result, trace = run_one("terasort", input_gb=0.25)
    components = trace.components_present()
    for expected in ("shuffle", "control", "hdfs_write"):
        assert expected in components
    data_flows = [f for f in trace.flows
                  if f.component in ("hdfs_read", "shuffle", "hdfs_write")]
    assert all(f.job_id == result.job_id for f in data_flows)


def test_port_classifier_reconstructs_data_components():
    from repro.capture.classifier import classify_flow
    cluster, result, trace = run_one("terasort", input_gb=0.25)
    for flow in trace.flows:
        if flow.component in ("hdfs_read", "shuffle", "hdfs_write"):
            assert classify_flow(flow).value == flow.component
        elif flow.component == "control":
            # Umbilical notifications ride ephemeral ports -> OTHER.
            assert classify_flow(flow).value in ("control", "other")


def test_determinism_same_seed_same_trace():
    # Two independent clusters, same seed: byte-identical flow streams.
    def capture(seed):
        config = HadoopConfig(block_size=64 * MB, num_reducers=4)
        cluster = HadoopCluster(ClusterSpec(num_nodes=8, hosts_per_rack=4),
                                config, seed=seed)
        spec = make_job("wordcount", input_gb=0.25, job_id="job_fixed")
        results, traces = cluster.run([spec])
        return [(f.src, f.dst, f.size, round(f.start, 9), f.component)
                for f in traces[0].flows]

    assert capture(7) == capture(7)
    assert capture(7) != capture(8)


def test_speculative_execution_duplicates_stragglers():
    config = HadoopConfig(block_size=64 * MB, num_reducers=2, speculative=True)
    cluster, result, trace = run_one("terasort", input_gb=0.5, config=config)
    # Speculation may or may not trigger, but the run must complete and
    # never duplicate shuffle deliveries.
    assert result.rounds[0].shuffle_bytes == pytest.approx(
        result.rounds[0].map_output_bytes, rel=1e-6)


def test_concurrent_jobs_complete_under_fifo_and_fair():
    for scheduler in ("fifo", "fair"):
        config = HadoopConfig(block_size=64 * MB, num_reducers=2,
                              scheduler=scheduler)
        cluster = HadoopCluster(ClusterSpec(num_nodes=8, hosts_per_rack=4),
                                config, seed=3)
        specs = [make_job("wordcount", input_gb=0.25),
                 make_job("grep", input_gb=0.25)]
        results, traces = cluster.run(specs, arrival_times=[0.0, 5.0])
        assert all(r.finish_time > 0 for r in results)
        assert {t.meta.job_kind for t in traces} == {"wordcount", "grep"}


def test_control_traffic_present_but_small():
    cluster, result, trace = run_one("terasort", input_gb=0.5)
    control_bytes = trace.total_bytes(TrafficComponent.CONTROL)
    total = trace.total_bytes()
    assert 0 < control_bytes < 0.01 * total


def test_master_hosts_no_tasks():
    cluster, result, trace = run_one("terasort", input_gb=0.5)
    master = cluster.master.name
    shuffle = trace.component(TrafficComponent.SHUFFLE)
    assert all(master not in (f.src, f.dst) for f in shuffle)


def test_event_queue_drains_after_run():
    cluster, result, trace = run_one("terasort", input_gb=0.25)
    assert cluster.sim.pending() == 0
    assert not cluster.net.active
