"""Unit tests for the scheduler policies."""

import pytest

from repro.yarn.containers import Resources
from repro.yarn.schedulers import (
    CapacityScheduler,
    DrfScheduler,
    FairScheduler,
    FifoScheduler,
    make_scheduler,
)
from repro.yarn.schedulers.base import AppUsage

TOTAL = Resources(vcores=64, memory_mb=64 * 1024)


def app(app_id, order, pending=1, memory=0, vcores=0, queue="default",
        unit=Resources()):
    return AppUsage(app_id=app_id, queue=queue, submit_order=order,
                    pending=pending, usage=Resources(vcores, memory),
                    container_unit=unit)


def test_fifo_picks_earliest_submission():
    scheduler = FifoScheduler()
    chosen = scheduler.select_app([app("b", 2), app("a", 1), app("c", 3)], TOTAL)
    assert chosen.app_id == "a"


def test_fifo_empty_returns_none():
    assert FifoScheduler().select_app([], TOTAL) is None


def test_fair_picks_smallest_memory_usage():
    scheduler = FairScheduler()
    chosen = scheduler.select_app(
        [app("hog", 1, memory=8192), app("starved", 2, memory=1024)], TOTAL)
    assert chosen.app_id == "starved"


def test_fair_ties_break_by_submission():
    scheduler = FairScheduler()
    chosen = scheduler.select_app(
        [app("later", 5, memory=1024), app("earlier", 2, memory=1024)], TOTAL)
    assert chosen.app_id == "earlier"


def test_capacity_serves_most_underserved_queue():
    scheduler = CapacityScheduler({"prod": 0.7, "research": 0.3})
    # prod uses 10% of cluster against 70% capacity -> ratio 0.14;
    # research uses 10% against 30% -> ratio 0.33.  prod wins.
    candidates = [
        app("p", 2, memory=int(TOTAL.memory_mb * 0.10), queue="prod"),
        app("r", 1, memory=int(TOTAL.memory_mb * 0.10), queue="research"),
    ]
    assert scheduler.select_app(candidates, TOTAL).app_id == "p"


def test_capacity_fifo_within_queue():
    scheduler = CapacityScheduler({"default": 1.0})
    candidates = [app("second", 2), app("first", 1)]
    assert scheduler.select_app(candidates, TOTAL).app_id == "first"


def test_capacity_unknown_queue_falls_back_to_default():
    scheduler = CapacityScheduler({"default": 0.5, "prod": 0.5})
    candidates = [
        app("mystery", 1, memory=4096, queue="adhoc"),
        app("p", 2, memory=0, queue="prod"),
    ]
    # prod is idle (ratio 0) vs adhoc->default ratio > 0.
    assert scheduler.select_app(candidates, TOTAL).app_id == "p"


def test_capacity_rejects_bad_config():
    with pytest.raises(ValueError):
        CapacityScheduler({})
    with pytest.raises(ValueError):
        CapacityScheduler({"q": -0.1})


def test_drf_picks_smallest_dominant_share():
    scheduler = DrfScheduler()
    # cpu-heavy app: 32/64 vcores = 0.5 dominant; mem-heavy: 16/64 GiB = 0.25.
    candidates = [
        app("cpu", 1, vcores=32, memory=1024),
        app("mem", 2, vcores=2, memory=16 * 1024),
    ]
    assert scheduler.select_app(candidates, TOTAL).app_id == "mem"


def test_drf_equals_fair_for_homogeneous_usage():
    drf, fair = DrfScheduler(), FairScheduler()
    candidates = [app("a", 1, memory=2048, vcores=2),
                  app("b", 2, memory=1024, vcores=1)]
    assert (drf.select_app(candidates, TOTAL).app_id
            == fair.select_app(candidates, TOTAL).app_id == "b")


def test_make_scheduler_factory():
    assert make_scheduler("fifo").name == "fifo"
    assert make_scheduler("fair").name == "fair"
    assert make_scheduler("capacity", {"q": 1.0}).name == "capacity"
    assert make_scheduler("drf").name == "drf"
    with pytest.raises(ValueError):
        make_scheduler("lottery")


def test_resources_arithmetic():
    a = Resources(2, 2048)
    b = Resources(1, 1024)
    assert a + b == Resources(3, 3072)
    assert a - b == Resources(1, 1024)
    assert b.fits_in(a)
    assert not a.fits_in(b)
    assert Resources.times(b, 4) == Resources(4, 4096)
    assert Resources.zero().dominant_share(TOTAL) == 0.0
    with pytest.raises(ValueError):
        Resources(-1, 0)


def test_dominant_share_uses_max_dimension():
    usage = Resources(vcores=32, memory_mb=1024)
    assert usage.dominant_share(TOTAL) == pytest.approx(0.5)
