"""Property-based end-to-end invariants of the whole substrate.

Hypothesis drives random (job, input, cluster, config) combinations
through a full capture and checks the invariants that must hold for
*any* configuration — the strongest regression net in the suite.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster.config import ClusterSpec, HadoopConfig
from repro.cluster.units import MB
from repro.jobs import make_job
from repro.mapreduce import counters as ctr
from repro.mapreduce.cluster import HadoopCluster

JOB_KINDS = ["terasort", "wordcount", "grep", "teragen", "dfsio-read"]


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    kind=st.sampled_from(JOB_KINDS),
    input_mb=st.sampled_from([64, 160, 288]),
    nodes=st.sampled_from([4, 6, 8]),
    reducers=st.integers(min_value=1, max_value=6),
    replication=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=50),
)
def test_capture_invariants(kind, input_mb, nodes, reducers, replication, seed):
    cluster = HadoopCluster(
        ClusterSpec(num_nodes=nodes, hosts_per_rack=4),
        HadoopConfig(block_size=32 * MB, num_reducers=reducers,
                     replication=replication),
        seed=seed)
    spec = make_job(kind, input_gb=input_mb / 1024.0, job_id="prop")
    results, traces = cluster.run([spec])
    result, trace = results[0], traces[0]
    round0 = result.rounds[0]
    counters = result.counters()

    # -- termination and cleanliness ------------------------------------------
    assert not result.failed
    assert result.finish_time > result.submit_time
    assert cluster.sim.pending() == 0
    assert not cluster.net.active

    # -- task accounting ---------------------------------------------------------
    expected_maps = max(1, -(-int(input_mb * MB) // (32 * MB))) \
        if kind != "teragen" else round0.num_maps
    if kind != "teragen":
        assert round0.num_maps == expected_maps
    assert counters[ctr.TOTAL_LAUNCHED_MAPS] == round0.num_maps
    assert counters[ctr.NUM_KILLED_MAPS] == 0

    # -- flow sanity ----------------------------------------------------------------
    for flow in trace.flows:
        assert flow.size >= 0
        assert flow.end >= flow.start
        assert flow.src != flow.dst  # local transfers never captured

    # -- conservation -----------------------------------------------------------------
    # Captured shuffle (network) bytes never exceed the map output, and
    # together with host-local fetches they equal it exactly.
    if round0.num_reduces > 0:
        assert trace.total_bytes("shuffle") <= round0.map_output_bytes + 1.0
        assert round0.shuffle_bytes == pytest.approx(round0.map_output_bytes)
    # HDFS write traffic is bounded by the replication pipeline:
    # logical bytes written are counted; each crosses the wire at most
    # `replication` times and at least `replication - 1` times.
    logical = counters[ctr.HDFS_BYTES_WRITTEN] + 2 * MB  # + jar staging
    network_writes = trace.total_bytes("hdfs_write")
    max_replication = max(replication, min(10, nodes))  # jar uses up to 10
    assert network_writes <= logical * max_replication
    # Reads on the wire are at most the bytes read from HDFS.
    assert trace.total_bytes("hdfs_read") <= counters[ctr.HDFS_BYTES_READ] + 1.0

    # -- capture window ---------------------------------------------------------------
    data_flows = [f for f in trace.flows
                  if f.component in ("hdfs_read", "shuffle", "hdfs_write")]
    for flow in data_flows:
        assert flow.start >= result.submit_time - 1e-9
        assert flow.end <= result.finish_time + 1e-6


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    kind=st.sampled_from(["wordcount", "grep"]),
    seed=st.integers(min_value=0, max_value=30),
)
def test_same_seed_reproduces_exactly(kind, seed):
    def fingerprint():
        cluster = HadoopCluster(
            ClusterSpec(num_nodes=4, hosts_per_rack=4),
            HadoopConfig(block_size=32 * MB, num_reducers=2), seed=seed)
        _, traces = cluster.run([make_job(kind, input_gb=0.125, job_id="det")])
        return [(f.src, f.dst, f.size, round(f.start, 9), round(f.end, 9),
                 f.component) for f in traces[0].flows]

    assert fingerprint() == fingerprint()
