"""Tests for the HDFS balancer."""

import numpy as np
import pytest

from repro.cluster.topology import build_topology
from repro.cluster.units import MB
from repro.hdfs.balancer import Balancer
from repro.hdfs.namenode import NameNode
from repro.hdfs.placement import PlacementPolicy
from repro.net.network import FlowNetwork
from repro.simkit import Simulator


class PinnedPlacement(PlacementPolicy):
    """Places every replica on the first hosts: maximal skew."""

    def choose_targets(self, hosts, replication, writer, rng):
        return list(hosts)[:min(replication, len(hosts))]


def make_skewed_cluster(num_hosts=6, blocks=8, block_size=32 * MB,
                        replication=1):
    sim = Simulator()
    topo = build_topology("tree", num_hosts=num_hosts, hosts_per_rack=3)
    net = FlowNetwork(sim, topo)
    nn = NameNode(topo.hosts[0], topo.hosts, policy=PinnedPlacement(),
                  rng=np.random.default_rng(0))
    nn.create_file("/skewed")
    for _ in range(blocks):
        nn.allocate_block("/skewed", block_size, replication, writer=None)
    return sim, net, nn


def test_bytes_per_node_and_blocks_on():
    sim, net, nn = make_skewed_cluster(blocks=4, replication=2)
    usage = nn.bytes_per_node()
    # Pinned placement: replicas on hosts[0] and hosts[1] only.
    hosts = sorted(usage, key=lambda h: h.name)
    assert usage[hosts[0]] == 4 * 32 * MB
    assert usage[hosts[1]] == 4 * 32 * MB
    assert usage[hosts[2]] == 0
    assert len(nn.blocks_on(hosts[0])) == 4


def test_plan_moves_from_full_to_empty():
    sim, net, nn = make_skewed_cluster()
    balancer = Balancer(sim, net, nn, threshold=0.1)
    moves = balancer.plan()
    assert moves
    sources = {source.name for _, source, _ in moves}
    assert sources == {"h000"}  # only the loaded node sheds blocks
    # Planning never moves a block onto a node already holding it.
    for location, _, target in moves:
        assert target not in location.replicas


def test_run_once_reduces_spread_and_generates_traffic():
    sim, net, nn = make_skewed_cluster()
    balancer = Balancer(sim, net, nn, bandwidth=50.0 * MB, threshold=0.1)
    report, process = balancer.run_once()
    initial = report.initial_spread
    sim.run()
    assert report.moves > 0
    assert report.bytes_moved == report.moves * 32 * MB
    assert report.final_spread < initial
    assert net.completed_count == report.moves
    assert net.total_bytes == pytest.approx(report.bytes_moved)


def test_moves_commit_in_block_map():
    sim, net, nn = make_skewed_cluster(blocks=4)
    balancer = Balancer(sim, net, nn)
    report, _ = balancer.run_once()
    sim.run()
    usage = nn.bytes_per_node()
    # Replication preserved: total physical bytes unchanged.
    assert sum(usage.values()) == 4 * 32 * MB
    for location in nn.locate_file("/skewed"):
        assert len(location.replicas) == 1
        assert len(set(location.replicas)) == 1


def test_bandwidth_throttle_paces_moves():
    sim, net, nn = make_skewed_cluster(blocks=2)
    slow = Balancer(sim, net, nn, bandwidth=8.0 * MB,
                    max_concurrent_moves=1)
    report, _ = slow.run_once()
    sim.run()
    if report.moves:
        # Each 32 MiB block at 8 MiB/s takes 4 s, sequentially.
        assert sim.now >= report.moves * 4.0 * 0.999


def test_balanced_cluster_plans_nothing():
    sim = Simulator()
    topo = build_topology("star", num_hosts=4)
    net = FlowNetwork(sim, topo)
    nn = NameNode(topo.hosts[0], topo.hosts, rng=np.random.default_rng(1))
    nn.create_file("/even")
    for _ in range(8):  # default placement spreads these out
        nn.allocate_block("/even", 32 * MB, 1, writer=None)
    balancer = Balancer(sim, net, nn, threshold=2.0)
    assert balancer.plan() == []
    report, _ = balancer.run_once()
    sim.run()
    assert report.moves == 0


def test_balancer_validation():
    sim, net, nn = make_skewed_cluster()
    with pytest.raises(ValueError):
        Balancer(sim, net, nn, bandwidth=0)
    with pytest.raises(ValueError):
        Balancer(sim, net, nn, threshold=0)
