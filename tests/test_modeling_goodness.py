"""Tests for AD statistics, Q-Q points, bootstrap and scaling laws."""

import numpy as np
import pytest
from scipy import stats

from repro.modeling.distributions import fit_family
from repro.modeling.goodness import anderson_darling, bootstrap_ks_pvalue, qq_points
from repro.modeling.scaling import LinearLaw, PowerLaw, best_scaling_law


def test_anderson_darling_small_for_true_model():
    rng = np.random.default_rng(0)
    data = rng.normal(loc=5.0, scale=2.0, size=2000)
    a2 = anderson_darling(data, lambda x: stats.norm.cdf(x, 5.0, 2.0))
    assert a2 < 2.5


def test_anderson_darling_large_for_wrong_model():
    rng = np.random.default_rng(1)
    data = rng.exponential(scale=1.0, size=2000)
    a2 = anderson_darling(data, lambda x: stats.norm.cdf(x, 0.0, 1.0))
    assert a2 > 50.0


@pytest.mark.filterwarnings("ignore::FutureWarning")  # scipy.anderson API change
def test_anderson_darling_matches_scipy_normal_case():
    rng = np.random.default_rng(2)
    data = rng.normal(size=500)
    # scipy's anderson() fits mu/sigma; do the same for comparability.
    mu, sigma = data.mean(), data.std(ddof=1)
    ours = anderson_darling(data, lambda x: stats.norm.cdf(x, mu, sigma))
    scipys = stats.anderson(data, dist="norm").statistic
    assert ours == pytest.approx(scipys, rel=1e-6)


def test_anderson_darling_rejects_empty():
    with pytest.raises(ValueError):
        anderson_darling([], stats.norm.cdf)


def test_qq_points_on_true_model_lie_on_diagonal():
    rng = np.random.default_rng(3)
    data = rng.exponential(scale=4.0, size=5000)
    pairs = qq_points(data, lambda p: stats.expon.ppf(p, scale=4.0), points=16)
    assert len(pairs) == 16
    for theoretical, empirical in pairs:
        assert empirical == pytest.approx(theoretical, rel=0.25)


def test_qq_rejects_empty():
    with pytest.raises(ValueError):
        qq_points([], lambda p: p)


def test_bootstrap_pvalue_high_for_true_family():
    rng = np.random.default_rng(4)
    data = rng.exponential(scale=2.0, size=300)
    fitted = fit_family("exponential", data)
    p = bootstrap_ks_pvalue(data, fitted,
                            refit=lambda s: fit_family("exponential", s),
                            rounds=60, seed=1)
    assert p > 0.05


def test_bootstrap_pvalue_low_for_wrong_family():
    rng = np.random.default_rng(5)
    data = rng.uniform(1.0, 2.0, size=400)
    fitted = fit_family("exponential", data)
    p = bootstrap_ks_pvalue(data, fitted,
                            refit=lambda s: fit_family("exponential", s),
                            rounds=60, seed=2)
    assert p < 0.05


def test_bootstrap_validation():
    fitted = fit_family("exponential", [1.0, 2.0, 3.0])
    with pytest.raises(ValueError):
        bootstrap_ks_pvalue([], fitted, refit=lambda s: fitted)
    with pytest.raises(ValueError):
        bootstrap_ks_pvalue([1.0], fitted, refit=lambda s: fitted, rounds=0)


# -- power law ------------------------------------------------------------------


def test_power_law_recovers_exponent():
    xs = [1.0, 2.0, 4.0, 8.0]
    ys = [3.0 * x ** 1.5 for x in xs]
    law = PowerLaw.fit(xs, ys)
    assert law.exponent == pytest.approx(1.5)
    assert law.coefficient == pytest.approx(3.0)
    assert law.predict(16.0) == pytest.approx(3.0 * 16 ** 1.5)
    assert law.predict(0.0) == 0.0


def test_power_law_single_point_assumes_linear():
    law = PowerLaw.fit([2.0], [10.0])
    assert law.exponent == 1.0
    assert law.predict(4.0) == pytest.approx(20.0)


def test_power_law_validation_and_roundtrip():
    with pytest.raises(ValueError):
        PowerLaw.fit([1.0, -1.0], [1.0, 1.0])
    with pytest.raises(ValueError):
        PowerLaw.fit([], [])
    law = PowerLaw(2.0, 0.5)
    assert PowerLaw.from_dict(law.to_dict()) == law


def test_best_scaling_law_picks_power_for_quadratic():
    xs = [1.0, 2.0, 4.0, 8.0, 16.0]
    ys = [x ** 2 for x in xs]
    law = best_scaling_law(xs, ys)
    assert isinstance(law, PowerLaw)
    assert law.exponent == pytest.approx(2.0)


def test_best_scaling_law_picks_linear_for_affine():
    xs = [1.0, 2.0, 4.0, 8.0]
    ys = [10.0 * x + 5.0 for x in xs]
    law = best_scaling_law(xs, ys)
    assert isinstance(law, LinearLaw)


def test_best_scaling_law_falls_back_on_nonpositive_data():
    law = best_scaling_law([1.0, 2.0], [0.0, 5.0])
    assert isinstance(law, LinearLaw)
