"""Unit + property tests for max-min fair allocation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.fairshare import allocation_is_feasible, bottlenecked_flows, max_min_rates


def test_single_flow_gets_full_bottleneck():
    rates = max_min_rates({"f": ["l1", "l2"]}, {"l1": 100.0, "l2": 40.0})
    assert rates["f"] == pytest.approx(40.0)


def test_equal_flows_split_link_evenly():
    rates = max_min_rates({"a": ["l"], "b": ["l"], "c": ["l"], "d": ["l"]}, {"l": 100.0})
    assert all(rate == pytest.approx(25.0) for rate in rates.values())


def test_classic_two_bottleneck_example():
    # a crosses both links; b only l1; c only l2.
    # l1=10 shared by {a,b}; l2=4 shared by {a,c}.
    # Progressive filling: level 2 freezes a,c at l2; b then takes 8 on l1.
    rates = max_min_rates(
        {"a": ["l1", "l2"], "b": ["l1"], "c": ["l2"]},
        {"l1": 10.0, "l2": 4.0})
    assert rates["a"] == pytest.approx(2.0)
    assert rates["c"] == pytest.approx(2.0)
    assert rates["b"] == pytest.approx(8.0)


def test_flow_cap_is_respected_and_residual_redistributed():
    rates = max_min_rates(
        {"capped": ["l"], "free": ["l"]},
        {"l": 100.0},
        caps={"capped": 10.0})
    assert rates["capped"] == pytest.approx(10.0)
    assert rates["free"] == pytest.approx(90.0)


def test_cap_above_fair_share_is_inert():
    rates = max_min_rates(
        {"a": ["l"], "b": ["l"]},
        {"l": 100.0},
        caps={"a": 500.0})
    assert rates["a"] == pytest.approx(50.0)
    assert rates["b"] == pytest.approx(50.0)


def test_linkless_flow_gets_cap_or_infinity():
    rates = max_min_rates({"local": [], "capped_local": []}, {}, caps={"capped_local": 7.0})
    assert rates["local"] == float("inf")
    assert rates["capped_local"] == 7.0


def test_empty_input():
    assert max_min_rates({}, {}) == {}


def test_zero_capacity_link_raises():
    with pytest.raises(ValueError):
        max_min_rates({"f": ["l"]}, {"l": 0.0})


def _random_scenario(draw):
    num_links = draw(st.integers(min_value=1, max_value=6))
    links = [f"l{i}" for i in range(num_links)]
    capacities = {
        link: draw(st.floats(min_value=1.0, max_value=1000.0,
                             allow_nan=False, allow_infinity=False))
        for link in links
    }
    num_flows = draw(st.integers(min_value=1, max_value=10))
    flow_links = {}
    caps = {}
    for flow_index in range(num_flows):
        path = draw(st.lists(st.sampled_from(links), min_size=1, max_size=3, unique=True))
        flow_links[f"f{flow_index}"] = path
        if draw(st.booleans()):
            caps[f"f{flow_index}"] = draw(
                st.floats(min_value=0.5, max_value=2000.0,
                          allow_nan=False, allow_infinity=False))
    return flow_links, capacities, caps


@settings(max_examples=200, deadline=None)
@given(st.data())
def test_max_min_properties(data):
    """Feasibility + everyone-bottlenecked + cap respect on random networks."""
    flow_links, capacities, caps = _random_scenario(data.draw)
    rates = max_min_rates(flow_links, capacities, caps)

    assert set(rates) == set(flow_links)
    assert all(rate >= 0 for rate in rates.values())
    assert allocation_is_feasible(rates, flow_links, capacities)
    for flow, cap in caps.items():
        assert rates[flow] <= cap * (1 + 1e-6)
    # Max-min optimality certificate: every flow is bottlenecked.
    blocked = bottlenecked_flows(rates, flow_links, capacities, caps)
    assert all(blocked.values()), f"non-bottlenecked flows in {rates}"


@settings(max_examples=100, deadline=None)
@given(st.data())
def test_max_min_is_deterministic(data):
    flow_links, capacities, caps = _random_scenario(data.draw)
    first = max_min_rates(flow_links, capacities, caps)
    second = max_min_rates(flow_links, capacities, caps)
    assert first == second
