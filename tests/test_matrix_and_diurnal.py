"""Tests for traffic matrices and diurnal arrivals."""

import numpy as np
import pytest

from repro.analysis.matrix import host_matrix, matrix_sparsity, rack_matrix, rack_matrix_table
from repro.capture.records import CaptureMeta, FlowRecord, JobTrace
from repro.workloads.arrivals import DiurnalArrivals


def flow(src, dst, src_rack, dst_rack, size):
    return FlowRecord(src=src, dst=dst, src_rack=src_rack, dst_rack=dst_rack,
                      src_port=13562, dst_port=49000, size=size,
                      start=0.0, end=1.0, component="shuffle")


def make_trace():
    flows = [
        flow("a", "b", 0, 0, 100.0),
        flow("a", "c", 0, 1, 200.0),
        flow("c", "a", 1, 0, 50.0),
        flow("a", "c", 0, 1, 25.0),
    ]
    return JobTrace(meta=CaptureMeta(job_id="m", job_kind="t",
                                     input_bytes=1e9), flows=flows)


def test_host_matrix_accumulates_pairs():
    matrix = host_matrix(make_trace())
    assert matrix[("a", "b")] == 100.0
    assert matrix[("a", "c")] == 225.0
    assert matrix[("c", "a")] == 50.0


def test_rack_matrix_and_cross_share():
    matrix = rack_matrix(make_trace())
    assert matrix[(0, 0)] == 100.0
    assert matrix[(0, 1)] == 225.0
    assert matrix[(1, 0)] == 50.0
    table = rack_matrix_table(make_trace())
    assert table.rows  # one row per rack
    assert "cross-rack share" in table.notes[0]


def test_matrix_sparsity():
    matrix = host_matrix(make_trace())
    # 3 hosts -> 6 ordered pairs; 3 carry traffic.
    assert matrix_sparsity(matrix, endpoints=3) == pytest.approx(0.5)
    assert matrix_sparsity({}, endpoints=1) == 0.0


def test_component_filter():
    trace = make_trace()
    assert host_matrix(trace, component="hdfs_read") == {}


# -- diurnal arrivals -----------------------------------------------------------------


def test_diurnal_validation():
    with pytest.raises(ValueError):
        DiurnalArrivals(base_rate=0.0)
    with pytest.raises(ValueError):
        DiurnalArrivals(base_rate=1.0, amplitude=1.0)
    with pytest.raises(ValueError):
        DiurnalArrivals(base_rate=1.0, period=0.0)


def test_diurnal_rate_oscillates():
    process = DiurnalArrivals(base_rate=1.0, amplitude=0.5, period=100.0,
                              peak_time=0.0)
    assert process.rate_at(0.0) == pytest.approx(1.5)
    assert process.rate_at(50.0) == pytest.approx(0.5)
    assert process.rate_at(100.0) == pytest.approx(1.5)


def test_diurnal_sampling_concentrates_near_peaks():
    process = DiurnalArrivals(base_rate=1.0, amplitude=0.9, period=100.0,
                              peak_time=0.0)
    times = process.sample(3000, np.random.default_rng(0))
    assert times[0] == 0.0
    assert times == sorted(times)
    # Classify arrivals by phase: near-peak vs near-trough halves.
    near_peak = sum(1 for t in times
                    if (t % 100.0) < 25.0 or (t % 100.0) > 75.0)
    assert near_peak / len(times) > 0.65


def test_diurnal_mean_rate_close_to_base():
    process = DiurnalArrivals(base_rate=0.5, amplitude=0.6, period=50.0)
    times = process.sample(2000, np.random.default_rng(1))
    observed_rate = len(times) / times[-1]
    assert observed_rate == pytest.approx(0.5, rel=0.2)
