"""Crash-resume acceptance: SIGKILL mid-pipeline, resume, byte-identity.

These tests drive the real CLI in subprocesses because the crash hook
(`KEDDAH_PIPELINE_CRASH_IN`) SIGKILLs the hosting process — exactly
the failure the journal + manifest machinery must survive.
"""

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

from repro.experiments.dag import DAGJournal, RUNNING

REPO = Path(__file__).resolve().parents[1]

TINY = ["--job", "grep", "--sizes-gb", "0.0625,0.125",
        "--experiments", ""]


def _keddah(args, crash_in=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env.pop("KEDDAH_PIPELINE_CRASH_IN", None)
    if crash_in:
        env["KEDDAH_PIPELINE_CRASH_IN"] = crash_in
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        env=env, cwd=str(REPO), capture_output=True, text=True,
        timeout=180)


def _node_manifests(root):
    manifests = {}
    for path in sorted(Path(root).glob("nodes/*/outputs.json")):
        manifests[path.parent.name] = json.loads(
            path.read_text(encoding="utf-8"))
    return manifests


def test_sigkill_mid_fit_resume_is_byte_identical_with_zero_rerun(tmp_path):
    baseline = tmp_path / "baseline"
    crashed = tmp_path / "crashed"

    clean = _keddah(["pipeline", "run", "--dir", str(baseline), *TINY])
    assert clean.returncode == 0, clean.stderr

    killed = _keddah(["pipeline", "run", "--dir", str(crashed), *TINY],
                     crash_in="fit")
    assert killed.returncode == -signal.SIGKILL

    resumed = _keddah(["pipeline", "resume", "--dir", str(crashed)])
    assert resumed.returncode == 0, resumed.stderr
    assert "already complete" in resumed.stdout

    # Zero re-execution: only the killed node entered RUNNING twice.
    journal = DAGJournal(crashed / "journal.jsonl")
    counts = journal.run_counts()
    assert counts.pop("fit") == 2
    assert counts and all(count == 1 for count in counts.values())

    # Byte-identity: every node dir (same signatures) and every output
    # digest matches the uninterrupted run, including the final report.
    base_manifests = _node_manifests(baseline)
    crash_manifests = _node_manifests(crashed)
    assert set(base_manifests) == set(crash_manifests)
    for name, manifest in base_manifests.items():
        assert manifest["outputs"] == crash_manifests[name]["outputs"], name

    report_dir = next(baseline.glob("nodes/report@*"))
    twin = crashed / "nodes" / report_dir.name
    base_report = (report_dir / "work" / "report.md").read_bytes()
    assert (twin / "work" / "report.md").read_bytes() == base_report


def test_crash_before_any_completion_then_full_resume(tmp_path):
    root = tmp_path / "pl"
    killed = _keddah(["pipeline", "run", "--dir", str(root), *TINY],
                     crash_in="capture")
    assert killed.returncode == -signal.SIGKILL
    # The journal survived the kill and shows capture mid-flight.
    journal = DAGJournal(root / "journal.jsonl")
    assert journal.last_states()["capture"]["state"] == RUNNING

    resumed = _keddah(["pipeline", "resume", "--dir", str(root)])
    assert resumed.returncode == 0, resumed.stderr
    manifests = _node_manifests(root)
    assert {name.split("@")[0] for name in manifests} == {
        "capture", "classify", "fit", "replay", "validate", "report"}


def test_resume_without_a_spec_is_a_clean_error(tmp_path):
    missing = _keddah(["pipeline", "resume", "--dir",
                       str(tmp_path / "nowhere")])
    assert missing.returncode == 2
    assert "pipeline.json" in missing.stdout + missing.stderr
