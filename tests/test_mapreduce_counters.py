"""Tests for Hadoop-style job counters and their accounting identities."""

import pytest

from repro.cluster.config import ClusterSpec, HadoopConfig
from repro.cluster.units import MB
from repro.jobs import make_job
from repro.mapreduce import counters as ctr
from repro.mapreduce.cluster import HadoopCluster
from repro.mapreduce.counters import JobCounters


def run(kind="terasort", input_gb=0.5, seed=1, **config_overrides):
    defaults = dict(block_size=32 * MB, num_reducers=4)
    defaults.update(config_overrides)
    cluster = HadoopCluster(ClusterSpec(num_nodes=8, hosts_per_rack=4),
                            HadoopConfig(**defaults), seed=seed)
    results, traces = cluster.run([make_job(kind, input_gb=input_gb)])
    return results[0]


def test_counter_bag_basics():
    counters = JobCounters()
    counters.increment(ctr.MAP_INPUT_BYTES, 100.0)
    counters.increment(ctr.MAP_INPUT_BYTES, 50.0)
    assert counters[ctr.MAP_INPUT_BYTES] == 150.0
    assert counters.get(ctr.REDUCE_OUTPUT_BYTES) == 0.0
    with pytest.raises(KeyError):
        counters.increment("MADE_UP")
    with pytest.raises(KeyError):
        counters.get("MADE_UP")


def test_counter_merge_and_roundtrip():
    a = JobCounters({ctr.MAP_INPUT_BYTES: 10.0})
    b = JobCounters({ctr.MAP_INPUT_BYTES: 5.0, ctr.DATA_LOCAL_MAPS: 2.0})
    merged = a.merge(b)
    assert merged[ctr.MAP_INPUT_BYTES] == 15.0
    assert merged[ctr.DATA_LOCAL_MAPS] == 2.0
    clone = JobCounters.from_dict(merged.to_dict())
    assert clone.values == merged.values


def test_counter_render():
    counters = JobCounters({ctr.TOTAL_LAUNCHED_MAPS: 16.0})
    text = counters.render()
    assert "TOTAL_LAUNCHED_MAPS=16" in text


def test_terasort_counter_identities():
    result = run("terasort", input_gb=0.5)
    counters = result.counters()

    # Input accounting: every split byte counted once.
    assert counters[ctr.MAP_INPUT_BYTES] == pytest.approx(0.5 * 1024 * MB)
    # Shuffle conservation: map output == reduce shuffle == reduce input.
    assert counters[ctr.REDUCE_SHUFFLE_BYTES] == pytest.approx(
        counters[ctr.MAP_OUTPUT_BYTES], rel=1e-9)
    assert counters[ctr.REDUCE_INPUT_BYTES] == pytest.approx(
        counters[ctr.REDUCE_SHUFFLE_BYTES])
    # Spills: the full map output hits local disk before the shuffle.
    assert counters[ctr.FILE_BYTES_WRITTEN] == pytest.approx(
        counters[ctr.MAP_OUTPUT_BYTES])
    # Task launches match the round's task counts (no failures here).
    assert counters[ctr.TOTAL_LAUNCHED_MAPS] == result.rounds[0].num_maps
    assert counters[ctr.TOTAL_LAUNCHED_REDUCES] == result.rounds[0].num_reduces
    assert counters[ctr.NUM_KILLED_MAPS] == 0


def test_locality_counters_sum_to_split_reads():
    result = run("terasort", input_gb=0.5, seed=2)
    counters = result.counters()
    round0 = result.rounds[0]
    locality_total = (counters[ctr.DATA_LOCAL_MAPS]
                      + counters[ctr.RACK_LOCAL_MAPS]
                      + counters[ctr.OTHER_LOCAL_MAPS])
    assert locality_total == round0.num_maps


def test_hdfs_written_includes_output_and_history():
    result = run("teragen", input_gb=0.25, seed=3)
    counters = result.counters()
    # Generated output + the job-history file.
    assert counters[ctr.HDFS_BYTES_WRITTEN] == pytest.approx(
        result.output_bytes + 128 * 1024, rel=0.01)


def test_iterative_job_counters_aggregate_rounds():
    result = run("kmeans", input_gb=0.25, seed=4, num_reducers=2)
    counters = result.counters()
    # Three rounds each re-read the full input.
    assert counters[ctr.MAP_INPUT_BYTES] == pytest.approx(
        3 * 0.25 * 1024 * MB, rel=0.01)
    assert counters[ctr.TOTAL_LAUNCHED_MAPS] == result.num_maps


def test_killed_task_counters_on_node_failure():
    from repro.faults import NODEMANAGER, FaultEvent, FaultInjector

    cluster = HadoopCluster(ClusterSpec(num_nodes=8, hosts_per_rack=4),
                            HadoopConfig(block_size=32 * MB, num_reducers=4),
                            seed=6)
    # Victim chosen away from the AM (which lands on the first
    # heartbeat after submission; h007 is last in phase order).
    FaultInjector(cluster, [FaultEvent(3.5, NODEMANAGER, "h007")])
    results, _ = cluster.run([make_job("terasort", input_gb=0.5)])
    counters = results[0].counters()
    killed = counters[ctr.NUM_KILLED_MAPS] + counters[ctr.NUM_KILLED_REDUCES]
    assert killed == results[0].rounds[0].lost_containers
    # Every killed task was relaunched: launches exceed task counts.
    assert (counters[ctr.TOTAL_LAUNCHED_MAPS]
            + counters[ctr.TOTAL_LAUNCHED_REDUCES]) == pytest.approx(
        results[0].rounds[0].num_maps + results[0].rounds[0].num_reduces + killed)
