"""Workload-plan IR, executor semantics and per-stage analysis.

Covers the plan DAG structure (validation, topology, identity), the
:class:`~repro.mapreduce.driver.PlanExecutor` runtime contracts —
dependency-ordered stage windows, concurrent root admission, fan-in
sizing, carryover selection, determinism — and the per-stage flow
attribution and scoring in :mod:`repro.analysis.plans`.  The
single-stage byte-identity contract lives in
``test_plan_differential.py``.
"""

import pytest

from repro.analysis.plans import (
    is_plan_trace,
    plan_meta,
    plan_score,
    stage_breakdown,
    stage_flows,
    stage_table,
)
from repro.capture.records import TrafficComponent
from repro.cluster.config import ClusterSpec, HadoopConfig
from repro.cluster.units import MB
from repro.jobs import (
    JobIdStream,
    PlanEdge,
    PlanStage,
    WorkloadPlan,
    make_job,
    make_plan,
    plan_catalog,
)
from repro.jobs.base import default_id_stream, reset_default_ids
from repro.mapreduce.cluster import HadoopCluster

SMALL_GB = 0.0625  # 64 MiB -> 2 blocks at 32 MiB


def small_cluster(seed=7, **spec_kwargs):
    return HadoopCluster(
        ClusterSpec(num_nodes=4, hosts_per_rack=2, **spec_kwargs),
        HadoopConfig(block_size=32 * MB, num_reducers=2), seed=seed)


def trace_bytes(trace, tmp_path, name):
    path = tmp_path / name
    trace.to_jsonl(path)
    return path.read_bytes()


# -- IR validation ------------------------------------------------------------------


def test_root_stage_requires_external_input():
    with pytest.raises(ValueError, match="external input_gb"):
        PlanStage(name="a", kind="grep")


def test_stage_rejects_both_input_kinds():
    with pytest.raises(ValueError, match="pick one"):
        PlanStage(name="a", kind="grep", input_gb=1.0,
                  inputs=(PlanEdge("b"),))


@pytest.mark.parametrize("name", ["a/b", "a.b"])
def test_stage_name_excludes_path_and_id_separators(name):
    with pytest.raises(ValueError, match="may not contain"):
        PlanStage(name=name, kind="grep", input_gb=1.0)


@pytest.mark.parametrize("carryover", [0.0, -0.5, 1.5])
def test_edge_carryover_must_be_a_usable_fraction(carryover):
    with pytest.raises(ValueError, match="carryover"):
        PlanEdge("a", carryover=carryover)


def test_stage_rejects_duplicate_upstream():
    with pytest.raises(ValueError, match="twice"):
        PlanStage(name="b", kind="join",
                  inputs=(PlanEdge("a"), PlanEdge("a")))


def test_plan_rejects_duplicate_stage_names():
    stage = PlanStage(name="a", kind="grep", input_gb=1.0)
    with pytest.raises(ValueError, match="duplicate"):
        WorkloadPlan(name="p", stages=(stage, stage))


def test_plan_rejects_unknown_dependency():
    with pytest.raises(ValueError, match="unknown stage"):
        WorkloadPlan(name="p", stages=(
            PlanStage(name="b", kind="sort", inputs=(PlanEdge("ghost"),)),))


def test_plan_rejects_self_dependency():
    with pytest.raises(ValueError, match="itself"):
        WorkloadPlan(name="p", stages=(
            PlanStage(name="b", kind="sort", inputs=(PlanEdge("b"),)),))


def test_plan_rejects_cycles():
    with pytest.raises(ValueError, match="cycle"):
        WorkloadPlan(name="p", stages=(
            PlanStage(name="a", kind="sort", inputs=(PlanEdge("b"),)),
            PlanStage(name="b", kind="sort", inputs=(PlanEdge("a"),)),
        ))


def test_plan_needs_stages():
    with pytest.raises(ValueError, match="no stages"):
        WorkloadPlan(name="p", stages=())


def test_topological_order_breaks_ties_by_declaration():
    plan = make_plan("pig-aggregation")
    assert [s.name for s in plan.topological_order()] == [
        "extract", "aggregate", "join", "order"]
    assert [s.name for s in plan.roots()] == ["extract", "aggregate"]


# -- identity: dicts, signatures, catalog -------------------------------------------


def test_plan_dict_roundtrip_preserves_identity():
    plan = make_plan("pig-aggregation", input_gb=0.5, num_reducers=3)
    rebuilt = WorkloadPlan.from_dict(plan.to_dict())
    assert rebuilt == plan
    assert rebuilt.signature() == plan.signature()


def test_signature_tracks_parameters():
    assert (make_plan("tpcx-hs", scale=1.0).signature()
            != make_plan("tpcx-hs", scale=2.0).signature())
    # Same parameters, fresh builds: signatures are stable.
    assert (make_plan("tpcx-hs", scale=1.0).signature()
            == make_plan("tpcx-hs", scale=1.0).signature())


def test_trivial_plan_wraps_spec_and_does_not_roundtrip():
    spec = make_job("terasort", input_gb=SMALL_GB, job_id="job_t_0001")
    plan = WorkloadPlan.single(spec)
    assert plan.is_trivial
    assert plan.wrapped is spec
    with pytest.raises(ValueError, match="reconstructible"):
        WorkloadPlan.from_dict(plan.to_dict())


def test_catalog_lists_builtin_plans():
    catalog = plan_catalog()
    assert {"pig-aggregation", "tpcx-hs"} <= set(catalog)


def test_make_plan_rejects_unknown_names_and_bad_params():
    with pytest.raises(ValueError, match="unknown plan"):
        make_plan("no-such-plan")
    with pytest.raises(ValueError, match="bad parameters"):
        make_plan("tpcx-hs", bogus=1)


def test_external_gb_sums_root_inputs():
    plan = make_plan("pig-aggregation", input_gb=0.5)
    assert plan.external_gb == pytest.approx(1.0)  # two roots at 0.5 each


# -- executor semantics: the pig chain ----------------------------------------------


@pytest.fixture(scope="module")
def pig_run():
    cluster = small_cluster(seed=7)
    plan = make_plan("pig-aggregation", input_gb=SMALL_GB, num_reducers=2)
    result, trace = cluster.run_plan(plan, plan_id="pig")
    return plan, result, trace


def test_pig_chain_completes_every_stage(pig_run):
    _, result, _ = pig_run
    assert not result.failed
    assert [s.name for s in result.stages] == [
        "extract", "aggregate", "join", "order"]
    assert all(s.completed for s in result.stages)


def test_dependent_stages_wait_for_upstream_output(pig_run):
    _, result, _ = pig_run
    join = result.stage("join").job
    order = result.stage("order").job
    upstream_done = max(result.stage("extract").job.finish_time,
                        result.stage("aggregate").job.finish_time)
    assert join.submit_time >= upstream_done
    assert order.submit_time >= join.finish_time


def test_independent_roots_are_admitted_concurrently(pig_run):
    _, result, _ = pig_run
    extract = result.stage("extract").job
    aggregate = result.stage("aggregate").job
    assert extract.submit_time == aggregate.submit_time == 0.0


def test_fan_in_stage_reads_both_upstream_outputs(pig_run):
    _, result, _ = pig_run
    upstream = (result.stage("extract").job.output_bytes
                + result.stage("aggregate").job.output_bytes)
    join = result.stage("join").job
    assert join.input_bytes == pytest.approx(upstream)


def test_stage_job_ids_derive_from_the_plan_id(pig_run):
    _, result, trace = pig_run
    meta = plan_meta(trace)
    assert {entry["job_id"] for entry in meta["stages"]} == {
        "pig.extract", "pig.aggregate", "pig.join", "pig.order"}


def test_plan_trace_meta_shape(pig_run):
    _, result, trace = pig_run
    assert is_plan_trace(trace)
    assert trace.meta.job_kind == "plan:pig-aggregation"
    assert trace.meta.job_id == "pig"
    assert trace.meta.extra["completion_time"] == pytest.approx(
        result.completion_time)


def test_every_completed_stage_owns_wire_traffic(pig_run):
    """Each stage's flows carry its own job id (exact attribution)."""
    _, _, trace = pig_run
    flows = stage_flows(trace)
    for stage in ("extract", "aggregate", "join", "order"):
        assert sum(f.size for f in flows[stage]) > 0


def test_flow_attribution_partitions_the_trace(pig_run):
    _, _, trace = pig_run
    flows = stage_flows(trace)
    assert set(flows) == {"extract", "aggregate", "join", "order", "(shared)"}
    assert sum(len(group) for group in flows.values()) == trace.flow_count()
    # Shared traffic is control-plane only.
    assert all(f.component == TrafficComponent.CONTROL.value
               for f in flows["(shared)"])


def test_stage_breakdown_accounts_for_every_stage(pig_run):
    _, result, trace = pig_run
    rows = stage_breakdown(trace)
    assert [row["stage"] for row in rows] == [
        "extract", "aggregate", "join", "order", "(shared)"]
    by_stage = {row["stage"]: row for row in rows}
    assert by_stage["join"]["deps"] == ["extract", "aggregate"]
    assert by_stage["join"]["jct"] == pytest.approx(
        result.stage("join").job.completion_time)
    wire_total = sum(row["wire_bytes"] for row in rows)
    assert wire_total == pytest.approx(sum(f.size for f in trace.flows))


def test_stage_table_renders_without_score(pig_run):
    _, _, trace = pig_run
    table = stage_table(trace)
    assert len(table.rows) == 5
    assert any("plan completion" in note for note in table.notes)
    assert not any("score" in note for note in table.notes)


def test_single_job_traces_are_not_plan_traces():
    cluster = small_cluster(seed=5)
    _, traces = cluster.run([make_job("grep", input_gb=SMALL_GB,
                                      job_id="job_plain_0001")])
    assert not is_plan_trace(traces[0])
    with pytest.raises(ValueError, match="not a plan capture"):
        plan_meta(traces[0])


# -- executor semantics: tpcx-hs and carryover --------------------------------------


@pytest.fixture(scope="module")
def hs_run():
    cluster = small_cluster(seed=3)
    plan = make_plan("tpcx-hs", scale=SMALL_GB, num_reducers=2)
    result, trace = cluster.run_plan(plan, plan_id="hs")
    return plan, result, trace


def test_tpcx_hs_phases_chain_generator_to_validator(hs_run):
    _, result, _ = hs_run
    assert [s.name for s in result.stages] == ["hsgen", "hssort", "hsvalidate"]
    assert not result.failed
    hsgen = result.stage("hsgen").job
    hssort = result.stage("hssort").job
    # Full carryover: the sort consumes exactly what HSGen wrote.
    assert hssort.input_bytes == pytest.approx(hsgen.output_bytes)
    # The validation pass is a map-only scan.
    assert result.stage("hsvalidate").job.num_reduces == 0


def test_tpcx_hs_reports_an_hsph_score(hs_run):
    _, result, trace = hs_run
    score = plan_score(trace)
    expected = SMALL_GB / (result.completion_time / 3600.0)
    assert score == pytest.approx(expected)
    assert any("hsph" in note for note in stage_table(trace).notes)


def test_carryover_selects_a_file_granular_prefix():
    plan = WorkloadPlan(name="half-scan", stages=(
        # 4 reducers -> 4 part files, so a 0.5 carryover can pick a
        # strict prefix (teragen would write one monolithic file).
        PlanStage(name="gen", kind="terasort", input_gb=SMALL_GB,
                  num_reducers=4),
        PlanStage(name="scan", kind="grep",
                  inputs=(PlanEdge("gen", carryover=0.5),)),
    ))
    cluster = small_cluster(seed=9)
    result, _ = cluster.run_plan(plan, plan_id="half")
    gen = result.stage("gen").job
    scan = result.stage("scan").job
    # A strict subset of the upstream bytes, but at least half of them
    # (selection rounds *up* to whole files).
    assert 0 < scan.input_bytes < gen.output_bytes
    assert scan.input_bytes >= 0.5 * gen.output_bytes - 1.0


def test_plan_runs_are_deterministic(tmp_path):
    captures = []
    for attempt in range(2):
        cluster = small_cluster(seed=13)
        plan = make_plan("tpcx-hs", scale=SMALL_GB, num_reducers=2)
        _, trace = cluster.run_plan(plan, plan_id="det")
        captures.append(trace_bytes(trace, tmp_path, f"run{attempt}.jsonl"))
    assert captures[0] == captures[1]


# -- job id allocation (the de-globalized stream) -----------------------------------


def test_id_stream_counts_per_kind():
    stream = JobIdStream()
    assert stream.allocate("terasort") == "job_terasort_0001"
    assert stream.allocate("grep") == "job_grep_0001"
    assert stream.allocate("terasort") == "job_terasort_0002"
    stream.reset()
    assert stream.allocate("terasort") == "job_terasort_0001"


def test_id_allocation_is_identical_serial_vs_interleaved():
    """The id of "the k-th job of a kind" never depends on other streams.

    This is the hazard the old module-global counter had: building
    specs for two executors in an interleaved order changed every id.
    """
    serial = JobIdStream()
    serial_ids = [make_job("terasort", input_gb=0.1, id_stream=serial).job_id
                  for _ in range(3)]
    a, b = JobIdStream(), JobIdStream()
    interleaved_a, interleaved_b = [], []
    for _ in range(3):
        interleaved_a.append(
            make_job("terasort", input_gb=0.1, id_stream=a).job_id)
        interleaved_b.append(
            make_job("terasort", input_gb=0.1, id_stream=b).job_id)
    assert interleaved_a == serial_ids
    assert interleaved_b == serial_ids


def test_bare_specs_fall_back_to_the_process_stream():
    reset_default_ids()
    first = make_job("wordcount", input_gb=0.1)
    assert first.job_id == "job_wordcount_0001"
    assert default_id_stream().allocate("wordcount") == "job_wordcount_0002"
    reset_default_ids()
    assert make_job("wordcount", input_gb=0.1).job_id == "job_wordcount_0001"
