"""Tests for the OMNeT++ and JSON exporters."""

import json

import pytest

from repro.capture.records import CaptureMeta, FlowRecord, JobTrace
from repro.generation.export import to_json, to_omnet_ini


@pytest.fixture
def trace():
    meta = CaptureMeta(job_id="j1", job_kind="terasort", input_bytes=1e9)
    flows = [
        FlowRecord(src="h000", dst="h001", src_rack=0, dst_rack=0,
                   src_port=13562, dst_port=50001, size=1000.0,
                   start=5.0, end=6.0, component="shuffle"),
        FlowRecord(src="h001", dst="h002", src_rack=0, dst_rack=1,
                   src_port=40000, dst_port=50010, size=2000.0,
                   start=7.0, end=9.0, component="hdfs_write"),
    ]
    return JobTrace(meta=meta, flows=flows)


def test_omnet_ini_structure(tmp_path, trace):
    path = tmp_path / "omnetpp.ini"
    count = to_omnet_ini(trace, path, network="TestNet")
    text = path.read_text()
    assert count == 2
    assert "network = TestNet" in text
    assert text.count('typename = "TcpSessionApp"') == 2
    # Every distinct destination port gets a sink on every host.
    hosts = 3
    ports = 2
    assert text.count('typename = "TcpSinkApp"') == hosts * ports
    # Start times are rebased to the first flow.
    assert "tOpen = 0.000000000s" in text
    assert "tOpen = 2.000000000s" in text
    assert "sendBytes = 1000B" in text


def test_omnet_numapps_accounting(tmp_path, trace):
    path = tmp_path / "omnetpp.ini"
    to_omnet_ini(trace, path)
    text = path.read_text()
    # h000 sends 1 flow + 2 sinks = 3 apps; h002 sends none + 2 sinks.
    assert "*.host[0].numApps = 3" in text
    assert "*.host[2].numApps = 2" in text


def test_json_export_roundtrips(tmp_path, trace):
    path = tmp_path / "trace.json"
    count = to_json(trace, path)
    assert count == 2
    payload = json.loads(path.read_text())
    assert payload["meta"]["job_id"] == "j1"
    assert len(payload["flows"]) == 2
    rebuilt = [FlowRecord.from_dict(f) for f in payload["flows"]]
    assert rebuilt == trace.flows
