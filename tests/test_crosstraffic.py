"""Tests for cross-traffic generation and interference replay."""

import pytest

from repro.cluster.config import HadoopConfig
from repro.cluster.units import MB
from repro.experiments.campaigns import capture
from repro.generation.crosstraffic import (
    CROSS_TRAFFIC_SERVICE,
    CrossTrafficSpec,
    generate_cross_traffic,
    replay_with_cross_traffic,
)

HOSTS = [(f"h{i:03d}", i // 4) for i in range(8)]


def test_spec_validation():
    with pytest.raises(ValueError):
        CrossTrafficSpec(load_fraction=0.0)
    with pytest.raises(ValueError):
        CrossTrafficSpec(load_fraction=1.5)
    with pytest.raises(ValueError):
        CrossTrafficSpec(pairs=0)
    with pytest.raises(ValueError):
        CrossTrafficSpec(pattern="fractal")
    with pytest.raises(ValueError):
        CrossTrafficSpec(chunk_bytes=0)


def test_constant_pattern_offers_target_load():
    spec = CrossTrafficSpec(load_fraction=0.25, pairs=1, chunk_bytes=1.0 * MB)
    duration = 20.0
    flows = generate_cross_traffic(HOSTS, duration, spec, seed=1)
    offered = sum(f.size for f in flows) / duration
    target = 0.25 * spec.link_rate
    assert offered == pytest.approx(target, rel=0.1)
    assert all(f.service == CROSS_TRAFFIC_SERVICE for f in flows)
    assert all(f.src != f.dst for f in flows)
    starts = [f.start for f in flows]
    assert starts == sorted(starts)


def test_onoff_pattern_is_bursty():
    spec = CrossTrafficSpec(load_fraction=0.2, pairs=1, pattern="onoff",
                            chunk_bytes=1.0 * MB, on_mean_s=1.0, off_mean_s=3.0)
    flows = generate_cross_traffic(HOSTS, 60.0, spec, seed=2)
    assert flows
    gaps = [b.start - a.start for a, b in zip(flows, flows[1:])]
    # Bursts: many back-to-back chunks plus long silences.
    assert max(gaps) > 20 * min(g for g in gaps if g > 0)


def test_generation_validation():
    with pytest.raises(ValueError):
        generate_cross_traffic(HOSTS, duration=0.0)
    with pytest.raises(ValueError):
        generate_cross_traffic(HOSTS[:1], duration=10.0)


def test_generation_is_deterministic():
    a = generate_cross_traffic(HOSTS, 10.0, seed=3)
    b = generate_cross_traffic(HOSTS, 10.0, seed=3)
    assert [(f.src, f.dst, f.start) for f in a] == \
           [(f.src, f.dst, f.start) for f in b]
    c = generate_cross_traffic(HOSTS, 10.0, seed=4)
    assert [(f.src, f.dst, f.start) for f in a] != \
           [(f.src, f.dst, f.start) for f in c]


def test_interference_inflates_hadoop_fct():
    _, trace = capture("terasort", 0.5, seed=21)
    spec = CrossTrafficSpec(load_fraction=0.6, pairs=6)
    report = replay_with_cross_traffic(trace, spec, seed=5)
    assert report.cross_traffic_bytes > 0
    # Background load can only slow Hadoop flows down.
    assert report.fct_inflation >= 1.0 - 1e-9
    assert report.contended.total_bytes > report.clean.total_bytes
    # Heavy load must produce measurable inflation.
    assert report.fct_inflation > 1.01
