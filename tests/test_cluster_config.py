"""Unit tests for ClusterSpec / HadoopConfig."""

import pytest

from repro.cluster.config import ClusterSpec, HadoopConfig
from repro.cluster.units import MB, fmt_bytes, fmt_rate


def test_cluster_spec_defaults_and_racks():
    spec = ClusterSpec()
    assert spec.num_nodes == 16
    assert spec.num_racks == 2
    spec = ClusterSpec(num_nodes=17, hosts_per_rack=8)
    assert spec.num_racks == 3


def test_cluster_spec_roundtrip():
    spec = ClusterSpec(num_nodes=4, topology="star", host_gbps=10.0)
    assert ClusterSpec.from_dict(spec.to_dict()) == spec


def test_cluster_spec_validation():
    with pytest.raises(ValueError):
        ClusterSpec(num_nodes=0)
    with pytest.raises(ValueError):
        ClusterSpec(containers_per_node=0)
    with pytest.raises(ValueError):
        ClusterSpec(disk_read_rate=0)


def test_hadoop_config_defaults():
    config = HadoopConfig()
    assert config.block_size == 128 * MB
    assert config.replication == 3
    assert config.scheduler == "fifo"


def test_hadoop_config_replace_creates_modified_copy():
    config = HadoopConfig()
    changed = config.replace(replication=2, num_reducers=32)
    assert changed.replication == 2
    assert changed.num_reducers == 32
    assert config.replication == 3  # original untouched


def test_hadoop_config_roundtrip():
    config = HadoopConfig(block_size=64 * MB, scheduler="fair", extra={"x": 1})
    assert HadoopConfig.from_dict(config.to_dict()) == config


@pytest.mark.parametrize("overrides", [
    {"block_size": 1},
    {"replication": 0},
    {"num_reducers": -1},
    {"slowstart": 1.5},
    {"shuffle_parallel_copies": 0},
    {"scheduler": "cfs"},
])
def test_hadoop_config_validation(overrides):
    with pytest.raises(ValueError):
        HadoopConfig(**overrides)


def test_fmt_bytes():
    assert fmt_bytes(512) == "512 B"
    assert fmt_bytes(1536) == "1.50 KiB"
    assert fmt_bytes(3 * MB) == "3.00 MiB"


def test_fmt_rate():
    assert fmt_rate(125_000_000) == "1.00 Gbit/s"
    assert fmt_rate(125) == "1.00 Kbit/s"
