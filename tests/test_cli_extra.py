"""Tests for the newer CLI commands: suite, workload, experiment."""

import pytest

from repro.capture.records import JobTrace, load_traces
from repro.cli import main


def test_suite_command_runs_and_saves(tmp_path, capsys):
    code = main(["suite", "--mix", "micro", "--count", "2",
                 "--arrivals", "uniform:4", "--nodes", "4",
                 "--seed", "9", "-o", str(tmp_path / "suite")])
    assert code == 0
    out = capsys.readouterr().out
    assert "makespan" in out
    traces = load_traces(tmp_path / "suite")
    assert len(traces) == 2


def test_suite_rejects_bad_arrivals(capsys):
    assert main(["suite", "--count", "1", "--arrivals", "fractal:1"]) == 2


def test_workload_command(tmp_path, capsys):
    # Build a model first via capture + fit.
    trace_path = tmp_path / "cap.jsonl"
    assert main(["capture", "--job", "grep", "--input-gb", "0.25",
                 "--nodes", "4", "--seed", "5", "-o", str(trace_path)]) == 0
    models = tmp_path / "models"
    models.mkdir()
    assert main(["fit", str(trace_path), "-o", str(models / "grep.json")]) == 0

    workload_path = tmp_path / "wl.jsonl"
    code = main(["workload", "--models", str(models),
                 "--job", "grep:0.5:0", "--job", "grep:0.25:10",
                 "--seed", "1", "-o", str(workload_path)])
    assert code == 0
    workload = JobTrace.from_jsonl(workload_path)
    assert workload.meta.job_kind == "workload"
    assert len({f.job_id for f in workload.flows}) == 2


def test_workload_rejects_malformed_job_spec(tmp_path, capsys):
    models = tmp_path / "m"
    models.mkdir()
    (models / "grep.json").write_text("{}")
    code = main(["workload", "--models", str(models),
                 "--job", "grep", "-o", str(tmp_path / "x.jsonl")])
    assert code == 2


def test_experiment_command_unknown_id(capsys):
    assert main(["experiment", "e99"]) == 2
    out = capsys.readouterr().out
    assert "unknown experiment" in out


def test_experiment_command_runs_one(capsys):
    assert main(["experiment", "a3"]) == 0
    out = capsys.readouterr().out
    assert "A3" in out


def test_report_full_prints_all_sections(tmp_path, capsys):
    trace_path = tmp_path / "full.jsonl"
    assert main(["capture", "--job", "grep", "--input-gb", "0.125",
                 "--nodes", "4", "-o", str(trace_path)]) == 0
    capsys.readouterr()
    assert main(["report", str(trace_path), "--full"]) == 0
    out = capsys.readouterr().out
    assert "traffic hotspots" in out
    assert "rack traffic matrix" in out
    assert "traffic over time" in out


def test_inspect_command(tmp_path, capsys):
    trace_path = tmp_path / "t.jsonl"
    assert main(["capture", "--job", "grep", "--input-gb", "0.125",
                 "--nodes", "4", "-o", str(trace_path)]) == 0
    model_path = tmp_path / "m.json"
    assert main(["fit", str(trace_path), "-o", str(model_path)]) == 0
    capsys.readouterr()
    assert main(["inspect", str(model_path)]) == 0
    out = capsys.readouterr().out
    assert "scaling laws" in out
    assert "health checks" in out


def test_diff_command(tmp_path, capsys):
    a = tmp_path / "a.jsonl"
    b = tmp_path / "b.jsonl"
    assert main(["capture", "--job", "grep", "--input-gb", "0.125",
                 "--nodes", "4", "--seed", "1", "-o", str(a)]) == 0
    assert main(["capture", "--job", "grep", "--input-gb", "0.25",
                 "--nodes", "4", "--seed", "2", "-o", str(b)]) == 0
    model_a, model_b = tmp_path / "a.json", tmp_path / "b.json"
    assert main(["fit", str(a), "-o", str(model_a)]) == 0
    assert main(["fit", str(b), "-o", str(model_b)]) == 0
    capsys.readouterr()
    assert main(["diff", str(model_a), str(model_b)]) == 0
    out = capsys.readouterr().out
    assert "model diff" in out


def test_export_pcap_roundtrip(tmp_path, capsys):
    from repro.capture.pcapfile import read_pcap

    trace_path = tmp_path / "t.jsonl"
    assert main(["capture", "--job", "grep", "--input-gb", "0.125",
                 "--nodes", "4", "-o", str(trace_path)]) == 0
    pcap_path = tmp_path / "t.pcap"
    assert main(["export", str(trace_path), "--format", "pcap",
                 "-o", str(pcap_path)]) == 0
    packets = read_pcap(pcap_path)
    assert packets


def test_fit_bundle_writes_one_model_per_kind(tmp_path, capsys):
    from repro.modeling.bundle import ModelBundle

    a = tmp_path / "grep.jsonl"
    b = tmp_path / "terasort.jsonl"
    assert main(["capture", "--job", "grep", "--input-gb", "0.125",
                 "--nodes", "4", "--seed", "1", "-o", str(a)]) == 0
    assert main(["capture", "--job", "terasort", "--input-gb", "0.125",
                 "--nodes", "4", "--seed", "2", "-o", str(b)]) == 0
    models = tmp_path / "models"
    assert main(["fit", str(a), str(b), "--bundle", "-o", str(models)]) == 0
    bundle = ModelBundle.load(models)
    assert bundle.kinds() == ["grep", "terasort"]
