"""Unit tests for the analysis package."""

import pytest

from repro.analysis.breakdown import aggregate_breakdowns, component_breakdown, cross_rack_fraction
from repro.analysis.compare import compare_traces, validation_summary
from repro.analysis.jct import jct_summary, makespan, slowdown
from repro.analysis.tables import Table, cdf_table, render_cdf_series, render_table
from repro.capture.records import CaptureMeta, FlowRecord, JobTrace
from repro.mapreduce.result import JobResult, RoundResult


def flow(component="shuffle", size=100.0, start=0.0, src_rack=0, dst_rack=1):
    return FlowRecord(src="a", dst="b", src_rack=src_rack, dst_rack=dst_rack,
                      src_port=13562, dst_port=50000, size=size,
                      start=start, end=start + 1.0, component=component)


def trace(flows, input_bytes=1e9, job_id="j", kind="terasort"):
    return JobTrace(meta=CaptureMeta(job_id=job_id, job_kind=kind,
                                     input_bytes=input_bytes,
                                     submit_time=0.0, finish_time=100.0),
                    flows=flows)


# -- tables -----------------------------------------------------------------------


def test_table_add_row_validates_width():
    table = Table(title="t", headers=["a", "b"])
    table.add_row(1, 2)
    with pytest.raises(ValueError):
        table.add_row(1)


def test_table_column_access():
    table = Table(title="t", headers=["a", "b"])
    table.add_row(1, "x")
    table.add_row(2, "y")
    assert table.column("a") == [1, 2]
    assert table.column("b") == ["x", "y"]


def test_render_table_alignment_and_notes():
    table = Table(title="demo", headers=["name", "value"],
                  notes=["a footnote"])
    table.add_row("longish-name", 1.5)
    text = render_table(table)
    lines = text.splitlines()
    assert lines[0] == "== demo =="
    assert "name" in lines[1] and "value" in lines[1]
    assert set(lines[2]) <= {"-", " "}
    assert "longish-name" in lines[3]
    assert "note: a footnote" in lines[-1]


def test_render_table_float_formatting():
    table = Table(title="t", headers=["v"])
    table.add_row(0.0)
    table.add_row(1234567.0)
    table.add_row(0.0001)
    text = render_table(table)
    assert "1.235e+06" in text
    assert "1.000e-04" in text


def test_cdf_table_tracks_fit_column():
    samples = list(range(1, 101))
    table = cdf_table("cdf", samples, fitted_cdf=lambda x: x / 100.0, points=5)
    assert table.headers[-1] == "fit"
    for row in table.rows:
        assert abs(row[2] - row[3]) < 0.05


def test_cdf_table_empty_and_render():
    table = cdf_table("empty", [])
    assert table.rows == []
    assert "no samples" in render_table(table)
    assert "cdf" in render_cdf_series("cdf", [1.0, 2.0])


# -- breakdown ---------------------------------------------------------------------


def test_component_breakdown_shares_sum_to_one():
    t = trace([flow("shuffle", 300), flow("hdfs_read", 100),
               flow("control", 1)])
    breakdown = component_breakdown(t)
    assert breakdown["shuffle"]["bytes"] == 300
    assert breakdown["shuffle"]["flows"] == 1
    total_share = sum(stats["share"] for stats in breakdown.values())
    assert total_share == pytest.approx(1.0)


def test_cross_rack_fraction():
    t = trace([flow(size=100, src_rack=0, dst_rack=1),
               flow(size=100, src_rack=0, dst_rack=0)])
    assert cross_rack_fraction(t) == pytest.approx(0.5)
    assert cross_rack_fraction(t, "hdfs_read") == 0.0


def test_aggregate_breakdowns():
    t1 = trace([flow("shuffle", 100)])
    t2 = trace([flow("shuffle", 300)])
    totals = aggregate_breakdowns([t1, t2])
    assert totals["shuffle"]["bytes"] == 400
    assert totals["shuffle"]["flows"] == 2
    assert totals["shuffle"]["share"] == pytest.approx(1.0)


# -- compare ------------------------------------------------------------------------


def test_compare_traces_identical_is_perfect():
    flows = [flow("shuffle", size=float(s), start=float(s))
             for s in range(10, 60)]
    comparison = compare_traces(trace(flows), trace(flows))
    shuffle = comparison["shuffle"]
    assert shuffle.count_error == 0.0
    assert shuffle.volume_error == 0.0
    assert shuffle.size_ks.statistic == 0.0
    assert shuffle.interarrival_ks.statistic == 0.0


def test_compare_traces_detects_volume_gap():
    a = trace([flow("shuffle", 100)] * 10)
    b = trace([flow("shuffle", 100)] * 5)
    comparison = compare_traces(a, b)
    assert comparison["shuffle"].count_error == pytest.approx(0.5)
    assert comparison["shuffle"].volume_error == pytest.approx(0.5)


def test_compare_missing_component_inf_error():
    a = trace([])
    b = trace([flow("shuffle", 10)])
    comparison = compare_traces(a, b, components=["shuffle"])
    assert comparison["shuffle"].count_error == float("inf")


def test_validation_summary_aggregates_data_components():
    flows = [flow("shuffle", size=float(s), start=float(s)) for s in range(20)]
    summary = validation_summary(trace(flows), trace(flows))
    assert summary.mean_size_ks == 0.0
    assert summary.mean_count_error == 0.0
    assert summary.mean_volume_error == 0.0
    assert "shuffle" in summary.components


# -- jct ----------------------------------------------------------------------------


def result(job_id, kind, submit, finish):
    rounds = [RoundResult(app_id=f"{job_id}-r00", round_index=0,
                          submit_time=submit, finish_time=finish)]
    return JobResult(job_id=job_id, kind=kind, input_bytes=1e9, rounds=rounds)


def test_jct_summary_groups_by_kind():
    results = [result("a", "terasort", 0, 10), result("b", "terasort", 0, 20),
               result("c", "grep", 0, 5)]
    summary = jct_summary(results)
    assert summary["terasort"]["mean"] == pytest.approx(15.0)
    assert summary["grep"]["n"] == 1


def test_makespan_and_slowdown():
    results = [result("a", "x", 0, 10), result("b", "x", 5, 30)]
    assert makespan(results) == pytest.approx(30.0)
    assert makespan([]) == 0.0
    factors = slowdown(results, {"a": 5.0, "b": 25.0})
    assert factors["a"] == pytest.approx(2.0)
    assert factors["b"] == pytest.approx(1.0)
