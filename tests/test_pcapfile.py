"""Tests for the binary libpcap codec."""

import struct

import pytest

from repro.capture.pcap import PacketRecord, assemble_flows, synthesize_packets
from repro.capture.pcapfile import (
    LINKTYPE_ETHERNET,
    PCAP_MAGIC,
    host_to_ip,
    ip_name_map,
    read_pcap,
    write_pcap,
)
from repro.capture.records import FlowRecord


def packets():
    return [
        PacketRecord(1.000001, "h001", "h002", 13562, 49000, 1448),
        PacketRecord(1.5, "h002", "h001", 49000, 13562, 0),
        PacketRecord(2.25, "h001", "h003", 50010, 48000, 900),
    ]


def test_roundtrip_preserves_packets(tmp_path):
    path = tmp_path / "capture.pcap"
    count = write_pcap(packets(), path)
    assert count == 3
    loaded = read_pcap(path, name_of=ip_name_map(["h001", "h002", "h003"]))
    assert len(loaded) == 3
    for original, parsed in zip(packets(), loaded):
        assert parsed.src == original.src
        assert parsed.dst == original.dst
        assert parsed.src_port == original.src_port
        assert parsed.dst_port == original.dst_port
        assert parsed.size == original.size
        assert parsed.time == pytest.approx(original.time, abs=2e-6)


def test_global_header_is_standard(tmp_path):
    path = tmp_path / "c.pcap"
    write_pcap(packets(), path)
    header = path.read_bytes()[:24]
    magic, major, minor, _, _, snaplen, linktype = struct.unpack(
        "<IHHiIII", header)
    assert magic == PCAP_MAGIC
    assert (major, minor) == (2, 4)
    assert linktype == LINKTYPE_ETHERNET


def test_unknown_ips_read_back_as_dotted_quads(tmp_path):
    path = tmp_path / "c.pcap"
    write_pcap(packets(), path)
    loaded = read_pcap(path)  # no name map
    assert all("." in p.src for p in loaded)


def test_host_ip_mapping_is_deterministic_and_distinct():
    assert host_to_ip("h001") == host_to_ip("h001")
    ips = {host_to_ip(f"h{i:03d}") for i in range(64)}
    assert len(ips) == 64
    assert all(ip.startswith("10.") for ip in ips)


def test_read_rejects_garbage(tmp_path):
    path = tmp_path / "junk.pcap"
    path.write_bytes(b"\x00" * 10)
    with pytest.raises(ValueError):
        read_pcap(path)
    path.write_bytes(b"\xde\xad\xbe\xef" + b"\x00" * 20)
    with pytest.raises(ValueError):
        read_pcap(path)


def test_full_flow_to_pcap_to_flow_pipeline(tmp_path):
    """Flow -> packets -> binary pcap -> packets -> flow, lossless."""
    flow = FlowRecord(src="h005", dst="h006", src_rack=1, dst_rack=1,
                      src_port=13562, dst_port=49123, size=50_000.0,
                      start=10.0, end=12.0, component="shuffle")
    path = tmp_path / "flow.pcap"
    write_pcap(synthesize_packets(flow), path)
    recovered_packets = read_pcap(path, name_of=ip_name_map(["h005", "h006"]))
    (assembled,) = assemble_flows(recovered_packets)
    assert assembled.src == "h005"
    assert assembled.size == pytest.approx(flow.size)
    assert assembled.start == pytest.approx(flow.start, abs=1e-5)
    assert assembled.component == "shuffle"
