"""Tests for the jellyfish topology and cross-topology properties."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.config import ClusterSpec, HadoopConfig
from repro.cluster.topology import Switch, build_topology
from repro.cluster.units import MB
from repro.jobs import make_job
from repro.mapreduce.cluster import HadoopCluster


def test_jellyfish_basic_structure():
    topo = build_topology("jellyfish", num_hosts=16, hosts_per_rack=4)
    assert topo.kind == "jellyfish"
    assert len(topo.hosts) == 16
    switches = [n for n in topo.graph.nodes if isinstance(n, Switch)]
    assert len(switches) == 4
    assert nx.is_connected(topo.graph)


def test_jellyfish_switch_graph_is_regular():
    topo = build_topology("jellyfish", num_hosts=24, hosts_per_rack=4)
    switches = [n for n in topo.graph.nodes if isinstance(n, Switch)]
    degrees = {sum(1 for neighbor in topo.graph.neighbors(s)
                   if isinstance(neighbor, Switch)) for s in switches}
    assert len(degrees) == 1  # random *regular* graph


def test_jellyfish_single_rack_degenerates_to_star():
    topo = build_topology("jellyfish", num_hosts=4, hosts_per_rack=8)
    assert topo.kind == "star"


def test_jellyfish_is_deterministic():
    a = build_topology("jellyfish", num_hosts=16, hosts_per_rack=4)
    b = build_topology("jellyfish", num_hosts=16, hosts_per_rack=4)
    edges_a = {(str(u), str(v)) for u, v in a.graph.edges}
    edges_b = {(str(u), str(v)) for u, v in b.graph.edges}
    assert edges_a == edges_b


def test_full_job_runs_on_jellyfish():
    spec = ClusterSpec(num_nodes=8, hosts_per_rack=4, topology="jellyfish")
    cluster = HadoopCluster(spec, HadoopConfig(block_size=32 * MB,
                                               num_reducers=2), seed=71)
    results, traces = cluster.run([make_job("terasort", input_gb=0.25)])
    assert not results[0].failed
    assert traces[0].flow_count() > 0


@settings(max_examples=25, deadline=None)
@given(
    kind=st.sampled_from(["star", "tree", "leafspine", "jellyfish"]),
    num_hosts=st.integers(min_value=2, max_value=40),
    per_rack=st.integers(min_value=2, max_value=8),
)
def test_topology_universal_properties(kind, num_hosts, per_rack):
    """Any topology: connected, positive capacities, all pairs routable."""
    topo = build_topology(kind, num_hosts=num_hosts, hosts_per_rack=per_rack)
    assert len(topo.hosts) == num_hosts
    assert nx.is_connected(topo.graph)
    for u, v, data in topo.graph.edges(data=True):
        assert data["capacity"] > 0
    # Spot-check routing between the extremes.
    a, b = topo.hosts[0], topo.hosts[-1]
    path = topo.path(a, b)
    assert path[0] == a and path[-1] == b
    for u, v in topo.edges_on_path(path):
        assert topo.graph.has_edge(u, v)
