"""Unit tests for the TransportBackend seam and its non-fluid backends."""

import pytest

from repro.cluster.config import ClusterSpec, HadoopConfig
from repro.cluster.topology import build_topology
from repro.cluster.units import GBPS
from repro.net.backend import (AnalyticBackend, BACKEND_NAMES, RecordBackend,
                               TransportBackend, make_backend)
from repro.net.network import FlowNetwork
from repro.obs import Telemetry
from repro.simkit import Simulator


def make(backend_name, num_hosts=4, telemetry=None, **cfg):
    sim = Simulator(telemetry=telemetry)
    topo = build_topology("star", num_hosts=num_hosts, host_gbps=1.0)
    return sim, topo, make_backend(backend_name, sim, topo, **cfg)


# -- factory ---------------------------------------------------------------------


def test_factory_covers_every_registered_name():
    for name in BACKEND_NAMES:
        _, _, net = make(name)
        assert isinstance(net, TransportBackend)
        assert net.name == name


def test_factory_maps_names_to_types():
    assert isinstance(make("fluid")[2], FlowNetwork)
    assert isinstance(make("analytic")[2], AnalyticBackend)
    assert isinstance(make("record")[2], RecordBackend)


def test_factory_rejects_unknown_backend():
    with pytest.raises(ValueError, match="osmotic"):
        make("osmotic")


def test_cluster_spec_rejects_unknown_backend():
    with pytest.raises(ValueError, match="backend"):
        ClusterSpec(backend="osmotic")


def test_hadoop_config_rejects_unknown_placement_mode():
    with pytest.raises(ValueError, match="placement_mode"):
        HadoopConfig(placement_mode="telekinetic")


def test_backend_announces_itself_on_the_registry():
    telemetry = Telemetry.enabled_in_memory()
    make("analytic", telemetry=telemetry)
    gauge = telemetry.registry.get("net.backend", backend="analytic")
    assert gauge is not None and gauge.value == 1.0


# -- analytic semantics ----------------------------------------------------------


def test_analytic_solo_flow_is_exact():
    sim, topo, net = make("analytic")
    flow = net.start_flow(topo.hosts[0], topo.hosts[1], 1.0 * GBPS)
    sim.run()
    assert flow.finished
    assert flow.end_time == pytest.approx(1.0, rel=1e-6)


def test_analytic_wave_shares_the_bottleneck():
    sim, topo, net = make("analytic")
    a = net.start_flow(topo.hosts[0], topo.hosts[1], 1.0 * GBPS)
    b = net.start_flow(topo.hosts[0], topo.hosts[2], 1.0 * GBPS)
    sim.run()
    # Same wave, shared source uplink: each gets capacity/2 for life.
    assert a.end_time == pytest.approx(2.0, rel=1e-6)
    assert b.end_time == pytest.approx(2.0, rel=1e-6)


def test_analytic_rate_is_frozen_at_admission():
    sim, topo, net = make("analytic")
    first = net.start_flow(topo.hosts[0], topo.hosts[1], 1.0 * GBPS)
    sim.schedule(0.5, net.start_flow, topo.hosts[0], topo.hosts[2], 0.5 * GBPS)
    sim.run()
    # The defining approximation: the first flow keeps its solo rate
    # even though a competitor arrives at t=0.5 (fluid would stretch it).
    assert first.end_time == pytest.approx(1.0, rel=1e-6)


def test_analytic_max_rate_caps_the_share():
    sim, topo, net = make("analytic")
    flow = net.start_flow(topo.hosts[0], topo.hosts[1], 1.0 * GBPS,
                          max_rate=0.25 * GBPS)
    sim.run()
    assert flow.end_time == pytest.approx(4.0, rel=1e-6)


def test_analytic_local_flow_is_instant():
    sim, topo, net = make("analytic")
    flow = net.start_flow(topo.hosts[0], topo.hosts[0], 1.0 * GBPS)
    sim.run()
    assert flow.finished
    assert flow.end_time == pytest.approx(0.0, abs=1e-9)


def test_analytic_cancel_drops_the_flow():
    sim, topo, net = make("analytic")
    completed = []
    net.add_listener(completed.append)
    flow = net.start_flow(topo.hosts[0], topo.hosts[1], 1.0 * GBPS)
    sim.schedule(0.5, net.cancel_flow, flow)
    sim.run()
    assert not flow.finished
    assert completed == []
    assert net.active == {}


def test_analytic_drained_listener_fires():
    sim, topo, net = make("analytic")
    drained = []
    net.add_drained_listener(lambda: drained.append(sim.now))
    net.start_flow(topo.hosts[0], topo.hosts[1], 1.0 * GBPS)
    sim.run()
    assert drained == [pytest.approx(1.0, rel=1e-6)]


def test_analytic_counters_and_utilisation():
    sim, topo, net = make("analytic")
    net.start_flow(topo.hosts[0], topo.hosts[1], 1.0 * GBPS)
    sim.run()
    assert net.completed_count == 1
    assert net.total_bytes == pytest.approx(1.0 * GBPS)
    assert net.perf["waves"] >= 1
    link = next(iter(net.link_bytes))
    assert 0.0 < net.utilisation(link) <= 1.0 + 1e-9


# -- record semantics ------------------------------------------------------------


def test_record_backend_logs_intents_without_transfer_time():
    sim, topo, net = make("record")
    flow = net.start_flow(topo.hosts[0], topo.hosts[1], 123.0,
                          metadata={"component": "shuffle"})
    sim.run()
    assert flow.finished
    assert flow.end_time == pytest.approx(0.0, abs=1e-9)
    assert len(net.intents) == 1
    intent = net.intents[0]
    assert intent.src is topo.hosts[0] and intent.dst is topo.hosts[1]
    assert intent.size == 123.0
    record = intent.to_dict()
    assert record["src"] == topo.hosts[0].name
    assert record["metadata"]["component"] == "shuffle"


def test_record_backend_counts_local_flows_too():
    sim, topo, net = make("record")
    net.start_flow(topo.hosts[0], topo.hosts[0], 10.0)
    net.start_flow(topo.hosts[0], topo.hosts[1], 10.0)
    sim.run()
    assert len(net.intents) == 2
    assert net.completed_count == 2
