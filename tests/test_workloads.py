"""Tests for workload suites and arrival processes."""

import numpy as np
import pytest

from repro.cluster.config import ClusterSpec, HadoopConfig
from repro.cluster.units import MB
from repro.workloads import (
    ANALYTICS_MIX,
    FixedArrivals,
    MICRO_MIX,
    PoissonArrivals,
    SHUFFLE_HEAVY_MIX,
    UniformArrivals,
    WorkloadSuite,
)
from repro.workloads.suite import MixEntry


def test_poisson_arrivals_sorted_and_start_at_zero():
    process = PoissonArrivals(rate=0.5)
    times = process.sample(20, np.random.default_rng(0))
    assert len(times) == 20
    assert times[0] == 0.0
    assert times == sorted(times)
    # Mean gap should be near 1/rate = 2s.
    gaps = [b - a for a, b in zip(times, times[1:])]
    assert sum(gaps) / len(gaps) == pytest.approx(2.0, rel=0.5)


def test_poisson_rejects_bad_rate():
    with pytest.raises(ValueError):
        PoissonArrivals(rate=0.0)


def test_uniform_arrivals_even_spacing():
    times = UniformArrivals(span=10.0).sample(5, np.random.default_rng(0))
    assert times == [0.0, 2.5, 5.0, 7.5, 10.0]
    assert UniformArrivals(span=10.0).sample(1, np.random.default_rng(0)) == [0.0]


def test_fixed_arrivals_replays_trace():
    process = FixedArrivals([5.0, 1.0, 3.0])
    assert process.sample(2, np.random.default_rng(0)) == [1.0, 3.0]
    with pytest.raises(ValueError):
        process.sample(4, np.random.default_rng(0))
    with pytest.raises(ValueError):
        FixedArrivals([-1.0])


def test_mix_entry_validation():
    with pytest.raises(ValueError):
        MixEntry("terasort", input_gb=0.5, weight=0.0)
    with pytest.raises(ValueError):
        MixEntry("terasort", input_gb=-1.0)
    with pytest.raises(ValueError):
        WorkloadSuite([])


def test_sample_jobs_follows_weights():
    suite = WorkloadSuite([MixEntry("grep", 0.25, weight=9.0),
                           MixEntry("terasort", 0.25, weight=1.0)])
    specs = suite.sample_jobs(200, np.random.default_rng(1))
    kinds = [spec.kind for spec in specs]
    assert kinds.count("grep") > 140
    assert len({spec.job_id for spec in specs}) == 200  # unique ids


def test_suite_run_produces_results_and_traces():
    suite = WorkloadSuite(
        [MixEntry("grep", 0.125), MixEntry("wordcount", 0.125)],
        arrivals=UniformArrivals(span=4.0), name="test")
    config = HadoopConfig(block_size=32 * MB, num_reducers=2)
    outcome = suite.run(count=3, cluster_spec=ClusterSpec(num_nodes=4),
                        config=config, seed=5)
    assert len(outcome.results) == 3
    assert len(outcome.traces) == 3
    assert outcome.makespan > 0
    assert outcome.mean_jct() > 0
    assert outcome.arrival_times == [0.0, 2.0, 4.0]
    # All jobs completed and produced flows.
    assert all(result.finish_time > 0 for result in outcome.results)
    assert all(trace.flow_count() > 0 for trace in outcome.traces)


def test_suite_total_bytes_deduplicates_shared_control_flows():
    suite = WorkloadSuite([MixEntry("grep", 0.125)],
                          arrivals=UniformArrivals(span=1.0))
    config = HadoopConfig(block_size=32 * MB, num_reducers=2)
    outcome = suite.run(count=2, cluster_spec=ClusterSpec(num_nodes=4),
                        config=config, seed=7)
    naive_sum = sum(trace.total_bytes() for trace in outcome.traces)
    assert outcome.total_bytes() <= naive_sum


def test_traces_by_kind():
    suite = WorkloadSuite([MixEntry("grep", 0.125)], name="g")
    config = HadoopConfig(block_size=32 * MB, num_reducers=2)
    outcome = suite.run(count=2, cluster_spec=ClusterSpec(num_nodes=4),
                        config=config, seed=8)
    grouped = outcome.traces_by_kind()
    assert set(grouped) == {"grep"}
    assert len(grouped["grep"]) == 2


def test_canonical_mixes_are_well_formed():
    for mix in (MICRO_MIX, SHUFFLE_HEAVY_MIX, ANALYTICS_MIX):
        assert mix
        assert all(entry.weight > 0 for entry in mix)
        WorkloadSuite(mix)  # constructable
