"""Tests for lifecycle tracing: spans, sinks, tracer, rendering."""

import pytest

from repro.obs.export import render_span_tree, span_summary_table
from repro.obs.trace import (
    NULL_SPAN,
    FileSink,
    MemorySink,
    Span,
    Tracer,
    load_spans,
    span_children,
)


def test_disabled_tracer_is_a_noop():
    sink = MemorySink()
    tracer = Tracer(sink=sink, enabled=False)
    span = tracer.start("job", "j1", 0.0)
    assert span is NULL_SPAN
    tracer.end(span, 5.0)
    tracer.event("speculate", 1.0)
    tracer.emit("flow", "f", 0.0, 1.0)
    assert sink.spans == []
    assert tracer.spans_started == 0
    assert tracer.spans_emitted == 0


def test_enabled_tracer_emits_closed_spans():
    sink = MemorySink()
    tracer = Tracer(sink=sink, enabled=True)
    job = tracer.start("job", "j1", 0.0, input_bytes=100)
    task = tracer.start("task", "map[0]", 1.0, parent=job, host="h000")
    tracer.end(task, 2.5, output_bytes=50)
    tracer.end(job, 9.0)
    assert [span.kind for span in sink.spans] == ["task", "job"]
    assert sink.spans[0].parent_id == job.span_id
    assert sink.spans[0].duration == pytest.approx(1.5)
    assert sink.spans[0].attrs == {"host": "h000", "output_bytes": 50}


def test_null_span_parent_means_root():
    tracer = Tracer(sink=MemorySink(), enabled=True)
    span = tracer.start("job", "j", 0.0, parent=NULL_SPAN)
    assert span.parent_id is None


def test_event_is_zero_duration():
    sink = MemorySink()
    tracer = Tracer(sink=sink, enabled=True)
    tracer.event("container-lost", 3.0, host="h001")
    (span,) = sink.spans
    assert span.kind == "event"
    assert span.start == span.end == 3.0
    assert span.duration == 0.0


def test_file_sink_roundtrip(tmp_path):
    path = tmp_path / "spans.jsonl"
    sink = FileSink(str(path))
    tracer = Tracer(sink=sink, enabled=True)
    parent = tracer.start("job", "j", 0.0)
    tracer.emit("flow", "f", 1.0, 2.0, parent=parent, size=10)
    tracer.end(parent, 4.0)
    sink.close()

    spans = load_spans(str(path))
    assert [span.kind for span in spans] == ["flow", "job"]
    assert spans[0].parent_id == spans[1].span_id
    assert spans[0].attrs == {"size": 10}
    with pytest.raises(ValueError):
        sink.emit(Span(99, "flow", "late", 0.0))


def test_span_children_sorted_by_start():
    spans = [Span(1, "job", "j", 0.0),
             Span(3, "task", "b", 5.0, parent_id=1),
             Span(2, "task", "a", 1.0, parent_id=1)]
    children = span_children(spans)
    assert [span.name for span in children[1]] == ["a", "b"]
    assert children[None][0].name == "j"


def test_render_span_tree_nesting_and_elision():
    spans = [Span(1, "job", "j", 0.0)]
    spans[0].end = 10.0
    for index in range(5):
        child = Span(2 + index, "task", f"t{index}", float(index),
                     parent_id=1)
        child.end = index + 1.0
        spans.append(child)
    text = render_span_tree(spans, max_children=3)
    assert text.splitlines()[0].startswith("job:j")
    assert "  task:t0" in text
    assert "(2 more)" in text
    assert "t4" not in text


def test_render_span_tree_kind_filter_reparents():
    job = Span(1, "job", "j", 0.0)
    round_ = Span(2, "round", "r", 0.0, parent_id=1)
    task = Span(3, "task", "t", 1.0, parent_id=2)
    for span in (job, round_, task):
        span.end = 5.0
    text = render_span_tree([job, round_, task], kinds=["job", "task"])
    lines = text.splitlines()
    assert lines[0].startswith("job:j")
    assert lines[1].startswith("  task:t")  # re-parented past hidden round
    assert "round" not in text


def test_render_span_tree_max_depth():
    job = Span(1, "job", "j", 0.0)
    task = Span(2, "task", "t", 1.0, parent_id=1)
    for span in (job, task):
        span.end = 2.0
    text = render_span_tree([job, task], max_depth=0)
    assert "task" not in text


def test_span_summary_table_groups_by_kind():
    spans = []
    for index in range(3):
        span = Span(index + 1, "fetch", f"f{index}", 0.0)
        span.end = 2.0
        spans.append(span)
    table = span_summary_table(spans)
    (row,) = table.rows
    assert row[0] == "fetch"
    assert row[1] == 3
    assert row[2] == pytest.approx(6.0)
