"""Shared test configuration: an opt-in per-test hang guard.

The supervision layer deliberately exercises hung and SIGKILLed
workers; a regression there shows up as a *hang*, not a failure, and
``pytest-timeout`` is not in the minimal container.  So the guard is
hand-rolled: when ``KEDDAH_TEST_TIMEOUT`` is set to a positive number
of seconds, each test body runs under a ``SIGALRM`` interval timer and
is failed with a readable message the moment it exceeds the budget.
``scripts/check.sh`` enables it for the tier-1 gate; plain local
``pytest`` runs are unaffected (debuggers stay usable).

POSIX-only by construction — on platforms without ``SIGALRM`` the
guard silently stands down.
"""

import os
import signal

import pytest


class TestHang(Exception):
    """The test exceeded KEDDAH_TEST_TIMEOUT (it would have hung CI)."""


def _budget_seconds() -> float:
    raw = os.environ.get("KEDDAH_TEST_TIMEOUT", "").strip()
    try:
        return float(raw) if raw else 0.0
    except ValueError:
        return 0.0


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    budget = _budget_seconds()
    if budget <= 0 or not hasattr(signal, "SIGALRM"):
        yield
        return

    def expired(signum, frame):
        raise TestHang(
            f"{item.nodeid} still running after {budget:g}s "
            f"(KEDDAH_TEST_TIMEOUT) — treating as hung")

    previous = signal.signal(signal.SIGALRM, expired)
    signal.setitimer(signal.ITIMER_REAL, budget)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
