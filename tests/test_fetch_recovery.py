"""Tests for shuffle fetch-failure recovery (map output re-creation)."""

import pytest

from repro.cluster.config import ClusterSpec, HadoopConfig
from repro.cluster.units import MB
from repro.faults import NODE, FaultEvent, FaultInjector
from repro.jobs import make_job
from repro.mapreduce.cluster import HadoopCluster


def crash_run(seed, fail_at, slowstart=1.0):
    """Kill a non-AM node after the map phase but before fetches finish.

    slowstart=1.0 means reducers only start after ALL maps commit, so a
    node crash at the right moment guarantees committed-but-unfetched
    map outputs on the dead node.
    """
    dry = HadoopCluster(ClusterSpec(num_nodes=8, hosts_per_rack=4),
                        HadoopConfig(block_size=32 * MB, num_reducers=4,
                                     slowstart=slowstart), seed=seed)
    results, _ = dry.run([make_job("terasort", input_gb=0.5, job_id="dry")])
    am_host = results[0].rounds[0].am_host
    maps_done = results[0].rounds[0].maps_done_time
    # Pick a victim that actually served map outputs (and isn't the AM).
    fetch_sources = [r.src for r in dry.collector.records
                     if r.service == "shuffle-fetch" and r.src != am_host]
    assert fetch_sources, "dry run produced no remote fetches"
    victim_name = fetch_sources[0]

    cluster = HadoopCluster(ClusterSpec(num_nodes=8, hosts_per_rack=4),
                            HadoopConfig(block_size=32 * MB, num_reducers=4,
                                         slowstart=slowstart), seed=seed)
    victim = next(h for h in cluster.workers if h.name == victim_name)
    when = fail_at if fail_at is not None else maps_done + 0.1
    injector = FaultInjector(cluster, [FaultEvent(when, NODE, victim.name)])
    results, traces = cluster.run(
        [make_job("terasort", input_gb=0.5, job_id="dry")])
    return cluster, results[0], traces[0], victim


def test_fetch_failure_triggers_recovery_and_job_completes():
    cluster, result, trace, victim = crash_run(seed=101, fail_at=None)
    round0 = result.rounds[0]
    assert not result.failed
    # The dead node ran maps whose outputs had to be re-created.
    assert round0.fetch_recoveries > 0
    # Every reducer still assembled its full input.
    assert round0.shuffle_bytes == pytest.approx(round0.map_output_bytes)
    assert cluster.sim.pending() == 0


def test_no_fetches_sourced_from_dead_node_after_recovery():
    cluster, result, trace, victim = crash_run(seed=102, fail_at=None)
    injected = [r for r in cluster.collector.records
                if r.service == "shuffle-fetch" and r.src == victim.name]
    # Any fetch flow sourced at the victim must have started before the
    # crash (in-flight transfers finish; no NEW fetches from the dead node).
    crash_time = result.rounds[0].maps_done_time + 0.1
    assert all(r.start <= crash_time + 1e-6 for r in injected)


def test_recovery_is_memoised_across_reducers():
    cluster, result, trace, victim = crash_run(seed=103, fail_at=None)
    round0 = result.rounds[0]
    # 4 reducers each fetch from the dead node's maps, but each dead map
    # output is recovered at most a few times (racing fetchers), far
    # fewer than reducers x dead maps.
    dead_maps = max(round0.fetch_recoveries, 1)
    assert round0.fetch_recoveries <= 4 * dead_maps  # sanity bound
    assert round0.fetch_recoveries < round0.num_maps * round0.num_reduces


def test_healthy_run_performs_no_recoveries():
    cluster = HadoopCluster(ClusterSpec(num_nodes=8, hosts_per_rack=4),
                            HadoopConfig(block_size=32 * MB, num_reducers=4),
                            seed=104)
    results, _ = cluster.run([make_job("terasort", input_gb=0.5)])
    assert results[0].rounds[0].fetch_recoveries == 0
