"""Unit and property tests for the named RNG streams."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simkit import RngRegistry, stable_hash


def test_same_seed_same_stream_reproduces():
    a = RngRegistry(seed=7).stream("tasks")
    b = RngRegistry(seed=7).stream("tasks")
    assert np.array_equal(a.random(16), b.random(16))


def test_different_names_give_independent_streams():
    registry = RngRegistry(seed=7)
    a = registry.stream("tasks").random(16)
    b = registry.stream("shuffle").random(16)
    assert not np.array_equal(a, b)


def test_stream_is_cached_not_recreated():
    registry = RngRegistry(seed=7)
    first = registry.stream("x")
    draw = first.random()
    again = registry.stream("x")
    assert again is first
    # Cached stream continues, does not restart.
    assert again.random() != pytest.approx(draw)


def test_adding_new_stream_does_not_perturb_existing():
    plain = RngRegistry(seed=3)
    draws_plain = plain.stream("alpha").random(8)

    interleaved = RngRegistry(seed=3)
    interleaved.stream("newcomer").random(8)
    draws_interleaved = interleaved.stream("alpha").random(8)
    assert np.array_equal(draws_plain, draws_interleaved)


def test_fork_derives_distinct_registry():
    base = RngRegistry(seed=11)
    fork_a = base.fork(1)
    fork_b = base.fork(2)
    assert fork_a.seed != fork_b.seed
    assert not np.array_equal(fork_a.stream("s").random(8), fork_b.stream("s").random(8))
    # Forking is deterministic.
    assert base.fork(1).seed == fork_a.seed


def test_seed_must_be_int():
    with pytest.raises(TypeError):
        RngRegistry(seed="7")  # type: ignore[arg-type]


def test_stable_hash_is_stable_known_values():
    # CRC32 is specified; pin a value so accidental algorithm swaps fail loudly.
    assert stable_hash("shuffle") == zlib_crc("shuffle")


def zlib_crc(text):
    import zlib

    return zlib.crc32(text.encode()) & 0xFFFFFFFF


@given(st.text(max_size=64))
def test_stable_hash_in_32bit_range(name):
    value = stable_hash(name)
    assert 0 <= value <= 0xFFFFFFFF


@given(st.integers(min_value=0, max_value=2**31 - 1), st.text(min_size=1, max_size=32))
def test_registry_deterministic_for_any_seed_and_name(seed, name):
    a = RngRegistry(seed).stream(name).random(4)
    b = RngRegistry(seed).stream(name).random(4)
    assert np.array_equal(a, b)
