"""Plan captures through the campaign cache hierarchy, store and CLI.

Three properties keep plan and single-job captures safely co-resident
in one store:

* **key-schema disjointness** — plan keys carry a ``plan`` block and
  no ``job``/``input_gb``/``job_kwargs`` fields, single-job keys the
  reverse, so the two families can never alias (golden-asserted here);
* **polymorphic entries** — store payloads carry a ``result_type``
  discriminator so a decoded plan entry comes back as a
  :class:`PlanResult` (absence still means ``job``);
* **byte-identical replay** — a warm-store plan capture returns the
  exact bytes the cold run produced.
"""

import json

import pytest

from repro.analysis.plans import is_plan_trace, plan_meta
from repro.capture.records import JobTrace
from repro.cli import main
from repro.experiments.campaigns import (
    CampaignConfig,
    cache_stats,
    capture_plan,
    capture_plan_campaign,
    clear_cache,
    set_store,
)
from repro.experiments.runner import CapturePoint, PlanPoint, derive_seed
from repro.experiments.store import (
    TRACE_FORMAT_VERSION,
    CaptureStore,
    decode_entry,
    encode_entry,
)
from repro.mapreduce.result import PlanResult

SMALL = CampaignConfig(nodes=4, hosts_per_rack=2, num_reducers=2)
TINY = 0.0625  # GiB of external input / scale factor


@pytest.fixture(autouse=True)
def isolated_caches():
    clear_cache()
    set_store(None)
    yield
    clear_cache()
    set_store(None)


def _plan_point(params=None, seed=3):
    return PlanPoint.from_campaign("tpcx-hs", seed, SMALL,
                                   params or {"scale": TINY})


def _jsonl(trace, tmp_path, name):
    path = tmp_path / name
    trace.to_jsonl(path)
    return path.read_bytes()


# -- key schemas --------------------------------------------------------------------


def test_key_schemas_are_disjoint_golden():
    capture_key = CapturePoint.from_campaign("grep", TINY, 3, SMALL).key_dict()
    plan_key = _plan_point().key_dict()
    assert set(capture_key) == {"backend", "config", "format", "input_gb",
                                "job", "job_kwargs", "seed"}
    assert set(plan_key) == {"backend", "config", "format", "plan", "seed"}
    # The discriminating blocks never appear in the other family.
    assert "plan" not in capture_key
    assert "job" not in plan_key and "input_gb" not in plan_key


def test_plan_key_carries_name_params_and_signature():
    key = _plan_point().key_dict()
    assert key["format"] == TRACE_FORMAT_VERSION
    assert key["plan"]["name"] == "tpcx-hs"
    assert key["plan"]["params"] == {"scale": TINY}
    assert len(key["plan"]["signature"]) == 64
    assert json.dumps(key, sort_keys=True)  # keys stay JSON-serialisable


def test_plan_keys_separate_parameterisations():
    base = _plan_point({"scale": TINY})
    assert base.key() == _plan_point({"scale": TINY}).key()
    assert base.key() != _plan_point({"scale": 2 * TINY}).key()
    assert base.key() != _plan_point({"scale": TINY}, seed=4).key()


def test_plan_logical_key_is_backend_independent():
    fluid = _plan_point()
    analytic = PlanPoint.from_campaign(
        "tpcx-hs", 3, CampaignConfig(nodes=4, hosts_per_rack=2,
                                     num_reducers=2, backend="analytic"),
        {"scale": TINY})
    assert fluid.key() != analytic.key()
    assert fluid.logical_key() == analytic.logical_key()


def test_plan_point_supervision_surface():
    point = _plan_point()
    assert point.job == "plan:tpcx-hs"
    assert point.input_gb == pytest.approx(TINY)


# -- polymorphic store entries ------------------------------------------------------


@pytest.fixture(scope="module")
def hs_capture(tmp_path_factory):
    clear_cache()
    set_store(None)
    result, trace = capture_plan("tpcx-hs", {"scale": TINY}, seed=3,
                                 campaign=SMALL)
    clear_cache()
    return result, trace


def test_capture_plan_returns_plan_result_and_plan_trace(hs_capture):
    result, trace = hs_capture
    assert isinstance(result, PlanResult)
    assert not result.failed
    assert is_plan_trace(trace)
    assert plan_meta(trace)["params"] == {"scale": TINY}


def test_plan_entries_roundtrip_with_their_type(hs_capture, tmp_path):
    result, trace = hs_capture
    payload = encode_entry(_plan_point().key_dict(), result, trace)
    header = json.loads(payload.splitlines()[0])
    assert header["result_type"] == "plan"
    decoded_result, decoded_trace = decode_entry(payload)
    assert isinstance(decoded_result, PlanResult)
    assert decoded_result.to_dict() == result.to_dict()
    assert (_jsonl(decoded_trace, tmp_path, "decoded.jsonl")
            == _jsonl(trace, tmp_path, "original.jsonl"))


def test_unknown_result_type_is_rejected(hs_capture):
    result, trace = hs_capture
    payload = encode_entry(_plan_point().key_dict(), result, trace)
    lines = payload.splitlines()
    header = json.loads(lines[0])
    header["result_type"] = "mystery"
    tampered = "\n".join([json.dumps(header)] + lines[1:]) + "\n"
    with pytest.raises(ValueError, match="result_type"):
        decode_entry(tampered)


# -- cache hierarchy ----------------------------------------------------------------


def test_warm_store_replay_is_byte_identical(tmp_path):
    store = set_store(CaptureStore(tmp_path / "store"))
    _, cold = capture_plan("tpcx-hs", {"scale": TINY}, seed=3, campaign=SMALL)
    assert store.stats.writes == 1
    clear_cache()  # drop the memo so the store must answer
    warm_result, warm = capture_plan("tpcx-hs", {"scale": TINY}, seed=3,
                                     campaign=SMALL)
    assert store.stats.hits == 1
    assert isinstance(warm_result, PlanResult)
    assert (_jsonl(warm, tmp_path, "warm.jsonl")
            == _jsonl(cold, tmp_path, "cold.jsonl"))


def test_memo_serves_repeat_plan_captures(tmp_path):
    _, first = capture_plan("tpcx-hs", {"scale": TINY}, seed=3,
                            campaign=SMALL)
    _, second = capture_plan("tpcx-hs", {"scale": TINY}, seed=3,
                             campaign=SMALL)
    assert cache_stats()["memo"]["hits"] >= 1
    assert (_jsonl(second, tmp_path, "second.jsonl")
            == _jsonl(first, tmp_path, "first.jsonl"))


def test_plan_and_job_entries_coexist_in_one_store(tmp_path):
    from repro.experiments.campaigns import capture

    store = set_store(CaptureStore(tmp_path / "store"))
    capture_plan("tpcx-hs", {"scale": TINY}, seed=3, campaign=SMALL)
    capture("grep", TINY, seed=3, campaign=SMALL)
    assert store.stats.writes == 2
    clear_cache()
    _, plan_trace = capture_plan("tpcx-hs", {"scale": TINY}, seed=3,
                                 campaign=SMALL)
    _, job_trace = capture("grep", TINY, seed=3, campaign=SMALL)
    assert store.stats.hits == 2
    assert is_plan_trace(plan_trace)
    assert not is_plan_trace(job_trace)


def test_plan_campaign_derives_seeds_per_point():
    traces = capture_plan_campaign(
        "tpcx-hs", [{"scale": TINY}, {"scale": 2 * TINY}],
        seed=5, campaign=SMALL)
    assert [t.meta.seed for t in traces] == [derive_seed(5, 0),
                                             derive_seed(5, 1)]
    assert [plan_meta(t)["params"]["scale"] for t in traces] == [
        TINY, 2 * TINY]


# -- CLI ----------------------------------------------------------------------------


def test_cli_plans_list(capsys):
    assert main(["plans", "list"]) == 0
    out = capsys.readouterr().out
    assert "pig-aggregation" in out
    assert "tpcx-hs" in out


def test_cli_plans_show(capsys):
    assert main(["plans", "show", "tpcx-hs"]) == 0
    out = capsys.readouterr().out
    assert "hsgen" in out and "hssort" in out and "hsvalidate" in out
    assert "hsph" in out


def test_cli_plans_show_unknown_plan(capsys):
    assert main(["plans", "show", "no-such-plan"]) != 0


def test_cli_capture_plan_end_to_end(tmp_path, capsys):
    path = tmp_path / "hs.jsonl"
    code = main(["capture", "--plan", "tpcx-hs", "--scale", str(TINY),
                 "--nodes", "4", "--hosts-per-rack", "2", "--reducers", "2",
                 "--seed", "3", "-o", str(path)])
    assert code == 0
    out = capsys.readouterr().out
    # The per-stage breakdown and score print with the capture summary.
    assert "hsgen" in out and "hssort" in out
    assert "hsph" in out
    trace = JobTrace.from_jsonl(path)
    assert is_plan_trace(trace)
    assert trace.meta.job_kind == "plan:tpcx-hs"


def test_cli_capture_plan_through_store(tmp_path, capsys):
    path = tmp_path / "hs.jsonl"
    args = ["capture", "--plan", "tpcx-hs", "--scale", str(TINY),
            "--nodes", "4", "--hosts-per-rack", "2", "--reducers", "2",
            "--seed", "3", "--store", str(tmp_path / "store"),
            "-o", str(path)]
    assert main(args) == 0
    cold = path.read_bytes()
    assert ", simulated)" in capsys.readouterr().out
    assert main(args) == 0
    assert ", store)" in capsys.readouterr().out
    assert path.read_bytes() == cold


def test_cli_capture_rejects_job_and_plan_together(tmp_path, capsys):
    code = main(["capture", "--job", "grep", "--plan", "tpcx-hs",
                 "-o", str(tmp_path / "x.jsonl")])
    assert code == 2
    assert "exactly one" in capsys.readouterr().out


def test_cli_capture_rejects_plan_params_on_jobs(tmp_path, capsys):
    code = main(["capture", "--job", "grep", "--scale", "1",
                 "-o", str(tmp_path / "x.jsonl")])
    assert code == 2
    assert "--plan" in capsys.readouterr().out


def test_cli_capture_needs_some_workload(tmp_path, capsys):
    assert main(["capture", "-o", str(tmp_path / "x.jsonl")]) == 2
