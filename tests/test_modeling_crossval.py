"""Unit tests for leave-one-out scaling-law cross-validation."""

import pytest

from repro.capture.records import CaptureMeta, FlowRecord, JobTrace
from repro.cluster.units import GB
from repro.modeling.crossval import HoldoutScore, leave_one_out


def trace(input_gb, n_shuffle, flow_size=1000.0):
    meta = CaptureMeta(job_id=f"j{input_gb}", job_kind="testjob",
                       input_bytes=input_gb * GB,
                       submit_time=0.0, finish_time=10.0)
    flows = [FlowRecord(src="a", dst="b", src_rack=0, dst_rack=0,
                        src_port=13562, dst_port=49000 + i, size=flow_size,
                        start=float(i), end=float(i) + 1, component="shuffle")
             for i in range(n_shuffle)]
    return JobTrace(meta=meta, flows=flows)


def test_perfectly_linear_data_validates_perfectly():
    traces = [trace(1.0, 10), trace(2.0, 20), trace(4.0, 40), trace(8.0, 80)]
    report = leave_one_out(traces)
    shuffle_scores = [s for s in report.scores if s.component == "shuffle"]
    assert len(shuffle_scores) == 4
    for score in shuffle_scores:
        assert score.count_error == pytest.approx(0.0, abs=0.02)
        assert score.volume_error == pytest.approx(0.0, abs=0.02)
    assert report.mean_volume_error() < 0.02
    assert report.worst_volume_error() < 0.02


def test_nonlinear_data_shows_errors():
    # Quadratic counts break the linear law at the extremes.
    traces = [trace(1.0, 10), trace(2.0, 40), trace(4.0, 160),
              trace(8.0, 640)]
    report = leave_one_out(traces)
    assert report.mean_volume_error() > 0.1


def test_requires_three_traces():
    with pytest.raises(ValueError):
        leave_one_out([trace(1.0, 10), trace(2.0, 20)])


def test_component_absent_from_training_scores_inf():
    # Only the held-out trace has shuffle flows.
    traces = [trace(1.0, 0), trace(2.0, 0), trace(4.0, 25)]
    report = leave_one_out(traces)
    holdout = [s for s in report.scores
               if s.component == "shuffle" and s.input_gb == 4.0]
    assert holdout
    assert holdout[0].predicted_count == 0
    # Nothing predicted against a real population: 100% volume error.
    assert holdout[0].volume_error == 1.0
    assert report.mean_volume_error() <= 1.0


def test_holdout_score_zero_actual():
    score = HoldoutScore(input_gb=1.0, component="shuffle",
                         actual_count=0, predicted_count=0,
                         actual_volume=0.0, predicted_volume=0.0)
    assert score.count_error == 0.0
    assert score.volume_error == 0.0
