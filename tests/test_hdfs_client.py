"""Integration tests: DFS client over the flow network."""

import numpy as np
import pytest

from repro.capture.collector import FlowCollector
from repro.capture.records import TrafficComponent
from repro.cluster.config import ClusterSpec, HadoopConfig
from repro.cluster.topology import build_topology
from repro.cluster.units import MB
from repro.hdfs.client import DfsClient, split_into_blocks
from repro.hdfs.datanode import DataNode
from repro.hdfs.namenode import NameNode
from repro.net.network import FlowNetwork
from repro.simkit import Simulator


def make_dfs(num_hosts=8, block_size=32 * MB, replication=3):
    sim = Simulator()
    topo = build_topology("tree", num_hosts=num_hosts, hosts_per_rack=4)
    net = FlowNetwork(sim, topo)
    config = HadoopConfig(block_size=block_size, replication=replication)
    spec = ClusterSpec(num_nodes=num_hosts)
    nn = NameNode(host=topo.hosts[0], datanodes=topo.hosts,
                  rng=np.random.default_rng(0))
    datanodes = {
        host: DataNode(sim, net, host, nn.host,
                       spec.disk_read_rate, spec.disk_write_rate)
        for host in topo.hosts
    }
    client = DfsClient(sim, net, nn, datanodes, config)
    collector = FlowCollector(net)
    return sim, topo, net, nn, client, collector


def test_split_into_blocks():
    assert split_into_blocks(0, 10) == [0]
    assert split_into_blocks(10, 10) == [10]
    assert split_into_blocks(25, 10) == [10, 10, 5]
    assert split_into_blocks(30, 10) == [10, 10, 10]
    with pytest.raises(ValueError):
        split_into_blocks(-1, 10)
    with pytest.raises(ValueError):
        split_into_blocks(10, 0)


def test_write_file_places_all_blocks():
    sim, topo, net, nn, client, _ = make_dfs()

    def writer(sim):
        locations = yield from client.write_file(
            "/out", 70 * MB, topo.hosts[1], job_id="j1")
        return locations

    process = sim.process(writer(sim))
    sim.run()
    locations = process.result
    assert len(locations) == 3  # 32 + 32 + 6
    assert nn.file_size("/out") == 70 * MB
    for location in locations:
        assert location.primary == topo.hosts[1]  # replica 1 local to writer
        assert len(location.replicas) == 3


def test_write_traffic_is_replication_minus_one_copies():
    sim, topo, net, nn, client, collector = make_dfs(replication=3)
    size = 64 * MB

    def writer(sim):
        yield from client.write_file("/out", size, topo.hosts[1], job_id="j1")

    sim.process(writer(sim))
    sim.run()
    write_bytes = sum(r.size for r in collector.records
                      if r.component == TrafficComponent.HDFS_WRITE.value)
    # First replica is local: (3-1) copies of every byte cross the network.
    assert write_bytes == pytest.approx(2 * size)


@pytest.mark.parametrize("replication,expected_copies", [(1, 0), (2, 1), (3, 2)])
def test_write_traffic_scales_with_replication(replication, expected_copies):
    sim, topo, net, nn, client, collector = make_dfs(replication=replication)
    size = 32 * MB

    def writer(sim):
        yield from client.write_file("/out", size, topo.hosts[1], job_id="j1")

    sim.process(writer(sim))
    sim.run()
    assert collector.total_bytes() == pytest.approx(expected_copies * size)


def test_pipeline_hop_ports_classify_as_write():
    sim, topo, net, nn, client, collector = make_dfs()

    def writer(sim):
        yield from client.write_file("/out", 32 * MB, topo.hosts[1], job_id="j1")

    sim.process(writer(sim))
    sim.run()
    from repro.capture.classifier import classification_accuracy
    assert collector.records
    assert classification_accuracy(collector.records) == 1.0


def test_read_local_block_generates_no_network_traffic():
    sim, topo, net, nn, client, collector = make_dfs()
    locations = client.preload_file("/in", 32 * MB)
    reader = locations[0].primary

    def read(sim):
        served = yield from client.read_block(locations[0].block, reader, job_id="j1")
        return served

    process = sim.process(read(sim))
    sim.run()
    assert process.result == reader
    assert collector.records == []


def test_read_remote_block_generates_one_read_flow():
    sim, topo, net, nn, client, collector = make_dfs()
    locations = client.preload_file("/in", 32 * MB)
    outsiders = [h for h in topo.hosts if h not in locations[0].replicas]
    reader = outsiders[0]

    def read(sim):
        yield from client.read_block(locations[0].block, reader, job_id="j1")

    sim.process(read(sim))
    sim.run()
    assert len(collector.records) == 1
    record = collector.records[0]
    assert record.component == TrafficComponent.HDFS_READ.value
    assert record.size == pytest.approx(32 * MB)
    assert record.dst == reader.name


def test_read_file_reads_every_block():
    sim, topo, net, nn, client, collector = make_dfs()
    client.preload_file("/in", 70 * MB)
    reader = topo.hosts[5]

    def read(sim):
        served = yield from client.read_file("/in", reader, job_id="j1")
        return served

    process = sim.process(read(sim))
    sim.run()
    assert len(process.result) == 3


def test_preload_creates_no_flows():
    sim, topo, net, nn, client, collector = make_dfs()
    locations = client.preload_file("/in", 96 * MB)
    sim.run()
    assert len(locations) == 3
    assert collector.records == []
    assert nn.file_size("/in") == 96 * MB


def test_write_duration_bounded_by_disk_rate():
    sim, topo, net, nn, client, _ = make_dfs(num_hosts=8, block_size=32 * MB)
    spec = ClusterSpec()
    size = 32 * MB

    def writer(sim):
        yield from client.write_file("/out", size, topo.hosts[1], job_id="j1")

    sim.process(writer(sim))
    sim.run()
    # Block write can't beat the slowest stage: local disk write at
    # disk_write_rate (120 MB/s < 1 Gbit/s link).
    expected_min = size / spec.disk_write_rate
    assert sim.now >= expected_min * 0.999


def test_datanode_heartbeats_flow_to_namenode():
    sim, topo, net, nn, client, collector = make_dfs()
    datanode = client.datanodes[topo.hosts[3]]
    datanode.start_heartbeats()
    sim.schedule(10.0, datanode.stop_heartbeats)
    sim.run()
    control = [r for r in collector.records
               if r.component == TrafficComponent.CONTROL.value]
    assert len(control) >= 3
    assert all(r.dst == nn.host.name for r in control)
    assert all(r.dst_port == 8020 for r in control)


def test_namenode_host_heartbeat_is_local_and_invisible():
    sim, topo, net, nn, client, collector = make_dfs()
    datanode = client.datanodes[nn.host]
    datanode.start_heartbeats()
    sim.schedule(10.0, datanode.stop_heartbeats)
    sim.run()
    assert collector.records == []
    assert datanode.heartbeats_sent >= 3
