"""Supervision layer: classification, retries, quarantine, journal,
deadline watchdog, and graceful pool degradation."""

import json
import os
import signal
import time
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path

import pytest

from repro.experiments.campaigns import CampaignConfig
from repro.experiments.runner import CampaignRunner, CapturePoint, derive_seed
from repro.experiments.store import encode_entry
from repro.experiments.supervision import (
    DEADLINE,
    DETERMINISTIC,
    TRANSIENT,
    CampaignPointsFailed,
    CheckpointJournal,
    DeadlineExpired,
    FailureFingerprint,
    PointFailure,
    Quarantine,
    RetryPolicy,
    classify_failure,
)

SMALL = CampaignConfig(nodes=4, hosts_per_rack=2)

FAST_RETRIES = RetryPolicy(max_attempts=3, base_delay=0.01, max_delay=0.05)


def _point(seed=3, job="grep", input_gb=0.0625, job_kwargs=None):
    return CapturePoint.from_campaign(job, input_gb, seed, SMALL, job_kwargs)


def _clean_twin(point):
    """The same simulation without the fault-trigger kwargs."""
    return CapturePoint(job=point.job, input_gb=point.input_gb,
                        seed=point.seed, cluster_spec=point.cluster_spec,
                        hadoop_config=point.hadoop_config, job_kwargs=(),
                        key_config=point.key_config)


class PoisonPoint(CapturePoint):
    """Deterministically raises on every attempt."""

    def simulate(self, telemetry=None):
        raise ValueError("poisoned point")


class FlakyOncePoint(CapturePoint):
    """Raises a transient OSError on first contact, then runs clean.

    The sentinel file shares "already failed once" state across
    processes (and with the test), like a worker that crashed once.
    """

    def simulate(self, telemetry=None):
        sentinel = Path(dict(self.job_kwargs)["sentinel"])
        if not sentinel.exists():
            sentinel.write_text("tripped")
            raise OSError("transient worker glitch")
        return _clean_twin(self).simulate(telemetry)


class HangOncePoint(CapturePoint):
    """Hangs (past any test deadline) on first contact, then runs clean."""

    def simulate(self, telemetry=None):
        sentinel = Path(dict(self.job_kwargs)["sentinel"])
        if not sentinel.exists():
            sentinel.write_text("hung")
            time.sleep(600)
        return _clean_twin(self).simulate(telemetry)


class KillOncePoint(CapturePoint):
    """SIGKILLs its worker process on first contact, then runs clean.

    An optional ``delay`` kwarg postpones the kill, letting tests
    sequence the pool collapse after other same-round failures have
    been collected (the collapse breaks every in-flight future, so an
    uncollected point failure would be absorbed as collateral).
    """

    def simulate(self, telemetry=None):
        kwargs = dict(self.job_kwargs)
        sentinel = Path(kwargs["sentinel"])
        if not sentinel.exists():
            sentinel.write_text("killed")
            time.sleep(float(kwargs.get("delay", 0.0)))
            os.kill(os.getpid(), signal.SIGKILL)
        return _clean_twin(self).simulate(telemetry)


# -- failure classification ---------------------------------------------------------


def test_classification_sorts_worker_vs_simulation_failures():
    assert classify_failure(BrokenProcessPool("pool died")) == TRANSIENT
    assert classify_failure(OSError("broken pipe")) == TRANSIENT
    assert classify_failure(MemoryError()) == TRANSIENT
    assert classify_failure(EOFError()) == TRANSIENT
    assert classify_failure(ValueError("bad config")) == DETERMINISTIC
    assert classify_failure(ZeroDivisionError()) == DETERMINISTIC
    assert classify_failure(DeadlineExpired("too slow")) == DEADLINE


def _boom():
    raise ValueError("boom")


def test_fingerprint_ignores_call_site_line_numbers():
    fingerprints = []
    # Two textually identical call sites on different line numbers:
    # the fingerprints must still hash equal.
    try:
        _boom()
    except ValueError as exc:
        fingerprints.append(FailureFingerprint.from_exception(exc))
    try:
        _boom()
    except ValueError as exc:
        fingerprints.append(FailureFingerprint.from_exception(exc))
    assert fingerprints[0] == fingerprints[1]
    assert fingerprints[0].classification == DETERMINISTIC
    assert fingerprints[0].exception_type == "ValueError"


def test_fingerprint_distinguishes_different_crashes():
    def make(exc):
        try:
            raise exc
        except Exception as caught:
            return FailureFingerprint.from_exception(caught)

    a = make(ValueError("boom"))
    b = make(KeyError("boom"))
    assert a.traceback_sha256 != b.traceback_sha256


# -- retry policy -------------------------------------------------------------------


def test_retry_policy_budget_and_determinism_rules():
    policy = RetryPolicy(max_attempts=3)
    assert policy.should_retry(TRANSIENT, 1)
    assert policy.should_retry(DEADLINE, 2)
    assert not policy.should_retry(TRANSIENT, 3)  # budget exhausted
    assert not policy.should_retry(DETERMINISTIC, 1)  # pure function
    assert RetryPolicy(retry_deterministic=True).should_retry(DETERMINISTIC, 1)


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(deadline_s=0)


def test_backoff_is_deterministic_bounded_and_growing():
    policy = RetryPolicy(base_delay=0.1, backoff=2.0, max_delay=1.0,
                         jitter=0.5)
    first = policy.delay("key-a", 1)
    assert first == policy.delay("key-a", 1)  # no random in the control path
    assert 0.1 <= first <= 0.15
    assert policy.delay("key-a", 2) > first
    assert policy.delay("key-a", 50) == 1.0  # capped
    assert policy.delay("key-b", 1) != first  # jitter varies per key
    assert RetryPolicy(base_delay=0.0).delay("key-a", 1) == 0.0


# -- quarantine sidecar -------------------------------------------------------------


def _failure(key="k1"):
    fingerprint = FailureFingerprint(exception_type="ValueError",
                                     message="boom", traceback_sha256="ab" * 32,
                                     classification=DETERMINISTIC)
    return PointFailure(key=key, job="grep", input_gb=0.0625, seed=7,
                        attempts=1, fingerprints=[fingerprint])


def test_quarantine_sidecar_roundtrips_and_tolerates_torn_tail(tmp_path):
    path = tmp_path / "quarantine.jsonl"
    quarantine = Quarantine(path)
    quarantine.record(_failure("k1"))
    quarantine.record(_failure("k2"))
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"key": "k3", "job"')  # torn write mid-crash

    loaded = Quarantine.load(path)
    assert [failure.key for failure in loaded] == ["k1", "k2"]
    assert loaded[0].fingerprints[0].exception_type == "ValueError"
    assert len(quarantine) == 2


def test_quarantine_without_path_is_memory_only(tmp_path):
    quarantine = Quarantine(None)
    quarantine.record(_failure())
    assert len(quarantine) == 1
    assert Quarantine.load(tmp_path / "missing.jsonl") == []


def test_quarantine_dedupes_repeat_fingerprints_across_cycles(tmp_path):
    path = tmp_path / "quarantine.jsonl"
    Quarantine(path).record(_failure("k1"))
    # A later resume cycle opens the sidecar fresh and hits the same
    # poison point with the same crash signature: one line, counted.
    survivor = Quarantine(path)
    known = survivor.record(_failure("k1"))
    assert known.occurrences == 2
    assert known.attempts == 2
    assert len(survivor) == 1

    loaded = Quarantine.load(path)
    assert len(loaded) == 1
    assert loaded[0].occurrences == 2
    assert "seen 2x" in loaded[0].describe()


def test_quarantine_keeps_distinct_crash_signatures_apart(tmp_path):
    path = tmp_path / "quarantine.jsonl"
    quarantine = Quarantine(path)
    quarantine.record(_failure("k1"))

    different = _failure("k1")
    different.fingerprints[0] = FailureFingerprint(
        exception_type="OSError", message="io",
        traceback_sha256="cd" * 32, classification=DETERMINISTIC)
    quarantine.record(different)
    loaded = Quarantine.load(path)
    assert len(loaded) == 2
    assert all(failure.occurrences == 1 for failure in loaded)


# -- checkpoint journal -------------------------------------------------------------


def test_journal_records_and_replays_completed_points(tmp_path):
    point = _point(seed=11)
    value = point.simulate()
    entry = encode_entry(point.key_dict(), *value)
    path = tmp_path / "journal.jsonl"

    journal = CheckpointJournal(path)
    journal.record_completed(point.key(), point.job, point.input_gb,
                             point.seed, entry)
    journal.record_completed(point.key(), point.job, point.input_gb,
                             point.seed, entry)  # idempotent per key
    assert len(journal) == 1

    reopened = CheckpointJournal(path)
    assert reopened.completed_keys() == [point.key()]
    replayed = reopened.lookup(point.key())
    assert replayed is not None
    result, trace = replayed
    assert [flow.to_dict() for flow in trace.flows] == \
        [flow.to_dict() for flow in value[1].flows]
    assert reopened.lookup("no-such-key") is None


def test_journal_tolerates_torn_tail_and_counts_failures(tmp_path):
    path = tmp_path / "journal.jsonl"
    journal = CheckpointJournal(path)
    journal.record_failure(_failure())
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"completed": {"key": "torn')  # killed mid-write

    reopened = CheckpointJournal(path)
    assert len(reopened) == 0
    assert reopened.failures_recorded == 1
    assert reopened.truncated_lines == 1
    manifest = reopened.manifest()
    assert manifest["completed"] == 0
    assert manifest["truncated_lines"] == 1


def test_journal_first_line_is_a_version_header(tmp_path):
    path = tmp_path / "journal.jsonl"
    CheckpointJournal(path)
    first = json.loads(path.read_text().splitlines()[0])
    assert first == {"journal": {"format": 1}}


# -- supervised serial execution ----------------------------------------------------


def test_transient_failure_is_retried_in_place(tmp_path):
    flaky = FlakyOncePoint.from_campaign(
        "grep", 0.0625, 21, SMALL, {"sentinel": str(tmp_path / "once")})
    runner = CampaignRunner(store=None, workers=1, retry_policy=FAST_RETRIES)
    (result, trace), = runner.run([flaky])
    assert trace.flow_count() > 0
    assert runner.stats.retries == 1
    assert runner.stats.quarantined == 0
    assert not runner.failures


def test_poison_point_quarantines_and_campaign_completes(tmp_path):
    quarantine_path = tmp_path / "quarantine.jsonl"
    healthy = _point(seed=22)
    poison = PoisonPoint.from_campaign("grep", 0.0625, 23, SMALL)
    runner = CampaignRunner(store=None, workers=1, retry_policy=FAST_RETRIES,
                            quarantine=Quarantine(quarantine_path),
                            strict=False)
    outcomes = runner.run([healthy, poison])
    assert outcomes[0] is not None
    assert outcomes[1] is None
    assert runner.stats.quarantined == 1
    # Deterministic errors are not retried: one attempt, no backoff.
    assert runner.stats.retries == 0
    assert runner.failures[0].attempts == 1
    assert runner.failures[0].fingerprints[0].classification == DETERMINISTIC
    loaded = Quarantine.load(quarantine_path)
    assert [failure.key for failure in loaded] == [poison.key()]
    manifest = runner.manifest()
    assert manifest["quarantined"][0]["job"] == "grep"


def test_strict_run_raises_after_completing_everything_else():
    healthy = _point(seed=24)
    poison = PoisonPoint.from_campaign("grep", 0.0625, 25, SMALL)
    runner = CampaignRunner(store=None, workers=1, retry_policy=FAST_RETRIES,
                            strict=True)
    with pytest.raises(CampaignPointsFailed) as excinfo:
        runner.run([healthy, poison])
    assert excinfo.value.results[0] is not None  # partial results carried
    assert [failure.seed for failure in excinfo.value.failures] == [25]
    assert "poisoned point" in str(excinfo.value)


# -- deadline watchdog and pool degradation -----------------------------------------


def test_deadline_watchdog_kills_hung_point_and_retry_succeeds(tmp_path):
    hang = HangOncePoint.from_campaign(
        "grep", 0.0625, 31, SMALL, {"sentinel": str(tmp_path / "hang.once")})
    runner = CampaignRunner(
        store=None, workers=1,
        retry_policy=RetryPolicy(max_attempts=3, base_delay=0.01,
                                 deadline_s=3.0))
    (result, trace), = runner.run([hang])
    assert trace.flow_count() > 0
    assert runner.stats.deadline_kills >= 1
    assert runner.stats.retries >= 1
    assert runner.stats.quarantined == 0


def test_repeated_pool_collapse_degrades_to_serial(tmp_path):
    kill = KillOncePoint.from_campaign(
        "grep", 0.0625, 32, SMALL, {"sentinel": str(tmp_path / "kill.once")})
    healthy = _point(seed=33)
    runner = CampaignRunner(store=None, workers=2, retry_policy=FAST_RETRIES,
                            pool_failure_limit=1)
    outcomes = runner.run([healthy, kill])
    assert all(outcome is not None for outcome in outcomes)
    assert runner.stats.pool_failures >= 1
    assert runner.stats.degraded_serial >= 1
    assert not runner.failures
