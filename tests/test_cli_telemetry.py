"""CLI tests for the telemetry surfaces: --telemetry, trace, report."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def telemetry_run(tmp_path_factory):
    root = tmp_path_factory.mktemp("cli_tel")
    trace_path = root / "t.jsonl"
    tel_dir = root / "tel"
    code = main(["capture", "--job", "terasort", "--input-gb", "0.25",
                 "--nodes", "4", "--seed", "3", "-o", str(trace_path),
                 "--telemetry", str(tel_dir), "--probe-interval", "0.5"])
    assert code == 0
    return trace_path, tel_dir


def test_capture_writes_telemetry_artefacts(telemetry_run):
    _, tel_dir = telemetry_run
    names = sorted(path.name for path in tel_dir.iterdir())
    assert names == ["metrics.json", "metrics.prom", "probes.json",
                     "spans.jsonl"]
    metrics = json.loads((tel_dir / "metrics.json").read_text())
    assert any(entry["name"] == "net.flows_completed" for entry in metrics)
    prom = (tel_dir / "metrics.prom").read_text()
    assert "# TYPE sim_events_fired counter" in prom
    probes = json.loads((tel_dir / "probes.json").read_text())
    assert "net.active_flows" in probes


def test_trace_renders_span_tree(telemetry_run, capsys):
    _, tel_dir = telemetry_run
    assert main(["trace", str(tel_dir)]) == 0
    out = capsys.readouterr().out
    assert "span summary" in out or "spans in" in out
    assert "job:" in out
    assert "stage:" in out


def test_trace_kind_filter_and_depth(telemetry_run, capsys):
    _, tel_dir = telemetry_run
    assert main(["trace", str(tel_dir / "spans.jsonl"),
                 "--kinds", "job,stage", "--max-depth", "1"]) == 0
    out = capsys.readouterr().out
    assert "job:" in out
    assert "stage:" in out
    assert "fetch:" not in out
    assert "task:" not in out


def test_trace_summary_only(telemetry_run, capsys):
    _, tel_dir = telemetry_run
    assert main(["trace", str(tel_dir), "--summary-only"]) == 0
    out = capsys.readouterr().out
    assert "hdfs_write" in out
    assert "job:" not in out  # no tree lines


def test_trace_missing_stream_is_an_error(tmp_path, capsys):
    assert main(["trace", str(tmp_path / "nope.jsonl")]) == 2
    assert "no span stream" in capsys.readouterr().out


def test_report_reads_telemetry_dir(telemetry_run, capsys):
    trace_path, tel_dir = telemetry_run
    assert main(["report", str(trace_path),
                 "--telemetry", str(tel_dir)]) == 0
    out = capsys.readouterr().out
    assert "telemetry metrics" in out
    assert "probe series" in out
    assert "span summary" in out
    assert "net.flows_completed" in out


def _fresh_memo():
    """Reset the process-global campaign memo (counts are cumulative)."""
    import repro.experiments.campaigns as campaigns

    campaigns._MEMO = campaigns._LruMemo()


def test_campaign_prints_cache_stats(tmp_path, capsys):
    _fresh_memo()
    store = tmp_path / "store"
    argv = ["campaign", "--job", "terasort", "--sizes-gb", "0.125",
            "--nodes", "4", "--store", str(store)]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "cache stats:" in out
    assert "store 0 hit(s)" in out

    # Second run resolves from cache and says so.
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "cache stats:" in out
    assert ("memo 1 hit(s)" in out) or ("store 1 hit(s)" in out)


def test_campaign_telemetry_artefacts(tmp_path, capsys):
    _fresh_memo()
    tel_dir = tmp_path / "ctel"
    assert main(["campaign", "--job", "terasort", "--sizes-gb", "0.125",
                 "--nodes", "4", "--store", str(tmp_path / "s"),
                 "--telemetry", str(tel_dir)]) == 0
    out = capsys.readouterr().out
    assert "telemetry" in out
    metrics = json.loads((tel_dir / "metrics.json").read_text())
    names = {entry["name"] for entry in metrics}
    assert "campaign.simulated" in names
    assert "net.flows_completed" in names
