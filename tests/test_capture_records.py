"""Unit tests for flow records and job traces."""

import pytest

from repro.capture.records import (
    CaptureMeta,
    FlowRecord,
    JobTrace,
    TrafficComponent,
    load_traces,
    save_traces,
)


def flow(src="h001", dst="h002", size=100.0, start=0.0, end=1.0,
         component="shuffle", src_rack=0, dst_rack=1, **kwargs):
    return FlowRecord(src=src, dst=dst, src_rack=src_rack, dst_rack=dst_rack,
                      src_port=kwargs.pop("src_port", 13562),
                      dst_port=kwargs.pop("dst_port", 50000),
                      size=size, start=start, end=end, component=component,
                      **kwargs)


def make_trace():
    meta = CaptureMeta(job_id="j1", job_kind="terasort", input_bytes=1e9,
                       submit_time=10.0, finish_time=40.0)
    flows = [
        flow(size=100, start=10.0, end=11.0, component="shuffle"),
        flow(size=200, start=12.0, end=15.0, component="shuffle"),
        flow(size=50, start=20.0, end=21.0, component="hdfs_read",
             src_rack=1, dst_rack=1),
        flow(size=10, start=11.0, end=11.1, component="control"),
    ]
    return JobTrace(meta=meta, flows=flows)


def test_flow_record_computed_fields():
    record = flow(size=100, start=1.0, end=3.0)
    assert record.duration == pytest.approx(2.0)
    assert record.mean_rate == pytest.approx(50.0)
    assert record.cross_rack


def test_flow_record_validation():
    with pytest.raises(ValueError):
        flow(size=-1)
    with pytest.raises(ValueError):
        flow(start=5.0, end=1.0)


def test_zero_duration_flow_rate_is_zero():
    record = flow(start=1.0, end=1.0)
    assert record.mean_rate == 0.0


def test_trace_component_queries():
    trace = make_trace()
    assert trace.flow_count() == 4
    assert trace.flow_count(TrafficComponent.SHUFFLE) == 2
    assert trace.total_bytes(TrafficComponent.SHUFFLE) == 300
    assert trace.total_bytes() == 360
    assert trace.flow_sizes("shuffle") == [100, 200]
    assert set(trace.components_present()) == {"shuffle", "hdfs_read", "control"}


def test_flow_starts_relative_to_submit():
    trace = make_trace()
    assert trace.flow_starts("shuffle") == [0.0, 2.0]
    assert trace.interarrivals("shuffle") == [2.0]
    assert trace.interarrivals("hdfs_read") == []


def test_cross_rack_bytes():
    trace = make_trace()
    # hdfs_read flow is rack-local; the rest cross racks.
    assert trace.cross_rack_bytes() == 310
    assert trace.cross_rack_bytes("hdfs_read") == 0


def test_meta_completion_time():
    trace = make_trace()
    assert trace.meta.completion_time == pytest.approx(30.0)


def test_jsonl_roundtrip(tmp_path):
    trace = make_trace()
    path = tmp_path / "trace.jsonl"
    trace.to_jsonl(path)
    loaded = JobTrace.from_jsonl(path)
    assert loaded.meta == trace.meta
    assert loaded.flows == trace.flows


def test_jsonl_rejects_missing_meta(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"src": "x"}\n', encoding="utf-8")
    with pytest.raises(ValueError):
        JobTrace.from_jsonl(path)


def test_save_and_load_directory(tmp_path):
    traces = [make_trace()]
    traces[0].meta.job_id = "alpha"
    paths = save_traces(traces, tmp_path / "captures")
    assert len(paths) == 1
    loaded = load_traces(tmp_path / "captures")
    assert len(loaded) == 1
    assert loaded[0].meta.job_id == "alpha"
