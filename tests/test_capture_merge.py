"""Tests for multi-vantage-point capture merging."""

import pytest

from repro.capture.merge import (
    apply_clock_skew,
    deduplicate_flows,
    estimate_clock_skew,
    merge_captures,
)
from repro.capture.records import FlowRecord


def flow(src="h001", dst="h002", sport=13562, dport=49000, size=1000.0,
         start=0.0, end=None, component="shuffle"):
    return FlowRecord(src=src, dst=dst, src_rack=0, dst_rack=1,
                      src_port=sport, dst_port=dport, size=size,
                      start=start, end=end if end is not None else start + 1.0,
                      component=component)


def test_estimate_skew_from_shared_flows():
    reference = [flow(start=10.0), flow(dport=49001, start=20.0)]
    other = [flow(start=10.3), flow(dport=49001, start=20.3)]
    assert estimate_clock_skew(reference, other) == pytest.approx(0.3)


def test_estimate_skew_no_overlap_is_zero():
    reference = [flow(dport=1)]
    other = [flow(dport=2)]
    assert estimate_clock_skew(reference, other) == 0.0


def test_apply_clock_skew_shifts_times():
    shifted = apply_clock_skew([flow(start=5.0, end=6.0)], offset=0.5)
    assert shifted[0].start == pytest.approx(4.5)
    assert shifted[0].end == pytest.approx(5.5)


def test_deduplicate_keeps_one_per_connection():
    sender_view = flow(start=1.00, size=1000.0)
    receiver_view = flow(start=1.05, size=1000.0)
    merged = deduplicate_flows([sender_view, receiver_view])
    assert len(merged) == 1


def test_deduplicate_prefers_larger_byte_count():
    complete = flow(start=1.0, size=5000.0)
    truncated = flow(start=1.02, size=3000.0)
    merged = deduplicate_flows([truncated, complete])
    assert len(merged) == 1
    assert merged[0].size == 5000.0


def test_deduplicate_separates_distant_repeats():
    early = flow(start=1.0)
    late = flow(start=100.0)  # same 5-tuple, clearly a new connection
    merged = deduplicate_flows([early, late], window=1.0)
    assert len(merged) == 2


def test_deduplicate_rejects_bad_window():
    with pytest.raises(ValueError):
        deduplicate_flows([], window=0.0)


def test_merge_captures_end_to_end():
    # Two vantage points see the same two flows; point B's clock is
    # 0.25 s ahead and its second observation is truncated.
    point_a = [flow(start=1.0, size=1000.0),
               flow(dport=49001, start=2.0, size=2000.0)]
    point_b = [flow(start=1.25, size=1000.0),
               flow(dport=49001, start=2.25, size=1500.0)]
    merged = merge_captures({"h001": point_a, "h002": point_b})
    assert len(merged) == 2
    assert [f.start for f in merged] == pytest.approx([1.0, 2.0])
    assert merged[1].size == 2000.0  # complete observation won


def test_merge_captures_reference_validation():
    with pytest.raises(KeyError):
        merge_captures({"a": []}, reference="zz")
    assert merge_captures({}) == []


def test_merge_preserves_unique_flows_from_all_points():
    point_a = [flow(dport=1, start=1.0)]
    point_b = [flow(dport=2, start=2.0)]
    merged = merge_captures({"a": point_a, "b": point_b})
    assert len(merged) == 2
