"""Capture store: addressing, atomicity, robustness to bad entries."""

import json
import os

import pytest

from repro.experiments import store as store_mod
from repro.experiments.campaigns import CampaignConfig
from repro.experiments.runner import CampaignRunner, CapturePoint
from repro.experiments.store import (
    STORE_ENV_VAR,
    TRACE_FORMAT_VERSION,
    CaptureStore,
    canonical_json,
    key_hash,
    store_from_env,
)

SMALL = CampaignConfig(nodes=4, hosts_per_rack=2)


def _point(job="grep", gb=0.0625, seed=11, **job_kwargs):
    return CapturePoint.from_campaign(job, gb, seed, SMALL, job_kwargs)


@pytest.fixture
def populated(tmp_path):
    """A store holding one simulated point; returns (store, point, entry)."""
    store = CaptureStore(tmp_path / "store")
    point = _point()
    entry = CampaignRunner(store=store, workers=1).run_point(point)
    return store, point, entry


# -- keying -------------------------------------------------------------------------


def test_key_dict_is_canonical_and_stable():
    a = _point(num_reducers=2, iterations=3)
    b = _point(iterations=3, num_reducers=2)  # kwargs in another order
    assert a.key_dict() == b.key_dict()
    assert a.key() == b.key()
    assert a.key() == key_hash(a.key_dict())


def test_key_distinguishes_every_axis():
    base = _point()
    assert _point(gb=0.125).key() != base.key()
    assert _point(seed=12).key() != base.key()
    assert _point(job="teragen").key() != base.key()
    assert _point(num_reducers=2).key() != base.key()
    other_campaign = CapturePoint.from_campaign(
        "grep", 0.0625, 11, CampaignConfig(nodes=8, hosts_per_rack=2))
    assert other_campaign.key() != base.key()


def test_key_includes_format_version():
    assert _point().key_dict()["format"] == TRACE_FORMAT_VERSION


def test_canonical_json_is_order_insensitive():
    assert canonical_json({"b": 1, "a": {"d": 2, "c": 3}}) == \
        canonical_json({"a": {"c": 3, "d": 2}, "b": 1})


# -- round trip ---------------------------------------------------------------------


def test_store_roundtrip_preserves_result_and_trace(populated):
    store, point, (result, trace) = populated
    loaded = store.get(point.key_dict())
    assert loaded is not None
    loaded_result, loaded_trace = loaded
    assert loaded_result.to_dict() == result.to_dict()
    assert loaded_trace.meta.to_dict() == trace.meta.to_dict()
    assert [f.to_dict() for f in loaded_trace.flows] == \
        [f.to_dict() for f in trace.flows]


def test_entry_file_embeds_trace_jsonl_verbatim(populated, tmp_path):
    store, point, (_, trace) = populated
    path = store.entry_path(point.key())
    lines = path.read_text().splitlines()
    reference = tmp_path / "ref.jsonl"
    trace.to_jsonl(reference)
    assert lines[1:] == reference.read_text().splitlines()


def test_miss_on_unknown_key(tmp_path):
    store = CaptureStore(tmp_path / "store")
    assert store.get(_point().key_dict()) is None
    assert store.stats.misses == 1


# -- robustness ---------------------------------------------------------------------


def test_truncated_entry_falls_back_to_resimulation(populated):
    store, point, (_, trace) = populated
    path = store.entry_path(point.key())
    path.write_text(path.read_text()[: len(path.read_text()) // 3])

    assert store.get(point.key_dict()) is None
    assert store.stats.corrupt == 1

    runner = CampaignRunner(store=store, workers=1)
    _, again = runner.run_point(point)
    assert runner.stats.simulated == 1  # re-simulated, did not raise
    assert [f.to_dict() for f in again.flows] == \
        [f.to_dict() for f in trace.flows]
    assert store.get(point.key_dict()) is not None  # overwrote the bad entry


def test_garbage_entry_is_a_miss_not_an_error(populated):
    store, point, _ = populated
    store.entry_path(point.key()).write_text("not json at all\n{]")
    assert store.get(point.key_dict()) is None
    assert store.stats.corrupt == 1


def test_stale_format_version_falls_back_to_resimulation(populated):
    store, point, _ = populated
    path = store.entry_path(point.key())
    lines = path.read_text().splitlines()
    header = json.loads(lines[0])
    header["store"]["format"] = TRACE_FORMAT_VERSION - 1
    path.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")

    assert store.get(point.key_dict()) is None
    assert store.stats.stale == 1
    assert store.stats.corrupt == 0

    runner = CampaignRunner(store=store, workers=1)
    runner.run_point(point)
    assert runner.stats.simulated == 1


def test_mismatched_result_and_trace_is_corrupt(populated):
    store, point, _ = populated
    path = store.entry_path(point.key())
    lines = path.read_text().splitlines()
    header = json.loads(lines[0])
    header["result"]["job_id"] = "someone_else"
    path.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
    assert store.get(point.key_dict()) is None
    assert store.stats.corrupt == 1


def test_writes_leave_no_tmp_droppings(populated):
    store, point, _ = populated
    parent = store.entry_path(point.key()).parent
    assert [p.name for p in parent.iterdir() if p.suffix == ".tmp"] == []


# -- maintenance --------------------------------------------------------------------


def test_clear_invalidates_everything(populated):
    store, point, _ = populated
    assert store.entry_count() == 1
    assert store.size_bytes() > 0
    assert store.clear() == 1
    assert store.entry_count() == 0
    assert store.get(point.key_dict()) is None


def test_counters_track_traffic(populated):
    store, point, _ = populated
    store.get(point.key_dict())
    stats = store.stats.to_dict()
    assert stats["writes"] == 1
    assert stats["hits"] == 1
    assert stats["bytes_written"] > 0
    assert stats["bytes_read"] == stats["bytes_written"]


# -- scrub: verify / repair ---------------------------------------------------------


def test_verify_clean_store(populated):
    store, _, _ = populated
    report = store.verify()
    assert report.clean
    assert report.scanned == 1 and report.ok == 1
    assert report.bytes_scanned > 0
    assert store.registry.value("store.scrub.ok") == 1


def test_verify_finds_every_problem_class(populated, tmp_path):
    store, point, _ = populated
    # A second good entry to corrupt, plus the original left intact.
    other = _point(seed=99)
    CampaignRunner(store=store, workers=1).run_point(other)
    good_path = store.entry_path(point.key())

    # corrupt: truncate the second entry.
    bad_path = store.entry_path(other.key())
    bad_path.write_text(bad_path.read_text()[:50])
    # stale: a valid entry under an old format version.
    stale_lines = good_path.read_text().splitlines()
    header = json.loads(stale_lines[0])
    header["store"]["format"] = TRACE_FORMAT_VERSION - 1
    stale_path = bad_path.parent / ("0" * 64 + ".jsonl")
    stale_path.write_text("\n".join([json.dumps(header)] + stale_lines[1:])
                          + "\n")
    # mismatched: a byte-valid entry filed under the wrong address.
    wrong_path = bad_path.parent / ("f" * 64 + ".jsonl")
    wrong_path.write_text(good_path.read_text())
    # tmp dropping: a writer that died mid-publish.
    (bad_path.parent / ".deadbeef.tmp").write_text("partial")

    report = store.verify()
    assert not report.clean
    assert report.scanned == 4 and report.ok == 1
    assert report.corrupt == 1
    assert report.stale == 1
    assert report.mismatched == 1
    assert report.tmp_files == 1
    assert report.quarantined == 0  # verify never moves anything
    assert bad_path.exists()


def test_repair_quarantines_bad_entries_and_removes_tmp(populated):
    store, point, _ = populated
    bad_path = store.entry_path(point.key())
    bad_path.write_text("garbage")
    tmp_file = bad_path.parent / ".dead.tmp"
    tmp_file.write_text("partial")

    report = store.verify(repair=True)
    assert report.repaired
    assert report.quarantined == 1
    assert report.removed_tmp == 1
    assert not bad_path.exists()
    assert not tmp_file.exists()
    assert (store.quarantine_dir / bad_path.name).read_text() == "garbage"
    # The store is clean afterwards; the entry is simply a miss now.
    assert store.verify().clean
    assert store.get(point.key_dict()) is None


def test_encode_decode_entry_roundtrip(populated):
    store, point, (result, trace) = populated
    text = store_mod.encode_entry(point.key_dict(), result, trace)
    loaded_result, loaded_trace = store_mod.decode_entry(text)
    assert loaded_result.to_dict() == result.to_dict()
    assert [f.to_dict() for f in loaded_trace.flows] == \
        [f.to_dict() for f in trace.flows]
    assert store_mod.entry_key(text) == point.key_dict()


# -- environment wiring -------------------------------------------------------------


def test_store_from_env(tmp_path):
    assert store_from_env({}) is None
    assert store_from_env({STORE_ENV_VAR: ""}) is None
    store = store_from_env({STORE_ENV_VAR: str(tmp_path / "s")})
    assert isinstance(store, CaptureStore)
    assert store.root == tmp_path / "s"


# -- cross-backend isolation --------------------------------------------------------


def test_store_isolates_backends(tmp_path):
    """One store, one workload, two backends: two separate entries.

    A fluid capture must never satisfy an analytic lookup (or vice
    versa) — their flow *timings* differ even when the populations
    match — so the backend is a first-class key axis.
    """
    store = CaptureStore(tmp_path / "store")
    fluid = CapturePoint.from_campaign(
        "grep", 0.0625, 11, CampaignConfig(nodes=4, hosts_per_rack=2,
                                           backend="fluid"))
    analytic = CapturePoint.from_campaign(
        "grep", 0.0625, 11, CampaignConfig(nodes=4, hosts_per_rack=2,
                                           backend="analytic"))
    assert fluid.key() != analytic.key()

    runner = CampaignRunner(store=store, workers=1)
    runner.run_point(fluid)
    assert store.get(fluid.key_dict()) is not None
    assert store.get(analytic.key_dict()) is None  # no cross-pollination

    runner.run_point(analytic)
    assert store.get(analytic.key_dict()) is not None
    # Both entries coexist under the same logical workload.
    assert fluid.logical_key() == analytic.logical_key()


def test_store_isolates_placement_modes(tmp_path):
    store = CaptureStore(tmp_path / "store")
    grant = CapturePoint.from_campaign(
        "grep", 0.0625, 11, CampaignConfig(nodes=4, hosts_per_rack=2))
    keyed = CapturePoint.from_campaign(
        "grep", 0.0625, 11, CampaignConfig(nodes=4, hosts_per_rack=2,
                                           placement_mode="keyed"))
    assert grant.key() != keyed.key()
    CampaignRunner(store=store, workers=1).run_point(grant)
    assert store.get(keyed.key_dict()) is None
