"""Tests for driver error paths and iterative chaining details."""

import pytest

from repro.cluster.config import ClusterSpec, HadoopConfig
from repro.cluster.units import MB
from repro.jobs import make_job
from repro.mapreduce.cluster import HadoopCluster


def make_cluster(seed=111, **overrides):
    defaults = dict(block_size=32 * MB, num_reducers=2)
    defaults.update(overrides)
    return HadoopCluster(ClusterSpec(num_nodes=4, hosts_per_rack=4),
                         HadoopConfig(**defaults), seed=seed)


def test_iterative_round_outputs_feed_next_round():
    cluster = make_cluster()
    spec = make_job("pagerank", input_gb=0.125, iterations=2)
    results, traces = cluster.run([spec])
    result = results[0]
    assert len(result.rounds) == 2
    # Round 1's input files are round 0's part files in HDFS.
    round0_output = f"/data/{spec.job_id}/output/iter00"
    part_files = [path for path in cluster.namenode.list_files()
                  if path.startswith(round0_output + "/")]
    assert part_files
    assert result.rounds[1].input_bytes == pytest.approx(
        sum(cluster.namenode.file_size(path) for path in part_files))


def test_jar_staged_once_per_job():
    cluster = make_cluster(seed=112)
    spec = make_job("kmeans", input_gb=0.125, iterations=3)
    results, traces = cluster.run([spec])
    jar_paths = [path for path in cluster.namenode.list_files()
                 if path.startswith("/staging/")]
    assert len(jar_paths) == 1  # one jar despite three rounds


def test_history_file_written_per_round():
    cluster = make_cluster(seed=113)
    spec = make_job("pagerank", input_gb=0.125, iterations=2)
    cluster.run([spec])
    histories = [path for path in cluster.namenode.list_files()
                 if path.startswith("/history/")]
    assert len(histories) == 2


def test_submit_job_requires_started_cluster_for_progress():
    cluster = make_cluster(seed=114)
    driver = cluster.submit_job(make_job("grep", input_gb=0.125))
    # Without heartbeats nothing can be granted; the driver stalls at
    # the AM request (jar staging completes — it needs no containers).
    cluster.sim.run(until=30.0)
    assert not driver.done.fired
    cluster.start()
    cluster.sim.run(until=60.0)
    assert driver.done.fired
    cluster.stop()
    cluster.sim.run()


def test_arrival_times_length_mismatch_rejected():
    cluster = make_cluster(seed=115)
    with pytest.raises(ValueError):
        cluster.run([make_job("grep", input_gb=0.125)], arrival_times=[0.0, 1.0])
