"""Campaign runner: determinism, parallel fan-out, seed unification, memo."""

import json

import pytest

from repro import run_capture_campaign
from repro.cluster.config import HadoopConfig
from repro.cluster.units import MB
from repro.experiments import campaigns
from repro.experiments.campaigns import (
    CampaignConfig,
    _LruMemo,
    cache_stats,
    capture,
    capture_campaign,
    clear_cache,
    set_store,
)
from repro.experiments.runner import (
    CampaignRunner,
    CapturePoint,
    derive_seed,
    default_workers,
)
from repro.experiments.store import CaptureStore

SMALL = CampaignConfig(nodes=4, hosts_per_rack=2)
SIZES = [0.0625, 0.125]


@pytest.fixture(autouse=True)
def isolated_caches():
    clear_cache()
    set_store(None)
    yield
    clear_cache()
    set_store(None)


def _points(job="grep", sizes=SIZES, seed=3):
    return [CapturePoint.from_campaign(job, gb, derive_seed(seed, index), SMALL)
            for index, gb in enumerate(sizes)]


def _trace_jsonl(trace, tmp_path, name):
    path = tmp_path / name
    trace.to_jsonl(path)
    return path.read_bytes()


# -- seed derivation ----------------------------------------------------------------


def test_derive_seed_is_the_documented_formula():
    assert derive_seed(42, 0) == 42 * 10_007
    assert derive_seed(42, 3, repeat=7) == 42 * 10_007 + 3 * 101 + 7


def test_derive_seed_injective_over_realistic_sweeps():
    seen = set()
    for index in range(20):
        for repeat in range(20):
            seen.add(derive_seed(5, index, repeat))
    assert len(seen) == 400


def test_api_and_campaign_layers_share_the_seed_rule():
    config = HadoopConfig(block_size=32 * MB, num_reducers=2)
    api_traces = run_capture_campaign("grep", SIZES, nodes=4, seed=5,
                                      config=config)
    assert [t.meta.seed for t in api_traces] == [derive_seed(5, 0),
                                                derive_seed(5, 1)]
    campaign_traces = capture_campaign("grep", sizes_gb=SIZES, seed=5,
                                       campaign=SMALL)
    assert [t.meta.seed for t in campaign_traces] == [derive_seed(5, 0),
                                                      derive_seed(5, 1)]


# -- determinism: serial vs parallel ------------------------------------------------


@pytest.mark.parametrize("workers", [2, 4])
def test_parallel_campaign_traces_byte_identical_to_serial(tmp_path, workers):
    points = _points()
    serial = CampaignRunner(store=None, workers=1).run(points)
    parallel = CampaignRunner(store=None, workers=workers).run(points)
    for index, ((_, serial_trace), (_, parallel_trace)) in enumerate(
            zip(serial, parallel)):
        a = _trace_jsonl(serial_trace, tmp_path, f"s{index}.jsonl")
        b = _trace_jsonl(parallel_trace, tmp_path, f"p{index}.jsonl")
        assert a == b


def test_simulation_is_independent_of_process_history():
    # The same point simulated twice in one process (no caches) must
    # produce identical output — job ids come from the point's content
    # hash, not from a process-global counter.
    point = _points(sizes=[0.0625])[0]
    first_result, first_trace = point.simulate()
    second_result, second_trace = point.simulate()
    assert first_result.to_dict() == second_result.to_dict()
    assert [f.to_dict() for f in first_trace.flows] == \
        [f.to_dict() for f in second_trace.flows]


# -- warm store ---------------------------------------------------------------------


def test_warm_store_rerun_executes_zero_simulations(tmp_path):
    store = CaptureStore(tmp_path / "store")
    points = _points()
    cold_runner = CampaignRunner(store=store, workers=1)
    cold = cold_runner.run(points)
    assert cold_runner.stats.simulated == len(points)

    warm_runner = CampaignRunner(store=store, workers=1)
    warm = warm_runner.run(points)
    assert warm_runner.stats.simulated == 0
    assert warm_runner.stats.store_hits == len(points)
    for index, ((_, cold_trace), (_, warm_trace)) in enumerate(zip(cold, warm)):
        assert _trace_jsonl(cold_trace, tmp_path, f"c{index}.jsonl") == \
            _trace_jsonl(warm_trace, tmp_path, f"w{index}.jsonl")


def test_runner_preserves_order_and_dedups_within_a_run():
    points = _points(sizes=[0.0625, 0.125, 0.0625])  # duplicate sizes
    # Duplicate *points* need duplicate seeds too:
    points[2] = points[0]
    runner = CampaignRunner(store=None, workers=1)
    outcomes = runner.run(points)
    assert runner.stats.simulated == 2  # the duplicate resolved once
    assert outcomes[0][1].meta.job_id == outcomes[2][1].meta.job_id
    assert outcomes[0][1].meta.input_bytes != outcomes[1][1].meta.input_bytes


# -- campaigns-layer integration ----------------------------------------------------


def test_capture_campaign_parallel_equals_serial(tmp_path):
    serial = capture_campaign("grep", sizes_gb=SIZES, seed=9, campaign=SMALL)
    clear_cache()
    parallel = capture_campaign("grep", sizes_gb=SIZES, seed=9, campaign=SMALL,
                                workers=2)
    for index, (serial_trace, parallel_trace) in enumerate(
            zip(serial, parallel)):
        assert _trace_jsonl(serial_trace, tmp_path, f"cs{index}.jsonl") == \
            _trace_jsonl(parallel_trace, tmp_path, f"cp{index}.jsonl")


def test_capture_uses_store_across_memo_clears(tmp_path):
    store = set_store(CaptureStore(tmp_path / "store"))
    _, first = capture("grep", 0.0625, seed=4, campaign=SMALL)
    clear_cache()
    _, second = capture("grep", 0.0625, seed=4, campaign=SMALL)
    assert second is not first  # came from disk, not the memo
    assert json.dumps([f.to_dict() for f in first.flows]) == \
        json.dumps([f.to_dict() for f in second.flows])
    assert store.stats.hits == 1


# -- the bounded memo ---------------------------------------------------------------


def test_memo_is_lru_bounded(monkeypatch):
    memo = _LruMemo(capacity=2)
    monkeypatch.setattr(campaigns, "_MEMO", memo)
    capture("grep", 0.0625, seed=1, campaign=SMALL)
    capture("grep", 0.125, seed=1, campaign=SMALL)
    capture("teragen", 0.0625, seed=1, campaign=SMALL)
    stats = cache_stats()["memo"]
    assert stats["entries"] == 2
    assert stats["capacity"] == 2
    assert stats["evictions"] == 1


def test_memo_lru_evicts_least_recently_used():
    memo = _LruMemo(capacity=2)
    memo.put("a", ("ra", "ta"))
    memo.put("b", ("rb", "tb"))
    assert memo.get("a") == ("ra", "ta")  # refresh a
    memo.put("c", ("rc", "tc"))           # evicts b
    assert memo.get("b") is None
    assert memo.get("a") is not None
    assert memo.get("c") is not None


def test_cache_stats_reports_both_levels(tmp_path):
    set_store(CaptureStore(tmp_path / "store"))
    capture("grep", 0.0625, seed=2, campaign=SMALL)
    stats = cache_stats()
    assert "memo" in stats and "store" in stats
    assert stats["store"]["writes"] == 1


def test_default_workers_positive():
    assert default_workers() >= 1
