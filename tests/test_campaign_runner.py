"""Campaign runner: determinism, parallel fan-out, seed unification, memo."""

import json

import pytest

from repro import run_capture_campaign
from repro.cluster.config import HadoopConfig
from repro.cluster.units import MB
from repro.experiments import campaigns
from repro.experiments.campaigns import (
    CampaignConfig,
    _LruMemo,
    cache_stats,
    capture,
    capture_campaign,
    clear_cache,
    set_store,
)
from repro.experiments.runner import (
    CampaignRunner,
    CapturePoint,
    derive_seed,
    default_workers,
)
from repro.experiments.store import CaptureStore

SMALL = CampaignConfig(nodes=4, hosts_per_rack=2)
SIZES = [0.0625, 0.125]


@pytest.fixture(autouse=True)
def isolated_caches():
    clear_cache()
    set_store(None)
    yield
    clear_cache()
    set_store(None)


def _points(job="grep", sizes=SIZES, seed=3):
    return [CapturePoint.from_campaign(job, gb, derive_seed(seed, index), SMALL)
            for index, gb in enumerate(sizes)]


def _trace_jsonl(trace, tmp_path, name):
    path = tmp_path / name
    trace.to_jsonl(path)
    return path.read_bytes()


# -- seed derivation ----------------------------------------------------------------


def test_derive_seed_is_the_documented_formula():
    assert derive_seed(42, 0) == 42 * 10_007
    assert derive_seed(42, 3, repeat=7) == 42 * 10_007 + 3 * 101 + 7


def test_derive_seed_injective_over_realistic_sweeps():
    seen = set()
    for index in range(20):
        for repeat in range(20):
            seen.add(derive_seed(5, index, repeat))
    assert len(seen) == 400


def test_api_and_campaign_layers_share_the_seed_rule():
    config = HadoopConfig(block_size=32 * MB, num_reducers=2)
    api_traces = run_capture_campaign("grep", SIZES, nodes=4, seed=5,
                                      config=config)
    assert [t.meta.seed for t in api_traces] == [derive_seed(5, 0),
                                                derive_seed(5, 1)]
    campaign_traces = capture_campaign("grep", sizes_gb=SIZES, seed=5,
                                       campaign=SMALL)
    assert [t.meta.seed for t in campaign_traces] == [derive_seed(5, 0),
                                                      derive_seed(5, 1)]


# -- determinism: serial vs parallel ------------------------------------------------


@pytest.mark.parametrize("workers", [2, 4])
def test_parallel_campaign_traces_byte_identical_to_serial(tmp_path, workers):
    points = _points()
    serial = CampaignRunner(store=None, workers=1).run(points)
    parallel = CampaignRunner(store=None, workers=workers).run(points)
    for index, ((_, serial_trace), (_, parallel_trace)) in enumerate(
            zip(serial, parallel)):
        a = _trace_jsonl(serial_trace, tmp_path, f"s{index}.jsonl")
        b = _trace_jsonl(parallel_trace, tmp_path, f"p{index}.jsonl")
        assert a == b


def test_simulation_is_independent_of_process_history():
    # The same point simulated twice in one process (no caches) must
    # produce identical output — job ids come from the point's content
    # hash, not from a process-global counter.
    point = _points(sizes=[0.0625])[0]
    first_result, first_trace = point.simulate()
    second_result, second_trace = point.simulate()
    assert first_result.to_dict() == second_result.to_dict()
    assert [f.to_dict() for f in first_trace.flows] == \
        [f.to_dict() for f in second_trace.flows]


# -- warm store ---------------------------------------------------------------------


def test_warm_store_rerun_executes_zero_simulations(tmp_path):
    store = CaptureStore(tmp_path / "store")
    points = _points()
    cold_runner = CampaignRunner(store=store, workers=1)
    cold = cold_runner.run(points)
    assert cold_runner.stats.simulated == len(points)

    warm_runner = CampaignRunner(store=store, workers=1)
    warm = warm_runner.run(points)
    assert warm_runner.stats.simulated == 0
    assert warm_runner.stats.store_hits == len(points)
    for index, ((_, cold_trace), (_, warm_trace)) in enumerate(zip(cold, warm)):
        assert _trace_jsonl(cold_trace, tmp_path, f"c{index}.jsonl") == \
            _trace_jsonl(warm_trace, tmp_path, f"w{index}.jsonl")


def test_runner_preserves_order_and_dedups_within_a_run():
    points = _points(sizes=[0.0625, 0.125, 0.0625])  # duplicate sizes
    # Duplicate *points* need duplicate seeds too:
    points[2] = points[0]
    runner = CampaignRunner(store=None, workers=1)
    outcomes = runner.run(points)
    assert runner.stats.simulated == 2  # the duplicate resolved once
    assert outcomes[0][1].meta.job_id == outcomes[2][1].meta.job_id
    assert outcomes[0][1].meta.input_bytes != outcomes[1][1].meta.input_bytes


# -- campaigns-layer integration ----------------------------------------------------


def test_capture_campaign_parallel_equals_serial(tmp_path):
    serial = capture_campaign("grep", sizes_gb=SIZES, seed=9, campaign=SMALL)
    clear_cache()
    parallel = capture_campaign("grep", sizes_gb=SIZES, seed=9, campaign=SMALL,
                                workers=2)
    for index, (serial_trace, parallel_trace) in enumerate(
            zip(serial, parallel)):
        assert _trace_jsonl(serial_trace, tmp_path, f"cs{index}.jsonl") == \
            _trace_jsonl(parallel_trace, tmp_path, f"cp{index}.jsonl")


def test_capture_uses_store_across_memo_clears(tmp_path):
    store = set_store(CaptureStore(tmp_path / "store"))
    _, first = capture("grep", 0.0625, seed=4, campaign=SMALL)
    clear_cache()
    _, second = capture("grep", 0.0625, seed=4, campaign=SMALL)
    assert second is not first  # came from disk, not the memo
    assert json.dumps([f.to_dict() for f in first.flows]) == \
        json.dumps([f.to_dict() for f in second.flows])
    assert store.stats.hits == 1


# -- the bounded memo ---------------------------------------------------------------


def test_memo_is_lru_bounded(monkeypatch):
    memo = _LruMemo(capacity=2)
    monkeypatch.setattr(campaigns, "_MEMO", memo)
    capture("grep", 0.0625, seed=1, campaign=SMALL)
    capture("grep", 0.125, seed=1, campaign=SMALL)
    capture("teragen", 0.0625, seed=1, campaign=SMALL)
    stats = cache_stats()["memo"]
    assert stats["entries"] == 2
    assert stats["capacity"] == 2
    assert stats["evictions"] == 1


def test_memo_lru_evicts_least_recently_used():
    memo = _LruMemo(capacity=2)
    memo.put("a", ("ra", "ta"))
    memo.put("b", ("rb", "tb"))
    assert memo.get("a") == ("ra", "ta")  # refresh a
    memo.put("c", ("rc", "tc"))           # evicts b
    assert memo.get("b") is None
    assert memo.get("a") is not None
    assert memo.get("c") is not None


def test_cache_stats_reports_both_levels(tmp_path):
    set_store(CaptureStore(tmp_path / "store"))
    capture("grep", 0.0625, seed=2, campaign=SMALL)
    stats = cache_stats()
    assert "memo" in stats and "store" in stats
    assert stats["store"]["writes"] == 1


def test_default_workers_positive():
    assert default_workers() >= 1


# -- supervised execution: the PR-4 acceptance scenario -----------------------------


def test_faulty_campaign_completes_quarantines_and_resumes_byte_identical(
        tmp_path):
    """One poisoned point + one SIGKILLed worker + one transient error:
    the campaign completes, quarantines exactly the poison, and a
    ``--resume`` re-simulates zero completed points with traces
    byte-identical to an uninterrupted serial run."""
    from repro.experiments.supervision import (CheckpointJournal, Quarantine,
                                               RetryPolicy)
    from tests.test_supervision import (FlakyOncePoint, KillOncePoint,
                                        PoisonPoint)

    # The flaky point goes first so its transient failure is collected
    # (and charged a retry) before the delayed SIGKILL collapses the
    # pool and breaks every in-flight future.
    points = [
        FlakyOncePoint.from_campaign(
            "grep", 0.0625, 901, SMALL,
            {"sentinel": str(tmp_path / "flaky.once")}),
    ] + _points() + [
        KillOncePoint.from_campaign(
            "grep", 0.125, 902, SMALL,
            {"sentinel": str(tmp_path / "kill.once"), "delay": 2.0}),
        PoisonPoint.from_campaign("grep", 0.0625, 903, SMALL),
    ]
    poison_key = points[-1].key()
    journal_path = tmp_path / "journal.jsonl"
    quarantine_path = tmp_path / "quarantine.jsonl"

    runner = CampaignRunner(
        store=None, workers=2,
        retry_policy=RetryPolicy(max_attempts=3, base_delay=0.01),
        journal=CheckpointJournal(journal_path),
        quarantine=Quarantine(quarantine_path), strict=False)
    outcomes = runner.run(points)

    assert [outcome is None for outcome in outcomes] == [False] * 4 + [True]
    assert [failure.key for failure in runner.failures] == [poison_key]
    assert runner.stats.quarantined == 1
    assert runner.stats.retries >= 1        # the transient OSError
    assert runner.stats.pool_failures >= 1  # the SIGKILLed worker
    assert [failure.key for failure in Quarantine.load(quarantine_path)] \
        == [poison_key]

    # Resume from the journal: every completed point replays without
    # re-simulating; only the quarantined point is attempted again.
    resumed = CampaignRunner(
        store=None, workers=1,
        retry_policy=RetryPolicy(max_attempts=1, base_delay=0.0),
        journal=CheckpointJournal(journal_path), strict=False)
    replayed = resumed.run(points)
    assert resumed.stats.resumed_points == 4
    assert resumed.stats.simulated == 1
    assert replayed[4] is None

    # Byte-identity against an uninterrupted serial run (the fault
    # sentinels exist now, so the flaky/killer points run clean).
    serial = CampaignRunner(
        store=None, workers=1,
        retry_policy=RetryPolicy(max_attempts=1, base_delay=0.0),
        strict=False).run(points)
    for index in range(4):
        assert _trace_jsonl(replayed[index][1], tmp_path, f"r{index}.jsonl") \
            == _trace_jsonl(serial[index][1], tmp_path, f"u{index}.jsonl")
