"""Tests for the EM-fitted lognormal mixture."""

import numpy as np
import pytest

from repro.modeling.distributions import EmpiricalDistribution, distribution_from_dict
from repro.modeling.fitting import fit_best
from repro.modeling.ks import ks_one_sample, ks_two_sample
from repro.modeling.mixture import LognormalMixture, fit_mixture_if_better


def bimodal_sample(n=2000, seed=0):
    rng = np.random.default_rng(seed)
    low = rng.lognormal(mean=np.log(100.0), sigma=0.2, size=n // 2)
    high = rng.lognormal(mean=np.log(100_000.0), sigma=0.3, size=n // 2)
    return np.concatenate([low, high])


def test_em_recovers_two_well_separated_modes():
    data = bimodal_sample()
    mixture = LognormalMixture.fit(data, n_components=2, seed=1)
    mus = sorted(mixture.mus)
    assert mus[0] == pytest.approx(np.log(100.0), abs=0.15)
    assert mus[1] == pytest.approx(np.log(100_000.0), abs=0.15)
    assert sorted(mixture.weights) == pytest.approx([0.5, 0.5], abs=0.05)


def test_mixture_fits_bimodal_far_better_than_single_family():
    data = bimodal_sample()
    mixture = LognormalMixture.fit(data, seed=2)
    ks = ks_one_sample(data, mixture.cdf).statistic
    assert ks < 0.05


def test_mixture_sampling_matches_fit():
    data = bimodal_sample(seed=3)
    mixture = LognormalMixture.fit(data, seed=3)
    draws = mixture.sample(2000, np.random.default_rng(4))
    assert ks_two_sample(data, draws).statistic < 0.06


def test_mixture_cdf_properties():
    mixture = LognormalMixture([0.5, 0.5], [0.0, 3.0], [0.5, 0.5])
    xs = np.array([0.0, 0.5, 1.0, 10.0, 1000.0])
    cdf = mixture.cdf(xs)
    assert cdf[0] == 0.0
    assert np.all(np.diff(cdf) >= 0)
    assert cdf[-1] == pytest.approx(1.0, abs=1e-3)


def test_mixture_mean_closed_form():
    mixture = LognormalMixture([1.0], [1.0], [0.5])
    assert mixture.mean() == pytest.approx(np.exp(1.0 + 0.125))


def test_mixture_validation():
    with pytest.raises(ValueError):
        LognormalMixture([], [], [])
    with pytest.raises(ValueError):
        LognormalMixture([0.5], [0.0, 1.0], [1.0])
    with pytest.raises(ValueError):
        LognormalMixture([-1.0, 2.0], [0.0, 1.0], [1.0, 1.0])
    with pytest.raises(ValueError):
        LognormalMixture.fit([1.0, 2.0], n_components=2)  # too few samples


def test_mixture_serialisation_roundtrip():
    mixture = LognormalMixture.fit(bimodal_sample(seed=5), seed=5)
    clone = distribution_from_dict(mixture.to_dict())
    assert isinstance(clone, LognormalMixture)
    xs = [10.0, 100.0, 1e5]
    assert np.allclose(clone.cdf(xs), mixture.cdf(xs))


def test_fit_best_uses_mixture_for_bimodal_data():
    data = bimodal_sample(seed=6)
    fitted = fit_best(data, empirical_threshold=0.1)
    assert isinstance(fitted, LognormalMixture)


def test_fit_best_can_disable_mixture():
    data = bimodal_sample(seed=7)
    fitted = fit_best(data, empirical_threshold=0.1, try_mixture=False)
    assert isinstance(fitted, EmpiricalDistribution)


def test_fit_mixture_if_better_rejects_marginal_gains():
    # Unimodal data: the mixture can't halve an already-tiny KS.
    rng = np.random.default_rng(8)
    data = rng.lognormal(0.0, 0.3, size=500)
    assert fit_mixture_if_better(data, baseline_ks=0.02) is None


def test_fit_mixture_if_better_handles_tiny_samples():
    assert fit_mixture_if_better([1.0, 2.0], baseline_ks=0.9) is None
