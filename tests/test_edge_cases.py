"""Edge-case coverage across modules (gaps the main suites skip)."""

import numpy as np
import pytest

from repro.capture.classifier import classification_accuracy, classify_ports, relabel
from repro.capture.collector import FlowCollector
from repro.capture.records import FlowRecord, TrafficComponent
from repro.cluster import ports
from repro.cluster.topology import build_topology
from repro.cluster.units import GB, KB, MB, TB, gbit_to_bytes_per_s
from repro.modeling.inspect import describe_model
from repro.modeling.model import fit_job_model
from repro.net.network import FlowNetwork
from repro.simkit import Simulator
from repro.yarn.nodemanager import NodeManager


# -- units / ports ---------------------------------------------------------------


def test_unit_constants_are_binary_multiples():
    assert KB == 1024
    assert MB == 1024 * KB
    assert GB == 1024 * MB
    assert TB == 1024 * GB


def test_gbit_conversion():
    assert gbit_to_bytes_per_s(1.0) == pytest.approx(125_000_000.0)


def test_ephemeral_ports_stable_and_in_range():
    a = ports.ephemeral_port("tag")
    assert a == ports.ephemeral_port("tag")
    assert ports.EPHEMERAL_BASE <= a < ports.EPHEMERAL_BASE + ports.EPHEMERAL_RANGE
    assert ports.ephemeral_port("other") != a or True  # collision allowed


def test_service_port_registry_is_consistent():
    assert ports.SERVICE_PORTS[ports.NAMENODE_RPC] == "namenode-rpc"
    assert ports.SERVICE_PORTS[ports.SHUFFLE_HANDLER] == "shuffle-handler"


# -- classifier -------------------------------------------------------------------


def test_classify_ports_priority_order():
    # DataNode port beats everything else in either direction.
    assert classify_ports(ports.DATANODE_XFER, ports.SHUFFLE_HANDLER) \
        == TrafficComponent.HDFS_READ
    assert classify_ports(ports.SHUFFLE_HANDLER, ports.DATANODE_XFER) \
        == TrafficComponent.HDFS_WRITE
    assert classify_ports(50000, 50001) == TrafficComponent.OTHER


def test_relabel_overwrites_components():
    flow = FlowRecord(src="a", dst="b", src_rack=0, dst_rack=0,
                      src_port=ports.SHUFFLE_HANDLER, dst_port=50001,
                      size=1.0, start=0.0, end=1.0, component="other")
    (relabelled,) = relabel([flow])
    assert relabelled.component == "shuffle"
    assert flow.component == "other"  # original untouched


def test_classification_accuracy_empty_is_one():
    assert classification_accuracy([]) == 1.0


# -- collector ---------------------------------------------------------------------


def test_collector_include_local_captures_loopback():
    sim = Simulator()
    topo = build_topology("star", num_hosts=2)
    net = FlowNetwork(sim, topo)
    local_collector = FlowCollector(net, include_local=True)
    host = topo.hosts[0]
    net.start_flow(host, host, 100.0, max_rate=50.0,
                   metadata={"component": "hdfs_write"})
    sim.run()
    assert len(local_collector.records) == 1
    assert local_collector.records[0].src == local_collector.records[0].dst


def test_collector_clear():
    sim = Simulator()
    topo = build_topology("star", num_hosts=2)
    net = FlowNetwork(sim, topo)
    collector = FlowCollector(net)
    net.start_flow(topo.hosts[0], topo.hosts[1], 100.0)
    sim.run()
    assert collector.records
    collector.clear()
    assert collector.records == []
    assert collector.total_bytes() == 0.0


# -- net ---------------------------------------------------------------------------


def test_utilisation_of_unused_link_is_zero():
    sim = Simulator()
    topo = build_topology("star", num_hosts=3)
    net = FlowNetwork(sim, topo)
    net.start_flow(topo.hosts[0], topo.hosts[1], 1000.0)
    sim.run()
    path = topo.path(topo.hosts[2], topo.hosts[0])
    unused = (path[0], path[1])
    assert net.utilisation(unused) == 0.0


def test_utilisation_at_time_zero_is_zero():
    sim = Simulator()
    topo = build_topology("star", num_hosts=2)
    net = FlowNetwork(sim, topo)
    path = topo.path(topo.hosts[0], topo.hosts[1])
    assert net.utilisation((path[0], path[1])) == 0.0


# -- yarn --------------------------------------------------------------------------


def test_nodemanager_rejects_bad_heartbeat_interval():
    from repro.yarn.containers import Resources
    from repro.yarn.resourcemanager import ResourceManager
    from repro.yarn.schedulers import make_scheduler

    sim = Simulator()
    topo = build_topology("star", num_hosts=2)
    net = FlowNetwork(sim, topo)
    rm = ResourceManager(sim, net, topo.hosts[0], make_scheduler("fifo"))
    with pytest.raises(ValueError):
        NodeManager(sim, net, topo.hosts[1], rm, Resources(),
                    heartbeat_interval=0.0)


def test_nodemanager_deallocate_unknown_container_raises():
    from repro.yarn.containers import Container, Resources
    from repro.yarn.resourcemanager import ResourceManager
    from repro.yarn.schedulers import make_scheduler

    sim = Simulator()
    topo = build_topology("star", num_hosts=2)
    net = FlowNetwork(sim, topo)
    rm = ResourceManager(sim, net, topo.hosts[0], make_scheduler("fifo"))
    node = NodeManager(sim, net, topo.hosts[1], rm, Resources(4, 4096))
    ghost = Container(host=topo.hosts[1], app_id="x", resources=Resources())
    with pytest.raises(KeyError):
        node.deallocate(ghost)


# -- inspect ------------------------------------------------------------------------


def test_describe_model_renders_every_component():
    from repro.capture.records import CaptureMeta, JobTrace

    meta = CaptureMeta(job_id="j", job_kind="t", input_bytes=1.0 * GB,
                       submit_time=0.0, finish_time=10.0,
                       cluster={"num_nodes": 4}, hadoop={"num_reducers": 2})
    flows = [FlowRecord(src="a", dst="b", src_rack=0, dst_rack=0,
                        src_port=13562, dst_port=49000 + i, size=100.0 * i + 1,
                        start=float(i), end=float(i) + 1, component="shuffle")
             for i in range(10)]
    model = fit_job_model([JobTrace(meta=meta, flows=flows)])
    overview, laws = describe_model(model)
    assert any("shuffle" in str(row[0]) for row in overview.rows)
    assert len(laws.rows) == len(model.components)
