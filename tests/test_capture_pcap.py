"""Unit + property tests: packet synthesis and flow assembly."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.capture.pcap import (
    PacketRecord,
    assemble_flows,
    read_packets,
    synthesize_packets,
    write_packets,
)
from repro.capture.records import FlowRecord


def flow(size=10000.0, start=0.0, end=2.0, src="h001", dst="h002",
         src_port=50010, dst_port=49500, component="hdfs_read"):
    return FlowRecord(src=src, dst=dst, src_rack=0, dst_rack=1,
                      src_port=src_port, dst_port=dst_port,
                      size=size, start=start, end=end, component=component)


def test_synthesize_preserves_total_bytes():
    record = flow(size=10000.0)
    packets = synthesize_packets(record, mtu=1448)
    assert sum(p.size for p in packets) == 10000
    assert len(packets) == 7  # ceil(10000/1448)
    assert all(p.size <= 1448 for p in packets)


def test_synthesize_spreads_packets_over_duration():
    record = flow(size=5000.0, start=1.0, end=3.0)
    packets = synthesize_packets(record, mtu=1000)
    times = [p.time for p in packets]
    assert times[0] == pytest.approx(1.0)
    assert max(times) < 3.0
    assert times == sorted(times)


def test_zero_byte_flow_synthesizes_marker_packet():
    packets = synthesize_packets(flow(size=0.0))
    assert len(packets) == 1
    assert packets[0].size == 0


def test_invalid_mtu_rejected():
    with pytest.raises(ValueError):
        synthesize_packets(flow(), mtu=0)


def test_assembly_roundtrip_single_flow():
    record = flow(size=20000.0, start=5.0, end=9.0)
    packets = synthesize_packets(record)
    assembled = assemble_flows(packets, rack_of={"h001": 0, "h002": 1})
    assert len(assembled) == 1
    out = assembled[0]
    assert out.src == record.src and out.dst == record.dst
    assert out.size == pytest.approx(record.size)
    assert out.start == pytest.approx(record.start)
    assert out.component == "hdfs_read"  # classified from ports
    assert out.src_rack == 0 and out.dst_rack == 1


def test_assembly_separates_different_five_tuples():
    a = synthesize_packets(flow(src="h001", dst="h002", dst_port=1111))
    b = synthesize_packets(flow(src="h003", dst="h002", dst_port=2222))
    assembled = assemble_flows(a + b)
    assert len(assembled) == 2


def test_assembly_splits_on_idle_gap():
    early = synthesize_packets(flow(start=0.0, end=1.0))
    late = synthesize_packets(flow(start=500.0, end=501.0))
    assembled = assemble_flows(early + late, idle_gap=60.0)
    assert len(assembled) == 2
    merged = assemble_flows(early + late, idle_gap=1000.0)
    assert len(merged) == 1


def test_assembly_unknown_hosts_get_rack_minus_one():
    assembled = assemble_flows(synthesize_packets(flow()))
    assert assembled[0].src_rack == -1


def test_assembly_rejects_bad_gap():
    with pytest.raises(ValueError):
        assemble_flows([], idle_gap=0)


def test_packet_csv_roundtrip(tmp_path):
    packets = synthesize_packets(flow(size=5000.0))
    path = tmp_path / "capture.csv"
    write_packets(packets, path)
    loaded = read_packets(path)
    assert loaded == packets


def test_read_packets_missing_columns(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("time,src\n1.0,h001\n", encoding="utf-8")
    with pytest.raises(ValueError):
        read_packets(path)


def test_packet_negative_size_rejected():
    with pytest.raises(ValueError):
        PacketRecord(0.0, "a", "b", 1, 2, -1)


@settings(max_examples=60, deadline=None)
@given(
    size=st.floats(min_value=1.0, max_value=1e8),
    start=st.floats(min_value=0.0, max_value=1e4),
    span=st.floats(min_value=0.0, max_value=600.0),
    mtu=st.integers(min_value=100, max_value=9000),
)
def test_synthesis_assembly_roundtrip_property(size, start, span, mtu):
    """Byte count and start time survive the packet round trip exactly."""
    record = flow(size=float(int(size)), start=start, end=start + span)
    packets = synthesize_packets(record, mtu=mtu)
    # Use an idle gap longer than the flow so it is never split.
    assembled = assemble_flows(packets, idle_gap=span + 61.0)
    assert len(assembled) == 1
    out = assembled[0]
    assert out.size == pytest.approx(record.size)
    assert out.start == pytest.approx(record.start)
    assert out.end <= record.end + 1e-9
