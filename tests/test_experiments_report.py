"""Tests for the markdown report generator."""

import pytest

from repro.experiments.report import generate_report, write_report


def test_generate_report_single_experiment():
    text = generate_report(["e07"])
    assert text.startswith("# Keddah evaluation report")
    assert "## E07 — HDFS write traffic vs replication factor" in text
    assert "E7: HDFS write traffic" in text
    assert text.count("```") % 2 == 0  # balanced code fences


def test_generate_report_rejects_unknown_ids():
    with pytest.raises(ValueError):
        generate_report(["e99"])


def test_write_report_to_disk(tmp_path):
    path = write_report(tmp_path / "report.md", ["a3"],
                        title="Smoke report")
    text = path.read_text()
    assert text.startswith("# Smoke report")
    assert "A3" in text
