"""Tests for the per-hop latency (connection setup) model."""

import pytest

from repro.cluster.config import ClusterSpec, HadoopConfig
from repro.cluster.topology import build_topology
from repro.cluster.units import GBPS, MB
from repro.jobs import make_job
from repro.mapreduce.cluster import HadoopCluster
from repro.net.network import FlowNetwork
from repro.simkit import Simulator


def make_net(hop_latency, kind="tree", num_hosts=8, hosts_per_rack=4):
    sim = Simulator()
    topo = build_topology(kind, num_hosts=num_hosts, hosts_per_rack=hosts_per_rack)
    return sim, topo, FlowNetwork(sim, topo, hop_latency=hop_latency)


def test_setup_delay_dominates_small_flows():
    sim, topo, net = make_net(hop_latency=0.001)
    a, b = topo.hosts_in_rack(0)[0], topo.hosts_in_rack(0)[1]
    flow = net.start_flow(a, b, 512.0)  # heartbeat-sized
    sim.run()
    # 2 hops -> RTT 4 ms -> setup 6 ms; transfer time ~4 us.
    assert flow.duration == pytest.approx(0.006, rel=0.01)


def test_setup_delay_negligible_for_bulk_flows():
    sim, topo, net = make_net(hop_latency=0.001)
    a, b = topo.hosts_in_rack(0)[0], topo.hosts_in_rack(0)[1]
    size = 1.0 * GBPS  # 1 second at line rate
    flow = net.start_flow(a, b, size)
    sim.run()
    assert flow.duration == pytest.approx(1.006, rel=0.01)


def test_cross_rack_pays_more_setup_than_same_rack():
    sim, topo, net = make_net(hop_latency=0.001)
    same_rack = net.start_flow(topo.hosts_in_rack(0)[0],
                               topo.hosts_in_rack(0)[1], 100.0)
    cross_rack = net.start_flow(topo.hosts_in_rack(0)[2],
                                topo.hosts_in_rack(1)[0], 100.0)
    sim.run()
    assert cross_rack.duration > same_rack.duration


def test_zero_latency_preserves_immediate_activation():
    sim, topo, net = make_net(hop_latency=0.0)
    flow = net.start_flow(topo.hosts[0], topo.hosts[1], 1000.0)
    assert net.active  # joined the active set synchronously
    sim.run()
    assert flow.finished


def test_negative_latency_rejected():
    with pytest.raises(ValueError):
        make_net(hop_latency=-1.0)


def test_cluster_spec_wires_latency_through():
    spec = ClusterSpec(num_nodes=4, hop_latency_s=0.0005)
    cluster = HadoopCluster(spec, HadoopConfig(block_size=32 * MB,
                                               num_reducers=2), seed=1)
    assert cluster.net.hop_latency == 0.0005
    results, traces = cluster.run([make_job("grep", input_gb=0.125)])
    assert not results[0].failed
    # Control flows now have visible durations (setup-dominated).
    control = [f for f in traces[0].flows if f.component == "control"]
    assert control
    assert all(f.duration > 0 for f in control)


def test_cluster_spec_rejects_negative_latency():
    with pytest.raises(ValueError):
        ClusterSpec(hop_latency_s=-0.1)
