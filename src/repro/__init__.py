"""Keddah: capturing, modelling and reproducing Hadoop network behaviour.

A reproduction of the toolchain from *Keddah: Capturing Hadoop Network
Behaviour* (Deng, Tyson, Cuadrado, Uhlig — ICDCS 2017).

The package is organised around the paper's three-stage pipeline:

1. **Capture** — run MapReduce jobs on a simulated Hadoop cluster
   (:mod:`repro.hdfs`, :mod:`repro.yarn`, :mod:`repro.mapreduce` over the
   flow-level network simulator :mod:`repro.net`), and collect per-flow
   records classified into Hadoop traffic components
   (:mod:`repro.capture`).
2. **Model** — fit per-component statistical models of flow counts,
   sizes and arrival processes (:mod:`repro.modeling`).
3. **Reproduce** — sample synthetic traffic from those models and
   replay/export it for network simulators (:mod:`repro.generation`).

The convenience entry points (``run_capture``, ``fit_job_model``,
``generate_trace``, ``replay_trace``) live in :mod:`repro.api` and are
re-exported lazily here so that importing a single subsystem stays
cheap.
"""

from typing import Any

__version__ = "1.0.0"

_API_EXPORTS = {
    "run_capture": "repro.api",
    "run_capture_campaign": "repro.api",
    "fit_job_model": "repro.api",
    "generate_trace": "repro.api",
    "replay_trace": "repro.api",
    "ClusterSpec": "repro.cluster.config",
    "HadoopConfig": "repro.cluster.config",
    "FlowRecord": "repro.capture.records",
    "JobTrace": "repro.capture.records",
    "TrafficComponent": "repro.capture.records",
    "ComponentModel": "repro.modeling.model",
    "JobTrafficModel": "repro.modeling.model",
}

__all__ = sorted(_API_EXPORTS) + ["__version__"]


def __getattr__(name: str) -> Any:
    """Lazily resolve the public API (PEP 562)."""
    module_name = _API_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value
    return value
