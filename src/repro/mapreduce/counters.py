"""Hadoop-style job counters.

The familiar counter groups a real ``job -status`` prints, filled in by
the AppMaster as tasks execute.  Counters make the engine's accounting
*checkable*: the tests assert the same identities Hadoop's own counters
satisfy (map output bytes == reduce shuffle bytes on healthy runs,
locality counters sum to launched maps, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

# FileSystemCounters
HDFS_BYTES_READ = "HDFS_BYTES_READ"
HDFS_BYTES_WRITTEN = "HDFS_BYTES_WRITTEN"
FILE_BYTES_WRITTEN = "FILE_BYTES_WRITTEN"        # local spills

# JobCounters
TOTAL_LAUNCHED_MAPS = "TOTAL_LAUNCHED_MAPS"
TOTAL_LAUNCHED_REDUCES = "TOTAL_LAUNCHED_REDUCES"
DATA_LOCAL_MAPS = "DATA_LOCAL_MAPS"
RACK_LOCAL_MAPS = "RACK_LOCAL_MAPS"
OTHER_LOCAL_MAPS = "OTHER_LOCAL_MAPS"
NUM_KILLED_MAPS = "NUM_KILLED_MAPS"
NUM_KILLED_REDUCES = "NUM_KILLED_REDUCES"

# Task counters
MAP_INPUT_BYTES = "MAP_INPUT_BYTES"
MAP_OUTPUT_BYTES = "MAP_OUTPUT_BYTES"
REDUCE_SHUFFLE_BYTES = "REDUCE_SHUFFLE_BYTES"
REDUCE_INPUT_BYTES = "REDUCE_INPUT_BYTES"
REDUCE_OUTPUT_BYTES = "REDUCE_OUTPUT_BYTES"

ALL_COUNTERS = (
    HDFS_BYTES_READ, HDFS_BYTES_WRITTEN, FILE_BYTES_WRITTEN,
    TOTAL_LAUNCHED_MAPS, TOTAL_LAUNCHED_REDUCES,
    DATA_LOCAL_MAPS, RACK_LOCAL_MAPS, OTHER_LOCAL_MAPS,
    NUM_KILLED_MAPS, NUM_KILLED_REDUCES,
    MAP_INPUT_BYTES, MAP_OUTPUT_BYTES,
    REDUCE_SHUFFLE_BYTES, REDUCE_INPUT_BYTES, REDUCE_OUTPUT_BYTES,
)


@dataclass
class JobCounters:
    """A counter bag with Hadoop-style names."""

    values: Dict[str, float] = field(default_factory=dict)

    def increment(self, name: str, amount: float = 1.0) -> None:
        if name not in ALL_COUNTERS:
            raise KeyError(f"unknown counter {name!r}")
        self.values[name] = self.values.get(name, 0.0) + amount

    def get(self, name: str) -> float:
        if name not in ALL_COUNTERS:
            raise KeyError(f"unknown counter {name!r}")
        return self.values.get(name, 0.0)

    def __getitem__(self, name: str) -> float:
        return self.get(name)

    def merge(self, other: "JobCounters") -> "JobCounters":
        """Sum of two counter bags (aggregating iterative rounds)."""
        merged = JobCounters(values=dict(self.values))
        for name, amount in other.values.items():
            merged.values[name] = merged.values.get(name, 0.0) + amount
        return merged

    def to_dict(self) -> Dict[str, Any]:
        return dict(self.values)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobCounters":
        counters = cls()
        for name, amount in data.items():
            counters.increment(name, float(amount))
        return counters

    def render(self) -> str:
        """``job -status``-style listing of non-zero counters."""
        lines = ["Counters:"]
        for name in ALL_COUNTERS:
            value = self.values.get(name, 0.0)
            if value:
                formatted = f"{int(value):,}" if value == int(value) else f"{value:,.1f}"
                lines.append(f"  {name}={formatted}")
        return "\n".join(lines)
