"""MapReduce engine on top of HDFS + YARN + the flow network.

The engine reproduces the mechanisms that generate each of Keddah's
traffic components:

* **HDFS read** — map tasks read their input splits with the NameNode's
  locality preference (node-local reads are silent; rack-local and
  remote reads become flows);
* **shuffle** — every (map, reduce) pair exchanges one partition fetch
  once the map commits, gated by the reducer slow-start fraction and
  the per-reducer parallel-copy limit;
* **HDFS write** — reducers (or map-only tasks) write their output
  through replication pipelines;
* **control** — job submission, job-jar staging and localisation, AM-RM
  heartbeats, container-launch RPCs, task completion notifications and
  the job-history write.

:class:`~repro.mapreduce.cluster.HadoopCluster` assembles a full
simulated deployment; :class:`~repro.mapreduce.driver.JobDriver` runs
(possibly iterative) jobs on it.
"""

from repro.mapreduce.cluster import HadoopCluster
from repro.mapreduce.driver import JobDriver
from repro.mapreduce.result import JobResult

__all__ = ["HadoopCluster", "JobDriver", "JobResult"]
