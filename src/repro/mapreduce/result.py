"""Job execution results and counters."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class RoundResult:
    """Counters for one MapReduce round (iterative jobs run several)."""

    app_id: str
    round_index: int
    submit_time: float
    am_start_time: float = 0.0
    maps_done_time: float = 0.0
    finish_time: float = 0.0
    num_maps: int = 0
    num_reduces: int = 0
    input_bytes: float = 0.0
    map_output_bytes: float = 0.0
    shuffle_bytes: float = 0.0
    output_bytes: float = 0.0
    node_local_reads: int = 0
    rack_local_reads: int = 0
    remote_reads: int = 0
    speculative_attempts: int = 0
    lost_containers: int = 0
    fetch_recoveries: int = 0
    failed: bool = False
    am_host: str = ""
    counters: Dict[str, float] = field(default_factory=dict)
    map_durations: List[float] = field(default_factory=list)
    reduce_durations: List[float] = field(default_factory=list)

    @property
    def completion_time(self) -> float:
        return self.finish_time - self.submit_time

    @property
    def locality_fraction(self) -> float:
        """Fraction of split reads served node-locally."""
        total = self.node_local_reads + self.rack_local_reads + self.remote_reads
        return self.node_local_reads / total if total else 1.0

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RoundResult":
        return cls(**data)


@dataclass
class JobResult:
    """Aggregate result of one job (all rounds)."""

    job_id: str
    kind: str
    input_bytes: float
    rounds: List[RoundResult] = field(default_factory=list)
    # When the client submitted the job (jar staging starts here); the
    # first round's AM submission happens after staging completes.
    submitted_at: Optional[float] = None

    @property
    def submit_time(self) -> float:
        if self.submitted_at is not None:
            return self.submitted_at
        return self.rounds[0].submit_time if self.rounds else 0.0

    @property
    def finish_time(self) -> float:
        return self.rounds[-1].finish_time if self.rounds else 0.0

    @property
    def completion_time(self) -> float:
        return self.finish_time - self.submit_time

    @property
    def failed(self) -> bool:
        return any(r.failed for r in self.rounds)

    def counters(self) -> "JobCounters":
        """Hadoop-style counters aggregated over all rounds."""
        from repro.mapreduce.counters import JobCounters

        total = JobCounters()
        for round_result in self.rounds:
            total = total.merge(JobCounters.from_dict(round_result.counters))
        return total

    @property
    def num_maps(self) -> int:
        return sum(r.num_maps for r in self.rounds)

    @property
    def num_reduces(self) -> int:
        return sum(r.num_reduces for r in self.rounds)

    @property
    def shuffle_bytes(self) -> float:
        return sum(r.shuffle_bytes for r in self.rounds)

    @property
    def output_bytes(self) -> float:
        return sum(r.output_bytes for r in self.rounds)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "kind": self.kind,
            "input_bytes": self.input_bytes,
            "rounds": [r.to_dict() for r in self.rounds],
            "submitted_at": self.submitted_at,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobResult":
        return cls(job_id=data["job_id"], kind=data["kind"],
                   input_bytes=data["input_bytes"],
                   rounds=[RoundResult.from_dict(r)
                           for r in data.get("rounds", [])],
                   submitted_at=data.get("submitted_at"))
