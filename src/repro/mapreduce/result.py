"""Job execution results and counters."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class RoundResult:
    """Counters for one MapReduce round (iterative jobs run several)."""

    app_id: str
    round_index: int
    submit_time: float
    am_start_time: float = 0.0
    maps_done_time: float = 0.0
    finish_time: float = 0.0
    num_maps: int = 0
    num_reduces: int = 0
    input_bytes: float = 0.0
    map_output_bytes: float = 0.0
    shuffle_bytes: float = 0.0
    output_bytes: float = 0.0
    node_local_reads: int = 0
    rack_local_reads: int = 0
    remote_reads: int = 0
    speculative_attempts: int = 0
    lost_containers: int = 0
    fetch_recoveries: int = 0
    failed: bool = False
    am_host: str = ""
    counters: Dict[str, float] = field(default_factory=dict)
    map_durations: List[float] = field(default_factory=list)
    reduce_durations: List[float] = field(default_factory=list)

    @property
    def completion_time(self) -> float:
        return self.finish_time - self.submit_time

    @property
    def locality_fraction(self) -> float:
        """Fraction of split reads served node-locally."""
        total = self.node_local_reads + self.rack_local_reads + self.remote_reads
        return self.node_local_reads / total if total else 1.0

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RoundResult":
        return cls(**data)


@dataclass
class JobResult:
    """Aggregate result of one job (all rounds)."""

    job_id: str
    kind: str
    input_bytes: float
    rounds: List[RoundResult] = field(default_factory=list)
    # When the client submitted the job (jar staging starts here); the
    # first round's AM submission happens after staging completes.
    submitted_at: Optional[float] = None

    @property
    def submit_time(self) -> float:
        if self.submitted_at is not None:
            return self.submitted_at
        return self.rounds[0].submit_time if self.rounds else 0.0

    @property
    def finish_time(self) -> float:
        return self.rounds[-1].finish_time if self.rounds else 0.0

    @property
    def completion_time(self) -> float:
        return self.finish_time - self.submit_time

    @property
    def failed(self) -> bool:
        return any(r.failed for r in self.rounds)

    def counters(self) -> "JobCounters":
        """Hadoop-style counters aggregated over all rounds."""
        from repro.mapreduce.counters import JobCounters

        total = JobCounters()
        for round_result in self.rounds:
            total = total.merge(JobCounters.from_dict(round_result.counters))
        return total

    @property
    def num_maps(self) -> int:
        return sum(r.num_maps for r in self.rounds)

    @property
    def num_reduces(self) -> int:
        return sum(r.num_reduces for r in self.rounds)

    @property
    def shuffle_bytes(self) -> float:
        return sum(r.shuffle_bytes for r in self.rounds)

    @property
    def output_bytes(self) -> float:
        return sum(r.output_bytes for r in self.rounds)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "kind": self.kind,
            "input_bytes": self.input_bytes,
            "rounds": [r.to_dict() for r in self.rounds],
            "submitted_at": self.submitted_at,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobResult":
        return cls(job_id=data["job_id"], kind=data["kind"],
                   input_bytes=data["input_bytes"],
                   rounds=[RoundResult.from_dict(r)
                           for r in data.get("rounds", [])],
                   submitted_at=data.get("submitted_at"))


@dataclass
class StageResult:
    """Outcome of one :class:`~repro.jobs.plan.PlanStage` execution.

    ``status`` is ``completed``, ``failed`` (the stage's own job
    failed) or ``skipped`` (an upstream stage failed, so the stage
    never ran and ``job`` is None).
    """

    name: str
    kind: str
    status: str = "completed"
    deps: List[str] = field(default_factory=list)
    job: Optional[JobResult] = None

    @property
    def completed(self) -> bool:
        return self.status == "completed"

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "kind": self.kind, "status": self.status,
                "deps": list(self.deps),
                "job": self.job.to_dict() if self.job is not None else None}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "StageResult":
        job = data.get("job")
        return cls(name=data["name"], kind=data["kind"],
                   status=data.get("status", "completed"),
                   deps=list(data.get("deps", [])),
                   job=JobResult.from_dict(job) if job is not None else None)


@dataclass
class PlanResult:
    """Aggregate result of one workload-plan run (all stages).

    Stages are kept in topological execution order.  ``job_id`` aliases
    ``plan_id`` so plan results flow through machinery (store entries,
    journal checkpoints) that cross-checks a result id against its
    trace's ``meta.job_id``.
    """

    plan: str
    plan_id: str
    signature: str = ""
    stages: List[StageResult] = field(default_factory=list)
    submitted_at: float = 0.0

    @property
    def job_id(self) -> str:
        return self.plan_id

    @property
    def kind(self) -> str:
        return f"plan:{self.plan}"

    def stage(self, name: str) -> StageResult:
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError(f"plan {self.plan!r} has no stage {name!r}")

    def _jobs(self) -> List[JobResult]:
        return [s.job for s in self.stages if s.job is not None]

    @property
    def submit_time(self) -> float:
        return self.submitted_at

    @property
    def finish_time(self) -> float:
        return max((job.finish_time for job in self._jobs()), default=0.0)

    @property
    def completion_time(self) -> float:
        return self.finish_time - self.submit_time

    @property
    def failed(self) -> bool:
        return any(not s.completed for s in self.stages)

    @property
    def external_input_bytes(self) -> float:
        """Bytes entering the plan from outside (root stages only)."""
        return sum(s.job.input_bytes for s in self.stages
                   if s.job is not None and not s.deps)

    @property
    def num_maps(self) -> int:
        return sum(job.num_maps for job in self._jobs())

    @property
    def num_reduces(self) -> int:
        return sum(job.num_reduces for job in self._jobs())

    @property
    def shuffle_bytes(self) -> float:
        return sum(job.shuffle_bytes for job in self._jobs())

    @property
    def output_bytes(self) -> float:
        return sum(job.output_bytes for job in self._jobs())

    @property
    def rounds(self) -> List[RoundResult]:
        """All stage rounds, flattened (for round-level consumers)."""
        return [r for job in self._jobs() for r in job.rounds]

    def to_dict(self) -> Dict[str, Any]:
        return {"plan": self.plan, "plan_id": self.plan_id,
                "signature": self.signature,
                "stages": [s.to_dict() for s in self.stages],
                "submitted_at": self.submitted_at}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PlanResult":
        return cls(plan=data["plan"], plan_id=data["plan_id"],
                   signature=data.get("signature", ""),
                   stages=[StageResult.from_dict(s)
                           for s in data.get("stages", [])],
                   submitted_at=float(data.get("submitted_at", 0.0)))
