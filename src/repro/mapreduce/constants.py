"""Fixed engine constants (Hadoop-typical magnitudes).

These are deliberately *not* configuration: they model implementation
overheads whose exact values barely move the traffic statistics but
whose existence shapes them (e.g. the jar localisation read is why
every job has a handful of small HDFS-read flows before the first
split read).
"""

from repro.cluster.units import KB, MB

AM_STARTUP_S = 1.0          # AM container localisation + JVM start
TASK_LAUNCH_S = 0.3         # task container launch latency
AM_HEARTBEAT_S = 1.0        # AM -> RM allocate() cadence
AM_HEARTBEAT_BYTES = 768    # allocate request/response on the wire
LAUNCH_RPC_BYTES = 1 * KB   # AM -> NM startContainer RPC
UMBILICAL_BYTES = 384       # task -> AM completion notification
JOB_JAR_BYTES = 2 * MB      # job.jar + job.xml + splits staged per job
JAR_STAGING_REPLICATION = 10  # mapreduce.client.submit.file.replication
HISTORY_BYTES = 128 * KB    # .jhist + conf written at job end
