"""Job driver: submits rounds, chains iterations, reports results.

One :class:`JobDriver` executes one :class:`~repro.jobs.base.JobSpec`.
For single-round jobs it submits one
:class:`~repro.mapreduce.appmaster.MRAppMaster`; for iterative profiles
it chains rounds the way real drivers (Mahout, Giraph-on-MR) do:

* ``reread_input=False`` (PageRank): round *k+1* reads round *k*'s
  output files;
* ``reread_input=True`` (K-Means): every round re-reads the original
  input; the small per-round output is the model, not the next input.

All rounds share the job's id, so the capture stage aggregates the
whole iterative workload into one :class:`~repro.capture.records.
JobTrace`, matching how the paper treats an application run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.cluster.topology import Host
from repro.jobs.base import JobSpec
from repro.mapreduce.appmaster import MRAppMaster
from repro.mapreduce.result import JobResult
from repro.simkit.core import Signal

if TYPE_CHECKING:  # pragma: no cover
    from repro.mapreduce.cluster import HadoopCluster


class JobDriver:
    """Runs one job (all its rounds) on a HadoopCluster."""

    def __init__(self, cluster: "HadoopCluster", spec: JobSpec,
                 client_host: Optional[Host] = None):
        self.cluster = cluster
        self.spec = spec
        self.client_host = client_host or cluster.master
        self._tracer = cluster.sim.telemetry.tracer
        self.done: Signal = cluster.sim.signal(name=f"{spec.job_id}.done")
        self.result = JobResult(job_id=spec.job_id, kind=spec.kind,
                                input_bytes=spec.input_bytes,
                                submitted_at=cluster.sim.now)
        self._rounds_submitted = 0
        cluster.sim.process(self._run(), name=f"driver[{spec.job_id}]")

    def _run(self):
        profile = self.spec.profile
        sim = self.cluster.sim
        job_span = self._tracer.start(
            "job", self.spec.job_id, sim.now,
            kind_of_job=self.spec.kind, input_bytes=self.spec.input_bytes,
            backend=self.cluster.net.name)
        input_paths = [self.spec.input_path] if not profile.is_generator else []
        yield from self.cluster.stage_job_resources(self.spec, self.client_host)
        for round_index in range(profile.iterations):
            output_path = self._round_output(round_index)
            app = MRAppMaster(
                sim=self.cluster.sim,
                net=self.cluster.net,
                dfs=self.cluster.dfs,
                rm=self.cluster.rm,
                config=self.cluster.config,
                spec=self.spec,
                input_paths=input_paths,
                output_path=output_path,
                rng=self.cluster.rng.stream(f"job.{self.spec.job_id}.r{round_index}"),
                round_index=round_index,
                client_host=self.client_host,
                node_speed=self.cluster.node_speed,
                parent_span=job_span,
            )
            self.cluster.rm.submit_application(app, client_host=self.client_host)
            round_result = yield app.done
            self.result.rounds.append(round_result)
            if round_result.failed:
                break  # an unrecoverable round (AM loss) fails the job
            is_last = round_index == profile.iterations - 1
            if not is_last and not profile.reread_input:
                input_paths = self._output_files(output_path)
        self._tracer.end(job_span, sim.now,
                         rounds=len(self.result.rounds),
                         failed=any(r.failed for r in self.result.rounds))
        self.done.fire(self.result)

    def _round_output(self, round_index: int) -> str:
        if self.spec.profile.iterations == 1:
            return self.spec.output_path
        return f"{self.spec.output_path}/iter{round_index:02d}"

    def _output_files(self, output_path: str) -> List[str]:
        prefix = output_path + "/"
        files = [path for path in self.cluster.dfs.namenode.list_files()
                 if path.startswith(prefix)]
        if not files:
            raise RuntimeError(
                f"{self.spec.job_id}: round produced no output under {output_path}")
        return files
