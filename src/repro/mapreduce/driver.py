"""Job and plan drivers: submit rounds and stages, report results.

One :class:`JobDriver` executes one :class:`~repro.jobs.base.JobSpec`.
For single-round jobs it submits one
:class:`~repro.mapreduce.appmaster.MRAppMaster`; for iterative profiles
it chains rounds the way real drivers (Mahout, Giraph-on-MR) do:

* ``reread_input=False`` (PageRank): round *k+1* reads round *k*'s
  output files;
* ``reread_input=True`` (K-Means): every round re-reads the original
  input; the small per-round output is the model, not the next input.

All rounds share the job's id, so the capture stage aggregates the
whole iterative workload into one :class:`~repro.capture.records.
JobTrace`, matching how the paper treats an application run.

A :class:`PlanExecutor` generalises the driver to a whole
:class:`~repro.jobs.plan.WorkloadPlan`: every stage runs as one
JobDriver, root stages are admitted concurrently at submission, and
dependent stages wait for their upstream done-signals before resolving
their input from the upstream jobs' *actual HDFS output files* — so
cross-stage data moves through the real write/read path and shows up
on the wire.  A trivial plan (one wrapped JobSpec) takes the exact
legacy single-job path, making ``JobDriver`` the thin single-stage
case of the executor and keeping those captures byte-identical.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.cluster.topology import Host
from repro.jobs.base import JobSpec, make_job
from repro.jobs.plan import PlanStage, WorkloadPlan
from repro.mapreduce.appmaster import MRAppMaster
from repro.mapreduce.result import JobResult, PlanResult, StageResult
from repro.simkit.core import Signal

if TYPE_CHECKING:  # pragma: no cover
    from repro.mapreduce.cluster import HadoopCluster


class JobDriver:
    """Runs one job (all its rounds) on a HadoopCluster.

    ``input_paths`` overrides where the first round reads from (plan
    stages pass the upstream stage's HDFS output files); the default is
    the spec's own ``input_path``.  ``parent_span``/``span_attrs`` hang
    the job span under a plan span with plan/stage labels — both are
    no-ops on the legacy single-job path, which keeps that path's
    captures and telemetry byte-for-byte unchanged.
    """

    def __init__(self, cluster: "HadoopCluster", spec: JobSpec,
                 client_host: Optional[Host] = None,
                 input_paths: Optional[List[str]] = None,
                 parent_span: Any = None,
                 span_attrs: Optional[Dict[str, Any]] = None):
        self.cluster = cluster
        self.spec = spec
        self.client_host = client_host or cluster.master
        self._tracer = cluster.sim.telemetry.tracer
        self._input_paths = list(input_paths) if input_paths is not None else None
        self._parent_span = parent_span
        self._span_attrs = dict(span_attrs) if span_attrs else {}
        self.done: Signal = cluster.sim.signal(name=f"{spec.job_id}.done")
        self.result = JobResult(job_id=spec.job_id, kind=spec.kind,
                                input_bytes=spec.input_bytes,
                                submitted_at=cluster.sim.now)
        self._rounds_submitted = 0
        cluster.sim.process(self._run(), name=f"driver[{spec.job_id}]")

    def _run(self):
        profile = self.spec.profile
        sim = self.cluster.sim
        job_span = self._tracer.start(
            "job", self.spec.job_id, sim.now, parent=self._parent_span,
            kind_of_job=self.spec.kind, input_bytes=self.spec.input_bytes,
            backend=self.cluster.net.name, **self._span_attrs)
        if self._input_paths is not None:
            input_paths = list(self._input_paths)
        else:
            input_paths = [self.spec.input_path] if not profile.is_generator else []
        yield from self.cluster.stage_job_resources(self.spec, self.client_host)
        for round_index in range(profile.iterations):
            output_path = self._round_output(round_index)
            app = MRAppMaster(
                sim=self.cluster.sim,
                net=self.cluster.net,
                dfs=self.cluster.dfs,
                rm=self.cluster.rm,
                config=self.cluster.config,
                spec=self.spec,
                input_paths=input_paths,
                output_path=output_path,
                rng=self.cluster.rng.stream(f"job.{self.spec.job_id}.r{round_index}"),
                round_index=round_index,
                client_host=self.client_host,
                node_speed=self.cluster.node_speed,
                parent_span=job_span,
            )
            self.cluster.rm.submit_application(app, client_host=self.client_host)
            round_result = yield app.done
            self.result.rounds.append(round_result)
            if round_result.failed:
                break  # an unrecoverable round (AM loss) fails the job
            is_last = round_index == profile.iterations - 1
            if not is_last and not profile.reread_input:
                input_paths = self._output_files(output_path)
        self._tracer.end(job_span, sim.now,
                         rounds=len(self.result.rounds),
                         failed=any(r.failed for r in self.result.rounds))
        self.done.fire(self.result)

    def _round_output(self, round_index: int) -> str:
        if self.spec.profile.iterations == 1:
            return self.spec.output_path
        return f"{self.spec.output_path}/iter{round_index:02d}"

    def output_files(self) -> List[str]:
        """The job's final-round HDFS output files (for chaining stages)."""
        last_round = max(len(self.result.rounds), 1) - 1
        return self._output_files(self._round_output(last_round))

    def _output_files(self, output_path: str) -> List[str]:
        prefix = output_path + "/"
        files = [path for path in self.cluster.dfs.namenode.list_files()
                 if path.startswith(prefix)]
        if not files:
            raise RuntimeError(
                f"{self.spec.job_id}: round produced no output under {output_path}")
        return files


class PlanExecutor:
    """Runs one :class:`WorkloadPlan` (all its stages) on a HadoopCluster.

    Every stage gets its own simulation process: root stages resolve
    and submit immediately (so independent stages contend for
    containers concurrently under the YARN scheduler), dependent stages
    first wait on their upstream done-signals, then list the upstream
    jobs' actual HDFS output files, apply the per-edge carryover
    selection and run their job over those files.  Stage job ids derive
    from the plan id (default: the plan signature), so each stage draws
    deterministic RNG streams regardless of execution interleaving.

    Trivial plans (one wrapped JobSpec) bypass the stage machinery:
    the wrapped spec is preloaded and driven exactly like
    ``HadoopCluster.submit_job`` would, which is what keeps
    single-stage plan captures byte-identical to the legacy path.
    """

    def __init__(self, cluster: "HadoopCluster", plan: WorkloadPlan,
                 client_host: Optional[Host] = None,
                 plan_id: Optional[str] = None):
        self.cluster = cluster
        self.plan = plan
        self.client_host = client_host or cluster.master
        self.plan_id = plan_id or f"plan_{plan.name}_{plan.signature()[:10]}"
        self._tracer = cluster.sim.telemetry.tracer
        sim = cluster.sim
        self.done: Signal = sim.signal(name=f"{self.plan_id}.done")
        self.result = PlanResult(plan=plan.name, plan_id=self.plan_id,
                                 signature=plan.signature(),
                                 submitted_at=sim.now)
        self.drivers: Dict[str, JobDriver] = {}
        self._order = plan.topological_order()
        self._stage_done: Dict[str, Signal] = {}
        self._stage_results: Dict[str, StageResult] = {}
        self._span = None

        if plan.is_trivial:
            spec = plan.wrapped
            stage_name = plan.stages[0].name
            cluster.preload_input(spec)
            driver = JobDriver(cluster, spec, client_host=client_host)
            self.drivers[stage_name] = driver
            sim.process(self._finalise_trivial(stage_name, driver),
                        name=f"plan[{self.plan_id}]")
            return

        self._span = self._tracer.start(
            "plan", self.plan_id, sim.now, plan=plan.name,
            stages=len(plan.stages), backend=cluster.net.name)
        for stage in self._order:
            self._stage_done[stage.name] = sim.signal(
                name=f"{self.plan_id}.{stage.name}.done")
        for stage in self._order:
            sim.process(self._run_stage(stage),
                        name=f"plan[{self.plan_id}].{stage.name}")
        sim.process(self._finalise(), name=f"plan[{self.plan_id}]")

    # -- stage processes ----------------------------------------------------------

    def stage_job_id(self, stage: PlanStage) -> str:
        return f"{self.plan_id}.{stage.name}"

    def _run_stage(self, stage: PlanStage):
        sim = self.cluster.sim
        if stage.inputs:
            yield sim.all_of([self._stage_done[edge.source]
                              for edge in stage.inputs])
            blocked = [edge.source for edge in stage.inputs
                       if not self._stage_results[edge.source].completed]
            if blocked:
                self._settle_stage(stage, StageResult(
                    name=stage.name, kind=stage.kind, status="skipped",
                    deps=stage.dep_names()))
                return
            input_paths, input_bytes = self._resolve_inputs(stage)
            spec = self._stage_spec(stage, input_bytes=input_bytes)
        else:
            input_paths = None
            spec = self._stage_spec(stage)
            self.cluster.preload_input(spec)
        driver = JobDriver(
            self.cluster, spec, client_host=self.client_host,
            input_paths=input_paths, parent_span=self._span,
            span_attrs={"plan": self.plan.name, "stage": stage.name})
        self.drivers[stage.name] = driver
        job_result = yield driver.done
        status = "failed" if job_result.failed else "completed"
        self._settle_stage(stage, StageResult(
            name=stage.name, kind=stage.kind, status=status,
            deps=stage.dep_names(), job=job_result))

    def _settle_stage(self, stage: PlanStage, record: StageResult) -> None:
        self._stage_results[stage.name] = record
        self._stage_done[stage.name].fire(record)

    def _finalise(self):
        yield self.cluster.sim.all_of(
            [self._stage_done[stage.name] for stage in self._order])
        self.result.stages = [self._stage_results[stage.name]
                              for stage in self._order]
        self._tracer.end(self._span, self.cluster.sim.now,
                         failed=self.result.failed)
        self.done.fire(self.result)

    def _finalise_trivial(self, stage_name: str, driver: JobDriver):
        job_result = yield driver.done
        status = "failed" if job_result.failed else "completed"
        self.result.stages = [StageResult(name=stage_name,
                                          kind=driver.spec.kind,
                                          status=status, job=job_result)]
        self.done.fire(self.result)

    # -- stage resolution ---------------------------------------------------------

    def _stage_spec(self, stage: PlanStage,
                    input_bytes: Optional[float] = None) -> JobSpec:
        spec = make_job(stage.kind, input_gb=stage.input_gb or 0.0,
                        num_reducers=stage.num_reducers, queue=stage.queue,
                        job_id=self.stage_job_id(stage), **stage.overrides())
        if input_bytes is not None:
            spec.input_bytes = float(input_bytes)
        return spec

    def _resolve_inputs(self, stage: PlanStage) -> Tuple[List[str], float]:
        """Upstream HDFS files this stage reads, after carryover selection."""
        namenode = self.cluster.dfs.namenode
        paths: List[str] = []
        total = 0.0
        for edge in stage.inputs:
            upstream = self.drivers[edge.source]
            files = sorted(upstream.output_files())
            sized = [(path, namenode.file_size(path)) for path in files]
            produced = float(sum(size for _, size in sized))
            if produced <= 0:
                raise RuntimeError(
                    f"{self.plan_id}: stage {stage.name!r} reads "
                    f"{edge.source!r}, which produced no bytes")
            target = edge.carryover * produced
            taken = 0.0
            for path, size in sized:
                if size <= 0:
                    continue
                paths.append(path)
                taken += size
                # File-granular selection: stop at the first sorted
                # prefix whose cumulative size reaches the fraction.
                if taken >= target - 1e-9:
                    break
            total += taken
        return paths, total

    # -- capture metadata ---------------------------------------------------------

    def stage_job_ids(self) -> List[str]:
        return [driver.spec.job_id for driver in self.drivers.values()]

    def plan_meta(self) -> Dict[str, Any]:
        """The ``meta.extra['plan']`` payload of a plan capture."""
        stages = []
        for stage in self._order:
            record = self.result.stage(stage.name)
            entry: Dict[str, Any] = {
                "name": stage.name,
                "kind": stage.kind,
                "status": record.status,
                "deps": stage.dep_names(),
                "carryover": {edge.source: edge.carryover
                              for edge in stage.inputs},
                "job_id": (record.job.job_id if record.job is not None
                           else self.stage_job_id(stage)),
            }
            if record.job is not None:
                job = record.job
                entry.update({
                    "submit_time": job.submit_time,
                    "finish_time": job.finish_time,
                    "completion_time": job.completion_time,
                    "input_bytes": job.input_bytes,
                    "shuffle_bytes": job.shuffle_bytes,
                    "output_bytes": job.output_bytes,
                    "num_maps": job.num_maps,
                    "num_reduces": job.num_reduces,
                    "rounds": len(job.rounds),
                })
            stages.append(entry)
        return {"name": self.plan.name,
                "plan_id": self.plan_id,
                "signature": self.result.signature,
                "params": dict(self.plan.params),
                "score_rule": self.plan.score_rule,
                "stages": stages}
