"""The MapReduce ApplicationMaster: one MR round end-to-end.

The AM is the engine's centrepiece.  It implements the YARN
:class:`~repro.yarn.resourcemanager.Application` protocol (container
demand + grant acceptance) and drives every task through the phases
that generate traffic:

map task:    [launch] -> [split read: HDFS-read flow unless node-local]
             -> [compute] -> [local spill] -> [umbilical notify]
reduce task: [launch] -> [shuffle: one fetch flow per completed map,
             <= parallel_copies concurrent] -> [merge] -> [reduce]
             -> [output write: replication-pipeline flows] -> [notify]

plus the AM's own overheads: jar localisation reads per node, AM-RM
heartbeats, container-launch RPCs, and the job-history write at commit.

Grant policy: pending maps always take a granted container before any
reducer does (Hadoop's AM does the same), which rules out the classic
reducer-starvation deadlock.  Map→container binding prefers node-local
splits, then rack-local, mirroring delay scheduling's steady state.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.capture.records import TrafficComponent
from repro.cluster import ports
from repro.cluster.config import HadoopConfig
from repro.cluster.topology import Host
from repro.hdfs.blocks import Block
from repro.hdfs.client import DfsClient
from repro.hdfs.datanode import DataNode
from repro.jobs.base import JobProfile, JobSpec
from repro.mapreduce import constants
from repro.mapreduce import counters as ctr
from repro.mapreduce.counters import JobCounters
from repro.mapreduce.result import RoundResult
from repro.net.backend import FlowRequest, TransportBackend
from repro.obs.trace import NULL_SPAN
from repro.simkit.core import Interrupt, Signal, Simulator
from repro.simkit.resources import Store
from repro.yarn.containers import Container, Resources
from repro.yarn.resourcemanager import Application, ResourceManager

_PENDING, _RUNNING, _DONE = "pending", "running", "done"


class _MapTask:
    __slots__ = ("index", "block", "size", "preferred", "state", "start_time",
                 "partitions", "attempts", "speculated", "output_bytes")

    def __init__(self, index: int, block: Optional[Block], size: float,
                 preferred: Sequence[Host]):
        self.index = index
        self.block = block
        self.size = size
        self.preferred = list(preferred)
        self.state = _PENDING
        self.start_time = 0.0
        self.partitions: Optional[np.ndarray] = None
        self.attempts = 0
        self.speculated = False
        self.output_bytes = 0.0


class _ReduceTask:
    __slots__ = ("index", "store", "state", "host", "claimed", "fetched_bytes",
                 "delivered", "fetchers", "preferred")

    def __init__(self, index: int, store: Store):
        self.index = index
        self.store = store
        self.state = _PENDING
        self.host: Optional[Host] = None
        # Pinned target host under placement_mode="keyed"; None
        # accepts any grant (the "grant" mode, and keyed recovery
        # after the pinned host died).
        self.preferred: Optional[Host] = None
        self.claimed = 0
        self.fetched_bytes = 0.0
        # Every (map host, bytes) ever delivered — replayed into a fresh
        # store when the reducer is re-executed after a node failure.
        self.delivered: list = []
        self.fetchers: list = []


class MRAppMaster(Application):
    """Runs one MapReduce round as a YARN application."""

    def __init__(self, sim: Simulator, net: TransportBackend, dfs: DfsClient,
                 rm: ResourceManager, config: HadoopConfig, spec: JobSpec,
                 input_paths: List[str], output_path: str,
                 rng: np.random.Generator, round_index: int = 0,
                 client_host: Optional[Host] = None,
                 node_speed: Optional[Dict[Host, float]] = None,
                 parent_span=None):
        self.sim = sim
        self.net = net
        self.dfs = dfs
        self.rm = rm
        self.config = config
        self.spec = spec
        self.profile: JobProfile = spec.profile
        self.input_paths = list(input_paths)
        self.output_path = output_path
        self.rng = rng
        self.round_index = round_index
        self.client_host = client_host
        self._node_speed = node_speed or {}
        self._tracer = sim.telemetry.tracer
        self._parent_span = parent_span
        self._round_span = NULL_SPAN
        self._map_stage_span = NULL_SPAN
        self._reduce_stage_span = NULL_SPAN

        self.app_id = f"{spec.job_id}-r{round_index:02d}"
        self.queue = spec.queue
        self.container_unit = Resources(1, 1024)
        self.done: Signal = sim.signal(name=f"{self.app_id}.done")
        self.result = RoundResult(app_id=self.app_id, round_index=round_index,
                                  submit_time=sim.now)

        self._am_granted = False
        self._am_ready = False
        self._am_container: Optional[Container] = None
        self.am_host: Optional[Host] = None
        # Keyed placement pins the AM container itself: the AM grant
        # otherwise lands on whichever node heartbeats first after job
        # submission, and submission time rides on the jar-staging
        # flows — timing a transport backend only approximates.  Drawn
        # here (before any task draws) so the stream layout is fixed.
        self._am_target: Optional[Host] = None
        if config.placement_mode == "keyed":
            workers = dfs.namenode.datanodes
            self._am_target = workers[int(rng.integers(len(workers)))]
        self._running = False
        self._localized_nodes: set = set()

        self._maps: List[_MapTask] = []
        self._map_queue: List[_MapTask] = []
        self._reduces: List[_ReduceTask] = []
        self._reduce_queue: List[_ReduceTask] = []
        self._container_tasks: Dict[int, tuple] = {}
        self._am_process = None
        self._map_phase_start = 0.0
        self._recovered_outputs: Dict[int, Host] = {}
        self.counters = JobCounters()
        self._completed_maps = 0
        self._completed_reduces = 0
        self._partition_weights: Optional[np.ndarray] = None
        self.num_reduces = self._effective_reducers()

    # -- sizing ---------------------------------------------------------------

    def _effective_reducers(self) -> int:
        if self.profile.map_only:
            return 0
        if self.spec.num_reducers is not None:
            return self.spec.num_reducers
        scaled = round(self.config.num_reducers * self.profile.reducers_scale)
        return max(1, scaled)

    def _build_map_tasks(self) -> None:
        if self.profile.is_generator:
            per_map = self.profile.generated_bytes_per_map
            count = self.spec.num_maps or max(1, math.ceil(self.spec.input_bytes / per_map))
            share = self.spec.input_bytes / count
            self._maps = [_MapTask(i, block=None, size=share, preferred=[])
                          for i in range(count)]
        else:
            index = 0
            for path in self.input_paths:
                for block in self.dfs.namenode.blocks_of(path):
                    replicas = self.dfs.namenode.locate(block).replicas
                    self._maps.append(
                        _MapTask(index, block=block, size=block.size, preferred=replicas))
                    index += 1
            if not self._maps:
                raise ValueError(f"{self.app_id}: no input blocks under {self.input_paths}")
        self._map_queue = list(self._maps)
        self.result.num_maps = len(self._maps)
        self.result.input_bytes = sum(task.size for task in self._maps)
        # Output-size jitter models data skew — a property of the
        # split, not of the attempt that processes it.  Drawn per task
        # in index order at build time, map-output (and therefore
        # shuffle and store) sizes are invariant to attempt timing:
        # every transport backend, speculative re-attempt and fetch
        # recovery sees the same bytes.
        self._size_jitters = [self._jitter() for _ in self._maps]

    def _build_reduce_tasks(self) -> None:
        self._reduces = [
            _ReduceTask(i, Store(self.sim, name=f"{self.app_id}.shuffle[{i}]"))
            for i in range(self.num_reduces)
        ]
        self._reduce_queue = list(self._reduces)
        self.result.num_reduces = self.num_reduces
        if self.num_reduces:
            self._partition_weights = self.profile.partition_weights(
                self.num_reduces, self.rng)
        if self.config.placement_mode == "keyed" and self.num_reduces:
            # Pin each reducer to a uniformly drawn worker, in index
            # order at build time.  Reducers have no data locality, so
            # YARN's heartbeat-order placement is effectively random
            # anyway; drawing it up front keeps the shuffle's endpoints
            # a function of (job, seed) alone rather than of grant
            # timing — which transport backends only approximate.
            workers = self.dfs.namenode.datanodes
            for task in self._reduces:
                task.preferred = workers[int(self.rng.integers(len(workers)))]

    # -- Application protocol ----------------------------------------------------

    def pending_count(self) -> int:
        if not self._am_granted:
            return 1
        if not self._am_ready:
            return 0
        pending = len(self._map_queue)
        if self._reduces_open():
            pending += len(self._reduce_queue)
        return pending

    def on_container_granted(self, container: Container) -> bool:
        if not self._am_granted:
            if self._am_target is not None and container.host is not self._am_target:
                return False
            self._am_granted = True
            self._am_container = container
            self.am_host = container.host
            self.result.am_host = container.host.name
            self._am_process = self.sim.process(self._run_am(),
                                                name=f"am[{self.app_id}]")
            return True
        if not self._am_ready:
            return False
        task = self._pick_map(container.host)
        if task is None and self._map_queue:
            # Maps pending but declined for locality (delay scheduling):
            # refuse the container; reducers must not consume it either.
            return False
        if task is not None:
            task.state = _RUNNING
            task.start_time = self.sim.now
            task.attempts += 1
            self.counters.increment(ctr.TOTAL_LAUNCHED_MAPS)
            self._launch_rpc(container.host)
            process = self.sim.process(self._run_map(task, container),
                                       name=f"map[{self.app_id}/{task.index}]")
            self._container_tasks[container.container_id] = ("map", task, process)
            return True
        if self._reduces_open() and self._reduce_queue:
            reduce_task = self._pick_reduce(container.host)
            if reduce_task is None:
                return False
            reduce_task.state = _RUNNING
            reduce_task.host = container.host
            if self._reduce_stage_span is NULL_SPAN:
                self._reduce_stage_span = self._tracer.start(
                    "stage", f"{self.app_id}.reduce", self.sim.now,
                    parent=self._round_span, tasks=self.num_reduces)
            self.counters.increment(ctr.TOTAL_LAUNCHED_REDUCES)
            self._launch_rpc(container.host)
            process = self.sim.process(
                self._run_reduce(reduce_task, container),
                name=f"reduce[{self.app_id}/{reduce_task.index}]")
            self._container_tasks[container.container_id] = (
                "reduce", reduce_task, process)
            return True
        return False

    def on_container_lost(self, container: Container) -> None:
        """A node failure killed one of our containers (YARN expiry path).

        Running tasks are aborted and re-queued; a lost AM container
        fails the whole round (no AM restart is modelled).  Completed
        map outputs are treated as durable — re-running finished maps
        on fetch failure is out of scope and documented in DESIGN.md.
        """
        self.result.lost_containers += 1
        self._tracer.event("container-lost", self.sim.now,
                           parent=self._round_span,
                           host=container.host.name)
        if container is self._am_container:
            self._fail_round()
            return
        entry = self._container_tasks.pop(container.container_id, None)
        if entry is None:
            return
        kind, task, process = entry
        process.interrupt("node failure")
        self.counters.increment(
            ctr.NUM_KILLED_MAPS if kind == "map" else ctr.NUM_KILLED_REDUCES)
        if kind == "map":
            if task.state == _RUNNING:
                task.state = _PENDING
                self._map_queue.append(task)
        else:
            for fetcher in task.fetchers:
                fetcher.interrupt("node failure")
            task.fetchers = []
            task.store = Store(self.sim, name=f"{self.app_id}.shuffle[{task.index}]")
            for item in task.delivered:
                task.store.put(item)
            task.claimed = 0
            task.fetched_bytes = 0.0
            task.state = _PENDING
            task.host = None
            # The pinned host just failed — let the re-execution take
            # any grant rather than starve on a dead node.
            task.preferred = None
            self._reduce_queue.append(task)

    def _fail_round(self) -> None:
        if self.done.fired:
            return
        self._running = False
        self.result.failed = True
        self.result.finish_time = self.sim.now
        self.result.counters = self.counters.to_dict()
        if self._am_process is not None and self._am_process.alive:
            self._am_process.interrupt("am container lost")
        self.rm.unregister_application(self.app_id)
        self._tracer.end(self._round_span, self.sim.now, failed=True)
        self.done.fire(self.result)

    def _pick_map(self, host: Host) -> Optional[_MapTask]:
        """Bind a pending map to the offered host.

        With ``delay_scheduling_s`` set, a host holding no local split
        is *declined* during the first wait window (and rack-local-only
        hosts during the doubled window), trading container grants for
        locality exactly as delay scheduling does.  Returning ``None``
        while maps are pending makes ``on_container_granted`` decline
        the container outright (no reducer may take it either, which
        rules out the reducers-starve-maps deadlock).
        """
        if not self._map_queue:
            return None
        if not self.config.locality_aware:
            return self._map_queue.pop(0)
        node_local = next((t for t in self._map_queue if host in t.preferred), None)
        if node_local is not None:
            self._map_queue.remove(node_local)
            return node_local
        wait = self.config.delay_scheduling_s
        elapsed = self.sim.now - self._map_phase_start
        if wait > 0 and elapsed < wait:
            return None  # keep waiting for a node-local opportunity
        rack_local = next(
            (t for t in self._map_queue
             if any(replica.rack == host.rack for replica in t.preferred)), None)
        if rack_local is not None:
            self._map_queue.remove(rack_local)
            return rack_local
        if wait > 0 and elapsed < 2.0 * wait:
            return None  # second tier: wait for at least rack-local
        return self._map_queue.pop(0)

    def _pick_reduce(self, host: Host) -> Optional[_ReduceTask]:
        """Bind a pending reduce to the offered host.

        "grant" placement takes the queue head regardless of host;
        "keyed" only accepts the host a task was pinned to (declining
        otherwise), so reducers wait for their own node's heartbeat and
        land identically under every transport backend.  A pinned host
        that is saturated merely delays the grant — the pin, and hence
        the shuffle endpoints, never moves.
        """
        if not self._reduce_queue:
            return None
        for task in self._reduce_queue:
            if task.preferred is None or task.preferred is host:
                self._reduce_queue.remove(task)
                return task
        return None

    def _reduces_open(self) -> bool:
        if not self.num_reduces:
            return False
        if self.config.slowstart <= 0:
            return True
        threshold = max(1, math.ceil(self.config.slowstart * len(self._maps)))
        return self._completed_maps >= threshold

    # -- AM lifecycle ---------------------------------------------------------------

    def _run_am(self):
        try:
            self._round_span = self._tracer.start(
                "round", self.app_id, self.sim.now, parent=self._parent_span,
                am_host=self.am_host.name)
            yield from self._localize(self.am_host)
            yield self.sim.timeout(constants.AM_STARTUP_S)
            self._register_with_rm()
            self._build_map_tasks()
            self._build_reduce_tasks()
            self.result.am_start_time = self.sim.now
            self._map_phase_start = self.sim.now
            self._map_stage_span = self._tracer.start(
                "stage", f"{self.app_id}.map", self.sim.now,
                parent=self._round_span, tasks=len(self._maps))
            self._am_ready = True
            self._running = True
            self.sim.process(self._heartbeat_loop(), name=f"am-hb[{self.app_id}]")
            yield self._all_done_signal()
            yield from self._commit()
        except Interrupt:
            return  # AM container lost; _fail_round already reported it

    def _all_done_signal(self) -> Signal:
        self._done_signal = self.sim.signal(name=f"{self.app_id}.tasks-done")
        self._check_all_done()
        return self._done_signal

    def _check_all_done(self) -> None:
        if not self._am_ready:
            return
        if (self._completed_maps >= len(self._maps)
                and self._completed_reduces >= self.num_reduces
                and not self._done_signal.fired):
            self._done_signal.fire(None)

    def _commit(self):
        history_writer = self.am_host
        yield from self.dfs.write_file(
            f"/history/{self.app_id}.jhist", constants.HISTORY_BYTES,
            history_writer, job_id=self.spec.job_id,
            parent_span=self._round_span)
        self._control_flow(self.am_host, self.rm.host, constants.AM_HEARTBEAT_BYTES,
                           "am-unregister", ports.RM_SCHEDULER)
        self.counters.increment(ctr.HDFS_BYTES_WRITTEN, constants.HISTORY_BYTES)
        self._running = False
        self.rm.release_container(self._am_container)
        self.rm.unregister_application(self.app_id)
        self.result.finish_time = self.sim.now
        self.result.counters = self.counters.to_dict()
        self._tracer.end(self._round_span, self.sim.now,
                         maps=len(self._maps), reduces=self.num_reduces)
        self.done.fire(self.result)

    def _register_with_rm(self) -> None:
        self._control_flow(self.am_host, self.rm.host, constants.AM_HEARTBEAT_BYTES,
                           "am-register", ports.RM_SCHEDULER)

    def _heartbeat_loop(self):
        while self._running:
            self._control_flow(self.am_host, self.rm.host,
                               constants.AM_HEARTBEAT_BYTES,
                               "am-heartbeat", ports.RM_SCHEDULER)
            if self.config.speculative:
                # Re-examine stragglers every beat: the slowest map is
                # often the *last* runner, after which no completion
                # event would ever trigger the check.
                self._maybe_speculate()
            yield self.sim.timeout(constants.AM_HEARTBEAT_S)

    # -- traffic helpers -----------------------------------------------------------

    def _control_flow(self, src: Host, dst: Host, size: int, service: str,
                      dst_port: int) -> None:
        if src == dst:
            return
        self.net.start_flow(src, dst, size, metadata={
            "component": TrafficComponent.CONTROL.value,
            "service": service,
            "job_id": self.spec.job_id,
            "src_port": ports.ephemeral_port(f"{service}-{self.app_id}-{src.name}"),
            "dst_port": dst_port,
        })

    def _launch_rpc(self, node: Host) -> None:
        self._control_flow(self.am_host, node, constants.LAUNCH_RPC_BYTES,
                           "container-launch", ports.NM_IPC)

    def _localize(self, node: Host):
        """First container on a node pulls the job jar from HDFS."""
        if node in self._localized_nodes:
            return
        self._localized_nodes.add(node)
        jar_path = f"/staging/{self.spec.job_id}/job.jar"
        if self.dfs.namenode.exists(jar_path):
            yield from self.dfs.read_file(jar_path, node, job_id=self.spec.job_id)
            self.counters.increment(ctr.HDFS_BYTES_READ, constants.JOB_JAR_BYTES)

    # -- map tasks -------------------------------------------------------------------

    def _run_map(self, task: _MapTask, container: Container):
        host = container.host
        span = self._tracer.start(
            "task", f"map[{task.index}]", self.sim.now,
            parent=self._map_stage_span, host=host.name,
            attempt=task.attempts)
        try:
            yield from self._localize(host)
            yield self.sim.timeout(constants.TASK_LAUNCH_S)
            datanode = self.dfs.datanodes.get(host)

            if self.profile.is_generator:
                yield from self._map_generate(task, host, span)
            else:
                yield from self._map_read_and_compute(task, host, datanode, span)
        except Interrupt:
            self._tracer.end(span, self.sim.now, interrupted=True)
            return  # killed by node failure; on_container_lost re-queued us

        self._control_flow(host, self.am_host, constants.UMBILICAL_BYTES,
                           "task-umbilical", ports.ephemeral_port(f"am-{self.app_id}"))
        self._container_tasks.pop(container.container_id, None)
        self._tracer.end(span, self.sim.now, output_bytes=task.output_bytes)
        self._on_map_complete(task, host, container)

    def _map_generate(self, task: _MapTask, host: Host, span=None):
        compute = self._compute_time(task.size, self.profile.map_cpu_rate, host)
        yield self.sim.timeout(compute)
        output = task.size * self.profile.map_selectivity
        task.output_bytes = output
        if output >= 1:
            yield from self.dfs.write_file(
                f"{self.output_path}/part-m-{task.index:05d}", int(output), host,
                job_id=self.spec.job_id,
                replication=self.profile.output_replication or self.config.replication,
                parent_span=span)
            self.result.output_bytes += int(output)
            self.counters.increment(ctr.HDFS_BYTES_WRITTEN, int(output))

    def _map_read_and_compute(self, task: _MapTask, host: Host,
                              datanode: Optional[DataNode], span=None):
        if task.block is not None and task.block.size > 0:
            served = yield from self.dfs.read_block(task.block, host,
                                                    job_id=self.spec.job_id,
                                                    parent_span=span)
            self._count_locality(served, host, task)
            self.counters.increment(ctr.HDFS_BYTES_READ, task.block.size)
        compute = self._compute_time(task.size, self.profile.map_cpu_rate, host)
        yield self.sim.timeout(compute)
        output = (task.size * self.profile.map_selectivity
                  * self._size_jitters[task.index])
        task.output_bytes = output
        if self.profile.map_only or self.num_reduces == 0:
            # Zero-reducer jobs write map output straight to HDFS.
            if output >= 1:
                yield from self.dfs.write_file(
                    f"{self.output_path}/part-m-{task.index:05d}", int(output), host,
                    job_id=self.spec.job_id,
                    replication=self.profile.output_replication or self.config.replication,
                    parent_span=span)
                self.result.output_bytes += int(output)
                self.counters.increment(ctr.HDFS_BYTES_WRITTEN, int(output))
        else:
            # Map-output compression shrinks what is spilled and shuffled
            # (the "materialized" bytes); logical output is unchanged.
            materialized = output
            if self.config.compress_map_output:
                materialized = output * self.config.compression_ratio
            if datanode is not None and materialized > 0:
                yield self.sim.timeout(materialized / datanode.disk_write_rate)
                self.counters.increment(ctr.FILE_BYTES_WRITTEN, materialized)
            task.partitions = materialized * self._partition_weights

    def _count_locality(self, served: Host, reader: Host, task: _MapTask) -> None:
        if task.state == _DONE:
            return  # speculative loser; original already counted
        if served == reader:
            self.result.node_local_reads += 1
            self.counters.increment(ctr.DATA_LOCAL_MAPS)
        elif served.rack == reader.rack:
            self.result.rack_local_reads += 1
            self.counters.increment(ctr.RACK_LOCAL_MAPS)
        else:
            self.result.remote_reads += 1
            self.counters.increment(ctr.OTHER_LOCAL_MAPS)

    def _on_map_complete(self, task: _MapTask, host: Host,
                         container: Container) -> None:
        first_completion = task.state != _DONE
        if first_completion:
            task.state = _DONE
            self._completed_maps += 1
            self.counters.increment(ctr.MAP_INPUT_BYTES, task.size)
            self.counters.increment(ctr.MAP_OUTPUT_BYTES, task.output_bytes)
            self.result.map_durations.append(self.sim.now - task.start_time)
            if task.partitions is not None:
                output = float(task.partitions.sum())
                self.result.map_output_bytes += output
                for reduce_task in self._reduces:
                    item = (host, float(task.partitions[reduce_task.index]), task)
                    reduce_task.store.put(item)
                    reduce_task.delivered.append(item)
            if self._completed_maps == len(self._maps):
                self.result.maps_done_time = self.sim.now
                self._tracer.end(self._map_stage_span, self.sim.now)
            self._maybe_speculate()
        self.rm.release_container(container)
        self._check_all_done()

    def _maybe_speculate(self) -> None:
        """Duplicate the slowest straggler near the end of the map phase."""
        if not self.config.speculative or self._map_queue:
            return
        if self._completed_maps < 0.75 * len(self._maps):
            return
        durations = self.result.map_durations
        if not durations:
            return
        mean = sum(durations) / len(durations)
        for task in self._maps:
            if (task.state == _RUNNING and not task.speculated
                    and self.sim.now - task.start_time > 2.0 * mean):
                task.speculated = True
                self.result.speculative_attempts += 1
                self._tracer.event("speculate", self.sim.now,
                                   parent=self._map_stage_span,
                                   task=task.index)
                self._map_queue.append(task)

    # -- reduce tasks -----------------------------------------------------------------

    def _run_reduce(self, task: _ReduceTask, container: Container):
        host = container.host
        span = self._tracer.start(
            "task", f"reduce[{task.index}]", self.sim.now,
            parent=self._reduce_stage_span, host=host.name)
        try:
            yield from self._localize(host)
            yield self.sim.timeout(constants.TASK_LAUNCH_S)
            started = self.sim.now

            copies = min(self.config.shuffle_parallel_copies, len(self._maps))
            burst = self._claim_shuffle_wave(task, host, span, copies)
            task.fetchers = [
                self.sim.process(
                    self._fetcher(task, host, span,
                                  first=burst[i] if i < len(burst) else None),
                    name=f"fetch[{self.app_id}/{task.index}/{i}]")
                for i in range(copies)
            ]
            yield self.sim.all_of(task.fetchers)
            task.fetchers = []

            total = task.fetched_bytes
            logical = total
            if self.config.compress_map_output:
                logical = total / self.config.compression_ratio
            if total > 0:
                yield self.sim.timeout(logical / self.profile.merge_rate)
                yield self.sim.timeout(self._compute_time(
                    logical, self.profile.reduce_cpu_rate, host))
            # A re-executed reducer overwrites its predecessor's output
            # (the failed attempt never committed).
            output_file = f"{self.output_path}/part-r-{task.index:05d}"
            if self.dfs.namenode.exists(output_file):
                self.dfs.namenode.delete_file(output_file)
            output = logical * self.profile.reduce_selectivity
            if output >= 1:
                yield from self.dfs.write_file(
                    output_file, int(output), host,
                    job_id=self.spec.job_id,
                    replication=self.profile.output_replication or self.config.replication,
                    parent_span=span)
                self.result.output_bytes += int(output)
                self.counters.increment(ctr.HDFS_BYTES_WRITTEN, int(output))
        except Interrupt:
            self._tracer.end(span, self.sim.now, interrupted=True)
            return  # killed by node failure; on_container_lost re-queued us
        self._control_flow(host, self.am_host, constants.UMBILICAL_BYTES,
                           "task-umbilical", ports.ephemeral_port(f"am-{self.app_id}"))
        self._container_tasks.pop(container.container_id, None)
        task.state = _DONE
        self.counters.increment(ctr.REDUCE_SHUFFLE_BYTES, total)
        self.counters.increment(ctr.REDUCE_INPUT_BYTES, total)
        self.counters.increment(ctr.REDUCE_OUTPUT_BYTES, output)
        self._completed_reduces += 1
        self.result.reduce_durations.append(self.sim.now - started)
        self._tracer.end(span, self.sim.now, shuffle_bytes=total)
        if self._completed_reduces == self.num_reduces:
            self._tracer.end(self._reduce_stage_span, self.sim.now)
        self.rm.release_container(container)
        self._check_all_done()

    def _claim_shuffle_wave(self, task: _ReduceTask, host: Host, span,
                            copies: int):
        """Claim the map outputs already queued and admit their fetch
        flows as one batched wave — the shuffle's slow-start burst.

        A reducer launching after several maps committed used to pay
        one admission (path resolution + rate recompute request) per
        parallel-copy slot; here the whole opening wave goes through
        ``start_flows`` in a single call.  The wave stops early at a
        dead-host item (recovery must yield, so the fetcher loop owns
        it) and at the claim budget; zero-byte outputs are claimed but
        emit no flow, exactly as the fetcher loop would.  Returns the
        admitted ``(flow, span)`` pairs, one per fetcher slot.
        """
        store = task.store
        requests: list = []
        fetch_spans: list = []
        while (len(requests) < copies and task.claimed < len(self._maps)
               and len(store)):
            src_host, size, _map_task = store.peek()
            if size >= 1 and self.dfs.namenode.is_dead(src_host):
                break
            store.get()  # items are queued, so this claim is synchronous
            task.claimed += 1
            task.fetched_bytes += size
            self.result.shuffle_bytes += size
            if size < 1:
                continue
            fetch_span = NULL_SPAN
            if self._tracer.enabled:
                fetch_span = self._tracer.start(
                    "fetch", f"fetch[{task.index}<-{src_host.name}]",
                    self.sim.now, parent=span, src=src_host.name,
                    size=size)
            datanode = self.dfs.datanodes.get(src_host)
            requests.append(FlowRequest(
                src_host, host, size,
                max_rate=datanode.disk_read_rate if datanode else None,
                metadata={
                    "component": TrafficComponent.SHUFFLE.value,
                    "service": "shuffle-fetch",
                    "job_id": self.spec.job_id,
                    "src_port": ports.SHUFFLE_HANDLER,
                    "dst_port": ports.ephemeral_port(
                        f"shuffle-{self.app_id}-{task.index}-{src_host.name}"),
                }, parent_span=fetch_span))
            fetch_spans.append(fetch_span)
        flows = self.net.start_flows(requests) if requests else []
        return list(zip(flows, fetch_spans))

    def _fetcher(self, task: _ReduceTask, host: Host, span=None, first=None):
        """One parallel-copy slot: claims map outputs and fetches them.

        ``first`` is this slot's share of the batched slow-start wave:
        an already-admitted ``(flow, span)`` pair to await before
        falling back to the one-at-a-time claim loop.
        """
        try:
            if first is not None:
                flow, fetch_span = first
                yield flow.done
                self._tracer.end(fetch_span, self.sim.now)
            yield from self._fetch_loop(task, host, span)
        except Interrupt:
            return  # reducer re-executed elsewhere; a fresh store replays

    def _fetch_loop(self, task: _ReduceTask, host: Host, span=None):
        while task.claimed < len(self._maps):
            task.claimed += 1
            src_host, size, map_task = yield task.store.get()
            if size >= 1 and self.dfs.namenode.is_dead(src_host):
                # Fetch failure: the serving node died after the map
                # committed.  Hadoop re-runs the map attempt; we model
                # the recovery — re-read the split from a live replica
                # on a fresh node, recompute, then fetch from there.
                src_host = yield from self._recover_map_output(map_task, src_host)
                if src_host is None:
                    continue  # split unrecoverable: data lost
            task.fetched_bytes += size
            self.result.shuffle_bytes += size
            if size < 1:
                continue
            fetch_span = NULL_SPAN
            if self._tracer.enabled:
                fetch_span = self._tracer.start(
                    "fetch", f"fetch[{task.index}<-{src_host.name}]",
                    self.sim.now, parent=span, src=src_host.name,
                    size=size)
            datanode = self.dfs.datanodes.get(src_host)
            flow = self.net.start_flow(
                src_host, host, size,
                max_rate=datanode.disk_read_rate if datanode else None,
                metadata={
                    "component": TrafficComponent.SHUFFLE.value,
                    "service": "shuffle-fetch",
                    "job_id": self.spec.job_id,
                    "src_port": ports.SHUFFLE_HANDLER,
                    "dst_port": ports.ephemeral_port(
                        f"shuffle-{self.app_id}-{task.index}-{src_host.name}"),
                }, parent_span=fetch_span)
            yield flow.done
            self._tracer.end(fetch_span, self.sim.now)

    def _recover_map_output(self, map_task: Optional[_MapTask],
                            dead_host: Host):
        """Re-create a dead node's map output on a live node.

        Memoised per map task — the first failing fetch pays for the
        recovery and later fetches reuse it (concurrent misses may race
        and duplicate the work, bounded by the reducer count, exactly
        like duplicate recovery attempts on a real cluster).  Returns
        the recovery host, or ``None`` when the input split is gone too.
        """
        if map_task is None:
            return None
        cached = self._recovered_outputs.get(map_task.index)
        if cached is not None:
            return cached
        live = self.dfs.namenode.live_datanodes
        if not live:
            return None
        recovery_host = live[int(self.rng.integers(len(live)))]
        if map_task.block is not None and map_task.block.size > 0:
            from repro.hdfs.namenode import BlockLostError

            try:
                yield from self.dfs.read_block(map_task.block, recovery_host,
                                               job_id=self.spec.job_id)
            except BlockLostError:
                return None
        yield self.sim.timeout(self._compute_time(
            map_task.size, self.profile.map_cpu_rate, recovery_host))
        self.result.fetch_recoveries += 1
        self._recovered_outputs[map_task.index] = recovery_host
        self._tracer.event("fetch-recovery", self.sim.now,
                           parent=self._round_span, task=map_task.index,
                           host=recovery_host.name)
        return recovery_host

    # -- misc --------------------------------------------------------------------------

    def _compute_time(self, data_bytes: float, rate: float, host: Host) -> float:
        """A compute phase's duration on ``host``.

        Combines per-task lognormal jitter, the host's speed factor
        (heterogeneous clusters) and transient straggler events — the
        tail speculative execution is designed to cut.
        """
        duration = data_bytes / rate * self._jitter()
        speed = self._node_speed.get(host, 1.0)
        if speed > 0:
            duration /= speed
        if (self.config.straggler_prob > 0
                and float(self.rng.random()) < self.config.straggler_prob):
            duration *= self.config.straggler_slowdown
        return duration

    def _jitter(self) -> float:
        sigma = self.profile.map_jitter_sigma
        if sigma <= 0:
            return 1.0
        # Mean-1 lognormal so jitter perturbs but does not bias volumes.
        return float(self.rng.lognormal(mean=-0.5 * sigma * sigma, sigma=sigma))
