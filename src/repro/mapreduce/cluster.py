"""HadoopCluster: the fully assembled simulated deployment.

Wires together one master host (NameNode + ResourceManager) and N
worker hosts (DataNode + NodeManager each) over a flow-level network,
with a capture collector attached — the simulated counterpart of the
paper's instrumented testbed.

Typical use::

    cluster = HadoopCluster(ClusterSpec(num_nodes=16), HadoopConfig(), seed=1)
    results, traces = cluster.run([make_job("terasort", input_gb=2.0)])
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.capture.collector import FlowCollector
from repro.capture.records import CaptureMeta, JobTrace
from repro.cluster.config import ClusterSpec, HadoopConfig
from repro.cluster.topology import Host, Topology, build_topology
from repro.hdfs.client import DfsClient
from repro.hdfs.datanode import DataNode
from repro.hdfs.namenode import NameNode
from repro.hdfs.placement import PlacementPolicy
from repro.jobs.base import JobSpec
from repro.jobs.plan import WorkloadPlan
from repro.mapreduce import constants
from repro.mapreduce.driver import JobDriver, PlanExecutor
from repro.mapreduce.result import JobResult, PlanResult
from repro.net.backend import make_backend
from repro.obs.probes import ClusterProbes
from repro.obs.telemetry import Telemetry
from repro.simkit import RngRegistry, Simulator
from repro.yarn.containers import Resources
from repro.yarn.nodemanager import NodeManager
from repro.yarn.resourcemanager import ResourceManager
from repro.yarn.schedulers import make_scheduler


class HadoopCluster:
    """A simulated Hadoop deployment ready to run jobs."""

    def __init__(self, spec: Optional[ClusterSpec] = None,
                 config: Optional[HadoopConfig] = None, seed: int = 0,
                 queue_capacities: Optional[Dict[str, float]] = None,
                 placement_policy: Optional[PlacementPolicy] = None,
                 telemetry: Optional[Telemetry] = None):
        self.spec = spec or ClusterSpec()
        self.config = config or HadoopConfig()
        self.seed = seed
        self.telemetry = telemetry if telemetry is not None else Telemetry.disabled()
        self.sim = Simulator(telemetry=self.telemetry)
        self.rng = RngRegistry(seed)

        # The master is the *last* host so the N workers keep balanced
        # racks (h000..h00N-1); with N a rack multiple the master sits
        # alone behind its own ToR, like a dedicated master node.
        self.topology: Topology = build_topology(
            self.spec.topology,
            num_hosts=self.spec.num_nodes + 1,
            hosts_per_rack=self.spec.hosts_per_rack,
            host_gbps=self.spec.host_gbps,
            oversubscription=self.spec.oversubscription)
        self.master: Host = self.topology.hosts[-1]
        self.workers: List[Host] = self.topology.hosts[:-1]

        self.net = make_backend(self.spec.backend, self.sim, self.topology,
                                hop_latency=self.spec.hop_latency_s,
                                engine=self.spec.engine)
        self.collector = FlowCollector(self.net)

        self.namenode = NameNode(self.master, self.workers,
                                 policy=placement_policy,
                                 rng=self.rng.stream("placement"),
                                 telemetry=self.telemetry,
                                 seed=seed)
        self.datanodes: Dict[Host, DataNode] = {
            host: DataNode(self.sim, self.net, host, self.master,
                           self.spec.disk_read_rate, self.spec.disk_write_rate,
                           heartbeat_interval=self.config.dn_heartbeat_s,
                           heartbeat_bytes=self.config.heartbeat_bytes)
            for host in self.workers
        }
        self.dfs = DfsClient(self.sim, self.net, self.namenode,
                             self.datanodes, self.config)

        scheduler = make_scheduler(self.config.scheduler, queue_capacities)
        self.rm = ResourceManager(self.sim, self.net, self.master, scheduler)
        per_node = Resources(self.spec.containers_per_node,
                             1024 * self.spec.containers_per_node)
        interval = self.config.nm_heartbeat_s
        self.nodemanagers: List[NodeManager] = [
            NodeManager(self.sim, self.net, host, self.rm, per_node,
                        heartbeat_interval=interval,
                        phase=interval * index / max(len(self.workers), 1),
                        heartbeat_bytes=self.config.heartbeat_bytes)
            for index, host in enumerate(self.workers)
        ]
        # Heterogeneity: mean-1 lognormal per-node compute speed factors.
        sigma = self.spec.node_speed_sigma
        if sigma > 0:
            speed_rng = self.rng.stream("node-speed")
            self.node_speed: Dict[Host, float] = {
                host: float(speed_rng.lognormal(-0.5 * sigma * sigma, sigma))
                for host in self.workers
            }
        else:
            self.node_speed = {host: 1.0 for host in self.workers}
        self._drivers: List[JobDriver] = []
        self._started = False
        self.probes: Optional[ClusterProbes] = None

    # -- daemon lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Start NodeManager/DataNode heartbeat loops (and probes)."""
        if self._started:
            return
        self._started = True
        for node in self.nodemanagers:
            node.start_heartbeats()
        for datanode in self.datanodes.values():
            datanode.start_heartbeats()
        if self.telemetry.enabled and self.telemetry.probe_interval > 0:
            if self.probes is None:
                self.probes = ClusterProbes(self, self.telemetry.probe_interval,
                                            log=self.telemetry.probes)
            self.probes.start()

    def stop(self) -> None:
        """Stop heartbeats (and probes) so the event queue can drain."""
        self._started = False
        for node in self.nodemanagers:
            node.stop_heartbeats()
        for datanode in self.datanodes.values():
            datanode.stop_heartbeats()
        if self.probes is not None:
            self.probes.stop()

    # -- job execution ----------------------------------------------------------------

    def preload_input(self, spec: JobSpec) -> None:
        """Install a job's input data without generating traffic."""
        if spec.profile.is_generator:
            return
        if not self.namenode.exists(spec.input_path):
            self.dfs.preload_file(spec.input_path, int(spec.input_bytes))

    def stage_job_resources(self, spec: JobSpec, client: Host):
        """Generator: upload job.jar/conf to the staging area (with traffic)."""
        jar_path = f"/staging/{spec.job_id}/job.jar"
        if self.namenode.exists(jar_path):
            return
        replication = min(constants.JAR_STAGING_REPLICATION, len(self.workers))
        yield from self.dfs.write_file(jar_path, constants.JOB_JAR_BYTES, client,
                                       job_id=spec.job_id, replication=replication)

    def submit_job(self, spec: JobSpec, client_host: Optional[Host] = None) -> JobDriver:
        """Preload input and start a driver for ``spec``.  Returns the driver."""
        self.preload_input(spec)
        driver = JobDriver(self, spec, client_host=client_host)
        self._drivers.append(driver)
        return driver

    def submit_plan(self, plan: WorkloadPlan,
                    client_host: Optional[Host] = None,
                    plan_id: Optional[str] = None) -> PlanExecutor:
        """Start an executor for ``plan``.  Returns the executor."""
        executor = PlanExecutor(self, plan, client_host=client_host,
                                plan_id=plan_id)
        self._drivers.extend(executor.drivers.values())
        return executor

    def run_plan(self, plan: WorkloadPlan, plan_id: Optional[str] = None,
                 ) -> Tuple[PlanResult, JobTrace]:
        """Run one workload plan to completion; result + combined trace.

        Mirrors :meth:`run` for a single plan: daemons start, a
        controller process submits the plan at t=0, everything stops
        when the last stage finishes.  The returned trace covers all
        stages (see :meth:`trace_for_plan`).
        """
        self.start()
        holder: List[PlanExecutor] = []

        def controller():
            executor = self.submit_plan(plan, plan_id=plan_id)
            holder.append(executor)
            yield executor.done
            self.stop()

        self.sim.process(controller(), name="cluster-controller")
        self.sim.run()
        executor = holder[0]
        return executor.result, self.trace_for_plan(executor)

    def run(self, specs: Sequence[JobSpec],
            arrival_times: Optional[Sequence[float]] = None,
            ) -> Tuple[List[JobResult], List[JobTrace]]:
        """Run a batch of jobs to completion and return results + traces.

        ``arrival_times`` staggers submissions (defaults to all at t=0,
        the paper's one-job-at-a-time capture setup when one spec is
        passed).  Stops cluster daemons once every job finishes and
        drains the event queue.
        """
        if arrival_times is None:
            arrival_times = [0.0] * len(specs)
        if len(arrival_times) != len(specs):
            raise ValueError("arrival_times must match specs")
        self.start()
        drivers: List[JobDriver] = []

        def controller():
            clock = 0.0
            pending = sorted(zip(arrival_times, range(len(specs))))
            for when, index in pending:
                if when > clock:
                    yield self.sim.timeout(when - clock)
                    clock = when
                drivers.append(self.submit_job(specs[index]))
            yield self.sim.all_of([driver.done for driver in drivers])
            self.stop()

        self.sim.process(controller(), name="cluster-controller")
        self.sim.run()
        results = [driver.result for driver in drivers]
        return results, [self.trace_for(driver) for driver in drivers]

    # -- performance ----------------------------------------------------------------------

    def perf_report(self) -> Dict[str, float]:
        """Substrate performance counters for the whole run.

        Combines the event kernel's counters (events fired/cancelled,
        heap compactions) with the fluid network's (rate recomputations,
        flushes, coalesced updates, cumulative allocator time).  The
        substrate benchmarks print this so the BENCH trajectory can
        track engine efficiency, not just wall time.
        """
        report: Dict[str, float] = {}
        for key, value in self.sim.perf.items():
            report[f"sim.{key}"] = value
        for key, value in self.net.perf.items():
            report[f"net.{key}"] = value
        return report

    # -- capture extraction ---------------------------------------------------------------

    def trace_for(self, driver: JobDriver) -> JobTrace:
        """Cut the collector's capture into one job's trace."""
        result = driver.result
        meta = CaptureMeta(
            job_id=result.job_id,
            job_kind=result.kind,
            input_bytes=result.input_bytes,
            cluster=self.spec.to_dict(),
            hadoop=self.config.to_dict(),
            seed=self.seed,
            submit_time=result.submit_time,
            finish_time=result.finish_time,
            num_maps=result.num_maps,
            num_reduces=result.num_reduces,
            extra={"rounds": len(result.rounds),
                   "completion_time": result.completion_time},
        )
        return self.collector.trace_for_job(meta)

    def trace_for_plan(self, executor: PlanExecutor) -> JobTrace:
        """Cut the collector's capture into one plan's combined trace.

        Trivial plans delegate to :meth:`trace_for` on the single
        wrapped driver, so their trace is byte-identical to a legacy
        single-job capture.  Declarative plans get one trace spanning
        every stage, with the per-stage breakdown (job ids, windows,
        volumes, dependency edges) recorded under ``meta.extra['plan']``
        so the analysis layer can attribute flows back to stages.
        """
        if executor.plan.is_trivial:
            (driver,) = executor.drivers.values()
            return self.trace_for(driver)
        result = executor.result
        meta = CaptureMeta(
            job_id=result.plan_id,
            job_kind=result.kind,
            input_bytes=result.external_input_bytes,
            cluster=self.spec.to_dict(),
            hadoop=self.config.to_dict(),
            seed=self.seed,
            submit_time=result.submit_time,
            finish_time=result.finish_time,
            num_maps=result.num_maps,
            num_reduces=result.num_reduces,
            extra={"rounds": len(result.rounds),
                   "completion_time": result.completion_time,
                   "plan": executor.plan_meta()},
        )
        flows = self.collector.flows_for_jobs(
            executor.stage_job_ids(), meta.submit_time, meta.finish_time)
        return JobTrace(meta=meta, flows=flows)
