"""Event loop, events, signals and generator-based processes.

The kernel is intentionally close to the classic event-list design:
a binary heap of ``(time, priority, seq)``-ordered events, each carrying
a callback.  On top of that sits a small coroutine layer: a
:class:`Process` wraps a generator that ``yield``s *waitables*
(:class:`Timeout`, :class:`Signal`, or another :class:`Process`) and is
resumed with the waitable's payload when it fires.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from repro.obs.telemetry import Telemetry


class SimulationError(RuntimeError):
    """Raised for kernel misuse (scheduling in the past, re-firing, ...)."""


class Interrupt(Exception):
    """Thrown into a process that is interrupted while waiting.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A scheduled callback.

    Events are created through :meth:`Simulator.schedule` /
    :meth:`Simulator.schedule_at` and may be cancelled before they fire.
    Cancellation is O(1): the event is flagged and skipped when popped.
    The owning simulator keeps live/cancelled counts so the heap can be
    compacted lazily once cancelled entries dominate it.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled",
                 "sim", "popped")

    def __init__(self, time: float, priority: int, seq: int,
                 callback: Callable[..., Any], args: Tuple[Any, ...],
                 sim: Optional["Simulator"] = None):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.sim = sim
        self.popped = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.sim is not None and not self.popped:
            self.sim._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (other.time, other.priority, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, prio={self.priority}, seq={self.seq}, {state})"


class _Waitable:
    """Base class for things a process may ``yield`` on."""

    def _add_waiter(self, process: "Process") -> None:
        raise NotImplementedError

    def _remove_waiter(self, process: "Process") -> None:
        raise NotImplementedError


class Timeout(_Waitable):
    """Resume the waiting process after a fixed delay."""

    __slots__ = ("sim", "delay", "value", "_event", "_process")

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        self.sim = sim
        self.delay = delay
        self.value = value
        self._event: Optional[Event] = None
        self._process: Optional[Process] = None

    def _add_waiter(self, process: "Process") -> None:
        self._process = process
        self._event = self.sim.schedule(self.delay, self._fire)

    def _remove_waiter(self, process: "Process") -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None
        self._process = None

    def _fire(self) -> None:
        process, self._process = self._process, None
        self._event = None
        if process is not None:
            process._resume(self.value)


class Signal(_Waitable):
    """A one-shot broadcast event that processes can wait on.

    ``fire(payload)`` wakes every waiter with ``payload``; waiters that
    arrive after the signal fired resume immediately (the signal stays
    "set", like an asyncio future).  ``fail(exc)`` wakes waiters by
    throwing ``exc`` into them.
    """

    __slots__ = ("sim", "name", "_fired", "_payload", "_exception", "_waiters", "_callbacks")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self._fired = False
        self._payload: Any = None
        self._exception: Optional[BaseException] = None
        # Waiter/callback lists are allocated on first registration:
        # most signals in a large run (flow completions nobody waits
        # on) fire with zero waiters, so the two empty lists would be
        # pure allocation overhead.
        self._waiters: Optional[List[Process]] = None
        self._callbacks: Optional[List[Callable[[Any], None]]] = None

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def payload(self) -> Any:
        return self._payload

    def on_fire(self, callback: Callable[[Any], None]) -> None:
        """Register a plain callback invoked with the payload on fire."""
        if self._fired:
            self.sim.schedule(0.0, callback, self._payload)
        elif self._callbacks is None:
            self._callbacks = [callback]
        else:
            self._callbacks.append(callback)

    def fire(self, payload: Any = None) -> None:
        if self._fired:
            raise SimulationError(f"signal {self.name!r} fired twice")
        self._fired = True
        self._payload = payload
        waiters, self._waiters = self._waiters, None
        callbacks, self._callbacks = self._callbacks, None
        if waiters:
            for process in waiters:
                self.sim.schedule(0.0, process._resume, payload)
        if callbacks:
            for callback in callbacks:
                self.sim.schedule(0.0, callback, payload)

    def fail(self, exception: BaseException) -> None:
        """Fire the signal exceptionally: waiters get ``exception`` thrown."""
        if self._fired:
            raise SimulationError(f"signal {self.name!r} fired twice")
        self._fired = True
        self._exception = exception
        waiters, self._waiters = self._waiters, None
        self._callbacks = None
        if waiters:
            for process in waiters:
                self.sim.schedule(0.0, process._throw, exception)

    def _add_waiter(self, process: "Process") -> None:
        if self._fired:
            if self._exception is not None:
                self.sim.schedule(0.0, process._throw, self._exception)
            else:
                self.sim.schedule(0.0, process._resume, self._payload)
        elif self._waiters is None:
            self._waiters = [process]
        else:
            self._waiters.append(process)

    def _remove_waiter(self, process: "Process") -> None:
        if self._waiters and process in self._waiters:
            self._waiters.remove(process)


class Process(_Waitable):
    """A generator-based coroutine driven by the simulator.

    The generator yields waitables; when one fires the process is
    resumed with its payload.  A finished process is itself a waitable
    whose payload is the generator's return value, so processes can
    ``yield`` on each other (join semantics).
    """

    __slots__ = ("sim", "name", "_generator", "_waiting_on", "_done_signal", "_alive")

    def __init__(self, sim: "Simulator", generator: Generator[Any, Any, Any], name: str = ""):
        self.sim = sim
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._waiting_on: Optional[_Waitable] = None
        self._done_signal = Signal(sim, name=f"{self.name}.done")
        self._alive = True
        sim.schedule(0.0, self._resume, None)

    @property
    def alive(self) -> bool:
        return self._alive

    @property
    def result(self) -> Any:
        """Return value of the generator (valid once not ``alive``)."""
        return self._done_signal.payload

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self._alive:
            return
        self._detach()
        self.sim.schedule(0.0, self._throw, Interrupt(cause))

    def _detach(self) -> None:
        if self._waiting_on is not None:
            self._waiting_on._remove_waiter(self)
            self._waiting_on = None

    def _resume(self, value: Any) -> None:
        if not self._alive:
            return
        self._waiting_on = None
        try:
            target = self._generator.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        self._wait_on(target)

    def _throw(self, exception: BaseException) -> None:
        if not self._alive:
            return
        self._waiting_on = None
        try:
            target = self._generator.throw(exception)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if not isinstance(target, _Waitable):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; expected Timeout/Signal/Process")
        self._waiting_on = target
        target._add_waiter(self)

    def _finish(self, value: Any) -> None:
        self._alive = False
        self._done_signal.fire(value)

    # Waitable protocol: joining a process waits for its completion.
    def _add_waiter(self, process: "Process") -> None:
        self._done_signal._add_waiter(process)

    def _remove_waiter(self, process: "Process") -> None:
        self._done_signal._remove_waiter(process)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self._alive else "done"
        return f"Process({self.name!r}, {state})"


class Simulator:
    """Deterministic discrete-event simulator.

    >>> sim = Simulator()
    >>> out = []
    >>> def worker(sim):
    ...     yield sim.timeout(1.5)
    ...     out.append(sim.now)
    >>> _ = sim.process(worker(sim))
    >>> sim.run()
    >>> out
    [1.5]
    """

    # Lazy heap compaction: cancelled events are skipped when popped,
    # but a producer that cancels and reschedules on every update (the
    # flow network's completion horizon) can fill the heap with dead
    # entries.  Once more than half the heap is cancelled (and it is
    # big enough to matter) the queue is rebuilt without them.
    _COMPACT_MIN_SIZE = 64

    def __init__(self, telemetry: Optional[Telemetry] = None):
        self._queue: List[Event] = []
        self._now = 0.0
        self._seq = itertools.count()
        self._running = False
        self._pending = 0        # live (not-yet-cancelled) events in the queue
        self._cancelled = 0      # cancelled events still sitting in the queue
        # Kernel counters live on the telemetry registry (hot-path
        # mutation is a plain attribute add on the Counter object); the
        # old ``events_fired`` attributes survive as properties.
        self.telemetry = telemetry if telemetry is not None else Telemetry.disabled()
        registry = self.telemetry.registry
        self._c_fired = registry.counter("sim.events_fired")
        self._c_cancelled = registry.counter("sim.events_cancelled")
        self._c_compactions = registry.counter("sim.heap_compactions")
        registry.gauge("sim.heap_size", fn=lambda: len(self._queue))
        registry.gauge("sim.pending", fn=self.pending)

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Events executed so far (compatibility view of the registry)."""
        return int(self._c_fired.value)

    @property
    def events_cancelled(self) -> int:
        return int(self._c_cancelled.value)

    @property
    def heap_compactions(self) -> int:
        return int(self._c_compactions.value)

    @property
    def perf(self) -> dict:
        """Kernel performance counters (cumulative since construction)."""
        return {
            "events_fired": self.events_fired,
            "events_cancelled": self.events_cancelled,
            "heap_compactions": self.heap_compactions,
            "heap_size": len(self._queue),
            "pending": self._pending,
        }

    # -- scheduling ---------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any,
                 priority: int = 0) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        return self.schedule_at(self._now + delay, callback, *args, priority=priority)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any,
                    priority: int = 0) -> Event:
        """Schedule ``callback(*args)`` at absolute simulation ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} (now t={self._now}): time travel")
        event = Event(time, priority, next(self._seq), callback, args, sim=self)
        heapq.heappush(self._queue, event)
        self._pending += 1
        return event

    def _note_cancelled(self) -> None:
        """Bookkeeping when a queued event is cancelled (called by Event)."""
        self._pending -= 1
        self._cancelled += 1
        self._c_cancelled.value += 1
        if (self._cancelled > self._COMPACT_MIN_SIZE
                and self._cancelled * 2 > len(self._queue)):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify.  O(live events)."""
        self._queue = [event for event in self._queue if not event.cancelled]
        heapq.heapify(self._queue)
        self._cancelled = 0
        self._c_compactions.value += 1

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a waitable that fires after ``delay`` seconds."""
        return Timeout(self, delay, value)

    def signal(self, name: str = "") -> Signal:
        """Create a fresh one-shot :class:`Signal`."""
        return Signal(self, name)

    def process(self, generator: Generator[Any, Any, Any], name: str = "") -> Process:
        """Start a generator as a simulation process."""
        return Process(self, generator, name)

    def any_of(self, waitables: Iterable[_Waitable]) -> Signal:
        """Signal firing with ``(index, payload)`` of the first input to fire.

        Later completions are ignored (their payloads are dropped), so
        the pattern ``yield sim.any_of([work, sim.timeout(deadline)])``
        implements an operation timeout.
        """
        waitables = list(waitables)
        if not waitables:
            raise SimulationError("any_of needs at least one waitable")
        first = Signal(self, name="any_of")

        def arm(index: int, waitable: _Waitable) -> None:
            def waiter():
                payload = yield waitable
                if not first.fired:
                    first.fire((index, payload))
            self.process(waiter(), name=f"any_of[{index}]")

        for index, waitable in enumerate(waitables):
            arm(index, waitable)
        return first

    def all_of(self, waitables: Iterable[_Waitable]) -> Signal:
        """Signal that fires (with a list of payloads) once all inputs fired."""
        waitables = list(waitables)
        done = Signal(self, name="all_of")
        if not waitables:
            done.fire([])
            return done
        payloads: List[Any] = [None] * len(waitables)
        remaining = [len(waitables)]

        def arm(index: int, waitable: _Waitable) -> None:
            def waiter():
                payloads[index] = yield waitable
                remaining[0] -= 1
                if remaining[0] == 0:
                    done.fire(list(payloads))
            self.process(waiter(), name=f"all_of[{index}]")

        for index, waitable in enumerate(waitables):
            arm(index, waitable)
        return done

    # -- execution ----------------------------------------------------------

    def step(self) -> bool:
        """Run the next pending event.  Returns False if the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            event.popped = True
            if event.cancelled:
                self._cancelled -= 1
                continue
            self._pending -= 1
            self._now = event.time
            self._c_fired.value += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until: Optional[float] = None) -> None:
        """Run events until the queue drains or ``until`` is reached.

        If ``until`` is given, time is advanced to exactly ``until`` even
        when the queue drains earlier, mirroring SimPy semantics.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        fired_counter = self._c_fired
        try:
            while self._queue:
                event = self._queue[0]
                if event.cancelled:
                    heapq.heappop(self._queue)
                    event.popped = True
                    self._cancelled -= 1
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._queue)
                event.popped = True
                self._pending -= 1
                self._now = event.time
                fired_counter.value += 1
                event.callback(*event.args)
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False

    def pending(self) -> int:
        """Number of not-yet-cancelled events in the queue.  O(1)."""
        return self._pending
