"""Counted resources and FIFO stores for simkit processes.

These mirror the two synchronisation primitives the Hadoop substrate
needs: :class:`Resource` models container/slot capacity on a node
(bounded concurrency) and :class:`Store` models producer/consumer
queues (e.g. the shuffle fetch queue inside a reducer).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List

from repro.simkit.core import Signal, SimulationError, Simulator


class Resource:
    """A counted resource with FIFO granting.

    Processes ``yield resource.acquire()`` and must call
    :meth:`release` exactly once per successful acquisition::

        grant = yield resource.acquire()
        try:
            ...
        finally:
            resource.release()
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = "resource"):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: Deque[Signal] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def available(self) -> int:
        return self.capacity - self._in_use

    @property
    def queued(self) -> int:
        """Number of acquisition requests currently waiting."""
        return len(self._waiters)

    def acquire(self) -> Signal:
        """Return a signal that fires once a unit is granted."""
        grant = self.sim.signal(name=f"{self.name}.grant")
        if self._in_use < self.capacity:
            self._in_use += 1
            grant.fire(self)
        else:
            self._waiters.append(grant)
        return grant

    def release(self) -> None:
        """Return one unit; hands it straight to the oldest waiter."""
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._waiters:
            grant = self._waiters.popleft()
            grant.fire(self)
        else:
            self._in_use -= 1


class Store:
    """Unbounded FIFO queue with blocking ``get``.

    ``put`` never blocks; ``yield store.get()`` resumes with the oldest
    item once one is available.  Items are matched to getters in strict
    FIFO order on both sides, which keeps simulations deterministic.
    """

    def __init__(self, sim: Simulator, name: str = "store"):
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Signal] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def pending_getters(self) -> int:
        return len(self._getters)

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().fire(item)
        else:
            self._items.append(item)

    def peek(self) -> Any:
        """The oldest queued item without removing it (``None`` if empty).

        Lets synchronous consumers inspect what :meth:`get` would
        deliver — e.g. a shuffle wave deciding whether the next map
        output can join a batched admission or needs the yielding
        recovery path.
        """
        return self._items[0] if self._items else None

    def get(self) -> Signal:
        """Return a signal firing with the next item."""
        ticket = self.sim.signal(name=f"{self.name}.get")
        if self._items:
            ticket.fire(self._items.popleft())
        else:
            self._getters.append(ticket)
        return ticket

    def drain(self) -> List[Any]:
        """Remove and return all queued items without waking getters."""
        items = list(self._items)
        self._items.clear()
        return items
