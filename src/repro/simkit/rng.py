"""Named, reproducible random number streams.

Every stochastic component in the simulator (task duration jitter,
key-skew sampling, scheduler tie-breaking, model sampling, ...) pulls a
stream by name from one :class:`RngRegistry`.  Streams are derived from
``(seed, name)`` with a stable hash, so:

* the same seed reproduces a campaign bit-for-bit, and
* adding a new stream never perturbs the draws of existing streams —
  which keeps golden-value regression tests stable across refactors.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np


def stable_hash(text: str) -> int:
    """A process-stable 32-bit hash (Python's ``hash`` is salted per run)."""
    return zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF


class RngRegistry:
    """Factory and cache for named :class:`numpy.random.Generator` streams."""

    def __init__(self, seed: int = 0):
        if not isinstance(seed, int):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = seed
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        generator = self._streams.get(name)
        if generator is None:
            sequence = np.random.SeedSequence(entropy=self.seed, spawn_key=(stable_hash(name),))
            generator = np.random.default_rng(sequence)
            self._streams[name] = generator
        return generator

    def fork(self, salt: int) -> "RngRegistry":
        """Derive an independent registry (e.g. per simulation run)."""
        return RngRegistry(seed=(self.seed * 1_000_003 + salt) & 0x7FFFFFFF)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngRegistry(seed={self.seed}, streams={sorted(self._streams)})"
