"""Deterministic discrete-event simulation kernel.

``simkit`` is the substrate under every other subsystem in this
repository: the flow-level network simulator, HDFS, YARN and the
MapReduce engine are all sets of ``simkit`` processes and callbacks
driven by one :class:`~repro.simkit.core.Simulator` event loop.

Design goals:

* **Determinism** — given the same seed, a simulation produces the same
  event ordering and therefore the same captured traffic, which the
  regression tests rely on.  Ties in event time are broken by an
  explicit (priority, sequence) pair, never by object identity.
* **Small surface** — events, generator-based processes, signals,
  counted resources and FIFO stores.  Nothing else is needed by the
  Hadoop substrate.
* **Named RNG streams** — every stochastic component draws from its own
  :func:`~repro.simkit.rng.RngRegistry.stream`, so adding a new source
  of randomness never perturbs existing ones.
"""

from repro.simkit.core import Event, Interrupt, Process, Signal, SimulationError, Simulator, Timeout
from repro.simkit.resources import Resource, Store
from repro.simkit.rng import RngRegistry, stable_hash

__all__ = [
    "Event",
    "Interrupt",
    "Process",
    "Resource",
    "RngRegistry",
    "Signal",
    "SimulationError",
    "Simulator",
    "Store",
    "Timeout",
    "stable_hash",
]
