"""Model diffs: what changed between two fitted traffic models.

Re-capturing after a configuration change (new block size, different
scheduler, more nodes) yields a new model; this module quantifies the
drift component by component so the change's traffic impact is
explicit — the "before/after" table an operator wants from the
toolchain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.tables import Table
from repro.cluster.units import MB
from repro.modeling.model import JobTrafficModel


@dataclass
class ComponentDiff:
    """One component's drift between two models (evaluated at a size)."""

    component: str
    count_before: int
    count_after: int
    volume_before: float
    volume_after: float
    size_mean_before: float
    size_mean_after: float

    @property
    def volume_change(self) -> float:
        """Relative volume change (after/before − 1); inf if appearing."""
        if self.volume_before == 0:
            return float("inf") if self.volume_after > 0 else 0.0
        return self.volume_after / self.volume_before - 1.0


def diff_models(before: JobTrafficModel, after: JobTrafficModel,
                at_gb: float = 1.0) -> Dict[str, ComponentDiff]:
    """Component-wise comparison of two models, evaluated at ``at_gb``."""
    names = sorted(set(before.components) | set(after.components))
    diffs: Dict[str, ComponentDiff] = {}
    for name in names:
        b = before.component(name)
        a = after.component(name)
        diffs[name] = ComponentDiff(
            component=name,
            count_before=b.expected_count(at_gb) if b else 0,
            count_after=a.expected_count(at_gb) if a else 0,
            volume_before=b.expected_volume(at_gb) if b else 0.0,
            volume_after=a.expected_volume(at_gb) if a else 0.0,
            size_mean_before=b.size_dist.mean() if b else 0.0,
            size_mean_after=a.size_dist.mean() if a else 0.0,
        )
    return diffs


def diff_table(before: JobTrafficModel, after: JobTrafficModel,
               at_gb: float = 1.0,
               labels: Optional[tuple] = None) -> Table:
    """Rendered before/after comparison."""
    label_before, label_after = labels or ("before", "after")
    diffs = diff_models(before, after, at_gb=at_gb)
    table = Table(
        title=(f"model diff @ {at_gb} GiB: {before.kind} "
               f"({label_before} -> {label_after})"),
        headers=["component", f"flows {label_before}", f"flows {label_after}",
                 f"MiB {label_before}", f"MiB {label_after}", "volume change",
                 "mean flow change"])
    for name, diff in sorted(diffs.items()):
        volume_change = diff.volume_change
        mean_change = (diff.size_mean_after / diff.size_mean_before - 1.0
                       if diff.size_mean_before > 0 else float("inf"))
        table.add_row(
            name, diff.count_before, diff.count_after,
            round(diff.volume_before / MB, 1), round(diff.volume_after / MB, 1),
            f"{volume_change:+.1%}" if volume_change != float("inf") else "new",
            f"{mean_change:+.1%}" if mean_change != float("inf") else "new")
    return table
