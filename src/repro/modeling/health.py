"""Model health checks: is this fitted model trustworthy?

A model fitted from too little data (one trace, a handful of flows)
silently extrapolates garbage.  ``check_model`` inspects a
:class:`~repro.modeling.model.JobTrafficModel` and returns structured
warnings a user (or the CLI's ``inspect`` command) can act on before
shipping the model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.modeling.model import JobTrafficModel

MIN_TRACES = 2
MIN_FLOWS_PER_COMPONENT = 10


@dataclass(frozen=True)
class ModelWarning:
    """One advisory finding about a fitted model."""

    severity: str  # "warn" | "info"
    component: str  # "" for model-level findings
    message: str

    def __str__(self) -> str:
        scope = f"[{self.component}] " if self.component else ""
        return f"{self.severity.upper()}: {scope}{self.message}"


def check_model(model: JobTrafficModel) -> List[ModelWarning]:
    """Return warnings about extrapolation risk and thin data."""
    warnings: List[ModelWarning] = []
    if model.num_traces < MIN_TRACES:
        warnings.append(ModelWarning(
            "warn", "",
            f"fitted from {model.num_traces} trace(s); scaling laws "
            "degrade to proportional extrapolation — capture at least "
            f"{MIN_TRACES} input sizes"))
    if len(model.input_sizes_gb) == 1:
        warnings.append(ModelWarning(
            "warn", "",
            "all traces share one input size; count/volume laws are "
            "pinned through the origin"))

    for name, component in sorted(model.components.items()):
        total_flows = sum(component.observed_counts.values())
        if total_flows and total_flows < MIN_FLOWS_PER_COMPONENT:
            warnings.append(ModelWarning(
                "warn", name,
                f"only {int(total_flows)} flows observed; the fitted "
                "marginals are noise-limited"))
        if component.count_law.slope < 0:
            warnings.append(ModelWarning(
                "warn", name,
                f"count law has negative slope ({component.count_law!r}); "
                "predictions hit zero at large inputs"))
        if component.volume_law.slope < 0:
            warnings.append(ModelWarning(
                "warn", name,
                f"volume law has negative slope ({component.volume_law!r})"))
        if component.arrival_curve is None:
            warnings.append(ModelWarning(
                "info", name,
                "no arrival curve (single-flow or zero-span component); "
                "curve-mode generation falls back to renewal gaps"))
        kind = getattr(component.size_dist, "kind", "")
        if kind == "empirical" and model.num_traces < 3:
            warnings.append(ModelWarning(
                "info", name,
                "size distribution is empirical from few traces; it "
                "cannot produce values outside the observed range"))
    if model.duration_law.slope < 0:
        warnings.append(ModelWarning(
            "warn", "", f"duration law decreases with input size "
            f"({model.duration_law!r})"))
    return warnings


def is_healthy(model: JobTrafficModel) -> bool:
    """No ``warn``-severity findings."""
    return not any(w.severity == "warn" for w in check_model(model))
