"""Linear scaling laws across input sizes.

Keddah's models must generate traffic for input sizes that were never
captured.  Flow *size* distributions are nearly input-invariant (blocks
and partitions are configuration-quantised), while flow *counts* and
total *volumes* grow with the input — so the model carries per-metric
linear laws fitted across the capture campaign's input sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Sequence

import numpy as np


@dataclass(frozen=True)
class LinearLaw:
    """``y = slope * x + intercept`` with least-squares fitting."""

    slope: float
    intercept: float

    def predict(self, x: float) -> float:
        return self.slope * float(x) + self.intercept

    def predict_nonneg(self, x: float) -> float:
        return max(self.predict(x), 0.0)

    @classmethod
    def fit(cls, xs: Sequence[float], ys: Sequence[float]) -> "LinearLaw":
        """Least squares; a single point degrades to proportionality.

        With one (x, y) observation the only defensible extrapolation is
        through the origin: ``y = (y/x) * x``.
        """
        x = np.asarray(list(xs), dtype=float)
        y = np.asarray(list(ys), dtype=float)
        if x.size == 0 or x.size != y.size:
            raise ValueError("need matching non-empty x/y samples")
        if x.size == 1 or float(np.ptp(x)) == 0.0:
            base = float(x[0])
            if base == 0.0:
                return cls(slope=0.0, intercept=float(y.mean()))
            return cls(slope=float(y.mean()) / base, intercept=0.0)
        slope, intercept = np.polyfit(x, y, deg=1)
        return cls(slope=float(slope), intercept=float(intercept))

    def to_dict(self) -> Dict[str, Any]:
        return {"slope": self.slope, "intercept": self.intercept}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "LinearLaw":
        return cls(slope=float(data["slope"]), intercept=float(data["intercept"]))

    def __repr__(self) -> str:
        return f"LinearLaw(y = {self.slope:.6g}*x + {self.intercept:.6g})"


@dataclass(frozen=True)
class PowerLaw:
    """``y = coefficient * x^exponent`` fitted in log-log space.

    Used for metrics that scale super- or sub-linearly with input —
    e.g. shuffle flow counts when reducers are scaled with input size,
    or completion times with a fixed cluster.  Requires strictly
    positive observations.
    """

    coefficient: float
    exponent: float

    def predict(self, x: float) -> float:
        if x <= 0:
            return 0.0
        return self.coefficient * float(x) ** self.exponent

    @classmethod
    def fit(cls, xs: Sequence[float], ys: Sequence[float]) -> "PowerLaw":
        x = np.asarray(list(xs), dtype=float)
        y = np.asarray(list(ys), dtype=float)
        if x.size == 0 or x.size != y.size:
            raise ValueError("need matching non-empty x/y samples")
        if np.any(x <= 0) or np.any(y <= 0):
            raise ValueError("power-law fit needs strictly positive data")
        if x.size == 1 or float(np.ptp(x)) == 0.0:
            # One support point: assume linear scaling through it.
            return cls(coefficient=float(y.mean() / x[0]), exponent=1.0)
        exponent, log_coefficient = np.polyfit(np.log(x), np.log(y), deg=1)
        return cls(coefficient=float(np.exp(log_coefficient)),
                   exponent=float(exponent))

    def to_dict(self) -> Dict[str, Any]:
        return {"coefficient": self.coefficient, "exponent": self.exponent}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PowerLaw":
        return cls(coefficient=float(data["coefficient"]),
                   exponent=float(data["exponent"]))

    def __repr__(self) -> str:
        return f"PowerLaw(y = {self.coefficient:.6g}*x^{self.exponent:.4g})"


def best_scaling_law(xs: Sequence[float], ys: Sequence[float]):
    """Pick LinearLaw or PowerLaw by residual error on the data.

    Falls back to linear whenever the power law is inapplicable
    (non-positive observations) or not clearly better.
    """
    linear = LinearLaw.fit(xs, ys)
    x = np.asarray(list(xs), dtype=float)
    y = np.asarray(list(ys), dtype=float)
    try:
        power = PowerLaw.fit(xs, ys)
    except ValueError:
        return linear
    linear_error = float(np.sum((y - [linear.predict(v) for v in x]) ** 2))
    power_error = float(np.sum((y - [power.predict(v) for v in x]) ** 2))
    return power if power_error < 0.8 * linear_error else linear
