"""Model selection: fit every candidate family, rank by goodness of fit.

``fit_candidates`` MLE-fits the whole candidate family and scores each
fit by KS distance, log-likelihood, AIC and BIC.  ``fit_best`` applies
the selection rule used throughout the toolchain:

1. zero-variance data → point mass;
2. otherwise the parametric family with the smallest KS distance;
3. if even the best family's KS distance exceeds
   ``empirical_threshold`` the fit is judged unrepresentative and an
   empirical-quantile distribution is returned instead (the paper's
   models are empirical where parametric families fail).
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.modeling.distributions import (
    CANDIDATE_FAMILIES,
    DegenerateDistribution,
    EmpiricalDistribution,
    FittedDistribution,
    fit_family,
)
from repro.modeling.ks import KsResult, ks_one_sample

DEFAULT_EMPIRICAL_THRESHOLD = 0.25


@dataclass
class FitReport:
    """One candidate family's score card."""

    distribution: FittedDistribution
    ks: KsResult
    loglike: float
    aic: float
    bic: float

    @property
    def family(self) -> str:
        return self.distribution.family


def fit_candidates(samples: Sequence[float],
                   families: Optional[Sequence[str]] = None) -> List[FitReport]:
    """Fit each family; return reports sorted by ascending KS distance.

    Families whose MLE fails on the data (singular likelihoods, etc.)
    are silently dropped — at least one family always survives.
    """
    data = np.asarray(list(samples), dtype=float)
    if data.size == 0:
        raise ValueError("cannot fit to an empty sample")
    reports: List[FitReport] = []
    for family in families or CANDIDATE_FAMILIES:
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                fitted = fit_family(family, data)
                ks = ks_one_sample(data, fitted.cdf)
                loglike = float(np.sum(fitted.logpdf(np.maximum(data, 1e-9))))
        except Exception:
            continue
        if not math.isfinite(loglike):
            loglike = float("-inf")
        k = fitted.n_free_params
        aic = 2 * k - 2 * loglike
        bic = k * math.log(data.size) - 2 * loglike
        reports.append(FitReport(distribution=fitted, ks=ks,
                                 loglike=loglike, aic=aic, bic=bic))
    if not reports:
        raise RuntimeError("every candidate family failed to fit")
    reports.sort(key=lambda report: report.ks.statistic)
    return reports


def fit_best(samples: Sequence[float],
             families: Optional[Sequence[str]] = None,
             empirical_threshold: float = DEFAULT_EMPIRICAL_THRESHOLD,
             try_mixture: bool = True):
    """The toolchain's selection rule.  Returns a distribution object.

    When no single family fits (rule 3 in the module docstring), a
    two-component lognormal mixture is attempted before falling back to
    empirical quantiles: structurally bimodal populations (e.g. the
    HDFS-write mix of jar blocks and output blocks) get a compact,
    extrapolatable model if the mixture at least halves the best
    single-family KS distance.
    """
    data = np.asarray(list(samples), dtype=float)
    if data.size == 0:
        raise ValueError("cannot fit to an empty sample")
    if data.size == 1 or float(np.ptp(data)) == 0.0:
        return DegenerateDistribution(float(data[0]))
    best = fit_candidates(data, families)[0]
    if best.ks.statistic <= empirical_threshold:
        return best.distribution
    if try_mixture:
        from repro.modeling.mixture import fit_mixture_if_better

        mixture = fit_mixture_if_better(data, baseline_ks=best.ks.statistic)
        if mixture is not None:
            return mixture
    return EmpiricalDistribution.from_samples(data)


def fit_table(samples_by_key: Dict[str, Sequence[float]]) -> Dict[str, FitReport]:
    """Best parametric fit per keyed sample set (the E5 table's engine)."""
    return {key: fit_candidates(samples)[0]
            for key, samples in samples_by_key.items() if len(samples) > 0}
