"""The Keddah traffic model: per-component marginals + scaling laws.

A :class:`JobTrafficModel` is what the toolchain ships for one job type
under one cluster configuration:

* per traffic component (HDFS read / shuffle / HDFS write / control), a
  :class:`ComponentModel` holding fitted distributions of **flow size**
  and **flow inter-arrival**, plus linear laws for **flow count** and
  **total volume** against input size (GiB);
* a job **duration law** for sizing capture-window-level effects;
* the configuration snapshot the captures ran under, so a consumer
  knows the model's validity domain.

``fit_job_model`` builds one from a list of captured traces (same job
kind, any mix of input sizes); models serialise to JSON.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.capture.records import JobTrace, TrafficComponent
from repro.cluster.units import GB
from repro.modeling.distributions import distribution_from_dict
from repro.modeling.fitting import DEFAULT_EMPIRICAL_THRESHOLD, fit_best
from repro.modeling.scaling import LinearLaw

MODEL_COMPONENTS = [component.value for component in TrafficComponent.data_components()] + [
    TrafficComponent.CONTROL.value
]


@dataclass
class ComponentModel:
    """Fitted traffic model of one component of one job type."""

    component: str
    size_dist: Any
    interarrival_dist: Any
    count_law: LinearLaw
    volume_law: LinearLaw
    # First-flow start time vs input size: components phase in at
    # different points of a job (reads at launch, shuffle after the
    # first map wave, writes near the end).
    start_law: LinearLaw = field(default_factory=lambda: LinearLaw(0.0, 0.0))
    # The component's arrival *shape*: normalised flow-start positions
    # in [0, 1] pooled across captures, plus the activity span's scaling
    # law — together they reproduce the arrival process's time-varying
    # intensity (generation mode ``arrivals="curve"``).
    arrival_curve: Any = None
    span_law: LinearLaw = field(default_factory=lambda: LinearLaw(0.0, 0.0))
    observed_counts: Dict[str, float] = field(default_factory=dict)

    def expected_count(self, input_gb: float) -> int:
        return int(round(self.count_law.predict_nonneg(input_gb)))

    def expected_volume(self, input_gb: float) -> float:
        return self.volume_law.predict_nonneg(input_gb)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "component": self.component,
            "size_dist": self.size_dist.to_dict(),
            "interarrival_dist": self.interarrival_dist.to_dict(),
            "count_law": self.count_law.to_dict(),
            "volume_law": self.volume_law.to_dict(),
            "start_law": self.start_law.to_dict(),
            "arrival_curve": (self.arrival_curve.to_dict()
                              if self.arrival_curve is not None else None),
            "span_law": self.span_law.to_dict(),
            "observed_counts": self.observed_counts,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ComponentModel":
        return cls(
            component=data["component"],
            size_dist=distribution_from_dict(data["size_dist"]),
            interarrival_dist=distribution_from_dict(data["interarrival_dist"]),
            count_law=LinearLaw.from_dict(data["count_law"]),
            volume_law=LinearLaw.from_dict(data["volume_law"]),
            start_law=LinearLaw.from_dict(
                data.get("start_law", {"slope": 0.0, "intercept": 0.0})),
            arrival_curve=(distribution_from_dict(data["arrival_curve"])
                           if data.get("arrival_curve") else None),
            span_law=LinearLaw.from_dict(
                data.get("span_law", {"slope": 0.0, "intercept": 0.0})),
            observed_counts=dict(data.get("observed_counts", {})),
        )


@dataclass
class JobTrafficModel:
    """The shippable Keddah model for one job kind."""

    kind: str
    components: Dict[str, ComponentModel]
    duration_law: LinearLaw
    input_sizes_gb: List[float] = field(default_factory=list)
    cluster: Dict[str, Any] = field(default_factory=dict)
    hadoop: Dict[str, Any] = field(default_factory=dict)
    num_traces: int = 0

    def component(self, component: TrafficComponent | str) -> Optional[ComponentModel]:
        return self.components.get(str(component))

    def expected_duration(self, input_gb: float) -> float:
        return self.duration_law.predict_nonneg(input_gb)

    # -- serialisation ------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "components": {name: model.to_dict()
                           for name, model in self.components.items()},
            "duration_law": self.duration_law.to_dict(),
            "input_sizes_gb": self.input_sizes_gb,
            "cluster": self.cluster,
            "hadoop": self.hadoop,
            "num_traces": self.num_traces,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobTrafficModel":
        return cls(
            kind=data["kind"],
            components={name: ComponentModel.from_dict(payload)
                        for name, payload in data["components"].items()},
            duration_law=LinearLaw.from_dict(data["duration_law"]),
            input_sizes_gb=list(data.get("input_sizes_gb", [])),
            cluster=dict(data.get("cluster", {})),
            hadoop=dict(data.get("hadoop", {})),
            num_traces=int(data.get("num_traces", 0)),
        )

    def to_json(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2), encoding="utf-8")

    @classmethod
    def from_json(cls, path: str | Path) -> "JobTrafficModel":
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


def fit_job_model(traces: Sequence[JobTrace],
                  empirical_threshold: float = DEFAULT_EMPIRICAL_THRESHOLD,
                  ) -> JobTrafficModel:
    """Fit a :class:`JobTrafficModel` from captured traces of one job kind.

    Sizes and inter-arrivals are pooled across traces (they are close to
    input-invariant); counts, volumes and durations are fitted per trace
    against input size, giving the scaling laws used to generate traffic
    for unseen inputs.
    """
    if not traces:
        raise ValueError("need at least one trace to fit a model")
    kinds = {trace.meta.job_kind for trace in traces}
    if len(kinds) != 1:
        raise ValueError(f"traces mix job kinds: {sorted(kinds)}")
    kind = kinds.pop()

    inputs_gb = [trace.meta.input_bytes / GB for trace in traces]
    components: Dict[str, ComponentModel] = {}
    for component in MODEL_COMPONENTS:
        sizes: List[float] = []
        gaps: List[float] = []
        counts: List[float] = []
        volumes: List[float] = []
        start_xs: List[float] = []
        start_ys: List[float] = []
        span_xs: List[float] = []
        span_ys: List[float] = []
        normalized_starts: List[float] = []
        for trace, input_gb in zip(traces, inputs_gb):
            flows = trace.component(component)
            counts.append(float(len(flows)))
            volumes.append(float(sum(flow.size for flow in flows)))
            sizes.extend(flow.size for flow in flows)
            gaps.extend(trace.interarrivals(component))
            starts = trace.flow_starts(component)
            if starts:
                start_xs.append(input_gb)
                start_ys.append(starts[0])
                span = starts[-1] - starts[0]
                if span > 0:
                    span_xs.append(input_gb)
                    span_ys.append(span)
                    normalized_starts.extend(
                        (s - starts[0]) / span for s in starts)
        if not sizes:
            continue  # component absent for this job kind
        from repro.modeling.distributions import EmpiricalDistribution

        size_dist = fit_best(sizes, empirical_threshold=empirical_threshold)
        interarrival_dist = (fit_best(gaps, empirical_threshold=empirical_threshold)
                             if gaps else fit_best([0.0]))
        components[component] = ComponentModel(
            component=component,
            size_dist=size_dist,
            interarrival_dist=interarrival_dist,
            count_law=LinearLaw.fit(inputs_gb, counts),
            volume_law=LinearLaw.fit(inputs_gb, volumes),
            start_law=LinearLaw.fit(start_xs, start_ys),
            arrival_curve=(EmpiricalDistribution.from_samples(normalized_starts)
                           if normalized_starts else None),
            span_law=(LinearLaw.fit(span_xs, span_ys)
                      if span_xs else LinearLaw(0.0, 0.0)),
            observed_counts={f"{gb:g}": count
                             for gb, count in zip(inputs_gb, counts)},
        )

    durations = [trace.meta.completion_time for trace in traces]
    return JobTrafficModel(
        kind=kind,
        components=components,
        duration_law=LinearLaw.fit(inputs_gb, durations),
        input_sizes_gb=sorted(set(round(gb, 6) for gb in inputs_gb)),
        cluster=dict(traces[0].meta.cluster),
        hadoop=dict(traces[0].meta.hadoop),
        num_traces=len(traces),
    )
