"""Kolmogorov-Smirnov goodness-of-fit wrappers.

Thin, typed wrappers over :mod:`scipy.stats` returning a uniform
result object, used both for model selection (one-sample, fitted CDF
vs data) and validation (two-sample, synthetic vs captured — the
paper's reproduction-fidelity check).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np
from scipy import stats


@dataclass(frozen=True)
class KsResult:
    """A KS test outcome."""

    statistic: float
    pvalue: float
    n: int
    m: int = 0  # second sample size (two-sample only)

    def accept(self, alpha: float = 0.05) -> bool:
        """Whether the null (same distribution) survives at level alpha."""
        return self.pvalue >= alpha


def ks_one_sample(samples: Sequence[float], cdf: Callable) -> KsResult:
    """KS distance between data and a fitted CDF."""
    data = np.asarray(list(samples), dtype=float)
    if data.size == 0:
        raise ValueError("KS test needs at least one sample")
    statistic, pvalue = stats.kstest(data, cdf)
    return KsResult(statistic=float(statistic), pvalue=float(pvalue), n=data.size)


def ks_two_sample(a: Sequence[float], b: Sequence[float]) -> KsResult:
    """KS distance between two empirical samples."""
    first = np.asarray(list(a), dtype=float)
    second = np.asarray(list(b), dtype=float)
    if first.size == 0 or second.size == 0:
        raise ValueError("KS test needs non-empty samples on both sides")
    statistic, pvalue = stats.ks_2samp(first, second)
    return KsResult(statistic=float(statistic), pvalue=float(pvalue),
                    n=first.size, m=second.size)
