"""Model bundles: one traffic model per job kind, shipped together.

A network study rarely needs just one job's traffic — it needs a whole
cluster's mix.  A :class:`ModelBundle` groups fitted
:class:`~repro.modeling.model.JobTrafficModel` objects by job kind,
persists them as a directory of JSON files, and is the input to
:func:`repro.generation.workload.generate_workload_trace`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Optional

from repro.capture.records import JobTrace
from repro.modeling.model import JobTrafficModel, fit_job_model


class ModelBundle:
    """A keyed collection of per-job-kind traffic models."""

    def __init__(self, models: Optional[Dict[str, JobTrafficModel]] = None):
        self.models: Dict[str, JobTrafficModel] = dict(models or {})

    def __contains__(self, kind: str) -> bool:
        return kind in self.models

    def __len__(self) -> int:
        return len(self.models)

    def kinds(self) -> List[str]:
        return sorted(self.models)

    def get(self, kind: str) -> JobTrafficModel:
        model = self.models.get(kind)
        if model is None:
            raise KeyError(
                f"no model for job kind {kind!r}; bundle holds {self.kinds()}")
        return model

    def add(self, model: JobTrafficModel) -> None:
        self.models[model.kind] = model

    # -- construction ------------------------------------------------------------

    @classmethod
    def fit(cls, traces: Iterable[JobTrace], **fit_kwargs) -> "ModelBundle":
        """Group traces by job kind and fit one model per kind."""
        by_kind: Dict[str, List[JobTrace]] = {}
        for trace in traces:
            by_kind.setdefault(trace.meta.job_kind, []).append(trace)
        if not by_kind:
            raise ValueError("no traces to fit a bundle from")
        return cls({kind: fit_job_model(group, **fit_kwargs)
                    for kind, group in by_kind.items()})

    # -- persistence ---------------------------------------------------------------

    def save(self, directory: str | Path) -> List[Path]:
        """Write ``<directory>/<kind>.json`` for every model."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        paths = []
        for kind, model in sorted(self.models.items()):
            path = directory / f"{kind}.json"
            model.to_json(path)
            paths.append(path)
        return paths

    @classmethod
    def load(cls, directory: str | Path) -> "ModelBundle":
        """Load every ``*.json`` model in a directory."""
        directory = Path(directory)
        models = {}
        for path in sorted(directory.glob("*.json")):
            model = JobTrafficModel.from_json(path)
            models[model.kind] = model
        if not models:
            raise FileNotFoundError(f"no model JSON files under {directory}")
        return cls(models)
