"""Human-readable summaries of fitted traffic models."""

from __future__ import annotations

from typing import List

from repro.analysis.tables import Table
from repro.cluster.units import MB
from repro.modeling.model import JobTrafficModel


def describe_model(model: JobTrafficModel) -> List[Table]:
    """Tables summarising a model: components, marginals, scaling laws."""
    overview = Table(
        title=f"model: {model.kind} (fitted on {model.num_traces} trace(s), "
              f"sizes {model.input_sizes_gb} GiB)",
        headers=["component", "size dist", "interarrival dist",
                 "flows @1GiB", "MiB @1GiB", "start @1GiB s"])
    for name, component in sorted(model.components.items()):
        overview.add_row(
            name,
            repr(component.size_dist),
            repr(component.interarrival_dist),
            component.expected_count(1.0),
            round(component.expected_volume(1.0) / MB, 1),
            round(component.start_law.predict_nonneg(1.0), 2))
    overview.notes.append(
        f"duration law: {model.duration_law!r}; cluster: "
        f"{model.cluster.get('num_nodes', '?')} nodes, "
        f"{model.hadoop.get('num_reducers', '?')} reducers, "
        f"replication {model.hadoop.get('replication', '?')}")

    laws = Table(
        title=f"scaling laws: {model.kind} (x = input GiB)",
        headers=["component", "count law", "volume law (bytes)"])
    for name, component in sorted(model.components.items()):
        laws.add_row(name, repr(component.count_law), repr(component.volume_law))
    return [overview, laws]
