"""Keddah stage 2 — empirical traffic modelling.

Given captured :class:`~repro.capture.records.JobTrace` datasets, this
package produces the paper's deliverable: a statistical model of each
job type's traffic, decomposed by component, that a network simulator
can sample from.

Pipeline:

1. :mod:`repro.modeling.empirical` — ECDFs and summary statistics;
2. :mod:`repro.modeling.distributions` — a candidate family of
   parametric distributions (exponential, lognormal, Weibull, gamma,
   Pareto, normal, uniform) with MLE fitting, plus degenerate and
   empirical-quantile fallbacks for data parametric families cannot
   represent (e.g. block-size point masses);
3. :mod:`repro.modeling.fitting` — goodness of fit (Kolmogorov-Smirnov)
   and information-criterion model selection;
4. :mod:`repro.modeling.scaling` — linear scaling laws of flow counts
   and volumes against input size, fitted across capture campaigns;
5. :mod:`repro.modeling.model` — the assembled
   :class:`~repro.modeling.model.JobTrafficModel` with JSON
   round-tripping, and :func:`~repro.modeling.model.fit_job_model`.
"""

from repro.modeling.bundle import ModelBundle
from repro.modeling.crossval import CrossValidationReport, leave_one_out
from repro.modeling.diff import diff_models, diff_table
from repro.modeling.health import check_model, is_healthy
from repro.modeling.inspect import describe_model
from repro.modeling.mixture import LognormalMixture
from repro.modeling.distributions import (
    CANDIDATE_FAMILIES,
    DegenerateDistribution,
    EmpiricalDistribution,
    FittedDistribution,
    distribution_from_dict,
    fit_family,
)
from repro.modeling.empirical import Ecdf, summarize
from repro.modeling.fitting import FitReport, fit_best, fit_candidates
from repro.modeling.goodness import anderson_darling, bootstrap_ks_pvalue, qq_points
from repro.modeling.ks import ks_one_sample, ks_two_sample
from repro.modeling.model import ComponentModel, JobTrafficModel, fit_job_model
from repro.modeling.scaling import LinearLaw, PowerLaw, best_scaling_law

__all__ = [
    "CANDIDATE_FAMILIES",
    "ComponentModel",
    "DegenerateDistribution",
    "Ecdf",
    "EmpiricalDistribution",
    "FitReport",
    "FittedDistribution",
    "JobTrafficModel",
    "LinearLaw",
    "ModelBundle",
    "PowerLaw",
    "CrossValidationReport",
    "LognormalMixture",
    "anderson_darling",
    "best_scaling_law",
    "bootstrap_ks_pvalue",
    "check_model",
    "describe_model",
    "diff_models",
    "diff_table",
    "is_healthy",
    "leave_one_out",
    "qq_points",
    "distribution_from_dict",
    "fit_best",
    "fit_candidates",
    "fit_family",
    "fit_job_model",
    "ks_one_sample",
    "ks_two_sample",
    "summarize",
]
