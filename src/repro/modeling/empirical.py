"""Empirical CDFs and summary statistics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

import numpy as np


class Ecdf:
    """Empirical cumulative distribution function.

    Right-continuous step function: ``F(x) = #{samples <= x} / n``.
    """

    def __init__(self, samples: Sequence[float]):
        data = np.asarray(list(samples), dtype=float)
        if data.size == 0:
            raise ValueError("ECDF needs at least one sample")
        self.sorted = np.sort(data)
        self.n = data.size

    def __call__(self, x) -> np.ndarray:
        """Evaluate F at scalar or array ``x``."""
        x = np.asarray(x, dtype=float)
        return np.searchsorted(self.sorted, x, side="right") / self.n

    def quantile(self, q) -> np.ndarray:
        """Inverse CDF (type-1 / lower empirical quantile)."""
        q = np.asarray(q, dtype=float)
        if np.any((q < 0) | (q > 1)):
            raise ValueError("quantiles must be in [0, 1]")
        indices = np.clip(np.ceil(q * self.n).astype(int) - 1, 0, self.n - 1)
        return self.sorted[indices]

    def support(self) -> tuple:
        return float(self.sorted[0]), float(self.sorted[-1])

    def points(self) -> tuple:
        """(x, F(x)) arrays for plotting/serialising the step function."""
        return self.sorted, np.arange(1, self.n + 1) / self.n


def summarize(samples: Iterable[float]) -> Dict[str, float]:
    """Summary statistics in the shape the experiment tables print."""
    data = np.asarray(list(samples), dtype=float)
    if data.size == 0:
        return {"n": 0, "mean": 0.0, "std": 0.0, "min": 0.0,
                "p50": 0.0, "p90": 0.0, "p99": 0.0, "max": 0.0, "sum": 0.0}
    return {
        "n": int(data.size),
        "mean": float(data.mean()),
        "std": float(data.std(ddof=1)) if data.size > 1 else 0.0,
        "min": float(data.min()),
        "p50": float(np.percentile(data, 50)),
        "p90": float(np.percentile(data, 90)),
        "p99": float(np.percentile(data, 99)),
        "max": float(data.max()),
        "sum": float(data.sum()),
    }


def log_spaced_grid(samples: Sequence[float], points: int = 64) -> List[float]:
    """A log-spaced evaluation grid covering the sample range (for CDF tables)."""
    data = np.asarray(list(samples), dtype=float)
    data = data[data > 0]
    if data.size == 0:
        return [0.0]
    low, high = float(data.min()), float(data.max())
    if low == high:
        return [low]
    return list(np.geomspace(low, high, points))
