"""Cross-validation of the traffic model's scaling laws.

Keddah's central generalisation claim is that a model fitted on a few
input sizes predicts traffic at *unseen* sizes.  Leave-one-out
cross-validation quantifies exactly that: for every captured size, fit
the model on the remaining sizes and score the held-out prediction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.capture.records import JobTrace, TrafficComponent
from repro.cluster.units import GB
from repro.modeling.model import fit_job_model


@dataclass
class HoldoutScore:
    """Prediction errors for one held-out capture."""

    input_gb: float
    component: str
    actual_count: int
    predicted_count: int
    actual_volume: float
    predicted_volume: float

    @property
    def count_error(self) -> float:
        if self.actual_count == 0:
            return 0.0 if self.predicted_count == 0 else float("inf")
        return abs(self.predicted_count - self.actual_count) / self.actual_count

    @property
    def volume_error(self) -> float:
        if self.actual_volume == 0:
            return 0.0 if self.predicted_volume == 0 else float("inf")
        return abs(self.predicted_volume - self.actual_volume) / self.actual_volume


@dataclass
class CrossValidationReport:
    """All leave-one-out scores for one job kind."""

    kind: str
    scores: List[HoldoutScore] = field(default_factory=list)

    def mean_count_error(self) -> float:
        finite = [s.count_error for s in self.scores
                  if s.count_error != float("inf")]
        return sum(finite) / len(finite) if finite else 0.0

    def mean_volume_error(self) -> float:
        finite = [s.volume_error for s in self.scores
                  if s.volume_error != float("inf")]
        return sum(finite) / len(finite) if finite else 0.0

    def worst_volume_error(self) -> float:
        finite = [s.volume_error for s in self.scores
                  if s.volume_error != float("inf")]
        return max(finite) if finite else 0.0


def leave_one_out(traces: Sequence[JobTrace],
                  components: Sequence[str] = (),
                  ) -> CrossValidationReport:
    """Score each capture against a model fitted on the others.

    Needs at least three traces (two must remain for a scaling fit).
    """
    traces = list(traces)
    if len(traces) < 3:
        raise ValueError(
            f"leave-one-out needs >= 3 traces, got {len(traces)}")
    components = list(components) or [
        c.value for c in TrafficComponent.data_components()]
    report = CrossValidationReport(kind=traces[0].meta.job_kind)
    for index, held_out in enumerate(traces):
        training = traces[:index] + traces[index + 1:]
        model = fit_job_model(training)
        input_gb = held_out.meta.input_bytes / GB
        for component in components:
            actual_flows = held_out.component(component)
            component_model = model.component(component)
            if component_model is None:
                if actual_flows:
                    report.scores.append(HoldoutScore(
                        input_gb=input_gb, component=component,
                        actual_count=len(actual_flows), predicted_count=0,
                        actual_volume=sum(f.size for f in actual_flows),
                        predicted_volume=0.0))
                continue
            report.scores.append(HoldoutScore(
                input_gb=input_gb,
                component=component,
                actual_count=len(actual_flows),
                predicted_count=component_model.expected_count(input_gb),
                actual_volume=sum(f.size for f in actual_flows),
                predicted_volume=component_model.expected_volume(input_gb),
            ))
    return report
