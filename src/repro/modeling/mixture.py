"""Lognormal mixture models fitted by EM.

Some Hadoop flow populations are *structurally* multi-modal — the
HDFS-write component mixes jar-staging blocks, job-history files and
output blocks — and no single parametric family represents them.  The
empirical-quantile fallback handles that, but a mixture gives a
compact, interpretable, extrapolatable alternative: each mode has a
weight, location and spread.

:class:`LognormalMixture` is a K-component lognormal mixture (a 1-D
Gaussian mixture in log space) fitted with vanilla EM:

* E-step: responsibilities from current parameters,
* M-step: weighted mean/variance per component,
* k-means++-style initialisation on log data, fixed seed, restarts.

The mixture plugs into the same serialisation protocol as the other
distribution kinds (``kind = "mixture"``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

import numpy as np
from scipy import stats

_MIN_SIGMA = 1e-3
_EPS = 1e-12


class LognormalMixture:
    """K-component lognormal mixture."""

    kind = "mixture"
    family = "lognormal-mixture"

    def __init__(self, weights: Sequence[float], mus: Sequence[float],
                 sigmas: Sequence[float]):
        self.weights = np.asarray(list(weights), dtype=float)
        self.mus = np.asarray(list(mus), dtype=float)
        self.sigmas = np.asarray(list(sigmas), dtype=float)
        if not (self.weights.size == self.mus.size == self.sigmas.size):
            raise ValueError("weights, mus and sigmas must have equal length")
        if self.weights.size == 0:
            raise ValueError("mixture needs at least one component")
        if np.any(self.weights < 0):
            raise ValueError("mixture weights must be >= 0")
        total = self.weights.sum()
        if total <= 0:
            raise ValueError("mixture weights must sum to a positive value")
        self.weights = self.weights / total
        self.sigmas = np.maximum(self.sigmas, _MIN_SIGMA)

    @property
    def n_components(self) -> int:
        return self.weights.size

    # -- distribution protocol ----------------------------------------------------

    def cdf(self, x) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        result = np.zeros_like(x, dtype=float)
        positive = x > 0
        for weight, mu, sigma in zip(self.weights, self.mus, self.sigmas):
            component = np.zeros_like(result)
            component[positive] = stats.norm.cdf(
                (np.log(x[positive]) - mu) / sigma)
            result += weight * component
        return result

    def logpdf(self, x) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        densities = np.zeros_like(x, dtype=float)
        positive = x > 0
        for weight, mu, sigma in zip(self.weights, self.mus, self.sigmas):
            pdf = np.zeros_like(densities)
            pdf[positive] = weight * stats.lognorm.pdf(
                x[positive], s=sigma, scale=np.exp(mu))
            densities += pdf
        return np.log(np.maximum(densities, _EPS))

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        components = rng.choice(self.n_components, size=n, p=self.weights)
        draws = rng.lognormal(mean=self.mus[components],
                              sigma=self.sigmas[components])
        return np.asarray(draws, dtype=float)

    def mean(self) -> float:
        return float(np.sum(
            self.weights * np.exp(self.mus + 0.5 * self.sigmas ** 2)))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "mixture",
            "weights": [float(w) for w in self.weights],
            "mus": [float(m) for m in self.mus],
            "sigmas": [float(s) for s in self.sigmas],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "LognormalMixture":
        return cls(data["weights"], data["mus"], data["sigmas"])

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{w:.2f}*LN({m:.2f},{s:.2f})"
            for w, m, s in zip(self.weights, self.mus, self.sigmas))
        return f"mixture({parts})"

    # -- fitting ---------------------------------------------------------------------

    @classmethod
    def fit(cls, samples: Sequence[float], n_components: int = 2,
            max_iter: int = 200, tol: float = 1e-7,
            seed: int = 0, restarts: int = 3) -> "LognormalMixture":
        """EM fit on positive data; best of ``restarts`` initialisations."""
        data = np.asarray(list(samples), dtype=float)
        data = data[data > 0]
        if data.size < 2 * n_components:
            raise ValueError(
                f"need >= {2 * n_components} positive samples, got {data.size}")
        if n_components < 1:
            raise ValueError("n_components must be >= 1")
        log_data = np.log(data)
        rng = np.random.default_rng(seed)
        best = None
        best_loglike = -np.inf
        for _ in range(restarts):
            fitted, loglike = cls._em(log_data, n_components, max_iter, tol, rng)
            if loglike > best_loglike:
                best, best_loglike = fitted, loglike
        assert best is not None
        return best

    @classmethod
    def _em(cls, log_data: np.ndarray, k: int, max_iter: int, tol: float,
            rng: np.random.Generator):
        n = log_data.size
        # Quantile-spread means with a deliberately narrow initial
        # sigma: a wide sigma makes responsibilities uniform and the
        # components collapse onto one broad mode.
        quantiles = (np.arange(k) + 0.5) / k
        mus = np.quantile(log_data, quantiles)
        mus = mus + rng.normal(scale=0.05 * (log_data.std() + _MIN_SIGMA), size=k)
        sigmas = np.full(k, max(log_data.std() / max(k, 1), _MIN_SIGMA))
        weights = np.full(k, 1.0 / k)
        previous = -np.inf
        for _ in range(max_iter):
            # E-step: responsibilities (n x k), computed in log space.
            log_resp = (np.log(np.maximum(weights, _EPS))
                        - np.log(np.maximum(sigmas, _EPS))
                        - 0.5 * ((log_data[:, None] - mus[None, :])
                                 / sigmas[None, :]) ** 2)
            log_norm = _logsumexp_rows(log_resp)
            loglike = float(np.sum(log_norm))
            resp = np.exp(log_resp - log_norm[:, None])
            # M-step.
            mass = resp.sum(axis=0)
            mass = np.maximum(mass, _EPS)
            weights = mass / n
            mus = (resp * log_data[:, None]).sum(axis=0) / mass
            variances = (resp * (log_data[:, None] - mus[None, :]) ** 2
                         ).sum(axis=0) / mass
            sigmas = np.sqrt(np.maximum(variances, _MIN_SIGMA ** 2))
            if abs(loglike - previous) < tol * (1 + abs(previous)):
                break
            previous = loglike
        return cls(weights, mus, sigmas), loglike


def _logsumexp_rows(matrix: np.ndarray) -> np.ndarray:
    peak = matrix.max(axis=1)
    return peak + np.log(np.sum(np.exp(matrix - peak[:, None]), axis=1))


def fit_mixture_if_better(samples: Sequence[float], baseline_ks: float,
                          n_components: int = 2,
                          seed: int = 0) -> "LognormalMixture | None":
    """Fit a mixture and return it only if it beats ``baseline_ks``.

    The selection hook :func:`repro.modeling.fitting.fit_best` uses when
    no single family fits: a mixture that halves the KS distance is
    preferred over the empirical fallback because it extrapolates.
    """
    from repro.modeling.ks import ks_one_sample

    data = [value for value in samples if value > 0]
    if len(data) < 2 * n_components:
        return None
    try:
        mixture = LognormalMixture.fit(data, n_components=n_components, seed=seed)
    except Exception:
        return None
    ks = ks_one_sample(data, mixture.cdf).statistic
    if ks < 0.5 * baseline_ks:
        return mixture
    return None
