"""Additional goodness-of-fit machinery beyond plain KS.

* :func:`anderson_darling` — the A² statistic, which weights the tails
  more heavily than KS; heavy-tailed flow-size fits that pass KS can
  fail AD, so the fit table reports both.
* :func:`qq_points` — quantile-quantile pairs for a fitted
  distribution, the data behind a Q-Q plot.
* :func:`bootstrap_ks_pvalue` — a parametric-bootstrap p-value for the
  one-sample KS test, correcting the bias of testing against *fitted*
  parameters (the classical KS p-value is anti-conservative there).
"""

from __future__ import annotations

import math
from typing import Callable, List, Sequence, Tuple

import numpy as np

from repro.modeling.ks import ks_one_sample

_EPS = 1e-12


def anderson_darling(samples: Sequence[float], cdf: Callable) -> float:
    """The Anderson-Darling A² statistic against an arbitrary CDF.

    Uses the standard formula
    ``A² = -n - (1/n) Σ (2i-1) [ln F(x_i) + ln(1 - F(x_{n+1-i}))]``
    on the order statistics.  Larger = worse fit; values under ~2 are
    conventionally good, though exact critical values depend on the
    family and on fitted parameters.
    """
    data = np.sort(np.asarray(list(samples), dtype=float))
    n = data.size
    if n == 0:
        raise ValueError("Anderson-Darling needs at least one sample")
    u = np.clip(np.asarray(cdf(data), dtype=float), _EPS, 1.0 - _EPS)
    i = np.arange(1, n + 1)
    a_squared = -n - np.mean((2 * i - 1) * (np.log(u) + np.log(1.0 - u[::-1])))
    return float(a_squared)


def qq_points(samples: Sequence[float], quantile_fn: Callable,
              points: int = 32) -> List[Tuple[float, float]]:
    """(theoretical, empirical) quantile pairs for a Q-Q plot.

    ``quantile_fn`` maps probabilities in (0, 1) to model quantiles
    (e.g. ``dist.ppf`` for scipy distributions).
    """
    data = np.sort(np.asarray(list(samples), dtype=float))
    if data.size == 0:
        raise ValueError("Q-Q needs at least one sample")
    probs = (np.arange(1, points + 1) - 0.5) / points
    empirical = np.quantile(data, probs)
    theoretical = np.asarray([float(quantile_fn(p)) for p in probs])
    return list(zip(theoretical, empirical))


def bootstrap_ks_pvalue(samples: Sequence[float], fitted,
                        refit: Callable[[Sequence[float]], object],
                        rounds: int = 200, seed: int = 0) -> float:
    """Parametric-bootstrap p-value for KS against fitted parameters.

    Repeatedly: sample ``n`` points from the fitted distribution, refit
    the family, measure KS of the resample against its own refit.  The
    p-value is the fraction of bootstrap KS statistics at least as
    large as the observed one.
    """
    data = np.asarray(list(samples), dtype=float)
    if data.size == 0:
        raise ValueError("bootstrap needs at least one sample")
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    observed = ks_one_sample(data, fitted.cdf).statistic
    rng = np.random.default_rng(seed)
    exceed = 0
    for _ in range(rounds):
        resample = fitted.sample(data.size, rng)
        try:
            refitted = refit(resample)
        except Exception:
            continue
        statistic = ks_one_sample(resample, refitted.cdf).statistic
        if statistic >= observed:
            exceed += 1
    return (exceed + 1) / (rounds + 1)
