"""Candidate distributions: fitting, sampling, serialisation.

The parametric family matches the candidate set traffic-modelling
papers (Keddah included) fit against flow statistics: exponential,
lognormal, Weibull, gamma, Pareto, normal and uniform.  Positive-support
families are fitted with location pinned at zero, the standard choice
for sizes and inter-arrival gaps.

Two non-parametric fallbacks complete the set:

* :class:`DegenerateDistribution` — a point mass, for metrics the
  cluster quantises (every HDFS-read flow is exactly one block);
* :class:`EmpiricalDistribution` — inverse-transform sampling from
  stored quantiles, for populations no single family represents (e.g.
  the bimodal full-block + tail-block mix).

Everything serialises to plain dicts so fitted models round-trip
through JSON.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import stats

_POSITIVE_EPS = 1e-9

# name -> (scipy distribution, fit kwargs)
CANDIDATE_FAMILIES: Dict[str, Tuple[Any, Dict[str, Any]]] = {
    "exponential": (stats.expon, {"floc": 0}),
    "lognormal": (stats.lognorm, {"floc": 0}),
    "weibull": (stats.weibull_min, {"floc": 0}),
    "gamma": (stats.gamma, {"floc": 0}),
    "pareto": (stats.pareto, {"floc": 0}),
    "normal": (stats.norm, {}),
    "uniform": (stats.uniform, {}),
}

_POSITIVE_FAMILIES = {"exponential", "lognormal", "weibull", "gamma", "pareto"}


class FittedDistribution:
    """A fitted parametric distribution."""

    def __init__(self, family: str, params: Sequence[float]):
        if family not in CANDIDATE_FAMILIES:
            raise ValueError(f"unknown family {family!r}")
        self.family = family
        self.params = tuple(float(p) for p in params)
        self._dist = CANDIDATE_FAMILIES[family][0]

    @property
    def kind(self) -> str:
        return "parametric"

    def cdf(self, x) -> np.ndarray:
        return self._dist.cdf(np.asarray(x, dtype=float), *self.params)

    def logpdf(self, x) -> np.ndarray:
        return self._dist.logpdf(np.asarray(x, dtype=float), *self.params)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        draws = self._dist.rvs(*self.params, size=n, random_state=rng)
        if self.family in _POSITIVE_FAMILIES:
            draws = np.maximum(draws, _POSITIVE_EPS)
        return np.asarray(draws, dtype=float)

    def mean(self) -> float:
        return float(self._dist.mean(*self.params))

    @property
    def n_free_params(self) -> int:
        # Pinned location does not count as a free parameter.
        pinned = 1 if "floc" in CANDIDATE_FAMILIES[self.family][1] else 0
        return len(self.params) - pinned

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": "parametric", "family": self.family,
                "params": list(self.params)}

    def __repr__(self) -> str:
        rounded = ", ".join(f"{p:.4g}" for p in self.params)
        return f"{self.family}({rounded})"


class DegenerateDistribution:
    """A point mass at ``value`` (zero-variance data)."""

    kind = "degenerate"
    family = "degenerate"

    def __init__(self, value: float):
        self.value = float(value)

    def cdf(self, x) -> np.ndarray:
        return (np.asarray(x, dtype=float) >= self.value).astype(float)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return np.full(n, self.value)

    def mean(self) -> float:
        return self.value

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": "degenerate", "value": self.value}

    def __repr__(self) -> str:
        return f"degenerate({self.value:.4g})"


class EmpiricalDistribution:
    """Inverse-transform sampling from stored quantiles.

    Stores up to ``max_points`` evenly spaced quantiles of the data and
    samples by linear interpolation between them — a compact, serialisable
    approximation of the ECDF.
    """

    kind = "empirical"
    family = "empirical"

    def __init__(self, quantiles: Sequence[float]):
        values = np.asarray(list(quantiles), dtype=float)
        if values.size == 0:
            raise ValueError("empirical distribution needs at least one quantile")
        self.quantiles = np.sort(values)

    @classmethod
    def from_samples(cls, samples: Sequence[float],
                     max_points: int = 256) -> "EmpiricalDistribution":
        data = np.sort(np.asarray(list(samples), dtype=float))
        if data.size == 0:
            raise ValueError("cannot build empirical distribution from no samples")
        if data.size <= max_points:
            return cls(data)
        probs = np.linspace(0.0, 1.0, max_points)
        return cls(np.quantile(data, probs))

    def cdf(self, x) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        return np.searchsorted(self.quantiles, x, side="right") / self.quantiles.size

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        u = rng.random(n)
        grid = np.linspace(0.0, 1.0, self.quantiles.size)
        return np.interp(u, grid, self.quantiles)

    def mean(self) -> float:
        return float(self.quantiles.mean())

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": "empirical", "quantiles": [float(q) for q in self.quantiles]}

    def __repr__(self) -> str:
        return f"empirical(n={self.quantiles.size})"


def fit_family(family: str, samples: Sequence[float]) -> FittedDistribution:
    """MLE-fit one family to the samples.

    Raises ``ValueError`` for empty data; positive-support families clip
    non-positive samples to a tiny epsilon first (zero-duration gaps are
    common when pipeline hops start simultaneously).
    """
    dist, fit_kwargs = CANDIDATE_FAMILIES[family]
    data = np.asarray(list(samples), dtype=float)
    if data.size == 0:
        raise ValueError("cannot fit a distribution to no samples")
    if family in _POSITIVE_FAMILIES:
        data = np.maximum(data, _POSITIVE_EPS)
    params = dist.fit(data, **fit_kwargs)
    return FittedDistribution(family, params)


def distribution_from_dict(data: Dict[str, Any]):
    """Inverse of every distribution's ``to_dict``."""
    kind = data.get("kind")
    if kind == "parametric":
        return FittedDistribution(data["family"], data["params"])
    if kind == "degenerate":
        return DegenerateDistribution(data["value"])
    if kind == "empirical":
        return EmpiricalDistribution(data["quantiles"])
    if kind == "mixture":
        from repro.modeling.mixture import LognormalMixture

        return LognormalMixture.from_dict(data)
    raise ValueError(f"unknown distribution payload: {data!r}")
