"""Unit constants and helpers.

Conventions used across the whole repository:

* sizes in **bytes** (Hadoop-style binary multiples for block sizes),
* time in **seconds**,
* rates in **bytes per second** (link speeds are quoted in bits/s and
  converted at the edge of the system, here).
"""

from __future__ import annotations

KB = 1024
MB = 1024 * KB
GB = 1024 * MB
TB = 1024 * GB

KBPS = 1_000 / 8.0
MBPS = 1_000_000 / 8.0
GBPS = 1_000_000_000 / 8.0


def gbit_to_bytes_per_s(gbits: float) -> float:
    """Convert a link speed in Gbit/s to bytes/s."""
    return gbits * GBPS


def fmt_bytes(size: float) -> str:
    """Human-readable byte count (binary multiples), e.g. ``1.5 GiB``."""
    magnitude = float(size)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(magnitude) < 1024.0 or unit == "TiB":
            return f"{magnitude:.2f} {unit}" if unit != "B" else f"{int(magnitude)} B"
        magnitude /= 1024.0
    raise AssertionError("unreachable")


def fmt_rate(rate_bytes_per_s: float) -> str:
    """Human-readable rate in bits/s, e.g. ``1.00 Gbit/s``."""
    bits = rate_bytes_per_s * 8.0
    for unit in ("bit/s", "Kbit/s", "Mbit/s", "Gbit/s"):
        if abs(bits) < 1000.0 or unit == "Gbit/s":
            return f"{bits:.2f} {unit}"
        bits /= 1000.0
    raise AssertionError("unreachable")
