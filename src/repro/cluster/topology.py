"""Datacenter topologies for the simulated cluster.

Four topology families are supported, covering the deployments Hadoop
traffic studies typically use:

* ``star`` — every host on one non-blocking switch (the single-rack
  testbed case),
* ``tree`` — one top-of-rack switch per rack, all ToRs on a core switch,
  with configurable oversubscription,
* ``leafspine`` — ToR (leaf) switches fully meshed to a spine layer,
  ECMP across spines,
* ``fattree`` — a k-ary fat-tree built from the pod construction,
* ``jellyfish`` — ToRs wired as a random regular graph (Singla et al.,
  NSDI'12); paths use the graph's shortest routes.

A topology is a :class:`networkx.Graph` whose nodes are :class:`Host` /
:class:`Switch` objects and whose edges carry a ``capacity`` attribute
in bytes/s.  Routing (:meth:`Topology.path`) returns the hop sequence
for a flow; equal-cost choices are broken by a stable hash of the
(src, dst) pair, i.e. flow-level ECMP.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.simkit.rng import stable_hash


@dataclass(frozen=True)
class Host:
    """A worker machine: runs a DataNode and a NodeManager.

    Nodes key every hot dict in the fluid engine (link tuples, byte
    accounting), so the field-tuple hash is precomputed once instead of
    being re-derived on each lookup.  The cached value equals the
    dataclass-generated ``hash((name, rack))``, keeping set/dict
    iteration orders identical to the unoptimised definition.
    """

    name: str
    rack: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash((self.name, self.rack)))

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Switch:
    """A network switch (ToR, spine, core or aggregation)."""

    name: str
    tier: str  # "tor" | "spine" | "core" | "agg"

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash((self.name, self.tier)))

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        return self.name


@dataclass
class Topology:
    """A wired cluster: hosts, switches and capacitated edges."""

    graph: nx.Graph
    hosts: List[Host]
    kind: str
    _paths: Dict[Tuple[str, str], List[List[object]]] = field(default_factory=dict, repr=False)
    _selected_paths: Dict[Tuple[str, str], List[object]] = field(default_factory=dict, repr=False)
    _host_by_name: Dict[str, Host] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self._host_by_name = {host.name: host for host in self.hosts}

    @property
    def racks(self) -> List[int]:
        """Sorted list of rack ids present in the topology."""
        return sorted({host.rack for host in self.hosts})

    def host(self, name: str) -> Host:
        """Look a host up by name."""
        return self._host_by_name[name]

    def hosts_in_rack(self, rack: int) -> List[Host]:
        return [host for host in self.hosts if host.rack == rack]

    def path(self, src: Host, dst: Host) -> List[object]:
        """Node sequence (hosts and switches) from ``src`` to ``dst``.

        Among equal-cost shortest paths the choice is a stable hash of
        the endpoint names, which models flow-level ECMP: the same pair
        always uses the same path, different pairs spread over paths.
        """
        if src == dst:
            return [src]
        key = (src.name, dst.name)
        # The *selected* path is cached too: ECMP is per-pair stable, so
        # the stable_hash draw need only ever happen once per pair.
        selected = self._selected_paths.get(key)
        if selected is not None:
            return selected
        candidates = self._paths.get(key)
        if candidates is None:
            candidates = list(
                itertools.islice(nx.all_shortest_paths(self.graph, src, dst), 16))
            self._paths[key] = candidates
        index = stable_hash(f"{src.name}->{dst.name}") % len(candidates)
        selected = candidates[index]
        self._selected_paths[key] = selected
        return selected

    def edges_on_path(self, nodes: List[object]) -> List[Tuple[object, object]]:
        """The (u, v) directed hops of a node path."""
        return list(zip(nodes[:-1], nodes[1:]))

    def capacity(self, u: object, v: object) -> float:
        """Capacity of the edge between two adjacent nodes, bytes/s."""
        return self.graph.edges[u, v]["capacity"]

    def bisection_links(self) -> List[Tuple[object, object]]:
        """Edges crossing between switch tiers (useful for utilisation stats)."""
        crossing = []
        for u, v in self.graph.edges:
            if isinstance(u, Switch) and isinstance(v, Switch):
                crossing.append((u, v))
        return crossing


def build_topology(kind: str, num_hosts: int, hosts_per_rack: int = 8,
                   host_gbps: float = 1.0, uplink_gbps: Optional[float] = None,
                   oversubscription: float = 1.0, fattree_k: Optional[int] = None) -> Topology:
    """Build one of the supported topology families.

    Parameters
    ----------
    kind:
        ``star``, ``tree``, ``leafspine`` or ``fattree``.
    num_hosts:
        Worker count.  For ``fattree`` this must not exceed ``k^3/4``.
    hosts_per_rack:
        Hosts behind each ToR for ``tree``/``leafspine``.
    host_gbps:
        Host access link speed, Gbit/s.
    uplink_gbps:
        ToR uplink speed; defaults to the aggregate host bandwidth of a
        rack divided by ``oversubscription``.
    oversubscription:
        Rack oversubscription ratio used when ``uplink_gbps`` is None.
    """
    if num_hosts < 1:
        raise ValueError(f"need at least one host, got {num_hosts}")
    if host_gbps <= 0:
        raise ValueError(f"host_gbps must be positive, got {host_gbps}")
    builders = {
        "star": _build_star,
        "tree": _build_tree,
        "leafspine": _build_leafspine,
        "fattree": _build_fattree,
        "jellyfish": _build_jellyfish,
    }
    builder = builders.get(kind)
    if builder is None:
        raise ValueError(f"unknown topology kind {kind!r}; expected one of {sorted(builders)}")
    host_rate = host_gbps * 1e9 / 8.0
    if uplink_gbps is None:
        uplink_rate = host_rate * hosts_per_rack / max(oversubscription, 1e-9)
    else:
        uplink_rate = uplink_gbps * 1e9 / 8.0
    return builder(num_hosts, hosts_per_rack, host_rate, uplink_rate, fattree_k)


def _build_star(num_hosts: int, hosts_per_rack: int, host_rate: float,
                uplink_rate: float, fattree_k: Optional[int]) -> Topology:
    graph = nx.Graph()
    core = Switch("sw-core", tier="core")
    graph.add_node(core)
    hosts = []
    for index in range(num_hosts):
        host = Host(f"h{index:03d}", rack=0)
        hosts.append(host)
        graph.add_edge(host, core, capacity=host_rate)
    return Topology(graph=graph, hosts=hosts, kind="star")


def _build_tree(num_hosts: int, hosts_per_rack: int, host_rate: float,
                uplink_rate: float, fattree_k: Optional[int]) -> Topology:
    graph = nx.Graph()
    core = Switch("sw-core", tier="core")
    graph.add_node(core)
    hosts = []
    num_racks = (num_hosts + hosts_per_rack - 1) // hosts_per_rack
    for rack in range(num_racks):
        tor = Switch(f"sw-tor{rack:02d}", tier="tor")
        graph.add_edge(tor, core, capacity=uplink_rate)
        for slot in range(hosts_per_rack):
            index = rack * hosts_per_rack + slot
            if index >= num_hosts:
                break
            host = Host(f"h{index:03d}", rack=rack)
            hosts.append(host)
            graph.add_edge(host, tor, capacity=host_rate)
    return Topology(graph=graph, hosts=hosts, kind="tree")


def _build_leafspine(num_hosts: int, hosts_per_rack: int, host_rate: float,
                     uplink_rate: float, fattree_k: Optional[int]) -> Topology:
    graph = nx.Graph()
    num_racks = (num_hosts + hosts_per_rack - 1) // hosts_per_rack
    num_spines = max(2, min(4, num_racks))
    spines = [Switch(f"sw-spine{i}", tier="spine") for i in range(num_spines)]
    hosts = []
    per_spine_rate = uplink_rate / num_spines
    for rack in range(num_racks):
        leaf = Switch(f"sw-leaf{rack:02d}", tier="tor")
        for spine in spines:
            graph.add_edge(leaf, spine, capacity=per_spine_rate)
        for slot in range(hosts_per_rack):
            index = rack * hosts_per_rack + slot
            if index >= num_hosts:
                break
            host = Host(f"h{index:03d}", rack=rack)
            hosts.append(host)
            graph.add_edge(host, leaf, capacity=host_rate)
    return Topology(graph=graph, hosts=hosts, kind="leafspine")


def _build_fattree(num_hosts: int, hosts_per_rack: int, host_rate: float,
                   uplink_rate: float, fattree_k: Optional[int]) -> Topology:
    k = fattree_k or _smallest_even_k(num_hosts)
    if k % 2 != 0:
        raise ValueError(f"fat-tree k must be even, got {k}")
    if num_hosts > k ** 3 // 4:
        raise ValueError(f"k={k} fat-tree supports at most {k ** 3 // 4} hosts, asked {num_hosts}")
    graph = nx.Graph()
    cores = [Switch(f"sw-core{i:02d}", tier="core") for i in range((k // 2) ** 2)]
    hosts: List[Host] = []
    host_index = 0
    for pod in range(k):
        aggs = [Switch(f"sw-agg{pod:02d}-{i}", tier="agg") for i in range(k // 2)]
        edges = [Switch(f"sw-edge{pod:02d}-{i}", tier="tor") for i in range(k // 2)]
        for agg_index, agg in enumerate(aggs):
            for core_slot in range(k // 2):
                core = cores[agg_index * (k // 2) + core_slot]
                graph.add_edge(agg, core, capacity=host_rate)
            for edge in edges:
                graph.add_edge(agg, edge, capacity=host_rate)
        for edge_index, edge in enumerate(edges):
            rack = pod * (k // 2) + edge_index
            for _ in range(k // 2):
                if host_index >= num_hosts:
                    break
                host = Host(f"h{host_index:03d}", rack=rack)
                hosts.append(host)
                graph.add_edge(host, edge, capacity=host_rate)
                host_index += 1
    return Topology(graph=graph, hosts=hosts, kind="fattree")


def _build_jellyfish(num_hosts: int, hosts_per_rack: int, host_rate: float,
                     uplink_rate: float, fattree_k: Optional[int]) -> Topology:
    num_racks = (num_hosts + hosts_per_rack - 1) // hosts_per_rack
    if num_racks < 2:
        # Degenerate single-switch case.
        return _build_star(num_hosts, hosts_per_rack, host_rate,
                           uplink_rate, fattree_k)
    # Random regular inter-switch degree: as many ports as fit, >= 2.
    degree = min(max(2, num_racks // 2), num_racks - 1)
    if (degree * num_racks) % 2 != 0:
        degree = max(2, degree - 1) if degree > 2 else degree
        if (degree * num_racks) % 2 != 0:
            degree += 1
    seed = stable_hash(f"jellyfish-{num_racks}-{degree}")
    switch_graph = nx.random_regular_graph(degree, num_racks, seed=seed)
    # Regenerate until connected (regular graphs of degree >= 3 almost
    # always are; degree-2 rings always are).
    attempts = 0
    while not nx.is_connected(switch_graph) and attempts < 16:
        attempts += 1
        switch_graph = nx.random_regular_graph(degree, num_racks,
                                               seed=seed + attempts)
    if not nx.is_connected(switch_graph):
        raise RuntimeError("failed to build a connected jellyfish graph")
    graph = nx.Graph()
    switches = [Switch(f"sw-jf{rack:02d}", tier="tor") for rack in range(num_racks)]
    per_port_rate = uplink_rate / degree
    for u, v in switch_graph.edges:
        graph.add_edge(switches[u], switches[v], capacity=per_port_rate)
    hosts: List[Host] = []
    for rack in range(num_racks):
        for slot in range(hosts_per_rack):
            index = rack * hosts_per_rack + slot
            if index >= num_hosts:
                break
            host = Host(f"h{index:03d}", rack=rack)
            hosts.append(host)
            graph.add_edge(host, switches[rack], capacity=host_rate)
    return Topology(graph=graph, hosts=hosts, kind="jellyfish")


def _smallest_even_k(num_hosts: int) -> int:
    k = 2
    while k ** 3 // 4 < num_hosts:
        k += 2
    return k
