"""Well-known Hadoop service ports.

Keddah's capture stage classifies packets into traffic components by
the service ports of Hadoop daemons.  The simulator stamps every flow
with realistic src/dst ports so the classifier operates exactly as it
would on a real pcap, and the simulator's ground-truth labels are used
only to *validate* the classifier in tests.

Values are the Hadoop 2.x defaults.
"""

from __future__ import annotations

from repro.simkit.rng import stable_hash

NAMENODE_RPC = 8020        # fs.defaultFS — DFSClient metadata + DN heartbeats
DATANODE_XFER = 50010      # dfs.datanode.address — block reads/writes
SHUFFLE_HANDLER = 13562    # mapreduce.shuffle.port — reducer fetches
RM_SCHEDULER = 8030        # yarn.resourcemanager.scheduler.address — AM heartbeats
RM_TRACKER = 8031          # yarn.resourcemanager.resource-tracker.address — NM heartbeats
RM_CLIENT = 8032           # yarn.resourcemanager.address — job submission
NM_IPC = 45454             # yarn.nodemanager.address — container launch

EPHEMERAL_BASE = 49152
EPHEMERAL_RANGE = 16384

SERVICE_PORTS = {
    NAMENODE_RPC: "namenode-rpc",
    DATANODE_XFER: "datanode-transfer",
    SHUFFLE_HANDLER: "shuffle-handler",
    RM_SCHEDULER: "rm-scheduler",
    RM_TRACKER: "rm-tracker",
    RM_CLIENT: "rm-client",
    NM_IPC: "nm-ipc",
}


def ephemeral_port(tag: str) -> int:
    """A deterministic ephemeral port for a connection tag.

    Real clients get theirs from the OS; we derive one stably from the
    connection identity so repeated runs produce identical traces.
    """
    return EPHEMERAL_BASE + stable_hash(tag) % EPHEMERAL_RANGE
