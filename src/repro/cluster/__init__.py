"""Cluster substrate: racks, hosts, switches, topologies and configs.

This package defines the *static* shape of the simulated Hadoop
deployment — which hosts exist, how they are wired, and the Hadoop
configuration knobs the paper varies (block size, replication factor,
reducer count, scheduler, ...).  The dynamic behaviour lives in
:mod:`repro.net` (links and flows), :mod:`repro.hdfs` and
:mod:`repro.yarn`.
"""

from repro.cluster.config import ClusterSpec, HadoopConfig
from repro.cluster.topology import Host, Switch, Topology, build_topology

__all__ = [
    "ClusterSpec",
    "HadoopConfig",
    "Host",
    "Switch",
    "Topology",
    "build_topology",
]
