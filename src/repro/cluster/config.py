"""Cluster and Hadoop configuration objects.

:class:`ClusterSpec` describes the hardware (nodes, racks, links, disk
and CPU rates); :class:`HadoopConfig` the Hadoop-level knobs the paper's
evaluation varies (block size, replication factor, reducer count,
reducer slow-start, scheduler).  Both serialise to plain dicts so each
captured :class:`~repro.capture.records.JobTrace` can carry the exact
configuration it was produced under.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict

from repro.cluster.units import MB


@dataclass
class ClusterSpec:
    """Hardware description of the simulated cluster.

    Defaults model the kind of commodity testbed used in the paper:
    1 Gbit/s access links, a rack-per-8-hosts tree, ~150 MB/s disks.
    """

    num_nodes: int = 16
    hosts_per_rack: int = 8
    topology: str = "tree"
    host_gbps: float = 1.0
    oversubscription: float = 1.0
    disk_read_rate: float = 150.0 * MB
    disk_write_rate: float = 120.0 * MB
    containers_per_node: int = 4
    # Per-hop propagation/processing latency in seconds; adds a 1.5-RTT
    # connection-setup cost per flow (see FlowNetwork).  0 disables it.
    hop_latency_s: float = 0.0
    # Heterogeneity: per-node compute speed factors are drawn from a
    # mean-1 lognormal with this sigma (0 = homogeneous cluster).
    # Slow nodes stretch their tasks' compute phases.
    node_speed_sigma: float = 0.0
    # Transport backend the cluster emits flows against: "fluid" (the
    # reference max-min engine), "analytic" (closed-form per-wave
    # approximation) or "record" (zero-cost intent recorder).  See
    # repro.net.backend.
    backend: str = "fluid"
    # Fluid-engine implementation: "scalar" (dict/heap reference) or
    # "vectorized" (numpy arrays; same water-filling, bit-identical
    # captures, faster at scale).  Ignored by non-fluid backends.
    engine: str = "scalar"

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {self.num_nodes}")
        if self.hosts_per_rack < 1:
            raise ValueError(f"hosts_per_rack must be >= 1, got {self.hosts_per_rack}")
        if self.containers_per_node < 1:
            raise ValueError(f"containers_per_node must be >= 1, got {self.containers_per_node}")
        if self.disk_read_rate <= 0 or self.disk_write_rate <= 0:
            raise ValueError("disk rates must be positive")
        if self.hop_latency_s < 0:
            raise ValueError("hop_latency_s must be >= 0")
        if self.node_speed_sigma < 0:
            raise ValueError("node_speed_sigma must be >= 0")
        # Lazy import: cluster.config must stay importable from repro.net.
        from repro.net.backend import BACKEND_NAMES, ENGINE_NAMES
        if self.backend not in BACKEND_NAMES:
            raise ValueError(
                f"unknown backend {self.backend!r}; expected one of {BACKEND_NAMES}")
        if self.engine not in ENGINE_NAMES:
            raise ValueError(
                f"unknown engine {self.engine!r}; expected one of {ENGINE_NAMES}")

    @property
    def num_racks(self) -> int:
        return (self.num_nodes + self.hosts_per_rack - 1) // self.hosts_per_rack

    def to_dict(self) -> Dict[str, Any]:
        # The engine is deliberately omitted: scalar and vectorized
        # produce byte-identical captures, so traces and store keys
        # must not fork on which one happened to run.
        data = asdict(self)
        data.pop("engine", None)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ClusterSpec":
        return cls(**data)


@dataclass
class HadoopConfig:
    """Hadoop-level configuration (the paper's experiment axes).

    Attribute names follow the Hadoop properties they stand in for:

    ============================ =====================================
    attribute                    Hadoop property
    ============================ =====================================
    ``block_size``               ``dfs.blocksize``
    ``replication``              ``dfs.replication``
    ``num_reducers``             ``mapreduce.job.reduces``
    ``slowstart``                ``mapreduce.job.reduce.slowstart.
                                 completedmaps``
    ``shuffle_parallel_copies``  ``mapreduce.reduce.shuffle.parallelcopies``
    ``scheduler``                ``yarn.resourcemanager.scheduler.class``
    ``speculative``              ``mapreduce.map|reduce.speculative``
    ``compress_map_output``      ``mapreduce.map.output.compress``
    ``compression_ratio``        codec-dependent (snappy ~0.45 on text)
    ============================ =====================================
    """

    block_size: int = 128 * MB
    replication: int = 3
    num_reducers: int = 8
    slowstart: float = 0.05
    shuffle_parallel_copies: int = 5
    scheduler: str = "fifo"
    speculative: bool = False
    compress_map_output: bool = False
    compression_ratio: float = 0.45
    # Transient stragglers: each task attempt is slowed by
    # ``straggler_slowdown`` with probability ``straggler_prob``
    # (GC pauses, disk contention, noisy neighbours).  Speculative
    # execution exists to cut exactly this tail.
    straggler_prob: float = 0.0
    straggler_slowdown: float = 5.0
    nm_heartbeat_s: float = 1.0
    dn_heartbeat_s: float = 3.0
    heartbeat_bytes: int = 512
    # Locality-aware map-to-container binding (delay scheduling's steady
    # state).  Off = bind maps in queue order, the A1 ablation baseline.
    locality_aware: bool = True
    # Delay scheduling (Zaharia et al., EuroSys'10): with no node-local
    # map for an offered container, decline it for up to this many
    # seconds of the map phase (2x for the rack-local tier) before
    # falling back.  0 = immediate fallback.  Maps onto
    # yarn.scheduler.capacity.node-locality-delay in spirit.
    delay_scheduling_s: float = 0.0
    # How locality-free containers (the AM and reduce tasks) are bound
    # to hosts.  "grant": whichever node's heartbeat delivers a
    # container first (YARN's behaviour — placement then depends on
    # data-plane timing through the heartbeat the grant lands on).
    # "keyed": AM and reducers are pinned up front to uniformly drawn
    # hosts (the paper's reducer-placement model) and only accept
    # containers there, making the flow population invariant to
    # transport-backend timing.  Maps keep locality-driven binding in
    # both modes.  See DESIGN.md "Transport backends".
    placement_mode: str = "grant"
    extra: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.block_size < 1 * MB:
            raise ValueError(f"block_size must be >= 1 MiB, got {self.block_size}")
        if self.replication < 1:
            raise ValueError(f"replication must be >= 1, got {self.replication}")
        if self.num_reducers < 0:
            raise ValueError(f"num_reducers must be >= 0, got {self.num_reducers}")
        if not 0.0 <= self.slowstart <= 1.0:
            raise ValueError(f"slowstart must be in [0, 1], got {self.slowstart}")
        if self.shuffle_parallel_copies < 1:
            raise ValueError("shuffle_parallel_copies must be >= 1")
        if self.scheduler not in ("fifo", "fair", "capacity", "drf"):
            raise ValueError(f"unknown scheduler {self.scheduler!r}")
        if self.delay_scheduling_s < 0:
            raise ValueError("delay_scheduling_s must be >= 0")
        if self.placement_mode not in ("grant", "keyed"):
            raise ValueError(
                f"unknown placement_mode {self.placement_mode!r}; "
                f"expected 'grant' or 'keyed'")
        if not 0.0 < self.compression_ratio <= 1.0:
            raise ValueError("compression_ratio must be in (0, 1]")
        if not 0.0 <= self.straggler_prob <= 1.0:
            raise ValueError("straggler_prob must be in [0, 1]")
        if self.straggler_slowdown < 1.0:
            raise ValueError("straggler_slowdown must be >= 1")

    def replace(self, **overrides: Any) -> "HadoopConfig":
        """Return a copy with fields overridden (config sweeps)."""
        data = self.to_dict()
        data.update(overrides)
        return HadoopConfig.from_dict(data)

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "HadoopConfig":
        return cls(**data)
