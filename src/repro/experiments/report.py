"""Markdown report generation for the evaluation suite.

``generate_report`` runs any subset of the E/A experiments and renders
one self-contained markdown document (the machinery behind the
recorded-output section of ``EXPERIMENTS.md`` and the CLI's
``keddah experiment ... --markdown``).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.analysis.tables import render_table
from repro.experiments import figures

_DESCRIPTIONS: Dict[str, str] = {
    "e01": "Traffic volume breakdown by component per job type",
    "e02": "Total traffic vs input size",
    "e03": "Flow size CDFs per component with fitted distributions",
    "e04": "Flow inter-arrival CDFs per component with fits",
    "e05": "Best-fit distribution table per (job, component, metric)",
    "e06": "Flow count scaling vs input size and reducer count",
    "e07": "HDFS write traffic vs replication factor",
    "e08": "Flow-size population vs block size",
    "e09": "Scheduler comparison with concurrent jobs",
    "e10": "Model validation: synthetic vs captured populations",
    "e11": "Replay validation: captured vs generated traffic",
    "e12": "Traffic and completion time vs cluster size",
    "e13": "Node-failure recovery traffic",
    "e14": "Multi-tenant interference vs isolated runs",
    "e15": "Traffic over time (phase profile)",
    "e16": "Leave-one-out cross-validation of scaling laws",
    "e17": "Replay under background cross-traffic (interference)",
    "e18": "Model fidelity vs number of training input sizes",
    "e19": "Flow summary statistics per (job, component)",
    "e20": "Capture sampling (1-in-N) vs model input fidelity",
    "a1": "Ablation: locality-aware map binding",
    "a2": "Ablation: reducer slow-start",
    "a3": "Ablation: max-min sharing vs uncontended bound",
    "a4": "Ablation: delay scheduling (locality wait)",
    "a5": "Ablation: speculative execution under stragglers",
}


def generate_report(ids: Optional[Sequence[str]] = None,
                    title: str = "Keddah evaluation report") -> str:
    """Run experiments and return the markdown document."""
    selected = sorted(figures.ALL_EXPERIMENTS) if ids is None else list(ids)
    unknown = [i for i in selected if i not in figures.ALL_EXPERIMENTS]
    if unknown:
        raise ValueError(f"unknown experiment ids: {unknown}")
    sections: List[str] = [f"# {title}", ""]
    for experiment_id in selected:
        description = _DESCRIPTIONS.get(experiment_id, "")
        sections.append(f"## {experiment_id.upper()} — {description}")
        sections.append("")
        sections.append("```")
        for table in figures.ALL_EXPERIMENTS[experiment_id]():
            sections.append(render_table(table))
            sections.append("")
        sections.append("```")
        sections.append("")
    return "\n".join(sections)


def write_report(path: str | Path, ids: Optional[Sequence[str]] = None,
                 title: str = "Keddah evaluation report") -> Path:
    """Write :func:`generate_report` output to ``path``."""
    path = Path(path)
    path.write_text(generate_report(ids, title=title), encoding="utf-8")
    return path
