"""Canonical campaign parameters and a process-local capture cache.

The paper's evaluation axes are job type × input size × cluster
configuration.  The defaults here pick magnitudes that keep every
experiment regenerable in seconds while preserving the ratios that
matter (blocks per input, reducers per node, oversubscription):

* 8 worker nodes in 2 racks, 1 Gbit/s access links,
* 32 MiB blocks (so a 1 GiB input has 32 splits, as a 4 GiB input
  would at 128 MiB),
* 4 reducers, replication 3, FIFO scheduler,
* input sizes {0.25, 0.5, 1, 2} GiB,
* the five-job HiBench-style mix.

Captures are memoised per process keyed by their full parameter set —
benchmarks re-using the same capture don't pay for re-simulation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.capture.records import JobTrace
from repro.cluster.config import ClusterSpec, HadoopConfig
from repro.cluster.units import MB
from repro.jobs import make_job
from repro.mapreduce.cluster import HadoopCluster
from repro.mapreduce.result import JobResult

DEFAULT_JOBS = ["terasort", "wordcount", "grep", "pagerank", "kmeans"]
DEFAULT_SIZES_GB = [0.25, 0.5, 1.0, 2.0]
DEFAULT_SEED = 42


@dataclass(frozen=True)
class CampaignConfig:
    """One point in the experiment space."""

    nodes: int = 8
    hosts_per_rack: int = 4
    block_mb: int = 32
    num_reducers: int = 4
    replication: int = 3
    scheduler: str = "fifo"
    slowstart: float = 0.05
    topology: str = "tree"
    oversubscription: float = 1.0
    containers_per_node: int = 4
    speculative: bool = False

    def cluster_spec(self) -> ClusterSpec:
        return ClusterSpec(num_nodes=self.nodes,
                           hosts_per_rack=self.hosts_per_rack,
                           topology=self.topology,
                           oversubscription=self.oversubscription,
                           containers_per_node=self.containers_per_node)

    def hadoop_config(self) -> HadoopConfig:
        return HadoopConfig(block_size=self.block_mb * MB,
                            num_reducers=self.num_reducers,
                            replication=self.replication,
                            scheduler=self.scheduler,
                            slowstart=self.slowstart,
                            speculative=self.speculative)


_CACHE: Dict[str, Tuple[JobResult, JobTrace]] = {}


def _cache_key(job: str, input_gb: float, seed: int, campaign: CampaignConfig,
               job_kwargs: Dict[str, Any]) -> str:
    return json.dumps({
        "job": job, "gb": input_gb, "seed": seed,
        "campaign": campaign.__dict__, "job_kwargs": job_kwargs,
    }, sort_keys=True, default=str)


def capture(job: str, input_gb: float, seed: int = DEFAULT_SEED,
            campaign: Optional[CampaignConfig] = None,
            **job_kwargs) -> Tuple[JobResult, JobTrace]:
    """One cached capture run: (result, trace)."""
    campaign = campaign or CampaignConfig()
    key = _cache_key(job, input_gb, seed, campaign, job_kwargs)
    hit = _CACHE.get(key)
    if hit is not None:
        return hit
    cluster = HadoopCluster(campaign.cluster_spec(), campaign.hadoop_config(),
                            seed=seed)
    spec = make_job(job, input_gb=input_gb, **job_kwargs)
    results, traces = cluster.run([spec])
    _CACHE[key] = (results[0], traces[0])
    return _CACHE[key]


def capture_campaign(job: str, sizes_gb: Optional[List[float]] = None,
                     seed: int = DEFAULT_SEED,
                     campaign: Optional[CampaignConfig] = None,
                     **job_kwargs) -> List[JobTrace]:
    """Traces of one job kind across the size sweep (cached per size)."""
    sizes_gb = sizes_gb or DEFAULT_SIZES_GB
    return [capture(job, gb, seed=seed + index, campaign=campaign,
                    **job_kwargs)[1]
            for index, gb in enumerate(sizes_gb)]


def clear_cache() -> None:
    """Drop memoised captures (tests use this to force re-simulation)."""
    _CACHE.clear()
