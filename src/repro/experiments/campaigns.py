"""Canonical campaign parameters and the capture cache hierarchy.

The paper's evaluation axes are job type × input size × cluster
configuration.  The defaults here pick magnitudes that keep every
experiment regenerable in seconds while preserving the ratios that
matter (blocks per input, reducers per node, oversubscription):

* 8 worker nodes in 2 racks, 1 Gbit/s access links,
* 32 MiB blocks (so a 1 GiB input has 32 splits, as a 4 GiB input
  would at 128 MiB),
* 4 reducers, replication 3, FIFO scheduler,
* input sizes {0.25, 0.5, 1, 2} GiB,
* the five-job HiBench-style mix.

Captures resolve through a two-level cache: a bounded process-local
LRU memo (fast path for benchmarks sharing inputs within one process)
backed by the optional persistent content-addressed store
(:mod:`repro.experiments.store`), shared across processes and runs.
Both levels key off the same canonical capture-point dict
(:meth:`~repro.experiments.runner.CapturePoint.key_dict`), so they can
never disagree about what "the same capture" means.  The store is
enabled by :func:`set_store` or the ``KEDDAH_CAPTURE_STORE``
environment variable.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.capture.records import JobTrace
from repro.cluster.config import ClusterSpec, HadoopConfig
from repro.cluster.units import MB
from repro.mapreduce.result import JobResult
from repro.experiments.store import CaptureStore, store_from_env

DEFAULT_JOBS = ["terasort", "wordcount", "grep", "pagerank", "kmeans"]
DEFAULT_SIZES_GB = [0.25, 0.5, 1.0, 2.0]
DEFAULT_SEED = 42

#: Cap on memoised captures held in memory.  Long sweeps (hundreds of
#: points) would otherwise pin every trace; evicted entries remain one
#: store read away when a persistent store is configured.
MEMO_CAPACITY = 256


@dataclass(frozen=True)
class CampaignConfig:
    """One point in the experiment space."""

    nodes: int = 8
    hosts_per_rack: int = 4
    block_mb: int = 32
    num_reducers: int = 4
    replication: int = 3
    scheduler: str = "fifo"
    slowstart: float = 0.05
    topology: str = "tree"
    oversubscription: float = 1.0
    containers_per_node: int = 4
    speculative: bool = False
    backend: str = "fluid"
    placement_mode: str = "grant"
    # Fluid-engine implementation (scalar/vectorized).  Not part of
    # to_dict(): both engines produce byte-identical captures, so runs
    # share cache/store entries regardless of which one executed.
    engine: str = "scalar"

    def cluster_spec(self) -> ClusterSpec:
        return ClusterSpec(num_nodes=self.nodes,
                           hosts_per_rack=self.hosts_per_rack,
                           topology=self.topology,
                           oversubscription=self.oversubscription,
                           containers_per_node=self.containers_per_node,
                           backend=self.backend,
                           engine=self.engine)

    def hadoop_config(self) -> HadoopConfig:
        return HadoopConfig(block_size=self.block_mb * MB,
                            num_reducers=self.num_reducers,
                            replication=self.replication,
                            scheduler=self.scheduler,
                            slowstart=self.slowstart,
                            speculative=self.speculative,
                            placement_mode=self.placement_mode)

    def to_dict(self) -> Dict[str, Any]:
        """Canonical field dict: explicit values, stable key order.

        This — not ``__dict__`` — is the cache-key source, shared by
        the in-memory memo and the on-disk store's SHA-256 address.
        """
        return {
            "nodes": self.nodes,
            "hosts_per_rack": self.hosts_per_rack,
            "block_mb": self.block_mb,
            "num_reducers": self.num_reducers,
            "replication": self.replication,
            "scheduler": self.scheduler,
            "slowstart": self.slowstart,
            "topology": self.topology,
            "oversubscription": self.oversubscription,
            "containers_per_node": self.containers_per_node,
            "speculative": self.speculative,
            "backend": self.backend,
            "placement_mode": self.placement_mode,
        }


# -- the process-local memo (level 1) ------------------------------------------------


class _LruMemo:
    """Insertion-bounded LRU over capture keys (observable, clearable)."""

    def __init__(self, capacity: int = MEMO_CAPACITY):
        self.capacity = capacity
        self._entries: "OrderedDict[str, Tuple[JobResult, JobTrace]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: str) -> Optional[Tuple[JobResult, JobTrace]]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: str, value: Tuple[JobResult, JobTrace]) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> Dict[str, int]:
        return {"entries": len(self._entries), "capacity": self.capacity,
                "hits": self.hits, "misses": self.misses,
                "evictions": self.evictions}


_MEMO = _LruMemo()

# Level 2: the persistent store.  ``False`` = not yet resolved (lazy
# env lookup on first use); ``None`` = explicitly disabled.
_STORE: Any = False


def get_store() -> Optional[CaptureStore]:
    """The active persistent store (lazily from ``KEDDAH_CAPTURE_STORE``)."""
    global _STORE
    if _STORE is False:
        _STORE = store_from_env()
    return _STORE


def set_store(store: Optional[CaptureStore]) -> Optional[CaptureStore]:
    """Install (or disable, with ``None``) the persistent capture store."""
    global _STORE
    _STORE = store
    return store


def cache_stats() -> Dict[str, Any]:
    """Both cache levels' counters in one observable dict."""
    stats: Dict[str, Any] = {"memo": _MEMO.stats()}
    store = get_store()
    if store is not None:
        stats["store"] = store.stats.to_dict()
    return stats


def clear_cache() -> None:
    """Drop memoised captures (tests use this to force re-simulation).

    Only the in-memory level is dropped; the persistent store — when
    one is configured — is cleared explicitly via
    ``CaptureStore.clear`` (CLI: ``keddah store clear``).
    """
    _MEMO.clear()


def make_runner(workers: int = 1, telemetry=None, **supervision):
    """A CampaignRunner wired to the process memo and active store.

    ``supervision`` passes through the runner's fault-tolerance knobs
    (``retry_policy``, ``quarantine``, ``journal``, ``strict``,
    ``pool_failure_limit`` — see
    :class:`repro.experiments.runner.CampaignRunner`).
    """
    from repro.experiments.runner import CampaignRunner

    return CampaignRunner(store=get_store(), workers=workers,
                          memo_get=_MEMO.get, memo_put=_MEMO.put,
                          telemetry=telemetry, **supervision)


# -- capture entry points ------------------------------------------------------------


def capture(job: str, input_gb: float, seed: int = DEFAULT_SEED,
            campaign: Optional[CampaignConfig] = None,
            **job_kwargs) -> Tuple[JobResult, JobTrace]:
    """One cached capture run: (result, trace)."""
    from repro.experiments.runner import CapturePoint

    campaign = campaign or CampaignConfig()
    point = CapturePoint.from_campaign(job, input_gb, seed, campaign,
                                       job_kwargs)
    return make_runner().run_point(point)


def capture_campaign(job: str, sizes_gb: Optional[List[float]] = None,
                     seed: int = DEFAULT_SEED,
                     campaign: Optional[CampaignConfig] = None,
                     workers: int = 1,
                     **job_kwargs) -> List[JobTrace]:
    """Traces of one job kind across the size sweep (cached per size).

    Seeds derive per size via :func:`repro.experiments.runner.
    derive_seed`, so runs are independent yet reproducible from
    ``seed``; ``workers > 1`` fans cache-miss points out across
    processes with flow-for-flow identical output.
    """
    from repro.experiments.runner import CapturePoint, derive_seed

    sizes_gb = sizes_gb or DEFAULT_SIZES_GB
    campaign = campaign or CampaignConfig()
    points = [CapturePoint.from_campaign(job, gb, derive_seed(seed, index),
                                         campaign, job_kwargs)
              for index, gb in enumerate(sizes_gb)]
    return [trace for _, trace in make_runner(workers).run(points)]


def capture_plan(plan: str, params: Optional[Dict[str, Any]] = None,
                 seed: int = DEFAULT_SEED,
                 campaign: Optional[CampaignConfig] = None,
                 ) -> Tuple[Any, JobTrace]:
    """One cached workload-plan capture run: (PlanResult, trace).

    Plans resolve through the same memo/store hierarchy as single
    jobs; their store keys carry a ``plan`` block (name, parameters,
    structural signature), so they can never alias a single-job entry.
    """
    from repro.experiments.runner import PlanPoint

    campaign = campaign or CampaignConfig()
    point = PlanPoint.from_campaign(plan, seed, campaign, params)
    return make_runner().run_point(point)


def capture_plan_campaign(plan: str,
                          param_sets: Optional[List[Dict[str, Any]]] = None,
                          seed: int = DEFAULT_SEED,
                          campaign: Optional[CampaignConfig] = None,
                          workers: int = 1) -> List[JobTrace]:
    """Traces of one plan across a parameter sweep (cached per point).

    The plan analogue of :func:`capture_campaign`: each parameter set
    (e.g. ``{"scale": 2}`` for tpcx-hs) becomes one campaign point
    with a seed derived per index, fanned out across ``workers``.
    """
    from repro.experiments.runner import PlanPoint, derive_seed

    param_sets = param_sets if param_sets is not None else [{}]
    campaign = campaign or CampaignConfig()
    points = [PlanPoint.from_campaign(plan, derive_seed(seed, index),
                                      campaign, params)
              for index, params in enumerate(param_sets)]
    return [trace for _, trace in make_runner(workers).run(points)]
