"""The evaluation harness: campaigns, the capture store, and experiments.

:mod:`repro.experiments.campaigns` defines the canonical experiment
parameters (job mix, input sizes, cluster scale — scaled so the whole
evaluation regenerates in seconds on a laptop) and fronts the capture
cache hierarchy: a bounded in-process LRU memo over the optional
persistent content-addressed store.

:mod:`repro.experiments.store` is that persistent store — capture
(result, trace) pairs addressed by the SHA-256 of their canonical
parameter dict, with atomic writes and corruption-tolerant reads, so
sweeps are shared across processes, benchmark files and CLI runs.

:mod:`repro.experiments.runner` executes campaigns: it resolves
capture points memo → store → simulation and fans cache misses out
across worker processes with output flow-for-flow identical to a
serial run.

:mod:`repro.experiments.figures` has one entry point per evaluation
artefact (E1..E20 and ablations A1..A5 in DESIGN.md's index), each
returning the :class:`~repro.analysis.tables.Table` rows the paper's
corresponding table/figure reports.

:mod:`repro.experiments.dag` is the crash-safe multi-stage pipeline
scheduler: stage nodes run in isolated, relocatable, content-addressed
dirs under a fsynced append-only journal, so a killed pipeline resumes
with zero re-execution of completed nodes.
:mod:`repro.experiments.pipelines` wires the built-in
capture→classify→fit→replay→validate→report DAG over one shared
capture set, with E12/E18 ported on as sibling branches.
"""

from repro.experiments.campaigns import (
    CampaignConfig,
    cache_stats,
    capture,
    capture_campaign,
    clear_cache,
    get_store,
    set_store,
)
from repro.experiments.dag import (
    DAGJournal,
    DAGRunner,
    NodeOutcome,
    PipelineCycleError,
    PipelineDAG,
    PipelineFailed,
    PipelineResult,
    PROPAGATION_MODES,
    StageContext,
    StageNode,
    register_stage,
)
from repro.experiments.pipelines import PipelineSpec, build_pipeline, load_spec, save_spec
from repro.experiments.runner import CampaignRunner, CapturePoint, derive_seed
from repro.experiments.store import CaptureStore, ScrubReport
from repro.experiments.supervision import (
    CampaignPointsFailed,
    CheckpointJournal,
    FailureFingerprint,
    PointFailure,
    Quarantine,
    RetryPolicy,
    classify_failure,
)
from repro.experiments import figures
from repro.experiments.report import generate_report, write_report

__all__ = ["CampaignConfig", "CampaignPointsFailed", "CampaignRunner",
           "CaptureStore", "CapturePoint", "CheckpointJournal", "DAGJournal",
           "DAGRunner", "FailureFingerprint", "PROPAGATION_MODES",
           "NodeOutcome", "PipelineCycleError", "PipelineDAG",
           "PipelineFailed", "PipelineResult", "PipelineSpec", "PointFailure",
           "Quarantine", "RetryPolicy", "ScrubReport", "StageContext",
           "StageNode", "build_pipeline", "cache_stats", "capture",
           "capture_campaign", "classify_failure", "clear_cache",
           "derive_seed", "figures", "generate_report", "get_store",
           "load_spec", "register_stage", "save_spec", "set_store",
           "write_report"]
