"""The evaluation harness: campaigns and per-artefact experiments.

:mod:`repro.experiments.campaigns` defines the canonical experiment
parameters (job mix, input sizes, cluster scale — scaled so the whole
evaluation regenerates in seconds on a laptop) and caches captures
within a process so benchmarks sharing inputs don't re-simulate.

:mod:`repro.experiments.figures` has one entry point per evaluation
artefact (E1..E15 and ablations A1..A4 in DESIGN.md's index), each
returning the :class:`~repro.analysis.tables.Table` rows the paper's
corresponding table/figure reports.
"""

from repro.experiments.campaigns import CampaignConfig, capture, capture_campaign
from repro.experiments import figures
from repro.experiments.report import generate_report, write_report

__all__ = ["CampaignConfig", "capture", "capture_campaign", "figures",
           "generate_report", "write_report"]
