"""One entry point per evaluation artefact (DESIGN.md's E/A index).

Every function regenerates the rows/series of one reconstructed paper
table or figure and returns them as :class:`~repro.analysis.tables.
Table` objects.  Benchmarks call these and print the rendered text;
EXPERIMENTS.md records representative output.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.analysis.breakdown import component_breakdown
from repro.analysis.compare import validation_summary
from repro.analysis.tables import Table, cdf_table
from repro.capture.records import TrafficComponent
from repro.cluster.units import GB, MB
from repro.experiments.campaigns import (
    DEFAULT_JOBS,
    DEFAULT_SEED,
    DEFAULT_SIZES_GB,
    CampaignConfig,
    capture,
    capture_campaign,
)
from repro.experiments.runner import derive_seed
from repro.generation.generator import generate_trace
from repro.generation.replay import replay_trace
from repro.hdfs.placement import RandomPlacementPolicy
from repro.jobs import make_job
from repro.mapreduce.cluster import HadoopCluster
from repro.modeling.fitting import fit_candidates
from repro.modeling.model import fit_job_model

DATA_COMPONENTS = [c.value for c in TrafficComponent.data_components()]


def _mib(value: float) -> float:
    return value / MB


# -- E1: traffic breakdown per job type -------------------------------------------


def e01_breakdown(input_gb: float = 1.0, jobs: Optional[List[str]] = None,
                  seed: int = DEFAULT_SEED) -> List[Table]:
    """Per-job traffic volume decomposition (the stacked-bar figure)."""
    table = Table(
        title=f"E1: traffic breakdown by component, input={input_gb} GiB",
        headers=["job", "hdfs_read MiB", "shuffle MiB", "hdfs_write MiB",
                 "control MiB", "total MiB", "shuffle share"])
    for job in jobs or DEFAULT_JOBS:
        _, trace = capture(job, input_gb, seed=seed)
        stats = component_breakdown(trace)
        total = trace.total_bytes()
        table.add_row(
            job,
            _mib(stats["hdfs_read"]["bytes"]),
            _mib(stats["shuffle"]["bytes"]),
            _mib(stats["hdfs_write"]["bytes"]),
            _mib(stats["control"]["bytes"]),
            _mib(total),
            stats["shuffle"]["bytes"] / total if total else 0.0)
    table.notes.append("shuffle-heavy (terasort) vs read-heavy (grep/kmeans) "
                       "vs write contributions follow job semantics")
    return [table]


# -- E2: total traffic vs input size ------------------------------------------------


def e02_input_scaling(jobs: Optional[List[str]] = None,
                      sizes_gb: Optional[List[float]] = None,
                      seed: int = DEFAULT_SEED) -> List[Table]:
    """Traffic volume against input size (the log-log scaling figure)."""
    sizes_gb = sizes_gb or DEFAULT_SIZES_GB
    table = Table(
        title="E2: total data-plane traffic vs input size",
        headers=["job", "input GiB", "read MiB", "shuffle MiB",
                 "write MiB", "total MiB", "MiB per input GiB"])
    for job in jobs or DEFAULT_JOBS:
        for index, gb in enumerate(sizes_gb):
            _, trace = capture(job, gb, seed=derive_seed(seed, index))
            read = trace.total_bytes("hdfs_read")
            shuffle = trace.total_bytes("shuffle")
            write = trace.total_bytes("hdfs_write")
            total = read + shuffle + write
            table.add_row(job, gb, _mib(read), _mib(shuffle), _mib(write),
                          _mib(total), _mib(total) / (gb * 1024.0))
    table.notes.append("shuffle+write scale linearly for terasort/wordcount/"
                       "pagerank; grep and kmeans stay near-flat (their "
                       "traffic is metadata-sized); reads are locality noise")
    return [table]


# -- E3/E4: flow size and inter-arrival CDFs with fits --------------------------------


def e03_flow_size_cdf(job: str = "terasort", input_gb: float = 1.0,
                      seed: int = DEFAULT_SEED) -> List[Table]:
    """Empirical flow-size CDFs per component with best parametric fit."""
    _, trace = capture(job, input_gb, seed=seed)
    tables = []
    for component in DATA_COMPONENTS:
        sizes = trace.flow_sizes(component)
        if not sizes:
            continue
        fitted = fit_candidates(sizes)[0]
        table = cdf_table(
            f"E3: {job} {component} flow sizes (bytes), "
            f"fit={fitted.distribution!r} KS={fitted.ks.statistic:.3f}",
            sizes, fitted_cdf=fitted.distribution.cdf, unit="B")
        tables.append(table)
    return tables


def e04_arrival_cdf(job: str = "terasort", input_gb: float = 1.0,
                    seed: int = DEFAULT_SEED) -> List[Table]:
    """Flow inter-arrival CDFs per component with best parametric fit."""
    _, trace = capture(job, input_gb, seed=seed)
    tables = []
    for component in DATA_COMPONENTS:
        gaps = trace.interarrivals(component)
        if len(gaps) < 3:
            continue
        fitted = fit_candidates(gaps)[0]
        table = cdf_table(
            f"E4: {job} {component} flow inter-arrivals (s), "
            f"fit={fitted.distribution!r} KS={fitted.ks.statistic:.3f}",
            gaps, fitted_cdf=fitted.distribution.cdf, unit="s")
        tables.append(table)
    return tables


# -- E5: the fitted-distribution table --------------------------------------------------


def e05_fit_table(jobs: Optional[List[str]] = None, input_gb: float = 1.0,
                  seed: int = DEFAULT_SEED) -> List[Table]:
    """Best-fit family + parameters + KS per (job, component, metric)."""
    table = Table(
        title=f"E5: best-fit distributions, input={input_gb} GiB",
        headers=["job", "component", "metric", "family", "params",
                 "KS", "n"])
    for job in jobs or DEFAULT_JOBS:
        _, trace = capture(job, input_gb, seed=seed)
        for component in DATA_COMPONENTS:
            metrics = {
                "size": trace.flow_sizes(component),
                "interarrival": trace.interarrivals(component),
            }
            for metric, samples in metrics.items():
                if len(samples) < 3:
                    continue
                best = fit_candidates(samples)[0]
                params = ", ".join(f"{p:.3g}" for p in best.distribution.params)
                table.add_row(job, component, metric, best.family, params,
                              round(best.ks.statistic, 4), len(samples))
    return [table]


# -- E6: flow count scaling ---------------------------------------------------------------


def e06_flow_counts(seed: int = DEFAULT_SEED) -> List[Table]:
    """Flow counts vs input size and vs reducer count."""
    by_size = Table(
        title="E6a: flow counts vs input size (terasort)",
        headers=["input GiB", "maps", "reduces", "read flows",
                 "shuffle flows", "maps*reduces", "write flows"])
    for index, gb in enumerate(DEFAULT_SIZES_GB):
        result, trace = capture("terasort", gb, seed=derive_seed(seed, index))
        by_size.add_row(gb, result.num_maps, result.num_reduces,
                        trace.flow_count("hdfs_read"),
                        trace.flow_count("shuffle"),
                        result.num_maps * result.num_reduces,
                        trace.flow_count("hdfs_write"))
    by_size.notes.append("captured shuffle flows <= maps*reduces "
                         "(host-local fetches never reach the wire)")

    by_reducers = Table(
        title="E6b: shuffle flow count vs reducer count (terasort, 1 GiB)",
        headers=["reducers", "maps", "shuffle flows", "maps*reduces",
                 "median shuffle flow KiB"])
    for reducers in (2, 4, 8, 16):
        campaign = CampaignConfig(num_reducers=reducers)
        result, trace = capture("terasort", 1.0, seed=seed, campaign=campaign)
        sizes = trace.flow_sizes("shuffle")
        by_reducers.add_row(reducers, result.num_maps,
                            trace.flow_count("shuffle"),
                            result.num_maps * result.num_reduces,
                            float(np.median(sizes)) / 1024.0 if sizes else 0.0)
    by_reducers.notes.append("count grows ~linearly with reducers while "
                             "per-flow size shrinks ~1/reducers")
    return [by_size, by_reducers]


# -- E7: replication factor ------------------------------------------------------------------


def e07_replication(input_gb: float = 1.0, seed: int = DEFAULT_SEED) -> List[Table]:
    """HDFS-write traffic vs replication factor (teragen isolates writes)."""
    table = Table(
        title=f"E7: HDFS write traffic vs replication, teragen {input_gb} GiB",
        headers=["replication", "write MiB", "expected (r-1)x MiB",
                 "write flows", "cross-rack write MiB", "JCT s"])
    for replication in (1, 2, 3):
        campaign = CampaignConfig(replication=replication)
        result, trace = capture("teragen", input_gb, seed=seed, campaign=campaign)
        write_flows = trace.component("hdfs_write")
        cross = sum(f.size for f in write_flows if f.cross_rack)
        table.add_row(replication,
                      _mib(trace.total_bytes("hdfs_write")),
                      (replication - 1) * input_gb * 1024.0,
                      len(write_flows),
                      _mib(cross),
                      round(result.completion_time, 2))
    table.notes.append("write volume tracks (replication-1) x generated bytes; "
                       "rack-aware placement sends ~one copy off-rack")
    return [table]


# -- E8: block size --------------------------------------------------------------------------


def e08_blocksize(input_gb: float = 1.0, seed: int = DEFAULT_SEED) -> List[Table]:
    """Flow-size population vs dfs.blocksize."""
    table = Table(
        title=f"E8: flow population vs block size, terasort {input_gb} GiB",
        headers=["block MiB", "maps", "read flows", "median read MiB",
                 "shuffle flows", "median shuffle MiB", "JCT s"])
    for block_mb in (16, 32, 64):
        campaign = CampaignConfig(block_mb=block_mb)
        result, trace = capture("terasort", input_gb, seed=seed, campaign=campaign)
        reads = trace.flow_sizes("hdfs_read")
        shuffles = trace.flow_sizes("shuffle")
        table.add_row(block_mb, result.num_maps, len(reads),
                      _mib(float(np.median(reads))) if reads else 0.0,
                      len(shuffles),
                      _mib(float(np.median(shuffles))) if shuffles else 0.0,
                      round(result.completion_time, 2))
    table.notes.append("read flow sizes are the block size; shuffle flow "
                       "count scales with maps = input/block")
    return [table]


# -- E9: scheduler comparison ------------------------------------------------------------------


def e09_schedulers(input_gb: float = 0.5, seed: int = DEFAULT_SEED) -> List[Table]:
    """Concurrent-job completion times under each scheduler."""
    table = Table(
        title=f"E9: 3 concurrent jobs x {input_gb} GiB under each scheduler",
        headers=["scheduler", "job", "queue", "JCT s", "mean JCT s",
                 "makespan s"])
    for scheduler in ("fifo", "fair", "capacity", "drf"):
        campaign = CampaignConfig(scheduler=scheduler)
        cluster = HadoopCluster(
            campaign.cluster_spec(), campaign.hadoop_config(), seed=seed,
            queue_capacities={"prod": 0.7, "research": 0.3})
        specs = [
            make_job("wordcount", input_gb=input_gb, queue="prod",
                     job_id=f"{scheduler}_wc_a"),
            make_job("wordcount", input_gb=input_gb, queue="prod",
                     job_id=f"{scheduler}_wc_b"),
            make_job("terasort", input_gb=input_gb, queue="research",
                     job_id=f"{scheduler}_ts"),
        ]
        results, _ = cluster.run(specs, arrival_times=[0.0, 1.0, 2.0])
        jcts = [result.completion_time for result in results]
        makespan = (max(r.finish_time for r in results)
                    - min(r.submit_time for r in results))
        for spec, result in zip(specs, results):
            table.add_row(scheduler, result.kind, spec.queue,
                          round(result.completion_time, 2),
                          round(sum(jcts) / len(jcts), 2),
                          round(makespan, 2))
    table.notes.append("FIFO serialises (later jobs wait); fair/drf "
                       "interleave; capacity respects queue shares")
    return [table]


# -- E10: model validation ------------------------------------------------------------------------


def e10_validation(jobs: Optional[List[str]] = None,
                   fit_sizes_gb: Optional[List[float]] = None,
                   target_gb: float = 1.0,
                   seed: int = DEFAULT_SEED) -> List[Table]:
    """Synthetic vs captured traffic: the reproduction-fidelity table."""
    fit_sizes_gb = fit_sizes_gb or [0.25, 0.5, 1.0]
    table = Table(
        title=f"E10: model validation at {target_gb} GiB "
              f"(fit on {fit_sizes_gb})",
        headers=["job", "component", "captured flows", "synthetic flows",
                 "count err", "captured MiB", "synthetic MiB",
                 "volume err", "size KS"])
    for job in jobs or DEFAULT_JOBS:
        traces = capture_campaign(job, sizes_gb=fit_sizes_gb, seed=seed)
        model = fit_job_model(traces)
        _, captured = capture(job, target_gb,
                              seed=derive_seed(seed, fit_sizes_gb.index(target_gb))
                              if target_gb in fit_sizes_gb else seed)
        synthetic = generate_trace(model, input_gb=target_gb, seed=seed + 999)
        summary = validation_summary(captured, synthetic)
        for component, comparison in sorted(summary.components.items()):
            if comparison.captured_flows == 0 and comparison.synthetic_flows == 0:
                continue
            table.add_row(
                job, component,
                comparison.captured_flows, comparison.synthetic_flows,
                round(comparison.count_error, 3),
                _mib(comparison.captured_bytes),
                _mib(comparison.synthetic_bytes),
                round(comparison.volume_error, 3),
                round(comparison.size_ks.statistic, 3)
                if comparison.size_ks else "-")
    table.notes.append("low count/volume errors and small KS distances = "
                       "the generated traffic is statistically faithful")
    return [table]


# -- E11: replay validation -----------------------------------------------------------------------


def e11_replay(job: str = "terasort", input_gb: float = 1.0,
               seed: int = DEFAULT_SEED) -> List[Table]:
    """Replay captured vs model-generated traffic through the network."""
    traces = capture_campaign(job, sizes_gb=[0.25, 0.5, 1.0], seed=seed)
    model = fit_job_model(traces)
    # 1 GiB is index 2 of the [0.25, 0.5, 1.0] fit sweep above, so this
    # reuses the campaign's capture instead of simulating a new seed.
    _, captured = capture(job, input_gb, seed=derive_seed(seed, 2))
    gaps_trace = generate_trace(model, input_gb=input_gb, seed=seed + 999,
                                arrivals="gaps")
    curve_trace = generate_trace(model, input_gb=input_gb, seed=seed + 999,
                                 arrivals="curve")
    reports = [
        ("captured", replay_trace(captured)),
        ("generated (renewal gaps)", replay_trace(gaps_trace)),
        ("generated (arrival curve)", replay_trace(curve_trace)),
    ]
    table = Table(
        title=f"E11: replay of captured vs generated traffic ({job}, "
              f"{input_gb} GiB)",
        headers=["trace", "flows", "MiB", "makespan s",
                 "mean flow duration s", "peak link util"])
    for label, report in reports:
        table.add_row(label, report.flow_count, _mib(report.total_bytes),
                      round(report.makespan, 2),
                      round(report.mean_flow_duration, 3),
                      round(report.peak_link_utilisation, 3))
    cap_makespan = reports[0][1].makespan or float("nan")
    ratios = {label: report.makespan / cap_makespan
              for label, report in reports[1:]}
    table.notes.append("makespan ratios vs captured: "
                       + ", ".join(f"{label} {ratio:.2f}"
                                   for label, ratio in ratios.items())
                       + " (1.0 = perfect temporal fidelity)")
    return [table]


# -- E12: cluster size scaling ----------------------------------------------------------------------


#: The cluster sizes E12 sweeps (paper's scaling axis).
E12_NODE_SWEEP = (4, 8, 16, 32)


def e12_points(job: str = "terasort", input_gb: float = 1.0,
               seed: int = DEFAULT_SEED, repeats: int = 3,
               nodes: tuple = E12_NODE_SWEEP):
    """The exact capture points E12 consumes (for pipeline pre-capture)."""
    from repro.experiments.runner import CapturePoint

    return [CapturePoint.from_campaign(job, input_gb,
                                       derive_seed(seed, node_index, repeat),
                                       CampaignConfig(nodes=size))
            for node_index, size in enumerate(nodes)
            for repeat in range(repeats)]


def e12_cluster_scaling(job: str = "terasort", input_gb: float = 1.0,
                        seed: int = DEFAULT_SEED,
                        repeats: int = 3,
                        nodes: tuple = E12_NODE_SWEEP,
                        capture_fn=None) -> List[Table]:
    """Traffic and completion time vs cluster size.

    JCT noise from placement/straggler draws is of the same order as
    the 4-node -> 8-node parallelism gain, so every point averages
    ``repeats`` seeds (traffic volumes are structural and barely vary).

    ``capture_fn`` (same signature as :func:`~repro.experiments.
    campaigns.capture`) lets the pipeline DAG resolve points from a
    shared pre-captured store instead of simulating inline.
    """
    capture_fn = capture_fn or capture
    table = Table(
        title=f"E12: {job} {input_gb} GiB vs cluster size "
              f"(mean of {repeats} seeds)",
        headers=["nodes", "racks", "total MiB", "read MiB", "shuffle MiB",
                 "write MiB", "cross-rack share", "JCT s"])
    for node_index, cluster_nodes in enumerate(nodes):
        campaign = CampaignConfig(nodes=cluster_nodes)
        outcomes = [capture_fn(job, input_gb,
                               seed=derive_seed(seed, node_index, repeat),
                               campaign=campaign)
                    for repeat in range(repeats)]
        totals = [trace.total_bytes() for _, trace in outcomes]
        mean_total = sum(totals) / len(totals)
        cross = sum(trace.cross_rack_bytes()
                    for _, trace in outcomes) / len(outcomes)

        def mean_component(component: str) -> float:
            return sum(trace.total_bytes(component)
                       for _, trace in outcomes) / len(outcomes)

        table.add_row(cluster_nodes,
                      (cluster_nodes + campaign.hosts_per_rack - 1)
                      // campaign.hosts_per_rack,
                      _mib(mean_total), _mib(mean_component("hdfs_read")),
                      _mib(mean_component("shuffle")),
                      _mib(mean_component("hdfs_write")),
                      round(cross / mean_total, 3) if mean_total else 0.0,
                      round(sum(result.completion_time
                                for result, _ in outcomes) / len(outcomes), 2))
    table.notes.append("more nodes -> locality dilutes (read traffic and "
                       "cross-rack share grow); JCT improves with early "
                       "parallelism then regresses as remote reads dominate")
    return [table]


# -- E13: failure recovery traffic ----------------------------------------------------------------


def e13_failures(job: str = "terasort", input_gb: float = 0.5,
                 seed: int = DEFAULT_SEED) -> List[Table]:
    """Traffic and completion time with a mid-job DataNode/node failure."""
    from repro.faults import DATANODE, NODE, FaultEvent, FaultInjector
    from repro.jobs import make_job as _make_job

    campaign = CampaignConfig()
    table = Table(
        title=f"E13: node-failure recovery ({job}, {input_gb} GiB, fail at t=4s)",
        headers=["scenario", "JCT s", "hdfs_write MiB", "re-replication MiB",
                 "re-replicated blocks", "containers lost", "failed"])

    scenarios = [("healthy", None), ("datanode crash", DATANODE),
                 ("whole node crash", NODE)]
    for label, fault_kind in scenarios:
        cluster = HadoopCluster(campaign.cluster_spec(),
                                campaign.hadoop_config(), seed=seed)
        injector = None
        if fault_kind is not None:
            # Kill a worker that is not the AM host (AM restart is not
            # modelled); with the campaign seed the AM lands on h001.
            victim = cluster.workers[5]
            injector = FaultInjector(
                cluster, [FaultEvent(4.0, fault_kind, victim.name)])
        results, traces = cluster.run(
            [_make_job(job, input_gb=input_gb, job_id=f"e13_{label.split()[0]}")])
        result, trace = results[0], traces[0]
        rerep = sum(r.size for r in cluster.collector.records
                    if r.service == "re-replication")
        table.add_row(label, round(result.completion_time, 2),
                      _mib(trace.total_bytes("hdfs_write")),
                      _mib(rerep),
                      injector.report.blocks_rereplicated if injector else 0,
                      injector.report.containers_lost if injector else 0,
                      result.failed)
    table.notes.append("re-replication restores replication factor with "
                       "block-sized hdfs_write flows; task re-execution "
                       "extends the JCT without failing the job")
    return [table]


# -- E14: multi-tenant interference -----------------------------------------------------------------


def e14_multitenant(seed: int = DEFAULT_SEED) -> List[Table]:
    """Concurrent workload suite vs isolated runs (interference factors)."""
    from repro.workloads import MICRO_MIX, UniformArrivals, WorkloadSuite

    campaign = CampaignConfig()
    suite = WorkloadSuite(MICRO_MIX, arrivals=UniformArrivals(span=10.0),
                          name="e14")
    outcome = suite.run(count=6, cluster_spec=campaign.cluster_spec(),
                        config=campaign.hadoop_config(), seed=seed)

    table = Table(
        title="E14: multi-tenant suite (6 jobs, uniform arrivals over 10 s)",
        headers=["job", "kind", "arrival s", "JCT s", "isolated JCT s",
                 "slowdown"])
    for result, arrival in zip(outcome.results, outcome.arrival_times):
        isolated, _ = capture(result.kind, result.input_bytes / GB, seed=seed)
        slowdown = (result.completion_time / isolated.completion_time
                    if isolated.completion_time else float("nan"))
        table.add_row(result.job_id, result.kind, round(arrival, 1),
                      round(result.completion_time, 2),
                      round(isolated.completion_time, 2),
                      round(slowdown, 2))
    table.notes.append(f"suite makespan {outcome.makespan:.1f}s, "
                       f"mean JCT {outcome.mean_jct():.1f}s; slowdown > 1 "
                       "quantifies contention for containers and links")
    return [table]


# -- E15: traffic over time (phase profile) -----------------------------------------------------------


def e15_phase_profile(job: str = "sort", input_gb: float = 1.0,
                      seed: int = DEFAULT_SEED) -> List[Table]:
    """Per-second throughput of each component: the phase-wave figure.

    Defaults to ``sort`` (replication-3 output) so the write wave is
    the job's actual output, not just jar staging — TeraSort's
    unreplicated output writes locally and leaves no write wave.
    """
    from repro.analysis.timeseries import component_activity_spans, phase_profile

    _, trace = capture(job, input_gb, seed=seed)
    table = phase_profile(trace, bin_seconds=1.0)
    table.title = f"E15: {table.title}"
    spans = component_activity_spans(trace)
    for component, (first, last) in sorted(spans.items()):
        table.notes.append(f"{component}: active {first:.1f}s - {last:.1f}s")
    table.notes.append("phases overlap but peak in order: reads early, "
                       "shuffle after the first map wave, writes at the end")
    return [table]


# -- Ablations -----------------------------------------------------------------------------------------


def a1_locality(input_gb: float = 1.0, seed: int = DEFAULT_SEED) -> List[Table]:
    """Locality-aware map binding (and placement) vs oblivious baselines.

    Three configurations: the default (rack-aware placement + locality
    binding), locality binding disabled (maps bound in queue order),
    and additionally random block placement.
    """
    table = Table(
        title=f"A1: map locality ablation (terasort, {input_gb} GiB)",
        headers=["configuration", "node-local", "rack-local", "remote",
                 "read MiB", "JCT s"])
    campaign = CampaignConfig()
    variants = [
        ("default (aware)", True, None),
        ("binding off", False, None),
        ("binding off + random placement", False, RandomPlacementPolicy()),
    ]
    for label, aware, policy in variants:
        config = campaign.hadoop_config().replace(locality_aware=aware)
        cluster = HadoopCluster(campaign.cluster_spec(), config, seed=seed,
                                placement_policy=policy)
        results, traces = cluster.run([make_job("terasort", input_gb=input_gb)])
        round0 = results[0].rounds[0]
        table.add_row(label, round0.node_local_reads, round0.rack_local_reads,
                      round0.remote_reads,
                      _mib(traces[0].total_bytes("hdfs_read")),
                      round(results[0].completion_time, 2))
    table.notes.append("locality-aware binding converts read flows into "
                       "silent local disk I/O; without it most splits "
                       "cross the network")
    return [table]


def a2_slowstart(input_gb: float = 1.0, seed: int = DEFAULT_SEED) -> List[Table]:
    """Reducer slow-start fraction vs the shuffle arrival process."""
    table = Table(
        title=f"A2: reducer slow-start ablation (terasort, {input_gb} GiB)",
        headers=["slowstart", "first shuffle s", "last shuffle s",
                 "shuffle span s", "JCT s"])
    for slowstart in (0.05, 0.5, 1.0):
        campaign = CampaignConfig(slowstart=slowstart)
        result, trace = capture("terasort", input_gb, seed=seed,
                                campaign=campaign)
        starts = trace.flow_starts("shuffle")
        first = starts[0] if starts else 0.0
        last = starts[-1] if starts else 0.0
        table.add_row(slowstart, round(first, 2), round(last, 2),
                      round(last - first, 2),
                      round(result.completion_time, 2))
    table.notes.append("higher slow-start delays the first fetch; at 1.0 the "
                       "shuffle decouples from the map phase entirely and "
                       "the job pays for the lost overlap in JCT")
    return [table]


def a3_fairshare(job: str = "terasort", input_gb: float = 1.0,
                 seed: int = DEFAULT_SEED) -> List[Table]:
    """Shared (max-min) replay vs an uncontended-link lower bound."""
    _, captured = capture(job, input_gb, seed=seed)
    report = replay_trace(captured)
    line_rate = 1e9 / 8.0
    origin = min((flow.start for flow in captured.flows), default=0.0)
    uncontended = max(
        ((flow.start - origin) + flow.size / line_rate
         for flow in captured.flows), default=0.0)
    table = Table(
        title=f"A3: contention ablation ({job}, {input_gb} GiB replay)",
        headers=["model", "makespan s", "mean flow duration s"])
    table.add_row("max-min shared links", round(report.makespan, 2),
                  round(report.mean_flow_duration, 3))
    mean_uncontended = (sum(flow.size / line_rate for flow in captured.flows)
                        / len(captured.flows)) if captured.flows else 0.0
    table.add_row("uncontended bound", round(uncontended, 2),
                  round(mean_uncontended, 3))
    table.notes.append("the gap quantifies how much contention (which "
                       "max-min models and the bound ignores) shapes timing")
    return [table]


def e16_crossval(jobs: Optional[List[str]] = None,
                 sizes_gb: Optional[List[float]] = None,
                 seed: int = DEFAULT_SEED) -> List[Table]:
    """Leave-one-out cross-validation of the scaling laws (E16).

    The generalisation claim behind the whole toolchain: a model fitted
    on some input sizes predicts the flow counts and volumes of sizes
    it never saw.
    """
    from repro.modeling.crossval import leave_one_out

    sizes_gb = sizes_gb or DEFAULT_SIZES_GB
    table = Table(
        title=f"E16: leave-one-out scaling-law validation (sizes {sizes_gb})",
        headers=["job", "held-out GiB", "component", "actual flows",
                 "predicted flows", "actual MiB", "predicted MiB",
                 "volume err"])
    for job in jobs or ["terasort", "wordcount", "grep"]:
        traces = capture_campaign(job, sizes_gb=sizes_gb, seed=seed)
        report = leave_one_out(traces)
        for score in report.scores:
            if score.actual_count == 0 and score.predicted_count == 0:
                continue
            table.add_row(job, score.input_gb, score.component,
                          score.actual_count, score.predicted_count,
                          _mib(score.actual_volume),
                          _mib(score.predicted_volume),
                          round(score.volume_error, 3)
                          if score.volume_error != float("inf") else "inf")
    table.notes.append("held-out sizes were never seen by the fitted model; "
                       "low errors = the linear laws extrapolate")
    return [table]


def e17_interference(job: str = "terasort", input_gb: float = 0.5,
                     seed: int = DEFAULT_SEED) -> List[Table]:
    """Hadoop traffic replayed under increasing background load (E17).

    The abstract's "more realistic scenarios": generated/captured Hadoop
    traffic composed with other tenants' cross traffic.  Reports mean
    flow-completion-time inflation per load level.
    """
    from repro.generation.crosstraffic import CrossTrafficSpec, replay_with_cross_traffic

    _, trace = capture(job, input_gb, seed=seed)
    table = Table(
        title=f"E17: {job} {input_gb} GiB replay under background load",
        headers=["background load", "pairs", "cross MiB",
                 "hadoop mean FCT s", "FCT inflation", "makespan s"])
    baseline = None
    for load, pairs in ((0.0, 0), (0.2, 4), (0.5, 6), (0.8, 8)):
        if load == 0.0:
            from repro.generation.replay import replay_trace

            clean = replay_trace(trace)
            durations = [r.duration for r in clean.records]
            baseline = sum(durations) / len(durations) if durations else 0.0
            table.add_row("none", 0, 0.0, round(baseline, 4), 1.0,
                          round(clean.makespan, 2))
            continue
        spec = CrossTrafficSpec(load_fraction=load, pairs=pairs)
        report = replay_with_cross_traffic(trace, spec, seed=seed)
        table.add_row(f"{load:.0%}/pair", pairs,
                      _mib(report.cross_traffic_bytes),
                      round(report.hadoop_mean_fct_contended, 4),
                      round(report.fct_inflation, 3),
                      round(report.contended.makespan, 2))
    table.notes.append("flow completion times inflate monotonically with "
                       "background load; volumes are unchanged (fluid "
                       "sharing slows flows, never drops them)")
    return [table]


#: E18's default training-size sweep (prefixes of the canonical sweep,
#: never including the held-out target).
E18_TRAINING_SIZES = (0.25, 0.5, 1.0)


def e18_points(job: str = "terasort", target_gb: float = 2.0,
               seed: int = DEFAULT_SEED, sizes: tuple = E18_TRAINING_SIZES):
    """The exact capture points E18 consumes (for pipeline pre-capture)."""
    from repro.experiments.runner import CapturePoint

    campaign = CampaignConfig()
    points = [CapturePoint.from_campaign(job, size,
                                         derive_seed(seed, index), campaign)
              for index, size in enumerate(sizes)]
    points.append(CapturePoint.from_campaign(
        job, target_gb, derive_seed(seed, len(sizes)), campaign))
    return points


def e18_training_sensitivity(job: str = "terasort", target_gb: float = 2.0,
                             seed: int = DEFAULT_SEED,
                             sizes: tuple = E18_TRAINING_SIZES,
                             capture_fn=None) -> List[Table]:
    """Model fidelity vs number of training input sizes (E18).

    How many capture campaigns does a usable model need?  Models are
    fitted on growing prefixes of the size sweep (never including the
    target) and validated against the held-out target capture.

    ``capture_fn`` (same signature as :func:`~repro.experiments.
    campaigns.capture`) lets the pipeline DAG resolve every point —
    training prefixes and held-out target alike — from one shared
    pre-captured artifact set.
    """
    capture_fn = capture_fn or capture
    all_sizes = list(sizes)
    # The held-out target sits just past the training sweep — index 3
    # of the canonical [0.25, 0.5, 1.0, 2.0] sweep by default; derive
    # its seed the same way.
    _, target = capture_fn(job, target_gb,
                           seed=derive_seed(seed, len(all_sizes)))
    table = Table(
        title=f"E18: fidelity at {target_gb} GiB vs training sizes ({job})",
        headers=["training sizes", "shuffle count err", "shuffle volume err",
                 "shuffle size KS", "mean volume err"])
    for k in range(1, len(all_sizes) + 1):
        training_sizes = all_sizes[:k]
        traces = [capture_fn(job, size, seed=derive_seed(seed, index))[1]
                  for index, size in enumerate(training_sizes)]
        model = fit_job_model(traces)
        synthetic = generate_trace(model, input_gb=target_gb, seed=seed + 999)
        summary = validation_summary(target, synthetic)
        shuffle = summary.components.get("shuffle")
        table.add_row(
            str(training_sizes),
            round(shuffle.count_error, 3) if shuffle else "-",
            round(shuffle.volume_error, 3) if shuffle else "-",
            round(shuffle.size_ks.statistic, 3)
            if shuffle and shuffle.size_ks else "-",
            round(summary.mean_volume_error, 3))
    table.notes.append("one size forces proportional extrapolation; two or "
                       "more pin the affine law and collapse the error")
    return [table]


def e19_summary_stats(jobs: Optional[List[str]] = None, input_gb: float = 1.0,
                      seed: int = DEFAULT_SEED) -> List[Table]:
    """Per-(job, component) flow summary statistics (the 'Table 1')."""
    from repro.modeling.empirical import summarize

    table = Table(
        title=f"E19: flow summary statistics, input={input_gb} GiB",
        headers=["job", "component", "flows", "mean KiB", "p50 KiB",
                 "p99 KiB", "max KiB", "total MiB"])
    kib = 1024.0
    for job in jobs or DEFAULT_JOBS:
        _, trace = capture(job, input_gb, seed=seed)
        for component in DATA_COMPONENTS:
            sizes = trace.flow_sizes(component)
            if not sizes:
                continue
            stats = summarize(sizes)
            table.add_row(job, component, stats["n"],
                          round(stats["mean"] / kib, 1),
                          round(stats["p50"] / kib, 1),
                          round(stats["p99"] / kib, 1),
                          round(stats["max"] / kib, 1),
                          _mib(stats["sum"]))
    table.notes.append("read flows are block-quantised; shuffle p99/p50 "
                       "reflects partition skew; write mixes jar blocks "
                       "with output blocks")
    return [table]


def e20_sampled_capture(job: str = "terasort", input_gb: float = 0.5,
                        seed: int = DEFAULT_SEED) -> List[Table]:
    """Model fidelity from sampled captures (sFlow-style 1-in-N).

    Explodes a capture into packets, samples at several rates,
    reassembles + rescales, and compares the recovered per-component
    statistics against the full capture — the cost of cheap capture.
    """
    from repro.capture.pcap import synthesize_packets
    from repro.capture.sampling import assemble_sampled, sampling_loss
    from repro.capture.records import JobTrace

    _, trace = capture(job, input_gb, seed=seed)
    data_flows = [f for f in trace.flows
                  if f.component in DATA_COMPONENTS]
    packets = [p for f in data_flows for p in synthesize_packets(f)]
    table = Table(
        title=f"E20: capture sampling vs model inputs ({job}, {input_gb} GiB)",
        headers=["sampling", "flows seen", "flow survival",
                 "est. volume MiB", "volume err", "shuffle flows seen"])
    full_volume = sum(f.size for f in data_flows)
    table.add_row("full (1:1)", len(data_flows), 1.0,
                  _mib(full_volume), 0.0,
                  len([f for f in data_flows if f.component == "shuffle"]))
    for rate in (8, 64, 512):
        sampled = assemble_sampled(packets, rate=rate, seed=seed)
        loss = sampling_loss(data_flows, sampled)
        shuffle_seen = len([f for f in sampled if f.component == "shuffle"])
        table.add_row(f"1:{rate}", loss["sampled_flows"],
                      round(loss["flow_survival"], 3),
                      _mib(loss["estimated_volume"]),
                      round(loss["volume_error"], 3),
                      shuffle_seen)
    table.notes.append("volume estimates stay unbiased while flow counts "
                       "collapse — sampled captures can feed volume laws "
                       "but not flow-population marginals")
    return [table]


def a4_delay_scheduling(input_gb: float = 0.25,
                        seed: int = DEFAULT_SEED) -> List[Table]:
    """Delay scheduling ablation: locality wait vs immediate fallback.

    Uses unreplicated input (replication 1) so each split lives on one
    node — the regime where waiting for the right node pays the most.
    """
    table = Table(
        title=f"A4: delay scheduling (terasort, {input_gb} GiB, replication 1)",
        headers=["locality wait s", "node-local", "rack-local", "remote",
                 "read MiB", "JCT s"])
    campaign = CampaignConfig(replication=1)
    for wait in (0.0, 2.0, 6.0):
        config = campaign.hadoop_config().replace(delay_scheduling_s=wait)
        cluster = HadoopCluster(campaign.cluster_spec(), config, seed=seed)
        results, traces = cluster.run(
            [make_job("terasort", input_gb=input_gb, job_id=f"a4_{wait:g}")])
        round0 = results[0].rounds[0]
        table.add_row(wait, round0.node_local_reads, round0.rack_local_reads,
                      round0.remote_reads,
                      _mib(traces[0].total_bytes("hdfs_read")),
                      round(results[0].completion_time, 2))
    table.notes.append("longer waits trade container-grant latency for "
                       "node-local reads, shrinking the HDFS-read component")
    return [table]


def a5_speculation(input_gb: float = 1.0, seed: int = DEFAULT_SEED) -> List[Table]:
    """Speculative execution under stragglers: JCT vs duplicate traffic.

    Straggler-prone map-heavy workload (wordcount, 25% of attempts
    slowed 20x): speculation trades extra read traffic for a shorter
    straggler tail.
    """
    table = Table(
        title=f"A5: speculative execution (wordcount {input_gb} GiB, "
              "25% stragglers at 20x)",
        headers=["speculative", "JCT s", "max map s", "speculative attempts",
                 "launched maps", "read MiB"])
    for speculative in (False, True):
        campaign = CampaignConfig(block_mb=64, num_reducers=2,
                                  speculative=speculative)
        config = campaign.hadoop_config().replace(
            straggler_prob=0.25, straggler_slowdown=20.0)
        cluster = HadoopCluster(campaign.cluster_spec(), config, seed=seed)
        results, traces = cluster.run(
            [make_job("wordcount", input_gb=input_gb,
                      job_id=f"a5_{speculative}")])
        round0 = results[0].rounds[0]
        counters = results[0].counters()
        table.add_row("on" if speculative else "off",
                      round(results[0].completion_time, 2),
                      round(max(round0.map_durations), 2),
                      round0.speculative_attempts,
                      int(counters["TOTAL_LAUNCHED_MAPS"]),
                      _mib(traces[0].total_bytes("hdfs_read")))
    table.notes.append("speculation launches duplicate attempts (extra "
                       "launches and reads) and cuts the straggler tail")
    return [table]


ALL_EXPERIMENTS = {
    "e01": e01_breakdown,
    "e02": e02_input_scaling,
    "e03": e03_flow_size_cdf,
    "e04": e04_arrival_cdf,
    "e05": e05_fit_table,
    "e06": e06_flow_counts,
    "e07": e07_replication,
    "e08": e08_blocksize,
    "e09": e09_schedulers,
    "e10": e10_validation,
    "e11": e11_replay,
    "e12": e12_cluster_scaling,
    "e13": e13_failures,
    "e14": e14_multitenant,
    "e15": e15_phase_profile,
    "e16": e16_crossval,
    "e17": e17_interference,
    "e18": e18_training_sensitivity,
    "e19": e19_summary_stats,
    "e20": e20_sampled_capture,
    "a1": a1_locality,
    "a2": a2_slowstart,
    "a3": a3_fairshare,
    "a4": a4_delay_scheduling,
    "a5": a5_speculation,
}
