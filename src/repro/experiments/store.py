"""Persistent content-addressed store for capture results.

The evaluation is a sweep over job type × input size × cluster
configuration, and the same (job, size, config, seed) point is
re-simulated by many benchmark files and CLI invocations.  The
in-memory memo in :mod:`repro.experiments.campaigns` only helps within
one process; this store makes captures reusable artifacts across
processes and runs, the way trace-driven simulator toolchains treat
traces as first-class build products.

Keying
------
An entry's address is the SHA-256 of the canonical JSON of the full
capture point — ``(job, input_gb, seed, configuration, job_kwargs)``
plus the trace-format version (:data:`TRACE_FORMAT_VERSION`).  The
canonical dict is produced by :func:`repro.experiments.runner.
CapturePoint.key_dict` and shared with the in-memory memo, so both
caches always agree on what "the same capture" means.  Bumping
``TRACE_FORMAT_VERSION`` invalidates every existing entry at read time
(stale entries fall back to re-simulation, they are never trusted).

On-disk format
--------------
One file per entry, ``objects/<hh>/<hash>.jsonl`` (two-level fan-out on
the first hash byte).  The first line is a store header carrying the
format version, the full canonical key (for debuggability — the hash
alone is opaque) and the :class:`~repro.mapreduce.result.JobResult`
summary; every following line is the trace's existing JSONL encoding
(one meta line, then one line per flow), byte-identical to
:meth:`JobTrace.to_jsonl`.

Writes are atomic and durable (tmp file in the same directory,
``fsync``, ``os.replace``, then ``fsync`` of the containing directory)
so concurrent writers and crashes can never publish a half-written
entry — and a published entry survives power loss, not just process
kill.
Reads are corruption-tolerant: any parse/validation failure is counted
and treated as a miss, and the next :meth:`put` simply overwrites the
bad file.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.capture.records import CaptureMeta, FlowRecord, JobTrace
from repro.mapreduce.result import JobResult, PlanResult
from repro.obs.metrics import MetricsRegistry

#: Version of the (key schema, entry layout, trace JSONL schema) triple.
#: Bump when any of them changes shape; old entries then re-simulate.
#: v2: key schema grew a top-level ``backend`` discriminator (transport
#: substrate), so fluid/analytic captures of one point can never alias.
#: v3: entries may hold workload-plan captures (``result_type: plan``
#: headers with a PlanResult summary) and plan points key on a ``plan``
#: block instead of ``job``/``input_gb``/``job_kwargs``.
TRACE_FORMAT_VERSION = 3

#: Environment variable naming the default store directory.  Unset =
#: no persistent store (the in-memory memo still applies).
STORE_ENV_VAR = "KEDDAH_CAPTURE_STORE"


def canonical_json(data: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace drift."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"),
                      default=str)


def fsync_dir(path: str | Path) -> None:
    """fsync a directory so a just-published name survives power loss.

    ``os.replace`` makes a write atomic with respect to *readers*, but
    the new directory entry itself lives in the parent directory's
    metadata — until that is synced, a power cut can roll the rename
    back even though the file's bytes were fsynced.  Platforms whose
    directories cannot be opened/fsynced (some filesystems, Windows)
    degrade silently: atomicity still holds, only power-loss durability
    is best-effort there.
    """
    try:
        fd = os.open(os.fspath(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def write_atomic(path: str | Path, text: str, durable: bool = True) -> Path:
    """Atomically (and durably) publish ``text`` at ``path``.

    tmp file in the same directory -> write -> fsync(file) ->
    ``os.replace`` -> fsync(parent dir).  ``durable=False`` skips both
    fsyncs for callers that only need crash *atomicity* (never a torn
    file), not power-loss durability.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent,
                                    prefix=f".{path.name[:24]}.",
                                    suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            if durable:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    if durable:
        fsync_dir(path.parent)
    return path


def key_hash(key: Dict[str, Any]) -> str:
    """SHA-256 address of a canonical key dict."""
    return hashlib.sha256(canonical_json(key).encode("utf-8")).hexdigest()


def encode_entry(key: Dict[str, Any], result: Any, trace: JobTrace) -> str:
    """The on-disk entry payload: store header + verbatim trace JSONL.

    Shared by the persistent store and the checkpoint journal
    (:mod:`repro.experiments.supervision`), so both replay completed
    captures byte-identically.  ``result`` is either a
    :class:`JobResult` (single-job capture) or a :class:`PlanResult`
    (workload-plan capture); the header's ``result_type`` discriminator
    routes decoding, with absence meaning ``job`` so single-job headers
    keep their familiar v2 shape.
    """
    header: Dict[str, Any] = {
        "store": {"format": TRACE_FORMAT_VERSION, "key": key},
        "result": result.to_dict(),
    }
    if isinstance(result, PlanResult):
        header["result_type"] = "plan"
    lines = [json.dumps(header),
             json.dumps({"meta": trace.meta.to_dict()})]
    lines.extend(json.dumps(flow.to_dict()) for flow in trace.flows)
    return "\n".join(lines) + "\n"


def decode_entry(text: str) -> Tuple[Any, JobTrace]:
    """Inverse of :func:`encode_entry`.

    Raises :class:`_StaleEntry` for entries written under another
    format version and arbitrary parse errors for corrupt payloads —
    callers treat both as misses.
    """
    lines = text.splitlines()
    header = json.loads(lines[0])
    store_info = header["store"]
    if store_info["format"] != TRACE_FORMAT_VERSION:
        raise _StaleEntry(store_info["format"])
    result_type = header.get("result_type", "job")
    if result_type == "plan":
        result = PlanResult.from_dict(header["result"])
    elif result_type == "job":
        result = JobResult.from_dict(header["result"])
    else:
        raise ValueError(f"unknown entry result_type {result_type!r}")
    meta_line = json.loads(lines[1])
    meta = CaptureMeta.from_dict(meta_line["meta"])
    flows = [FlowRecord.from_dict(json.loads(line))
             for line in lines[2:] if line.strip()]
    trace = JobTrace(meta=meta, flows=flows)
    if trace.meta.job_id != result.job_id:
        raise ValueError("entry result/trace job ids disagree")
    return result, trace


def entry_key(text: str) -> Dict[str, Any]:
    """The canonical key embedded in an entry payload's header."""
    return json.loads(text.splitlines()[0])["store"]["key"]


#: The counter fields a store keeps, in presentation order.
_STAT_FIELDS = ("hits", "misses", "writes", "corrupt", "stale",
                "bytes_read", "bytes_written")


@dataclass
class StoreStats:
    """Read-only snapshot of one :class:`CaptureStore`'s counters.

    The live counters moved onto a telemetry
    :class:`~repro.obs.metrics.MetricsRegistry` (``store.*``); this
    dataclass survives as the compatibility view handed out by
    :attr:`CaptureStore.stats`.
    """

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt: int = 0
    stale: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "writes": self.writes, "corrupt": self.corrupt,
                "stale": self.stale, "bytes_read": self.bytes_read,
                "bytes_written": self.bytes_written}


class CaptureStore:
    """Content-addressed (JobResult, JobTrace) store rooted at a directory."""

    def __init__(self, root: str | Path,
                 registry: Optional[MetricsRegistry] = None):
        self.root = Path(root)
        self.registry = registry if registry is not None else MetricsRegistry()
        self._counters = {name: self.registry.counter(f"store.{name}")
                          for name in _STAT_FIELDS}

    @property
    def stats(self) -> StoreStats:
        """Compatibility view of the registry-backed counters."""
        return StoreStats(**{name: int(counter.value)
                             for name, counter in self._counters.items()})

    def _count(self, name: str, amount: float = 1) -> None:
        self._counters[name].value += amount

    # -- paths -------------------------------------------------------------------

    @property
    def objects_dir(self) -> Path:
        return self.root / "objects"

    def entry_path(self, digest: str) -> Path:
        return self.objects_dir / digest[:2] / f"{digest}.jsonl"

    def _entries(self) -> Iterator[Path]:
        if not self.objects_dir.is_dir():
            return iter(())
        return self.objects_dir.glob("*/*.jsonl")

    # -- read --------------------------------------------------------------------

    def get(self, key: Dict[str, Any]) -> Optional[Tuple[JobResult, JobTrace]]:
        """Look up a capture point; None on miss/corruption/staleness."""
        path = self.entry_path(key_hash(key))
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            self._count("misses")
            return None
        try:
            entry = self._decode(text)
        except _StaleEntry:
            self._count("stale")
            self._count("misses")
            return None
        except Exception:
            # Truncated write, disk corruption, foreign file: re-simulate.
            self._count("corrupt")
            self._count("misses")
            return None
        self._count("hits")
        self._count("bytes_read", len(text))
        return entry

    @staticmethod
    def _decode(text: str) -> Tuple[JobResult, JobTrace]:
        return decode_entry(text)

    # -- write -------------------------------------------------------------------

    def put(self, key: Dict[str, Any], result: JobResult,
            trace: JobTrace) -> Path:
        """Atomically and durably publish one entry; returns its path.

        ``write_atomic`` fsyncs both the entry file and its containing
        directory, so a published capture survives power loss — the
        pipeline DAG's cache-validity check leans on this.
        """
        path = self.entry_path(key_hash(key))
        payload = encode_entry(key, result, trace)
        write_atomic(path, payload)
        self._count("writes")
        self._count("bytes_written", len(payload))
        return path

    # -- maintenance -------------------------------------------------------------

    def clear(self) -> int:
        """Invalidate the store: delete every entry, return the count."""
        removed = 0
        for path in list(self._entries()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def entry_count(self) -> int:
        return sum(1 for _ in self._entries())

    def size_bytes(self) -> int:
        total = 0
        for path in self._entries():
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    # -- scrub (verify / repair) ---------------------------------------------------

    @property
    def quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    def _tmp_droppings(self) -> Iterator[Path]:
        """Leftover ``.tmp`` files from writers that died mid-publish."""
        if not self.objects_dir.is_dir():
            return iter(())
        return self.objects_dir.glob("*/.*.tmp")

    def verify(self, repair: bool = False) -> "ScrubReport":
        """Scrub every entry; optionally quarantine the bad ones.

        Each entry is fully decoded and its embedded canonical key is
        re-hashed and compared against the file name, so truncation,
        corruption, stale format versions and mis-addressed (renamed /
        foreign) entries are all caught — instead of every future
        ``get`` silently treating them as misses and re-simulating.

        With ``repair=True`` bad entries move (atomically) into
        ``<root>/quarantine/`` for post-mortems and orphaned ``.tmp``
        droppings are deleted; the store is left clean.  Counted
        through the registry as ``store.scrub.*``.
        """
        report = ScrubReport(repaired=repair)

        def scrub(name: str) -> None:
            self.registry.counter(f"store.scrub.{name}").inc()

        for path in sorted(self._entries()):
            report.scanned += 1
            scrub("scanned")
            problem = None
            try:
                text = path.read_text(encoding="utf-8")
                report.bytes_scanned += len(text)
                decode_entry(text)
                if key_hash(entry_key(text)) != path.stem:
                    problem = "mismatched"
            except _StaleEntry:
                problem = "stale"
            except Exception:
                problem = "corrupt"
            if problem is None:
                report.ok += 1
                scrub("ok")
                continue
            setattr(report, problem, getattr(report, problem) + 1)
            scrub(problem)
            report.problems.append(f"{problem}: {path.name}")
            if repair:
                self.quarantine_dir.mkdir(parents=True, exist_ok=True)
                try:
                    os.replace(path, self.quarantine_dir / path.name)
                    report.quarantined += 1
                    scrub("quarantined")
                except OSError:
                    pass
        for tmp in sorted(self._tmp_droppings()):
            report.tmp_files += 1
            scrub("tmp")
            report.problems.append(f"tmp: {tmp.name}")
            if repair:
                try:
                    tmp.unlink()
                    report.removed_tmp += 1
                except OSError:
                    pass
        return report


@dataclass
class ScrubReport:
    """What one :meth:`CaptureStore.verify` pass found (and fixed)."""

    repaired: bool = False
    scanned: int = 0
    ok: int = 0
    corrupt: int = 0
    stale: int = 0
    mismatched: int = 0
    tmp_files: int = 0
    quarantined: int = 0
    removed_tmp: int = 0
    bytes_scanned: int = 0
    problems: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.problems

    def to_dict(self) -> Dict[str, Any]:
        return {"repaired": self.repaired, "scanned": self.scanned,
                "ok": self.ok, "corrupt": self.corrupt, "stale": self.stale,
                "mismatched": self.mismatched, "tmp_files": self.tmp_files,
                "quarantined": self.quarantined,
                "removed_tmp": self.removed_tmp,
                "bytes_scanned": self.bytes_scanned,
                "problems": list(self.problems)}


class _StaleEntry(Exception):
    """Entry written under a different TRACE_FORMAT_VERSION."""


def store_from_env(environ: Optional[Dict[str, str]] = None,
                   ) -> Optional[CaptureStore]:
    """The default store named by ``KEDDAH_CAPTURE_STORE``, if any."""
    environ = os.environ if environ is None else environ
    root = environ.get(STORE_ENV_VAR, "").strip()
    return CaptureStore(root) if root else None
