"""The built-in keddah pipeline: capture → classify → fit → replay →
validate → report, as a crash-safe :mod:`~repro.experiments.dag` DAG.

The paper's own methodology is this chain; every stage here is a
registered DAG stage operating on *shared artifacts*:

* ``capture`` simulates the union of every point any downstream stage
  needs — the base sweep plus E12's cluster-size points and E18's
  held-out target — into one content-addressed
  :class:`~repro.experiments.store.CaptureStore` inside its node dir.
  Every other stage opens that store read-only, so E12 and E18 (and
  the classify/fit/replay/validate chain) all draw from one captured
  artifact set instead of re-simulating per figure.
* ``classify`` writes per-point traffic component breakdowns.
* ``fit`` trains one :class:`~repro.modeling.model.JobTrafficModel`
  per job from the training-size traces.
* ``replay`` replays each captured trace through the generation layer.
* ``validate`` generates synthetic traces from the fitted models and
  scores them against held-out captures.
* ``e12`` / ``e18`` regenerate those experiment figures *from the
  shared store* (a store miss raises instead of silently simulating —
  the capture stage's config is the single source of workload truth).
* ``report`` renders everything into one markdown + JSON report.

A :class:`PipelineSpec` captures the whole workload declaratively; it
is persisted as ``pipeline.json`` at the pipeline root so ``keddah
pipeline resume|status`` can rebuild the identical DAG with zero
re-specification (and therefore identical node signatures).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.analysis.breakdown import component_breakdown
from repro.analysis.compare import validation_summary
from repro.analysis.tables import render_table
from repro.experiments.campaigns import (
    DEFAULT_SEED,
    CampaignConfig,
)
from repro.experiments.dag import (
    PipelineDAG,
    StageContext,
    StageNode,
    register_stage,
)
from repro.experiments.runner import CampaignRunner, CapturePoint, derive_seed
from repro.experiments.store import CaptureStore, canonical_json
from repro.generation.generator import generate_trace
from repro.generation.replay import replay_trace
from repro.modeling.model import JobTrafficModel, fit_job_model

#: Experiments the pipeline can port onto shared artifacts.
PIPELINE_EXPERIMENTS = ("e12", "e18")

PIPELINE_SPEC_FILE = "pipeline.json"


# -- the declarative spec -----------------------------------------------------------


@dataclass(frozen=True)
class PipelineSpec:
    """Everything that determines the built-in pipeline's workload.

    ``sizes_gb`` is the captured sweep per job; ``fit_sizes_gb`` (a
    subset, default: all but the largest) trains the models and the
    largest size is the held-out validation target.  ``campaign``
    holds :class:`~repro.experiments.campaigns.CampaignConfig`
    overrides as a plain dict so the spec stays JSON-serialisable.
    """

    jobs: Tuple[str, ...] = ("terasort", "wordcount", "grep")
    sizes_gb: Tuple[float, ...] = (0.25, 0.5, 1.0)
    fit_sizes_gb: Optional[Tuple[float, ...]] = None
    seed: int = DEFAULT_SEED
    campaign: Mapping[str, Any] = field(default_factory=dict)
    experiments: Tuple[str, ...] = ()
    #: Workload plans captured alongside the single-job sweep (one
    #: `capture_plans` node, default parameters per plan).
    plans: Tuple[str, ...] = ()
    e12_job: str = "terasort"
    e12_input_gb: float = 1.0
    e12_nodes: Tuple[int, ...] = (4, 8, 16, 32)
    e12_repeats: int = 3
    e18_job: str = "terasort"
    e18_target_gb: float = 2.0
    workers: int = 1

    def __post_init__(self) -> None:
        if not self.jobs:
            raise ValueError("pipeline spec needs at least one job")
        if len(self.sizes_gb) < 2:
            raise ValueError("pipeline spec needs >= 2 sizes (fit + target)")
        for experiment in self.experiments:
            if experiment not in PIPELINE_EXPERIMENTS:
                raise ValueError(
                    f"unknown pipeline experiment {experiment!r}; "
                    f"known: {PIPELINE_EXPERIMENTS}")
        if self.plans:
            from repro.jobs.plan import plan_catalog

            known = plan_catalog()
            unknown_plans = [name for name in self.plans if name not in known]
            if unknown_plans:
                raise ValueError(
                    f"unknown workload plan(s) {unknown_plans}; "
                    f"known: {sorted(known)}")
        if self.fit_sizes_gb is not None:
            unknown = set(self.fit_sizes_gb) - set(self.sizes_gb)
            if unknown:
                raise ValueError(f"fit sizes not captured: {sorted(unknown)}")

    @property
    def training_sizes(self) -> Tuple[float, ...]:
        if self.fit_sizes_gb is not None:
            return tuple(self.fit_sizes_gb)
        return tuple(self.sizes_gb[:-1])

    @property
    def target_gb(self) -> float:
        return self.sizes_gb[-1]

    def campaign_config(self) -> CampaignConfig:
        return CampaignConfig(**dict(self.campaign))

    def to_dict(self) -> Dict[str, Any]:
        return {"jobs": list(self.jobs),
                "sizes_gb": list(self.sizes_gb),
                "fit_sizes_gb": (None if self.fit_sizes_gb is None
                                 else list(self.fit_sizes_gb)),
                "seed": self.seed,
                "campaign": dict(self.campaign),
                "experiments": list(self.experiments),
                "plans": list(self.plans),
                "e12_job": self.e12_job,
                "e12_input_gb": self.e12_input_gb,
                "e12_nodes": list(self.e12_nodes),
                "e12_repeats": self.e12_repeats,
                "e18_job": self.e18_job,
                "e18_target_gb": self.e18_target_gb,
                "workers": self.workers}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PipelineSpec":
        return cls(jobs=tuple(data["jobs"]),
                   sizes_gb=tuple(data["sizes_gb"]),
                   fit_sizes_gb=(None if data.get("fit_sizes_gb") is None
                                 else tuple(data["fit_sizes_gb"])),
                   seed=int(data.get("seed", DEFAULT_SEED)),
                   campaign=dict(data.get("campaign", {})),
                   experiments=tuple(data.get("experiments", ())),
                   plans=tuple(data.get("plans", ())),
                   e12_job=data.get("e12_job", "terasort"),
                   e12_input_gb=float(data.get("e12_input_gb", 1.0)),
                   e12_nodes=tuple(data.get("e12_nodes", (4, 8, 16, 32))),
                   e12_repeats=int(data.get("e12_repeats", 3)),
                   e18_job=data.get("e18_job", "terasort"),
                   e18_target_gb=float(data.get("e18_target_gb", 2.0)),
                   workers=int(data.get("workers", 1)))

    def with_overrides(self, **overrides: Any) -> "PipelineSpec":
        return replace(self, **overrides)


def save_spec(root: str | Path, spec: PipelineSpec) -> Path:
    from repro.experiments.store import write_atomic

    path = Path(root) / PIPELINE_SPEC_FILE
    return write_atomic(path, json.dumps(
        {"format": 1, "spec": spec.to_dict()}, indent=2, sort_keys=True)
        + "\n")


def load_spec(root: str | Path) -> PipelineSpec:
    path = Path(root) / PIPELINE_SPEC_FILE
    data = json.loads(path.read_text(encoding="utf-8"))
    return PipelineSpec.from_dict(data["spec"])


# -- point bookkeeping --------------------------------------------------------------


def _point_payload(job: str, input_gb: float, seed: int,
                   campaign: Mapping[str, Any]) -> Dict[str, Any]:
    return {"job": job, "input_gb": float(input_gb), "seed": int(seed),
            "campaign": dict(campaign)}


def _payload_point(payload: Mapping[str, Any]) -> CapturePoint:
    return CapturePoint.from_campaign(
        payload["job"], float(payload["input_gb"]), int(payload["seed"]),
        CampaignConfig(**dict(payload["campaign"])))


def base_point_payloads(spec: PipelineSpec) -> List[Dict[str, Any]]:
    """The job x size sweep every core stage consumes."""
    campaign = spec.campaign_config().to_dict()
    return [_point_payload(job, size, derive_seed(spec.seed, index), campaign)
            for job in spec.jobs
            for index, size in enumerate(spec.sizes_gb)]


def capture_point_payloads(spec: PipelineSpec) -> List[Dict[str, Any]]:
    """The union of every point any stage needs, deduplicated by key."""
    from repro.experiments.figures import e12_points, e18_points

    payloads = base_point_payloads(spec)
    if "e12" in spec.experiments:
        payloads.extend(
            _point_payload(point.job, point.input_gb, point.seed,
                           dict(point.key_config)["campaign"])
            for point in e12_points(job=spec.e12_job,
                                    input_gb=spec.e12_input_gb,
                                    seed=spec.seed,
                                    repeats=spec.e12_repeats,
                                    nodes=spec.e12_nodes))
    if "e18" in spec.experiments:
        payloads.extend(
            _point_payload(point.job, point.input_gb, point.seed,
                           dict(point.key_config)["campaign"])
            for point in e18_points(job=spec.e18_job,
                                    target_gb=spec.e18_target_gb,
                                    seed=spec.seed,
                                    sizes=spec.sizes_gb[:-1]))
    unique: Dict[str, Dict[str, Any]] = {}
    for payload in payloads:
        unique.setdefault(_payload_point(payload).key(), payload)
    return [unique[key] for key in sorted(unique)]


class SharedStoreMiss(LookupError):
    """A downstream stage asked for a point the capture stage never ran.

    Downstream stages must never simulate — the capture stage's config
    is the single source of workload truth, so a miss is a wiring bug
    (or a corrupted store), not something to paper over.
    """


def _load_point(store: CaptureStore, point: CapturePoint):
    entry = store.get(point.key_dict())
    if entry is None:
        raise SharedStoreMiss(
            f"capture store has no entry for {point.job} "
            f"{point.input_gb} GiB seed={point.seed} (key {point.key()[:12]})")
    return entry


def store_capture_fn(store: CaptureStore):
    """A :func:`~repro.experiments.campaigns.capture`-compatible closure
    resolving points from a shared store (raising on miss)."""

    def capture_fn(job: str, input_gb: float, seed: int,
                   campaign: Optional[CampaignConfig] = None,
                   **job_kwargs: Any):
        point = CapturePoint.from_campaign(
            job, input_gb, seed, campaign or CampaignConfig(), job_kwargs)
        return _load_point(store, point)

    return capture_fn


# -- stages -------------------------------------------------------------------------


@register_stage("capture")
def stage_capture(context: StageContext) -> None:
    """Simulate every declared point into a node-local CaptureStore."""
    points = [_payload_point(payload)
              for payload in context.config["points"]]
    store = CaptureStore(context.out("store"),
                         registry=context.telemetry.registry)
    runner = CampaignRunner(store=store,
                            workers=int(context.config.get("workers", 1)),
                            telemetry=context.telemetry)
    runner.run(points)
    manifest = {"points": sorted(
        ({"key": point.key(), "job": point.job,
          "input_gb": point.input_gb, "seed": point.seed}
         for point in points), key=lambda entry: entry["key"])}
    context.write_output("manifest", canonical_json(manifest) + "\n")


@register_stage("capture_plans")
def stage_capture_plans(context: StageContext) -> None:
    """Capture every declared workload plan into a node-local store.

    Plans get their own store (and node) rather than riding in the
    single-job capture node: their key schema differs and no current
    downstream stage consumes them, so a changed plan list never
    re-keys — and never re-simulates — the shared single-job sweep.
    """
    from repro.analysis.plans import stage_breakdown
    from repro.experiments.runner import PlanPoint

    campaign = CampaignConfig(**dict(context.config["campaign"]))
    seed = int(context.config["seed"])
    points = [PlanPoint.from_campaign(name, derive_seed(seed, index),
                                      campaign)
              for index, name in enumerate(context.config["plans"])]
    store = CaptureStore(context.out("store"),
                         registry=context.telemetry.registry)
    runner = CampaignRunner(store=store,
                            workers=int(context.config.get("workers", 1)),
                            telemetry=context.telemetry)
    outcomes = runner.run(points)
    rows = []
    for point, (result, trace) in zip(points, outcomes):
        rows.append({"plan": point.plan, "seed": point.seed,
                     "key": point.key(),
                     "completion_time": result.completion_time,
                     "failed": result.failed,
                     "total_bytes": trace.total_bytes(),
                     "flows": trace.flow_count(),
                     "stages": stage_breakdown(trace)})
    rows.sort(key=lambda row: (row["plan"], row["seed"]))
    context.write_output("plan_summary",
                         canonical_json({"plans": rows}) + "\n")


@register_stage("classify")
def stage_classify(context: StageContext) -> None:
    """Per-point traffic component breakdown from the shared store."""
    store = CaptureStore(context.input("store"))
    rows = []
    for payload in context.config["points"]:
        point = _payload_point(payload)
        _, trace = _load_point(store, point)
        breakdown = component_breakdown(trace)
        rows.append({"job": point.job, "input_gb": point.input_gb,
                     "seed": point.seed,
                     "total_bytes": trace.total_bytes(),
                     "flows": trace.flow_count(),
                     "components": {name: stats["bytes"]
                                    for name, stats in breakdown.items()}})
    rows.sort(key=lambda row: (row["job"], row["input_gb"], row["seed"]))
    context.write_output("classification",
                         canonical_json({"points": rows}) + "\n")


@register_stage("fit")
def stage_fit(context: StageContext) -> None:
    """One fitted JobTrafficModel per job, from the training sizes."""
    store = CaptureStore(context.input("store"))
    campaign = dict(context.config["campaign"])
    seed = int(context.config["seed"])
    sizes = [float(size) for size in context.config["sizes_gb"]]
    # Seeds derive from each size's position in the *captured* sweep,
    # so a training subset still resolves the same captured points.
    indices = [int(index) for index in
               context.config.get("size_indices", range(len(sizes)))]
    models_dir = context.out("models")
    models_dir.mkdir(parents=True, exist_ok=True)
    for job in context.config["jobs"]:
        traces = []
        for index, size in zip(indices, sizes):
            point = _payload_point(_point_payload(
                job, size, derive_seed(seed, index), campaign))
            traces.append(_load_point(store, point)[1])
        model = fit_job_model(traces)
        model.to_json(models_dir / f"{job}.json")


@register_stage("replay")
def stage_replay(context: StageContext) -> None:
    """Replay every captured trace through the generation layer."""
    store = CaptureStore(context.input("store"))
    rows = []
    for payload in context.config["points"]:
        point = _payload_point(payload)
        result, trace = _load_point(store, point)
        report = replay_trace(trace)
        rows.append({"job": point.job, "input_gb": point.input_gb,
                     "seed": point.seed,
                     "captured_jct": result.completion_time,
                     "replayed_makespan": report.makespan,
                     "flows": report.flow_count,
                     "bytes": report.total_bytes})
    rows.sort(key=lambda row: (row["job"], row["input_gb"], row["seed"]))
    context.write_output("replay", canonical_json({"points": rows}) + "\n")


@register_stage("validate")
def stage_validate(context: StageContext) -> None:
    """Score model-generated traces against the held-out target size."""
    store = CaptureStore(context.input("store"))
    models_dir = context.input("models")
    campaign = dict(context.config["campaign"])
    seed = int(context.config["seed"])
    target_gb = float(context.config["target_gb"])
    target_index = int(context.config["target_index"])
    rows = []
    for job in context.config["jobs"]:
        model = JobTrafficModel.from_json(models_dir / f"{job}.json")
        point = _payload_point(_point_payload(
            job, target_gb, derive_seed(seed, target_index), campaign))
        _, captured = _load_point(store, point)
        synthetic = generate_trace(model, input_gb=target_gb,
                                   seed=seed + 999)
        summary = validation_summary(captured, synthetic)
        rows.append({
            "job": job, "target_gb": target_gb,
            "mean_volume_error": summary.mean_volume_error,
            "components": {
                name: {"count_error": comparison.count_error,
                       "volume_error": comparison.volume_error,
                       "size_ks": (comparison.size_ks.statistic
                                   if comparison.size_ks else None)}
                for name, comparison in sorted(
                    summary.components.items())}})
    context.write_output("validation",
                         canonical_json({"jobs": rows}) + "\n")


@register_stage("figure")
def stage_figure(context: StageContext) -> None:
    """Regenerate one experiment figure from the shared capture store."""
    from repro.experiments import figures

    experiment = context.config["experiment"]
    params = dict(context.config.get("params", {}))
    capture_fn = store_capture_fn(CaptureStore(context.input("store")))
    if experiment == "e12":
        params["nodes"] = tuple(params.get("nodes", (4, 8, 16, 32)))
        tables = figures.e12_cluster_scaling(capture_fn=capture_fn, **params)
    elif experiment == "e18":
        params["sizes"] = tuple(params.get("sizes", (0.25, 0.5, 1.0)))
        tables = figures.e18_training_sensitivity(capture_fn=capture_fn,
                                                  **params)
    else:
        raise ValueError(f"unknown pipeline experiment {experiment!r}")
    context.write_output("figure_md", "\n\n".join(
        render_table(table) for table in tables) + "\n")
    context.write_output("figure_json", canonical_json(
        {"experiment": experiment,
         "tables": [{"title": table.title, "headers": table.headers,
                     "rows": table.rows, "notes": table.notes}
                    for table in tables]}) + "\n")


@register_stage("report")
def stage_report(context: StageContext) -> None:
    """Aggregate every upstream artifact into one report.md/.json."""
    sections: List[str] = ["# keddah pipeline report", ""]
    aggregate: Dict[str, Any] = {}

    classification = json.loads(
        context.input("classification").read_text(encoding="utf-8"))
    aggregate["classification"] = classification
    sections.append("## Traffic classification")
    sections.append(f"{len(classification['points'])} captured points; "
                    "per-point component bytes in report.json.")
    sections.append("")

    models_dir = context.input("models")
    model_files = sorted(path.name for path in models_dir.glob("*.json"))
    aggregate["models"] = model_files
    sections.append("## Fitted models")
    sections.extend(f"- {name}" for name in model_files)
    sections.append("")

    replay = json.loads(context.input("replay").read_text(encoding="utf-8"))
    aggregate["replay"] = replay
    sections.append("## Replay")
    sections.append(f"{len(replay['points'])} traces replayed through the "
                    "generation layer.")
    sections.append("")

    if "plan_summary" in context.inputs:
        plans = json.loads(
            context.input("plan_summary").read_text(encoding="utf-8"))
        aggregate["plans"] = plans
        sections.append("## Workload plans")
        for row in plans["plans"]:
            stage_names = [s["stage"] for s in row["stages"]
                           if s["stage"] != "(shared)"]
            sections.append(
                f"- {row['plan']} (seed {row['seed']}): "
                f"{'→'.join(stage_names)}; completion "
                f"{row['completion_time']:.2f} s, "
                f"{row['flows']} flows")
        sections.append("")

    validation = json.loads(
        context.input("validation").read_text(encoding="utf-8"))
    aggregate["validation"] = validation
    sections.append("## Validation (held-out target)")
    for row in validation["jobs"]:
        sections.append(f"- {row['job']} @ {row['target_gb']} GiB: "
                        f"mean volume error "
                        f"{row['mean_volume_error']:.4f}")
    sections.append("")

    for input_name in sorted(context.inputs):
        if not input_name.startswith("figure_"):
            continue
        experiment = input_name[len("figure_"):]
        sections.append(f"## Experiment {experiment.upper()}")
        sections.append(
            context.input(input_name).read_text(encoding="utf-8").rstrip())
        sections.append("")
        aggregate.setdefault("experiments", []).append(experiment)

    context.write_output("report_md", "\n".join(sections).rstrip() + "\n")
    context.write_output("report_json", canonical_json(aggregate) + "\n")


@register_stage("sleep")
def stage_sleep(context: StageContext) -> None:
    """Debug/test stage: sleep then write a marker.

    Exists so watchdog deadlines (which need a registry stage runnable
    in a spawn worker) have something deterministic to kill.
    """
    import time

    time.sleep(float(context.config.get("seconds", 0.0)))
    context.write_output("marker",
                         str(context.config.get("text", "slept")) + "\n")


# -- wiring -------------------------------------------------------------------------


def build_pipeline(spec: PipelineSpec) -> PipelineDAG:
    """The built-in capture→classify→fit→replay→validate→report DAG."""
    dag = PipelineDAG("keddah")
    base = base_point_payloads(spec)
    campaign = spec.campaign_config().to_dict()
    training = list(spec.training_sizes)
    training_indices = [spec.sizes_gb.index(size)
                        for size in spec.training_sizes]
    # Seeds derive from the position in the *captured* sweep, so the
    # fit stage must know each training size's original index.
    dag.add(StageNode(
        "capture", "capture",
        config={"points": capture_point_payloads(spec),
                "workers": spec.workers},
        out_paths={"store": "store", "manifest": "manifest.json"}))
    if spec.plans:
        dag.add(StageNode(
            "capture_plans", "capture_plans",
            config={"plans": list(spec.plans), "seed": spec.seed,
                    "campaign": campaign, "workers": spec.workers},
            out_paths={"store": "store",
                       "plan_summary": "plan_summary.json"}))
    dag.add(StageNode(
        "classify", "classify",
        config={"points": base},
        in_paths={"store": ("capture", "store")},
        out_paths={"classification": "classification.json"}))
    dag.add(StageNode(
        "fit", "fit",
        config={"jobs": list(spec.jobs), "sizes_gb": training,
                "size_indices": training_indices,
                "seed": spec.seed, "campaign": campaign},
        in_paths={"store": ("capture", "store")},
        out_paths={"models": "models"}))
    dag.add(StageNode(
        "replay", "replay",
        config={"points": base},
        in_paths={"store": ("capture", "store")},
        out_paths={"replay": "replay.json"}))
    dag.add(StageNode(
        "validate", "validate",
        config={"jobs": list(spec.jobs), "target_gb": spec.target_gb,
                "target_index": len(spec.sizes_gb) - 1,
                "seed": spec.seed, "campaign": campaign},
        in_paths={"store": ("capture", "store"),
                  "models": ("fit", "models")},
        out_paths={"validation": "validation.json"}))
    report_inputs = {"classification": ("classify", "classification"),
                     "models": ("fit", "models"),
                     "replay": ("replay", "replay"),
                     "validation": ("validate", "validation")}
    if spec.plans:
        report_inputs["plan_summary"] = ("capture_plans", "plan_summary")
    for experiment in spec.experiments:
        if experiment == "e12":
            params = {"job": spec.e12_job, "input_gb": spec.e12_input_gb,
                      "seed": spec.seed, "repeats": spec.e12_repeats,
                      "nodes": list(spec.e12_nodes)}
        else:
            params = {"job": spec.e18_job, "target_gb": spec.e18_target_gb,
                      "seed": spec.seed,
                      "sizes": list(spec.sizes_gb[:-1])}
        dag.add(StageNode(
            experiment, "figure",
            config={"experiment": experiment, "params": params},
            in_paths={"store": ("capture", "store")},
            out_paths={"figure_md": f"{experiment}.md",
                       "figure_json": f"{experiment}.json"}))
        report_inputs[f"figure_{experiment}"] = (experiment, "figure_md")
    dag.add(StageNode(
        "report", "report",
        config={},
        in_paths=report_inputs,
        out_paths={"report_md": "report.md", "report_json": "report.json"}))
    return dag


__all__ = [
    "PIPELINE_EXPERIMENTS",
    "PipelineSpec",
    "SharedStoreMiss",
    "base_point_payloads",
    "build_pipeline",
    "capture_point_payloads",
    "load_spec",
    "save_spec",
    "store_capture_fn",
]
