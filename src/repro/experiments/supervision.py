"""Fault tolerance for campaign execution: the supervision layer.

A measurement campaign is a long sequence of independent capture
points, and production-scale sweeps only finish because the harness
tolerates partial failure: a worker OOM-killed by the kernel, a point
that hangs in a pathological configuration, or a genuinely poisoned
point that raises deterministically must not abort the whole run and
discard every in-flight result.  This module supplies the pieces the
:class:`~repro.experiments.runner.CampaignRunner` threads together:

* **failure classification** (:func:`classify_failure`) — *transient*
  worker failures (broken pools, pickling/IPC errors, OOM kills) are
  retryable; *deterministic* simulation errors are not (re-running a
  pure function on the same inputs re-raises the same exception);
  *deadline* expiries sit in between (a hang may be load-dependent, so
  they retry like transients).
* **retry policy** (:class:`RetryPolicy`) — attempt budget, per-point
  wall-clock deadline, and exponential backoff whose jitter is derived
  deterministically from the point key, so two runs of the same
  campaign sleep identically (no ``random`` in the control path).
* **failure fingerprints** (:class:`FailureFingerprint`) — exception
  type + message + a hash of the normalised traceback, so repeated
  failures of the same point are recognisably "the same crash".
* **quarantine** (:class:`Quarantine`) — a ``quarantine.jsonl`` sidecar
  recording each poisoned point's fingerprints; the campaign completes
  with an explicit partial-result manifest instead of dying.
* **checkpoint journal** (:class:`CheckpointJournal`) — an append-only
  JSONL file recording every completed point *with its encoded store
  payload*, so ``keddah campaign --resume <journal>`` replays completed
  points byte-identically without re-simulating, even when no
  persistent store is configured.

Everything here is host-side machinery: it never touches simulated
time, and resolved captures are byte-identical whether a point
succeeded first try, was retried after a worker crash, or was replayed
from a journal (pinned by ``tests/test_campaign_runner.py``).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import traceback
from concurrent.futures import BrokenExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.experiments.store import fsync_dir, write_atomic

#: Failure classes.  ``TRANSIENT`` failures are environmental and
#: retryable; ``DETERMINISTIC`` failures repeat on every attempt;
#: ``DEADLINE`` marks watchdog kills of hung points (retried like
#: transients — a hang can be load-dependent).
TRANSIENT = "transient"
DETERMINISTIC = "deterministic"
DEADLINE = "deadline"


class DeadlineExpired(Exception):
    """A point exceeded its per-point wall-clock deadline."""


#: Exception types indicating the *worker* (not the simulation) failed:
#: killed processes, broken pipes to dead children, pickling/IPC
#: trouble, and memory pressure.  ``OSError`` covers fork/spawn
#: failures and transient filesystem trouble on the store path.
_TRANSIENT_TYPES = (BrokenProcessPool, BrokenExecutor, pickle.PickleError,
                    MemoryError, ConnectionError, EOFError, OSError)


def classify_failure(exc: BaseException) -> str:
    """Sort an exception into ``transient``/``deterministic``/``deadline``."""
    if isinstance(exc, DeadlineExpired):
        return DEADLINE
    if isinstance(exc, _TRANSIENT_TYPES):
        return TRANSIENT
    return DETERMINISTIC


def _traceback_text(exc: BaseException) -> str:
    """The exception's traceback, including any remote (worker) part.

    ``concurrent.futures`` chains the worker-side traceback onto the
    re-raised exception via ``__cause__``; ``format_exception`` walks
    the chain, so worker crashes fingerprint on the *worker's* frames.
    """
    return "".join(traceback.format_exception(type(exc), exc,
                                              exc.__traceback__))


def _normalise_traceback(text: str) -> str:
    """Strip line numbers and memory addresses so equal crashes hash equal."""
    out = []
    for line in text.splitlines():
        if line.lstrip().startswith("File "):
            # '  File "x.py", line 12, in f' -> '  File "x.py", in f'
            parts = [part for part in line.split(", ")
                     if not part.startswith("line ")]
            line = ", ".join(parts)
        out.append(line)
    return "\n".join(out)


@dataclass(frozen=True)
class FailureFingerprint:
    """What failed, compressed to something comparable across attempts."""

    exception_type: str
    message: str
    traceback_sha256: str
    classification: str

    @classmethod
    def from_exception(cls, exc: BaseException) -> "FailureFingerprint":
        text = _normalise_traceback(_traceback_text(exc))
        digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
        return cls(exception_type=type(exc).__name__,
                   message=str(exc)[:500],
                   traceback_sha256=digest,
                   classification=classify_failure(exc))

    def to_dict(self) -> Dict[str, Any]:
        return {"exception_type": self.exception_type,
                "message": self.message,
                "traceback_sha256": self.traceback_sha256,
                "classification": self.classification}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FailureFingerprint":
        return cls(exception_type=data["exception_type"],
                   message=data["message"],
                   traceback_sha256=data["traceback_sha256"],
                   classification=data["classification"])

    def short(self) -> str:
        return (f"{self.exception_type}({self.message!r}) "
                f"[{self.classification}, tb {self.traceback_sha256[:10]}]")


@dataclass(frozen=True)
class RetryPolicy:
    """Attempt budget, deadline and deterministic backoff for one campaign.

    ``delay`` grows exponentially per attempt and is jittered by a hash
    of ``(key, attempt)`` — deterministic, so a re-run of the same
    campaign schedules retries identically (the same property the
    simulator's seeded RNG gives simulated randomness).
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    backoff: float = 2.0
    max_delay: float = 5.0
    jitter: float = 0.5
    deadline_s: Optional[float] = None
    retry_deterministic: bool = False

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive when set")

    def should_retry(self, classification: str, attempts: int) -> bool:
        """May a point that has already burned ``attempts`` try again?"""
        if attempts >= self.max_attempts:
            return False
        if classification == DETERMINISTIC:
            return self.retry_deterministic
        return True

    def delay(self, key: str, attempts: int) -> float:
        """Backoff before attempt ``attempts + 1`` of point ``key``."""
        if self.base_delay <= 0:
            return 0.0
        raw = self.base_delay * (self.backoff ** max(0, attempts - 1))
        digest = hashlib.sha256(f"{key}:{attempts}".encode()).digest()
        unit = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return min(self.max_delay, raw * (1.0 + self.jitter * unit))


@dataclass
class PointFailure:
    """One quarantined point: identity, attempts, and every fingerprint.

    ``occurrences`` counts how many times this *same* crash (same key,
    same fingerprint set) was quarantined — it grows across
    ``--resume`` cycles instead of the sidecar growing duplicate lines.
    """

    key: str
    job: str
    input_gb: float
    seed: int
    attempts: int
    fingerprints: List[FailureFingerprint] = field(default_factory=list)
    occurrences: int = 1

    def crash_signature(self) -> Tuple[Any, ...]:
        """What makes two quarantine records "the same crash"."""
        return (self.key,
                tuple((f.exception_type, f.traceback_sha256)
                      for f in self.fingerprints))

    def to_dict(self) -> Dict[str, Any]:
        return {"key": self.key, "job": self.job, "input_gb": self.input_gb,
                "seed": self.seed, "attempts": self.attempts,
                "occurrences": self.occurrences,
                "fingerprints": [f.to_dict() for f in self.fingerprints]}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PointFailure":
        return cls(key=data["key"], job=data["job"],
                   input_gb=data["input_gb"], seed=data["seed"],
                   attempts=data["attempts"],
                   occurrences=int(data.get("occurrences", 1)),
                   fingerprints=[FailureFingerprint.from_dict(f)
                                 for f in data.get("fingerprints", [])])

    def describe(self) -> str:
        last = self.fingerprints[-1].short() if self.fingerprints else "?"
        seen = (f", seen {self.occurrences}x" if self.occurrences > 1 else "")
        return (f"{self.job} {self.input_gb} GiB seed={self.seed} "
                f"({self.attempts} attempt(s){seen}): {last}")


class CampaignPointsFailed(RuntimeError):
    """Raised by strict runs after the campaign *completed*: some points
    exhausted their attempt budget and were quarantined.  Carries the
    partial results (``None`` at failed indices) and the failures, so
    callers can still use everything that did resolve.
    """

    def __init__(self, failures: List[PointFailure], results: List[Any]):
        self.failures = failures
        self.results = results
        lines = "\n  ".join(failure.describe() for failure in failures)
        super().__init__(
            f"{len(failures)} campaign point(s) quarantined:\n  {lines}")


class Quarantine:
    """Deduplicating ``quarantine.jsonl`` sidecar of poisoned points.

    With ``path=None`` the quarantine is memory-only (failures are
    still collected on the runner); with a path, every quarantined
    point is one durable JSON line so post-mortems survive the process.
    Opening an existing sidecar loads it first, and recording a failure
    whose :meth:`PointFailure.crash_signature` matches a known line
    bumps that line's ``occurrences`` (and attempt total) instead of
    appending a duplicate — so a poison point crashed across ten
    ``--resume`` cycles is *one* line with ``occurrences: 10``.
    """

    def __init__(self, path: Optional[str | Path] = None):
        self.path = Path(path) if path is not None else None
        self.failures: List[PointFailure] = []
        if self.path is not None and self.path.exists():
            self.failures = Quarantine.load(self.path)

    def record(self, failure: PointFailure) -> PointFailure:
        """Record (or merge) one failure; returns the stored record."""
        signature = failure.crash_signature()
        for known in self.failures:
            if known.crash_signature() == signature:
                known.occurrences += failure.occurrences
                known.attempts += failure.attempts
                self._rewrite()
                return known
        self.failures.append(failure)
        if self.path is not None:
            created = not self.path.exists()
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(failure.to_dict(), sort_keys=True)
                             + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            if created:
                fsync_dir(self.path.parent)
        return failure

    def _rewrite(self) -> None:
        """Atomically re-publish the whole sidecar (after a merge)."""
        if self.path is None:
            return
        text = "".join(json.dumps(failure.to_dict(), sort_keys=True) + "\n"
                       for failure in self.failures)
        write_atomic(self.path, text)

    def __len__(self) -> int:
        return len(self.failures)

    @classmethod
    def load(cls, path: str | Path) -> List[PointFailure]:
        """Read a sidecar back (tolerating a truncated final line)."""
        out: List[PointFailure] = []
        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError:
            return out
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                out.append(PointFailure.from_dict(json.loads(line)))
            except (ValueError, KeyError):
                continue  # torn tail write
        return out


#: Version of the journal line schema.
JOURNAL_FORMAT_VERSION = 1


class CheckpointJournal:
    """Incremental, resumable record of a campaign's completed points.

    The journal is an append-only JSONL file.  The first line is a
    header; each later line is either::

        {"completed": {"key": <sha256>, "job": ..., "input_gb": ...,
                       "seed": ..., "entry": <store payload string>}}
        {"failure": <PointFailure dict>}

    ``entry`` is the exact :func:`repro.experiments.store.encode_entry`
    payload (header + verbatim trace JSONL), so a resumed run replays
    completed points byte-identically — the same round-trip guarantee
    the persistent store pins.  Opening an existing journal loads its
    completed entries (torn tail lines are tolerated and counted), and
    further completions append to the same file, so a campaign can be
    killed and resumed any number of times.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._entries: Dict[str, str] = {}
        self._meta: Dict[str, Dict[str, Any]] = {}
        self.failures_recorded = 0
        self.truncated_lines = 0
        self._load_existing()
        if not self.path.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._append({"journal": {"format": JOURNAL_FORMAT_VERSION}})

    # -- loading -----------------------------------------------------------------

    def _load_existing(self) -> None:
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                self.truncated_lines += 1
                continue
            completed = record.get("completed")
            if completed:
                try:
                    key = completed["key"]
                    self._entries[key] = completed["entry"]
                    self._meta[key] = {name: completed.get(name)
                                       for name in ("job", "input_gb", "seed")}
                except (KeyError, TypeError):
                    self.truncated_lines += 1
            elif record.get("failure"):
                self.failures_recorded += 1

    # -- writing -----------------------------------------------------------------

    def _append(self, record: Dict[str, Any]) -> None:
        created = not self.path.exists()
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        if created:
            # The file's *name* lives in the parent directory's
            # metadata; without this a power cut can lose the journal
            # even though its bytes were fsynced.
            fsync_dir(self.path.parent)

    def record_completed(self, key: str, job: str, input_gb: float, seed: int,
                         entry: str) -> None:
        """Append one completed point (idempotent per key)."""
        if key in self._entries:
            return
        self._entries[key] = entry
        self._meta[key] = {"job": job, "input_gb": input_gb, "seed": seed}
        self._append({"completed": {"key": key, "job": job,
                                    "input_gb": input_gb, "seed": seed,
                                    "entry": entry}})

    def record_failure(self, failure: PointFailure) -> None:
        self.failures_recorded += 1
        self._append({"failure": failure.to_dict()})

    # -- reading -----------------------------------------------------------------

    def lookup(self, key: str) -> Optional[Tuple[Any, Any]]:
        """Decode the completed entry for ``key``; None when absent/corrupt."""
        payload = self._entries.get(key)
        if payload is None:
            return None
        from repro.experiments.store import decode_entry

        try:
            return decode_entry(payload)
        except Exception:
            # A corrupt journal entry is a miss, never an abort.
            return None

    def completed_keys(self) -> List[str]:
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def manifest(self) -> Dict[str, Any]:
        """Summary of what the journal holds (for reporting/debugging)."""
        return {"path": str(self.path),
                "completed": len(self._entries),
                "failures_recorded": self.failures_recorded,
                "truncated_lines": self.truncated_lines,
                "points": [dict(self._meta[key], key=key)
                           for key in self._entries]}
