"""Crash-safe campaign DAGs: a journaled multi-stage pipeline scheduler.

The toolchain this repo reproduces is itself a pipeline — capture
Hadoop traffic, classify it, fit per-job models, replay synthetic
traces, validate, report — and every experiment figure used to
re-derive that chain from scratch.  This module turns the chain into
an explicit DAG of stages with three properties the flat
:class:`~repro.experiments.runner.CampaignRunner` cannot offer:

**Isolation** — every node runs in its own working directory under
``<root>/nodes/<name>@<sig12>/``, where the signature is the SHA-256 of
the node's full config *plus the digests of its upstream outputs*
(the kwdagger ``ProcessNode`` pattern).  Editing one mid-DAG node's
config therefore re-keys exactly that node and its descendants;
everything upstream keeps its directory and is reused as a cache hit.

**Durability** — every node state transition is appended (fsynced) to
``<root>/journal.jsonl`` before and after the work happens, and a node
counts as complete only once its ``outputs.json`` manifest — listing
each declared output's relative path and content digest — has been
atomically published.  SIGKILL at any instant leaves either a complete
node (reused on resume) or an incomplete one (re-run on resume); the
final artifacts are byte-identical either way.

**Relocatability** — nothing under ``<root>`` stores an absolute path:
the journal, the ``node.json`` descriptors and the ``.pred.json`` /
``.succ.json`` link records all hold root- or node-relative paths, so
the whole pipeline directory can be moved (or shipped) and a new
:class:`DAGRunner` pointed at it resumes with full cache hits.

Failure handling reuses PR 4's supervision machinery: per-node
:class:`~repro.experiments.supervision.RetryPolicy` (with watchdog
deadlines enforced by a disposable spawn worker), failure
classification, and a :class:`~repro.experiments.supervision.
Quarantine` sidecar.  Propagation is configurable — ``fail-fast``
stops scheduling at the first quarantined node, ``continue`` finishes
every independent branch before raising, ``skip-descendants`` finishes
independent branches and returns a partial result without raising.
In *every* mode the descendants of a failed node are explicitly marked
``BLOCKED`` (never silently skipped), mirroring the runner's explicit
partial-result manifest.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import time
from concurrent.futures import FIRST_COMPLETED, wait
from concurrent.futures.process import ProcessPoolExecutor
from dataclasses import dataclass, field
from multiprocessing import get_context
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.experiments.store import canonical_json, write_atomic
from repro.experiments.supervision import (
    DeadlineExpired,
    FailureFingerprint,
    PointFailure,
    Quarantine,
    RetryPolicy,
    classify_failure,
)
from repro.obs.telemetry import Telemetry

#: Version of the (signature schema, journal schema, manifest schema)
#: triple.  Bump when any changes shape; old node dirs then re-run.
DAG_FORMAT_VERSION = 1

# -- node lifecycle states ----------------------------------------------------------

PENDING = "pending"        #: not yet scheduled this run
RUNNING = "running"        #: journaled just before the stage function runs
DONE = "done"              #: executed this run; outputs.json published
CACHED = "cached"          #: valid outputs.json found; stage not re-run
FAILED = "failed"          #: one attempt failed (may still retry)
QUARANTINED = "quarantined"  #: attempt budget exhausted; recorded in sidecar
BLOCKED = "blocked"        #: an upstream node failed; cannot run
SKIPPED = "skipped"        #: unstarted when a fail-fast run aborted

#: States a finished run can leave a node in.
TERMINAL_STATES = (DONE, CACHED, QUARANTINED, BLOCKED, SKIPPED)

# -- failure propagation modes ------------------------------------------------------

FAIL_FAST = "fail-fast"
CONTINUE = "continue"
SKIP_DESCENDANTS = "skip-descendants"
PROPAGATION_MODES = (FAIL_FAST, CONTINUE, SKIP_DESCENDANTS)

#: Env var naming node(s) in which to SIGKILL *this process* right
#: after the RUNNING transition is journaled — the crash-injection hook
#: the resume acceptance tests and the check.sh gate use.
CRASH_ENV_VAR = "KEDDAH_PIPELINE_CRASH_IN"


class PipelineDefinitionError(ValueError):
    """The DAG is malformed: duplicate/unknown nodes or bad wiring."""


class PipelineCycleError(PipelineDefinitionError):
    """The declared dependencies contain a cycle."""


class StageOutputMissing(RuntimeError):
    """A stage returned without materialising a declared output."""


# -- stage registry -----------------------------------------------------------------

_STAGE_REGISTRY: Dict[str, Callable[["StageContext"], Any]] = {}


def register_stage(name: str) -> Callable[[Callable], Callable]:
    """Register a stage function under a stable name.

    Registry stages (unlike raw ``fn=`` callables) can be executed in a
    disposable spawn worker, which is what makes watchdog deadlines
    enforceable — the parent can terminate the worker mid-stage.
    """

    def decorate(fn: Callable[["StageContext"], Any]) -> Callable:
        if name in _STAGE_REGISTRY and _STAGE_REGISTRY[name] is not fn:
            raise PipelineDefinitionError(f"stage {name!r} already registered")
        _STAGE_REGISTRY[name] = fn
        return fn

    return decorate


def stage_registry() -> Dict[str, Callable]:
    return dict(_STAGE_REGISTRY)


# -- DAG structure ------------------------------------------------------------------


@dataclass(frozen=True)
class StageNode:
    """One pipeline stage: what it consumes, produces, and runs.

    ``in_paths`` maps an input name to ``(upstream node, upstream
    output name)`` — dependencies are *derived* from this wiring, never
    declared separately, so an edge always corresponds to data moving.
    ``out_paths`` maps an output name to a path relative to the node's
    ``work/`` directory (a file or a directory).  ``stage`` names a
    registered stage function; ``fn`` may override it with a direct
    callable (tests, embedders) at the cost of deadline enforcement.
    """

    name: str
    stage: str
    config: Mapping[str, Any] = field(default_factory=dict)
    in_paths: Mapping[str, Tuple[str, str]] = field(default_factory=dict)
    out_paths: Mapping[str, str] = field(default_factory=dict)
    fn: Optional[Callable[["StageContext"], Any]] = None

    def predecessors(self) -> List[str]:
        return sorted({upstream for upstream, _ in self.in_paths.values()})


class PipelineDAG:
    """A named set of :class:`StageNode`\\ s with validated wiring."""

    def __init__(self, name: str = "pipeline"):
        self.name = name
        self._nodes: Dict[str, StageNode] = {}

    def add(self, node: StageNode) -> StageNode:
        if node.name in self._nodes:
            raise PipelineDefinitionError(f"duplicate node {node.name!r}")
        if not node.out_paths:
            raise PipelineDefinitionError(
                f"node {node.name!r} declares no out_paths; every stage "
                "must produce at least one artifact")
        self._nodes[node.name] = node
        return node

    def node(self, name: str) -> StageNode:
        try:
            return self._nodes[name]
        except KeyError:
            raise PipelineDefinitionError(f"unknown node {name!r}") from None

    def nodes(self) -> List[StageNode]:
        return list(self._nodes.values())

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def validate(self) -> None:
        """Check wiring: known upstreams, known output names, no cycles."""
        for node in self._nodes.values():
            for input_name, (upstream, output) in node.in_paths.items():
                if upstream not in self._nodes:
                    raise PipelineDefinitionError(
                        f"node {node.name!r} input {input_name!r} references "
                        f"unknown upstream {upstream!r}")
                if output not in self._nodes[upstream].out_paths:
                    raise PipelineDefinitionError(
                        f"node {node.name!r} input {input_name!r} references "
                        f"unknown output {upstream!r}:{output!r}")
        self.topological_order()

    def topological_order(self) -> List[str]:
        """Deterministic (name-sorted Kahn) topological order."""
        indegree = {name: len(node.predecessors())
                    for name, node in self._nodes.items()}
        ready = sorted(name for name, degree in indegree.items()
                       if degree == 0)
        order: List[str] = []
        successors = self._successor_map()
        while ready:
            name = ready.pop(0)
            order.append(name)
            changed = False
            for downstream in successors.get(name, ()):
                indegree[downstream] -= 1
                if indegree[downstream] == 0:
                    ready.append(downstream)
                    changed = True
            if changed:
                ready.sort()
        if len(order) != len(self._nodes):
            cyclic = sorted(name for name in self._nodes
                            if name not in order)
            raise PipelineCycleError(
                f"dependency cycle among nodes: {', '.join(cyclic)}")
        return order

    def _successor_map(self) -> Dict[str, List[str]]:
        successors: Dict[str, List[str]] = {}
        for node in self._nodes.values():
            for upstream in node.predecessors():
                successors.setdefault(upstream, []).append(node.name)
        return {name: sorted(group) for name, group in successors.items()}

    def successors(self, name: str) -> List[str]:
        self.node(name)
        return self._successor_map().get(name, [])

    def descendants(self, name: str) -> List[str]:
        """Every transitive successor of ``name`` (sorted)."""
        successors = self._successor_map()
        seen: set = set()
        frontier = list(successors.get(name, ()))
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(successors.get(current, ()))
        return sorted(seen)


# -- signatures and digests ---------------------------------------------------------


def node_signature(node: StageNode,
                   upstream_digests: Mapping[str, str]) -> str:
    """Content address of one node: config + upstream output digests.

    Two nodes share a signature (and hence a working directory) iff
    they would compute the same thing: same stage, same config, and
    byte-identical upstream inputs.  A config edit re-keys the node; a
    byte change in any upstream output cascades through this digest to
    every descendant.
    """
    payload = {"format": DAG_FORMAT_VERSION,
               "name": node.name,
               "stage": node.stage,
               "config": dict(node.config),
               "outputs": dict(node.out_paths),
               "inputs": {input_name: {"from": f"{upstream}:{output}",
                                       "digest": upstream_digests[input_name]}
                          for input_name, (upstream, output)
                          in sorted(node.in_paths.items())}}
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def digest_path(path: Path) -> str:
    """Content digest of an output artifact (file or directory tree).

    Directories digest as the canonical JSON of their sorted
    ``(relative path, file sha256, size)`` triples.  Dot-prefixed files
    are excluded: they are bookkeeping (atomic-write ``.tmp`` droppings
    from a killed attempt, link records), not artifact content, and
    must not make a resumed run's digest diverge from an uninterrupted
    one.
    """
    path = Path(path)
    if path.is_dir():
        entries = []
        for file in sorted(path.rglob("*")):
            if not file.is_file():
                continue
            relative = file.relative_to(path)
            if any(part.startswith(".") for part in relative.parts):
                continue
            entries.append([relative.as_posix(), _file_sha256(file),
                            file.stat().st_size])
        payload = canonical_json({"dir": entries})
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()
    if path.is_file():
        return _file_sha256(path)
    raise StageOutputMissing(f"declared output missing on disk: {path}")


def _file_sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def node_dirname(name: str, signature: str) -> str:
    return f"{name}@{signature[:12]}"


# -- stage execution context --------------------------------------------------------


@dataclass
class StageContext:
    """What a stage function sees: its sandbox, config, and inputs.

    ``inputs`` maps each declared input name to the *resolved* path of
    the upstream artifact; ``out(name)`` returns where the declared
    output must be materialised (parents pre-created).  Stages must
    write only under ``workdir`` — that is the isolation contract.
    """

    name: str
    workdir: Path
    config: Dict[str, Any]
    inputs: Dict[str, Path]
    out_paths: Dict[str, str]
    telemetry: Telemetry

    def input(self, name: str) -> Path:
        try:
            return self.inputs[name]
        except KeyError:
            raise PipelineDefinitionError(
                f"stage {self.name!r} asked for undeclared input {name!r}"
            ) from None

    def out(self, name: str) -> Path:
        try:
            relative = self.out_paths[name]
        except KeyError:
            raise PipelineDefinitionError(
                f"stage {self.name!r} asked for undeclared output {name!r}"
            ) from None
        path = self.workdir / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        return path

    def write_output(self, name: str, text: str) -> Path:
        """Atomically materialise a text output (the common case)."""
        return write_atomic(self.out(name), text)


def _run_stage_in_worker(stage: str, name: str, workdir: str,
                         config: Dict[str, Any], inputs: Dict[str, str],
                         out_paths: Dict[str, str]) -> None:
    """Spawn-worker entry point for deadline-enforced stages.

    Imports the built-in stage definitions (registration is an import
    side effect), then runs the named stage against the shared
    filesystem.  Only registry stages come through here — a raw ``fn``
    callable cannot be named across a spawn boundary.
    """
    import repro.experiments.pipelines  # noqa: F401  (registers stages)

    fn = _STAGE_REGISTRY[stage]
    context = StageContext(name=name, workdir=Path(workdir),
                           config=dict(config),
                           inputs={key: Path(value)
                                   for key, value in inputs.items()},
                           out_paths=dict(out_paths),
                           telemetry=Telemetry.disabled())
    fn(context)


# -- the DAG journal ----------------------------------------------------------------


class DAGJournal:
    """Append-only fsynced JSONL of node state transitions.

    Same semantics as :class:`~repro.experiments.supervision.
    CheckpointJournal`: header line first, one JSON object per
    transition, torn tail lines tolerated and counted, every append
    fsynced (and the containing directory fsynced when the file is
    created).  Unlike the campaign journal it records *transitions*,
    not payloads — node outputs live in the node dirs; the journal is
    the authoritative history of what happened when::

        {"dag_journal": {"format": 1, "pipeline": "..."}}
        {"transition": {"node": "fit", "signature": "...", "state":
                        "running", "attempt": 1, "wall": 1754640000.0}}
    """

    def __init__(self, path: str | Path, pipeline: str = "pipeline"):
        self.path = Path(path)
        self.transitions: List[Dict[str, Any]] = []
        self.truncated_lines = 0
        self._load_existing()
        if not self.path.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._append({"dag_journal": {"format": DAG_FORMAT_VERSION,
                                          "pipeline": pipeline}})

    def _load_existing(self) -> None:
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                self.truncated_lines += 1
                continue
            transition = record.get("transition")
            if isinstance(transition, dict):
                self.transitions.append(transition)

    def _append(self, record: Dict[str, Any]) -> None:
        from repro.experiments.store import fsync_dir

        created = not self.path.exists()
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        if created:
            fsync_dir(self.path.parent)

    def record(self, node: str, signature: str, state: str,
               **extra: Any) -> Dict[str, Any]:
        """Durably journal one node state transition."""
        transition = dict(extra, node=node, signature=signature,
                          state=state, wall=time.time())
        self.transitions.append(transition)
        self._append({"transition": transition})
        return transition

    def run_counts(self) -> Dict[str, int]:
        """How many times each node entered RUNNING (across all runs)."""
        counts: Dict[str, int] = {}
        for transition in self.transitions:
            if transition.get("state") == RUNNING:
                name = transition.get("node", "?")
                counts[name] = counts.get(name, 0) + 1
        return counts

    def last_states(self) -> Dict[str, Dict[str, Any]]:
        """The most recent transition per node."""
        latest: Dict[str, Dict[str, Any]] = {}
        for transition in self.transitions:
            latest[transition.get("node", "?")] = transition
        return latest


# -- run results --------------------------------------------------------------------


@dataclass
class NodeOutcome:
    """How one node ended up in one run."""

    name: str
    stage: str
    state: str
    signature: str = ""
    dir: str = ""                       #: root-relative node dir
    attempts: int = 0
    outputs: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    reason: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "stage": self.stage, "state": self.state,
                "signature": self.signature, "dir": self.dir,
                "attempts": self.attempts, "outputs": self.outputs,
                "reason": self.reason}


class PipelineResult:
    """What one :meth:`DAGRunner.run` produced (possibly partial)."""

    def __init__(self, root: Path, pipeline: str):
        self.root = Path(root)
        self.pipeline = pipeline
        self.outcomes: Dict[str, NodeOutcome] = {}
        self.failures: List[PointFailure] = []

    def record(self, outcome: NodeOutcome) -> NodeOutcome:
        self.outcomes[outcome.name] = outcome
        return outcome

    def states(self) -> Dict[str, str]:
        return {name: outcome.state
                for name, outcome in self.outcomes.items()}

    def in_state(self, *states: str) -> List[str]:
        return sorted(name for name, outcome in self.outcomes.items()
                      if outcome.state in states)

    @property
    def ok(self) -> bool:
        return all(outcome.state in (DONE, CACHED)
                   for outcome in self.outcomes.values())

    def artifact(self, node: str, output: str) -> Path:
        """Resolved path of one completed node's declared output."""
        outcome = self.outcomes[node]
        if outcome.state not in (DONE, CACHED):
            raise StageOutputMissing(
                f"node {node!r} is {outcome.state}, not complete")
        return self.root / outcome.dir / outcome.outputs[output]["path"]

    def manifest(self) -> Dict[str, Any]:
        return {"pipeline": self.pipeline,
                "ok": self.ok,
                "nodes": {name: outcome.to_dict()
                          for name, outcome in sorted(self.outcomes.items())},
                "failures": [failure.to_dict()
                             for failure in self.failures]}


class PipelineFailed(RuntimeError):
    """Raised when the run finished with quarantined/blocked nodes
    (under ``fail-fast`` and ``continue`` propagation).  Carries the
    full :class:`PipelineResult` so callers keep the partial work.
    """

    def __init__(self, result: PipelineResult):
        self.result = result
        bad = result.in_state(QUARANTINED)
        blocked = result.in_state(BLOCKED)
        detail = f"quarantined: {', '.join(bad) or 'none'}"
        if blocked:
            detail += f"; blocked: {', '.join(blocked)}"
        super().__init__(f"pipeline {result.pipeline!r} failed — {detail}")


# -- the runner ---------------------------------------------------------------------


class DAGRunner:
    """Schedules one :class:`PipelineDAG` under a pipeline root dir.

    Layout under ``root``::

        journal.jsonl                    durable transition history
        quarantine.jsonl                 poison-node sidecar (optional)
        nodes/<name>@<sig12>/
            node.json                    descriptor (config, wiring)
            .pred.json / .succ.json      relative link records
            work/...                     declared outputs
            outputs.json                 completion manifest (atomic)
            telemetry/                   per-node telemetry (optional)
    """

    def __init__(self, dag: PipelineDAG, root: str | Path,
                 retry_policy: Optional[RetryPolicy] = None,
                 quarantine: Optional[Quarantine] = None,
                 on_failure: str = FAIL_FAST,
                 telemetry: Optional[Telemetry] = None,
                 events: Optional[Any] = None,
                 node_telemetry: bool = False,
                 verify_outputs: bool = True):
        if on_failure not in PROPAGATION_MODES:
            raise ValueError(f"on_failure must be one of {PROPAGATION_MODES},"
                             f" got {on_failure!r}")
        dag.validate()
        self.dag = dag
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.retry_policy = retry_policy or RetryPolicy()
        self.quarantine = quarantine
        self.on_failure = on_failure
        self.telemetry = telemetry or Telemetry.disabled()
        self.events = events
        self.node_telemetry = node_telemetry
        self.verify_outputs = verify_outputs
        self.journal = DAGJournal(self.root / "journal.jsonl",
                                  pipeline=dag.name)
        self._registry = self.telemetry.registry
        self._last_outcomes: Dict[str, NodeOutcome] = {}

    # -- bookkeeping -----------------------------------------------------------------

    def _count(self, name: str, amount: float = 1) -> None:
        self._registry.counter(f"pipeline.{name}").inc(amount)

    def _publish(self, kind: str, **payload: Any) -> None:
        if self.events is not None:
            self.events.publish(kind, pipeline=self.dag.name, **payload)

    # -- planning --------------------------------------------------------------------

    def plan(self) -> List[Dict[str, Any]]:
        """The topological execution plan with cache hits resolved.

        Each entry says whether the node would be reused (``cached``),
        executed (``run``), or cannot be decided yet because an
        upstream must run first (``stale-upstream`` — its signature
        depends on output bytes that do not exist yet).
        """
        entries: List[Dict[str, Any]] = []
        digests: Dict[str, Dict[str, str]] = {}   # node -> output -> digest
        for name in self.dag.topological_order():
            node = self.dag.node(name)
            upstream_digests = self._upstream_digests(node, digests)
            entry = {"node": name, "stage": node.stage,
                     "after": node.predecessors()}
            if upstream_digests is None:
                entry.update(signature="", dir="", action="stale-upstream")
                entries.append(entry)
                continue
            signature = node_signature(node, upstream_digests)
            dirname = node_dirname(name, signature)
            outputs = self._cached_outputs(node, signature)
            entry.update(signature=signature, dir=f"nodes/{dirname}")
            if outputs is None:
                entry["action"] = "run"
            else:
                entry["action"] = "cached"
                digests[name] = {output: meta["digest"]
                                 for output, meta in outputs.items()}
            entries.append(entry)
        return entries

    def _upstream_digests(self, node: StageNode,
                          digests: Dict[str, Dict[str, str]]
                          ) -> Optional[Dict[str, str]]:
        """Input-name -> upstream output digest, or None if unknowable."""
        resolved: Dict[str, str] = {}
        for input_name, (upstream, output) in node.in_paths.items():
            known = digests.get(upstream)
            if known is None or output not in known:
                return None
            resolved[input_name] = known[output]
        return resolved

    # -- cache validity --------------------------------------------------------------

    def _node_dir(self, name: str, signature: str) -> Path:
        return self.root / "nodes" / node_dirname(name, signature)

    def _cached_outputs(self, node: StageNode, signature: str
                        ) -> Optional[Dict[str, Dict[str, Any]]]:
        """The completion manifest, iff present, matching and verified."""
        manifest_path = self._node_dir(node.name, signature) / "outputs.json"
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if (manifest.get("format") != DAG_FORMAT_VERSION
                or manifest.get("signature") != signature):
            return None
        outputs = manifest.get("outputs")
        if (not isinstance(outputs, dict)
                or set(outputs) != set(node.out_paths)):
            return None
        if self.verify_outputs:
            base = self._node_dir(node.name, signature)
            for meta in outputs.values():
                try:
                    if digest_path(base / meta["path"]) != meta["digest"]:
                        return None
                except (StageOutputMissing, OSError, KeyError, TypeError):
                    return None
        return outputs

    # -- running ---------------------------------------------------------------------

    def run(self) -> PipelineResult:
        """Execute the DAG; see the class docstring for semantics."""
        order = self.dag.topological_order()
        result = PipelineResult(self.root, self.dag.name)
        digests: Dict[str, Dict[str, str]] = {}
        blocked: Dict[str, str] = {}      # node -> failed upstream
        started = time.monotonic()
        aborted = False
        self._count("runs")
        self._registry.gauge("pipeline.nodes_total").set(len(order))
        self._publish("pipeline", status="started", nodes=len(order))

        for position, name in enumerate(order):
            node = self.dag.node(name)
            if name in blocked:
                outcome = NodeOutcome(
                    name=name, stage=node.stage, state=BLOCKED,
                    reason=f"upstream {blocked[name]} failed")
                self.journal.record(name, "", BLOCKED,
                                    upstream=blocked[name])
                self._finish_node(result, outcome)
                continue
            if aborted:
                outcome = NodeOutcome(name=name, stage=node.stage,
                                      state=SKIPPED,
                                      reason="fail-fast abort")
                self.journal.record(name, "", SKIPPED)
                self._finish_node(result, outcome)
                continue

            upstream_digests = self._upstream_digests(node, digests)
            assert upstream_digests is not None, \
                "topological order guarantees resolved upstream digests"
            signature = node_signature(node, upstream_digests)
            node_dir = self._node_dir(name, signature)
            dirname = os.path.join("nodes", node_dirname(name, signature))

            cached = self._cached_outputs(node, signature)
            if cached is not None:
                digests[name] = {output: meta["digest"]
                                 for output, meta in cached.items()}
                outcome = NodeOutcome(name=name, stage=node.stage,
                                      state=CACHED, signature=signature,
                                      dir=dirname, outputs=cached)
                self.journal.record(name, signature, CACHED)
                self._finish_node(result, outcome)
                continue

            outcome = self._execute_with_retries(
                node, signature, node_dir, dirname, result)
            if outcome.state == DONE:
                digests[name] = {output: meta["digest"]
                                 for output, meta in outcome.outputs.items()}
            else:
                for descendant in self.dag.descendants(name):
                    blocked.setdefault(descendant, name)
                if self.on_failure == FAIL_FAST:
                    aborted = True
            self._finish_node(result, outcome)

        failures = result.in_state(QUARANTINED)
        self._publish("pipeline",
                      status="failed" if failures else "completed",
                      ok=result.ok,
                      wall_s=round(time.monotonic() - started, 3),
                      states=result.states())
        if failures and self.on_failure != SKIP_DESCENDANTS:
            raise PipelineFailed(result)
        return result

    def _finish_node(self, result: PipelineResult,
                     outcome: NodeOutcome) -> None:
        self._last_outcomes[outcome.name] = outcome
        result.record(outcome)
        self._count({DONE: "executed", CACHED: "cache_hits",
                     QUARANTINED: "quarantined", BLOCKED: "blocked",
                     SKIPPED: "skipped"}.get(outcome.state, outcome.state))
        self._registry.gauge("pipeline.nodes_settled").inc()
        self._publish("node", node=outcome.name, stage=outcome.stage,
                      status=outcome.state, signature=outcome.signature[:12],
                      attempts=outcome.attempts,
                      reason=outcome.reason or None)

    # -- single-node execution -------------------------------------------------------

    def _execute_with_retries(self, node: StageNode, signature: str,
                              node_dir: Path, dirname: str,
                              result: PipelineResult) -> NodeOutcome:
        policy = self.retry_policy
        fingerprints: List[FailureFingerprint] = []
        attempts = 0
        inputs = self._resolve_inputs(node)
        while True:
            attempts += 1
            self.journal.record(node.name, signature, RUNNING,
                                attempt=attempts)
            self._publish("node", node=node.name, stage=node.stage,
                          status=RUNNING, signature=signature[:12],
                          attempt=attempts)
            self._maybe_crash(node)
            try:
                outputs = self._execute(node, signature, node_dir,
                                        inputs, attempts)
            except Exception as exc:  # noqa: BLE001 — classified below
                classification = classify_failure(exc)
                fingerprints.append(FailureFingerprint.from_exception(exc))
                self.journal.record(node.name, signature, FAILED,
                                    attempt=attempts,
                                    classification=classification,
                                    error=f"{type(exc).__name__}: {exc}")
                self._publish("node", node=node.name, stage=node.stage,
                              status=FAILED, attempt=attempts,
                              classification=classification)
                if isinstance(exc, DeadlineExpired):
                    self._count("deadline_kills")
                if policy.should_retry(classification, attempts):
                    self._count("retries")
                    time.sleep(policy.delay(signature, attempts))
                    continue
                failure = PointFailure(
                    key=signature, job=f"{self.dag.name}/{node.name}",
                    input_gb=0.0, seed=0, attempts=attempts,
                    fingerprints=fingerprints)
                result.failures.append(failure)
                if self.quarantine is not None:
                    self.quarantine.record(failure)
                self.journal.record(node.name, signature, QUARANTINED,
                                    attempt=attempts)
                outcome = NodeOutcome(
                    name=node.name, stage=node.stage, state=QUARANTINED,
                    signature=signature, dir=dirname, attempts=attempts,
                    reason=fingerprints[-1].short())
                return outcome
            self.journal.record(node.name, signature, DONE,
                                attempt=attempts)
            return NodeOutcome(name=node.name, stage=node.stage, state=DONE,
                               signature=signature, dir=dirname,
                               attempts=attempts, outputs=outputs)

    def _resolve_inputs(self, node: StageNode) -> Dict[str, Path]:
        """Input name -> absolute path of the upstream artifact.

        Only called after every upstream settled (DONE or CACHED) this
        run, so the upstream outcomes' dirs are authoritative.
        """
        resolved: Dict[str, Path] = {}
        for input_name, (upstream, output) in node.in_paths.items():
            outcome = self._last_outcomes[upstream]
            resolved[input_name] = (self.root / outcome.dir
                                    / outcome.outputs[output]["path"])
        return resolved

    def _execute(self, node: StageNode, signature: str, node_dir: Path,
                 inputs: Mapping[str, Path], attempt: int
                 ) -> Dict[str, Dict[str, Any]]:
        workdir = node_dir / "work"
        workdir.mkdir(parents=True, exist_ok=True)
        self._write_descriptor(node, signature, node_dir, inputs)

        telemetry = (Telemetry.enabled_in_memory() if self.node_telemetry
                     else Telemetry.disabled())
        deadline = self.retry_policy.deadline_s
        if deadline is not None and node.fn is None:
            self._execute_in_worker(node, workdir, inputs, deadline)
        else:
            fn = node.fn
            if fn is None:
                try:
                    fn = _STAGE_REGISTRY[node.stage]
                except KeyError:
                    raise PipelineDefinitionError(
                        f"node {node.name!r}: stage {node.stage!r} is not "
                        "registered and no fn was given") from None
            context = StageContext(
                name=node.name, workdir=workdir, config=dict(node.config),
                inputs=dict(inputs), out_paths=dict(node.out_paths),
                telemetry=telemetry)
            fn(context)

        if self.node_telemetry:
            from repro.obs.export import write_telemetry

            write_telemetry(telemetry, node_dir / "telemetry")

        outputs: Dict[str, Dict[str, Any]] = {}
        for output, relative in sorted(node.out_paths.items()):
            path = workdir / relative
            outputs[output] = {"path": (Path("work") / relative).as_posix(),
                               "digest": digest_path(path)}
        manifest = {"format": DAG_FORMAT_VERSION, "node": node.name,
                    "stage": node.stage, "signature": signature,
                    "attempt": attempt, "outputs": outputs}
        # Publishing outputs.json is the commit point: it is written
        # atomically and durably *after* every output digest is taken,
        # so a manifest on disk always describes complete outputs.
        write_atomic(node_dir / "outputs.json",
                     json.dumps(manifest, indent=2, sort_keys=True) + "\n")
        self._write_links(node, node_dir)
        return outputs

    def _execute_in_worker(self, node: StageNode, workdir: Path,
                           inputs: Mapping[str, Path],
                           deadline: float) -> None:
        """Run a registry stage in a disposable spawn worker.

        The watchdog is the parent: if the worker misses the deadline
        its process is terminated (a stage cannot be cancelled from
        inside) and the attempt raises :class:`DeadlineExpired`.
        """
        context = get_context("spawn")
        pool = ProcessPoolExecutor(max_workers=1, mp_context=context)
        future = pool.submit(
            _run_stage_in_worker, node.stage, node.name, str(workdir),
            dict(node.config),
            {name: str(path) for name, path in inputs.items()},
            dict(node.out_paths))
        try:
            done, _ = wait([future], timeout=deadline,
                           return_when=FIRST_COMPLETED)
            if not done:
                for process in list(getattr(pool, "_processes", {}).values()):
                    process.terminate()
                raise DeadlineExpired(
                    f"node {node.name!r} exceeded {deadline:.3f}s deadline")
            future.result()
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    def _write_descriptor(self, node: StageNode, signature: str,
                          node_dir: Path,
                          inputs: Mapping[str, Path]) -> None:
        """node.json: the full recipe, with root-relative input paths."""
        descriptor = {
            "format": DAG_FORMAT_VERSION, "name": node.name,
            "stage": node.stage, "signature": signature,
            "config": dict(node.config),
            "out_paths": dict(node.out_paths),
            "in_paths": {input_name: {"node": upstream, "output": output,
                                      "path": os.path.relpath(
                                          inputs[input_name], node_dir)}
                         for input_name, (upstream, output)
                         in sorted(node.in_paths.items())}}
        write_atomic(node_dir / "node.json",
                     json.dumps(descriptor, indent=2, sort_keys=True) + "\n")

    def _write_links(self, node: StageNode, node_dir: Path) -> None:
        """``.pred.json`` here and ``.succ.json`` updates upstream —
        both hold node-dir-relative paths, keeping the tree relocatable.
        """
        preds = {}
        for input_name, (upstream, _) in sorted(node.in_paths.items()):
            upstream_outcome = self._last_outcomes.get(upstream)
            if upstream_outcome is None or not upstream_outcome.dir:
                continue
            upstream_dir = self.root / upstream_outcome.dir
            preds[input_name] = {
                "node": upstream,
                "dir": os.path.relpath(upstream_dir, node_dir)}
            succ_path = upstream_dir / ".succ.json"
            try:
                existing = json.loads(succ_path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                existing = {}
            existing[node.name] = {
                "dir": os.path.relpath(node_dir, upstream_dir)}
            write_atomic(succ_path,
                         json.dumps(existing, indent=2, sort_keys=True) + "\n",
                         durable=False)
        write_atomic(node_dir / ".pred.json",
                     json.dumps(preds, indent=2, sort_keys=True) + "\n",
                     durable=False)

    # -- crash injection -------------------------------------------------------------

    @staticmethod
    def _maybe_crash(node: StageNode) -> None:
        """Test hook: SIGKILL this process when the env var names us.

        Fires *after* the RUNNING transition is journaled — exactly the
        window a real mid-stage crash occupies.
        """
        targets = os.environ.get(CRASH_ENV_VAR, "")
        if targets and node.name in {part.strip()
                                     for part in targets.split(",")
                                     if part.strip()}:
            os.kill(os.getpid(), signal.SIGKILL)

