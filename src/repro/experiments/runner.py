"""Campaign execution: fan independent capture points out to workers.

A campaign is a list of :class:`CapturePoint` — fully described,
mutually independent simulations (job kind, input size, derived seed,
cluster + Hadoop configuration, job kwargs).  The
:class:`CampaignRunner` resolves each point through a four-level
hierarchy:

1. the checkpoint journal of a resumed run
   (:class:`repro.experiments.supervision.CheckpointJournal`),
2. the process-local memo (:mod:`repro.experiments.campaigns`),
3. the persistent content-addressed store
   (:class:`repro.experiments.store.CaptureStore`), and
4. actual simulation — serial in-process, or fanned out across
   ``workers`` processes with a ``spawn`` context.

Determinism is the contract that makes the fan-out safe: every point
carries its own derived seed and builds a fresh
:class:`~repro.mapreduce.cluster.HadoopCluster`, so a point's
(result, trace) depends only on the point — never on which worker ran
it or in what order.  Parallel campaign output is flow-for-flow
identical to serial output, and both are byte-identical once written
as JSONL.

Supervision
-----------
Simulation is executed under the supervision layer
(:mod:`repro.experiments.supervision`): transient worker failures
(broken pools, SIGKILLed workers, pickling errors) are retried with
deterministic exponential backoff; a per-point wall-clock deadline is
enforced by a watchdog that kills hung workers; points that exhaust
their attempt budget — or fail deterministically — are quarantined
with failure fingerprints and the campaign *completes*, returning a
partial result set.  After ``pool_failure_limit`` consecutive pool
collapses the runner degrades gracefully from parallel to serial
in-process execution.  Every mechanism is counted on the telemetry
registry (``campaign.retries``, ``campaign.deadline_kills``,
``campaign.quarantined``, ``campaign.resumed_points``,
``campaign.pool_failures``, ``campaign.degraded_serial``).

Seed derivation
---------------
Historically the repo had two formulas — ``seed + size_index`` in the
campaign memo and ``seed * 10_007 + size_index * 101 + repeat`` in the
top-level API — so the same logical sweep point hashed to different
captures depending on the entry path.  :func:`derive_seed` is now the
single documented rule, used by both.
"""

from __future__ import annotations

import os
import time as _time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass, field
from multiprocessing import get_context
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.capture.records import JobTrace
from repro.cluster.config import ClusterSpec, HadoopConfig
from repro.jobs import make_job
from repro.mapreduce.cluster import HadoopCluster
from repro.mapreduce.result import JobResult
from repro.obs.aggregate import AggregateRegistry, EventBroker, delta_envelope
from repro.obs.telemetry import Telemetry, TelemetryConfig
from repro.experiments.store import (
    TRACE_FORMAT_VERSION,
    CaptureStore,
    encode_entry,
    key_hash,
)
from repro.experiments.supervision import (
    CampaignPointsFailed,
    CheckpointJournal,
    DeadlineExpired,
    FailureFingerprint,
    PointFailure,
    Quarantine,
    RetryPolicy,
    classify_failure,
)


def derive_seed(base_seed: int, size_index: int, repeat: int = 0) -> int:
    """The campaign seed-derivation rule (one formula for all layers).

    ``base_seed * 10_007 + size_index * 101 + repeat`` — multiplying the
    base by a prime much larger than any sweep keeps campaigns with
    nearby base seeds from colliding, and the ``* 101`` stride keeps
    (size_index, repeat) pairs injective for any realistic sweep
    (repeats < 101).  The function is pure, so serial and parallel
    execution derive identical seeds for identical points.
    """
    return base_seed * 10_007 + size_index * 101 + repeat


@dataclass(frozen=True)
class CapturePoint:
    """One fully-specified capture: everything a worker needs to run it.

    ``key_config`` is the canonical configuration sub-dict used for
    content addressing; constructors set it so that logically equal
    points (same campaign, or same explicit spec+config) share one
    hash regardless of which API layer built them.
    """

    job: str
    input_gb: float
    seed: int
    cluster_spec: ClusterSpec
    hadoop_config: HadoopConfig
    job_kwargs: Tuple[Tuple[str, Any], ...] = ()
    key_config: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def from_campaign(cls, job: str, input_gb: float, seed: int,
                      campaign: "Any", job_kwargs: Optional[Mapping[str, Any]]
                      = None) -> "CapturePoint":
        """Point for a :class:`~repro.experiments.campaigns.CampaignConfig`."""
        return cls(job=job, input_gb=float(input_gb), seed=int(seed),
                   cluster_spec=campaign.cluster_spec(),
                   hadoop_config=campaign.hadoop_config(),
                   job_kwargs=_freeze(job_kwargs),
                   key_config=_freeze({"campaign": campaign.to_dict()}))

    @classmethod
    def from_configs(cls, job: str, input_gb: float, seed: int,
                     cluster_spec: ClusterSpec, hadoop_config: HadoopConfig,
                     job_kwargs: Optional[Mapping[str, Any]] = None,
                     ) -> "CapturePoint":
        """Point for explicit (ClusterSpec, HadoopConfig) pairs (api layer)."""
        return cls(job=job, input_gb=float(input_gb), seed=int(seed),
                   cluster_spec=cluster_spec, hadoop_config=hadoop_config,
                   job_kwargs=_freeze(job_kwargs),
                   key_config=_freeze({"cluster": cluster_spec.to_dict(),
                                       "hadoop": hadoop_config.to_dict()}))

    def key_dict(self) -> Dict[str, Any]:
        """Canonical key: hash input for the store AND the memo key."""
        return {
            "format": TRACE_FORMAT_VERSION,
            "job": self.job,
            "input_gb": self.input_gb,
            "seed": self.seed,
            # Explicit top-level backend discriminator: analytic and
            # fluid captures of the same point must never alias, no
            # matter which constructor built the key_config payload.
            # The fluid *engine* is deliberately absent (ClusterSpec.
            # to_dict drops it): scalar and vectorized captures are
            # byte-identical, so they share one store entry.
            "backend": self.cluster_spec.backend,
            "config": _thaw(self.key_config),
            "job_kwargs": _thaw(self.job_kwargs),
        }

    def key(self) -> str:
        return key_hash(self.key_dict())

    def logical_key(self) -> str:
        """Hash of the workload alone: backend- and format-independent.

        Seeds the job id, so the same logical point produces the same
        RNG streams (and therefore the same flow population) under
        every transport backend — while :meth:`key` still separates
        their store entries.
        """
        logical = self.key_dict()
        del logical["format"]
        del logical["backend"]
        config = {name: dict(value) if isinstance(value, dict) else value
                  for name, value in logical["config"].items()}
        for section in config.values():
            if isinstance(section, dict):
                section.pop("backend", None)
        logical["config"] = config
        return key_hash(logical)

    def simulate(self, telemetry: Optional[Telemetry] = None,
                 ) -> Tuple[JobResult, JobTrace]:
        """Run this point on a fresh cluster (pure function of the point).

        The job id is derived from the point's content hash rather than
        the process-global job counter, so the (result, trace) bytes
        are identical no matter which process/worker runs the point or
        how many jobs ran before it — telemetry included: spans and
        probes only read engine state, so passing an enabled
        ``telemetry`` never changes the returned bytes.
        """
        kwargs = dict(self.job_kwargs)
        kwargs.setdefault("job_id", f"job_{self.job}_{self.logical_key()[:10]}")
        cluster = HadoopCluster(self.cluster_spec, self.hadoop_config,
                                seed=self.seed, telemetry=telemetry)
        spec = make_job(self.job, input_gb=self.input_gb, **kwargs)
        results, traces = cluster.run([spec])
        return results[0], traces[0]


@dataclass(frozen=True)
class PlanPoint:
    """One fully-specified workload-plan capture.

    The plan analogue of :class:`CapturePoint`, presenting the same
    surface the runner consumes (``key``/``key_dict``/``simulate`` plus
    the ``job``/``input_gb``/``seed`` fields supervision reports on) —
    so plans flow through the journal → memo → store → simulate
    hierarchy, worker pools, retries and quarantine untouched.

    Keying: the ``plan`` block carries the plan name, its parameters
    *and* the built plan's structural signature.  The key has no
    ``job``/``input_gb``/``job_kwargs`` fields and no single-job key
    ever contains a ``plan`` field, so the two key families can never
    alias inside one store.
    """

    plan: str
    params: Tuple[Tuple[str, Any], ...]
    seed: int
    cluster_spec: ClusterSpec
    hadoop_config: HadoopConfig
    key_config: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def from_campaign(cls, plan: str, seed: int, campaign: "Any",
                      params: Optional[Mapping[str, Any]] = None,
                      ) -> "PlanPoint":
        return cls(plan=plan, params=_freeze(params), seed=int(seed),
                   cluster_spec=campaign.cluster_spec(),
                   hadoop_config=campaign.hadoop_config(),
                   key_config=_freeze({"campaign": campaign.to_dict()}))

    @classmethod
    def from_configs(cls, plan: str, seed: int, cluster_spec: ClusterSpec,
                     hadoop_config: HadoopConfig,
                     params: Optional[Mapping[str, Any]] = None,
                     ) -> "PlanPoint":
        return cls(plan=plan, params=_freeze(params), seed=int(seed),
                   cluster_spec=cluster_spec, hadoop_config=hadoop_config,
                   key_config=_freeze({"cluster": cluster_spec.to_dict(),
                                       "hadoop": hadoop_config.to_dict()}))

    def build(self) -> "Any":
        """Materialise the :class:`~repro.jobs.plan.WorkloadPlan`."""
        from repro.jobs.plan import make_plan

        return make_plan(self.plan, **_thaw(self.params))

    # Supervision-facing fields (quarantine records, progress events).

    @property
    def job(self) -> str:
        return f"plan:{self.plan}"

    @property
    def input_gb(self) -> float:
        """External bytes entering the plan, in GB (display only)."""
        return self.build().external_gb

    def key_dict(self) -> Dict[str, Any]:
        """Canonical key: hash input for the store AND the memo key."""
        plan = self.build()
        return {
            "format": TRACE_FORMAT_VERSION,
            "plan": {"name": self.plan,
                     "params": _thaw(self.params),
                     "signature": plan.signature()},
            "seed": self.seed,
            "backend": self.cluster_spec.backend,
            "config": _thaw(self.key_config),
        }

    def key(self) -> str:
        return key_hash(self.key_dict())

    def logical_key(self) -> str:
        """Hash of the workload alone: backend- and format-independent."""
        logical = self.key_dict()
        del logical["format"]
        del logical["backend"]
        config = {name: dict(value) if isinstance(value, dict) else value
                  for name, value in logical["config"].items()}
        for section in config.values():
            if isinstance(section, dict):
                section.pop("backend", None)
        logical["config"] = config
        return key_hash(logical)

    def simulate(self, telemetry: Optional[Telemetry] = None,
                 ) -> Tuple[Any, JobTrace]:
        """Run this plan on a fresh cluster (pure function of the point).

        The plan id derives from the point's logical content hash, so
        every stage's job id — and therefore its RNG streams, HDFS
        paths and flow population — is identical no matter which
        worker runs the point or under which transport backend.
        """
        plan = self.build()
        plan_id = f"plan_{self.plan}_{self.logical_key()[:10]}"
        cluster = HadoopCluster(self.cluster_spec, self.hadoop_config,
                                seed=self.seed, telemetry=telemetry)
        return cluster.run_plan(plan, plan_id=plan_id)


def _freeze(mapping: Optional[Mapping[str, Any]]) -> Tuple[Tuple[str, Any], ...]:
    """Sorted item-tuple of a kwargs dict (hashable, deterministic)."""
    if not mapping:
        return ()
    return tuple(sorted(mapping.items()))


def _thaw(items: Tuple[Tuple[str, Any], ...]) -> Dict[str, Any]:
    return dict(items)


def _simulate_point(point: CapturePoint) -> Tuple[JobResult, JobTrace]:
    """Module-level worker entry point (picklable under spawn)."""
    return point.simulate()


def _simulate_point_observed(
        point: CapturePoint, config: Optional[TelemetryConfig],
        delta_id: Optional[str] = None,
) -> Tuple[Tuple[JobResult, JobTrace], Dict[str, Any]]:
    """Worker entry point that also ships telemetry back to the parent.

    The worker builds its own telemetry from the picklable ``config``
    (span sinks stay per-process — workers default to the null sink).
    With a ``delta_id`` (the point's content hash) it returns an
    identified *delta envelope* — the worker telemetry is fresh per
    point, so the registry snapshot is exactly the increment — which
    the parent folds into its :class:`~repro.obs.aggregate.
    AggregateRegistry`: counters sum, gauges land under this worker's
    label, and a re-delivered completion merges exactly once.  Without
    one it returns the legacy plain snapshot.
    """
    telemetry = config.build() if config is not None else Telemetry.disabled()
    value = point.simulate(telemetry=telemetry)
    if delta_id is None:
        return value, telemetry.snapshot()
    envelope = delta_envelope(telemetry.registry,
                              source=f"worker-{os.getpid()}",
                              delta_id=delta_id,
                              spans_emitted=telemetry.tracer.spans_emitted)
    return value, envelope


#: The per-level counters a runner keeps, in presentation order.
_RUNNER_STAT_FIELDS = ("points", "points_completed", "memo_hits",
                       "store_hits", "simulated", "parallel_simulated",
                       "resumed_points", "retries", "deadline_kills",
                       "quarantined", "pool_failures", "degraded_serial")


@dataclass
class RunnerStats:
    """Read-only snapshot of what a campaign run did, level by level.

    Live counters moved onto the runner telemetry's registry
    (``campaign.*``); this dataclass survives as the compatibility view
    handed out by :attr:`CampaignRunner.stats`.
    """

    points: int = 0
    points_completed: int = 0
    memo_hits: int = 0
    store_hits: int = 0
    simulated: int = 0
    parallel_simulated: int = 0
    resumed_points: int = 0
    retries: int = 0
    deadline_kills: int = 0
    quarantined: int = 0
    pool_failures: int = 0
    degraded_serial: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in _RUNNER_STAT_FIELDS}


@dataclass
class _Supervised:
    """Mutable per-point supervision state while a campaign resolves."""

    point: CapturePoint
    attempts: int = 0
    fingerprints: List[FailureFingerprint] = field(default_factory=list)

    def failure(self, key: str) -> PointFailure:
        return PointFailure(key=key, job=self.point.job,
                            input_gb=self.point.input_gb,
                            seed=self.point.seed, attempts=self.attempts,
                            fingerprints=list(self.fingerprints))


#: How the watchdog polls in-flight futures when a deadline is set
#: (seconds).  Coarse enough to be free, fine enough that a kill lands
#: within a small fraction of any realistic deadline.
_WATCHDOG_TICK = 0.05


class CampaignRunner:
    """Resolve capture points through journal → memo → store → simulation.

    ``workers <= 1`` simulates in-process; ``workers > 1`` uses a
    ``spawn``-context :class:`ProcessPoolExecutor` so workers import the
    package fresh (fork-safety of the simulator's global state is never
    relied on).  ``memo_get``/``memo_put`` plug in the process-local
    memo without creating an import cycle with ``campaigns``.

    Supervision knobs:

    ``retry_policy``
        attempt budget, backoff and per-point deadline
        (:class:`~repro.experiments.supervision.RetryPolicy`).  Deadline
        enforcement needs process isolation, so a configured deadline
        routes even ``workers == 1`` runs through a one-worker pool.
    ``quarantine``
        optional sidecar recording points that exhausted their budget.
    ``journal``
        optional checkpoint journal; completed points are appended
        incrementally and replayed byte-identically on resume.
    ``strict``
        when True (default), :meth:`run` raises
        :class:`~repro.experiments.supervision.CampaignPointsFailed`
        *after* resolving everything else; when False it returns the
        partial result list with ``None`` at quarantined indices.
    ``pool_failure_limit``
        consecutive pool collapses tolerated before degrading the rest
        of the campaign to serial in-process execution.
    """

    def __init__(self, store: Optional[CaptureStore] = None, workers: int = 1,
                 memo_get=None, memo_put=None,
                 telemetry: Optional[Telemetry] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 quarantine: Optional[Quarantine] = None,
                 journal: Optional[CheckpointJournal] = None,
                 strict: bool = True, pool_failure_limit: int = 3,
                 events: Optional[EventBroker] = None):
        self.store = store
        self.workers = max(1, int(workers))
        self._memo_get = memo_get or (lambda key: None)
        self._memo_put = memo_put or (lambda key, value: None)
        self.telemetry = telemetry if telemetry is not None else Telemetry.disabled()
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.quarantine = quarantine
        self.journal = journal
        self.strict = strict
        self.pool_failure_limit = max(1, int(pool_failure_limit))
        # Worker registry deltas fold in here: counters sum into the
        # runner telemetry's registry, gauges land per-worker, and a
        # re-delivered completion merges exactly once.  The serve
        # daemon reads the same registry, so the aggregate IS the live
        # cluster-wide view.
        self.aggregate = AggregateRegistry(self.telemetry.registry)
        # Optional live progress stream (campaign/point events) for the
        # serve daemon's /events endpoint.
        self.events = events
        self.failures: List[PointFailure] = []
        self._total_points = 0
        registry = self.telemetry.registry
        self._counters = {name: registry.counter(f"campaign.{name}")
                          for name in _RUNNER_STAT_FIELDS}

    @property
    def stats(self) -> RunnerStats:
        """Compatibility view of the registry-backed counters."""
        return RunnerStats(**{name: int(counter.value)
                              for name, counter in self._counters.items()})

    def _count(self, name: str, amount: int = 1) -> None:
        self._counters[name].value += amount

    def _publish(self, kind: str, **payload: Any) -> None:
        """Emit a live progress event when a broker is attached."""
        if self.events is not None:
            self.events.publish(kind, **payload)

    def _resolved(self, point: CapturePoint, origin: str) -> None:
        """Count one completed point and stream a progress event.

        Called at resolution time — inside the serial loop / the pool's
        fan-in — so a live observer sees ``campaign.points_completed``
        advance *during* the run, not after it.
        """
        self._count("points_completed")
        self._publish("point", status="completed", origin=origin,
                      job=point.job, input_gb=point.input_gb,
                      seed=point.seed,
                      completed=int(self._counters["points_completed"].value),
                      total=self._total_points)

    def _absorb(self, envelope: Optional[Dict[str, Any]]) -> None:
        """Fold a worker's telemetry return into the parent registry.

        Identified delta envelopes (``source`` key) go through the
        aggregate — idempotent per (source, delta_id), gauges labelled
        per worker; legacy plain snapshots merge directly.
        """
        if envelope and "source" in envelope:
            self.aggregate.apply(envelope)
        else:
            self.telemetry.absorb(envelope)

    # -- single point -------------------------------------------------------------

    def run_point(self, point: CapturePoint) -> Tuple[JobResult, JobTrace]:
        return self.run([point])[0]

    # -- campaign -----------------------------------------------------------------

    def run(self, points: Sequence[CapturePoint],
            ) -> List[Tuple[JobResult, JobTrace]]:
        """Resolve every point, preserving input order.

        Duplicate points (same key) are simulated at most once per
        call; later occurrences reuse the first resolution.  Points
        that fail past their attempt budget are quarantined; see
        ``strict`` for how they surface.
        """
        results: List[Optional[Tuple[JobResult, JobTrace]]] = [None] * len(points)
        pending: Dict[str, List[int]] = {}
        pending_points: Dict[str, CapturePoint] = {}
        self.failures = []
        self._count("points", len(points))
        self._total_points = len(points)
        self._publish("campaign", status="started", points=len(points))

        for index, point in enumerate(points):
            key = point.key()
            if key in pending:
                pending[key].append(index)
                continue
            if self.journal is not None:
                replayed = self.journal.lookup(key)
                if replayed is not None:
                    self._count("resumed_points")
                    self._memo_put(key, replayed)
                    results[index] = replayed
                    self._resolved(point, "journal")
                    continue
            hit = self._memo_get(key)
            if hit is not None:
                self._count("memo_hits")
                self._checkpoint(point, key, hit)
                results[index] = hit
                self._resolved(point, "memo")
                continue
            if self.store is not None:
                stored = self.store.get(point.key_dict())
                if stored is not None:
                    self._count("store_hits")
                    self._memo_put(key, stored)
                    self._checkpoint(point, key, stored)
                    results[index] = stored
                    self._resolved(point, "store")
                    continue
            pending[key] = [index]
            pending_points[key] = point

        if pending:
            simulated, failures = self._simulate_all(
                list(pending_points.items()))
            for key, value in simulated.items():
                point = pending_points[key]
                if self.store is not None:
                    self.store.put(point.key_dict(), *value)
                self._memo_put(key, value)
                self._checkpoint(point, key, value)
                for index in pending[key]:
                    results[index] = value
                # The first occurrence was already counted live at
                # resolution time; later (deduplicated) indices settle
                # here.
                duplicates = len(pending[key]) - 1
                if duplicates:
                    self._count("points_completed", duplicates)
            for failure in failures:
                self._count("quarantined")
                self.failures.append(failure)
                if self.quarantine is not None:
                    self.quarantine.record(failure)
                if self.journal is not None:
                    self.journal.record_failure(failure)
                self._publish("point", status="quarantined",
                              job=failure.job, input_gb=failure.input_gb,
                              seed=failure.seed, attempts=failure.attempts)
        self._publish("campaign", status="completed",
                      points=len(points),
                      completed=int(
                          self._counters["points_completed"].value),
                      quarantined=len(self.failures))
        if self.failures and self.strict:
            raise CampaignPointsFailed(list(self.failures), results)
        return results  # type: ignore[return-value]

    def manifest(self) -> Dict[str, Any]:
        """Explicit partial-result manifest of the last :meth:`run`."""
        return {"stats": self.stats.to_dict(),
                "quarantined": [failure.to_dict()
                                for failure in self.failures]}

    def _checkpoint(self, point: CapturePoint, key: str,
                    value: Tuple[JobResult, JobTrace]) -> None:
        """Append a resolved point to the journal (idempotent per key)."""
        if self.journal is None:
            return
        self.journal.record_completed(key, point.job, point.input_gb,
                                      point.seed,
                                      encode_entry(point.key_dict(), *value))

    # -- simulation back-ends -----------------------------------------------------

    def _simulate_all(self, items: List[Tuple[str, CapturePoint]],
                      ) -> Tuple[Dict[str, Tuple[JobResult, JobTrace]],
                                 List[PointFailure]]:
        self._count("simulated", len(items))
        # Deadline enforcement needs a killable process, so a deadline
        # promotes even single-worker runs onto the pool path.
        use_pool = len(items) > 1 and self.workers > 1
        if self.retry_policy.deadline_s is not None:
            use_pool = True
        if not use_pool:
            # In-process: points run directly against the runner's
            # telemetry, so counters/spans/probes accumulate in place.
            return self._run_serial(items)
        self._count("parallel_simulated", len(items))
        return self._run_pool(items)

    # -- serial (in-process) path ---------------------------------------------------

    def _run_serial(self, items: List[Tuple[str, CapturePoint]],
                    ) -> Tuple[Dict[str, Tuple[JobResult, JobTrace]],
                               List[PointFailure]]:
        policy = self.retry_policy
        resolved: Dict[str, Tuple[JobResult, JobTrace]] = {}
        failures: List[PointFailure] = []
        for key, point in items:
            state = _Supervised(point)
            while True:
                try:
                    resolved[key] = point.simulate(telemetry=self.telemetry)
                    self._resolved(point, "simulated")
                    break
                except Exception as exc:
                    state.attempts += 1
                    state.fingerprints.append(
                        FailureFingerprint.from_exception(exc))
                    if not policy.should_retry(classify_failure(exc),
                                               state.attempts):
                        failures.append(state.failure(key))
                        break
                    self._count("retries")
                    _time.sleep(policy.delay(key, state.attempts))
        return resolved, failures

    # -- pool (process-isolated) path ------------------------------------------------

    def _new_pool(self, size: int) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=size,
                                   mp_context=get_context("spawn"))

    @staticmethod
    def _terminate_pool(pool: ProcessPoolExecutor) -> None:
        """Kill every worker process (breaks the pool on purpose)."""
        for process in list(getattr(pool, "_processes", {}).values()):
            try:
                process.terminate()
            except Exception:
                pass

    def _run_pool(self, items: List[Tuple[str, CapturePoint]],
                  ) -> Tuple[Dict[str, Tuple[JobResult, JobTrace]],
                             List[PointFailure]]:
        policy = self.retry_policy
        order = [key for key, _ in items]
        state = {key: _Supervised(point) for key, point in items}
        resolved: Dict[str, Tuple[JobResult, JobTrace]] = {}
        failures: List[PointFailure] = []
        unresolved = set(state)
        ready_at = {key: 0.0 for key in unresolved}
        consecutive_breaks = 0
        # Workers re-create telemetry from the picklable config (null
        # span sink — span streams stay per-process) and return their
        # registry snapshots, which the parent merges in.
        worker_config = self.telemetry.config()
        pool: Optional[ProcessPoolExecutor] = None
        try:
            while unresolved:
                if consecutive_breaks >= self.pool_failure_limit:
                    # Graceful degradation: the pool keeps collapsing,
                    # so finish the campaign serially in-process (no
                    # deadline — there is nothing left to kill safely).
                    self._count("degraded_serial", len(unresolved))
                    serial_items = [(key, state[key].point)
                                    for key in order if key in unresolved]
                    more, more_failures = self._run_serial(serial_items)
                    resolved.update(more)
                    failures.extend(more_failures)
                    return resolved, failures
                now = _time.monotonic()
                wake = min(ready_at[key] for key in unresolved)
                if wake > now:
                    _time.sleep(wake - now)
                if pool is None:
                    pool = self._new_pool(min(self.workers, len(unresolved)))
                round_keys = [key for key in order
                              if key in unresolved
                              and ready_at[key] <= _time.monotonic()]
                broke = self._run_round(pool, round_keys, state, resolved,
                                        unresolved, failures, ready_at,
                                        worker_config)
                if broke == "organic":
                    self._count("pool_failures")
                    consecutive_breaks += 1
                elif broke == "deadline":
                    consecutive_breaks = 0
                else:
                    consecutive_breaks = 0
                if broke:
                    pool.shutdown(wait=False)
                    pool = None
        finally:
            if pool is not None:
                pool.shutdown(wait=False)
        return resolved, failures

    def _run_round(self, pool: ProcessPoolExecutor, round_keys: List[str],
                   state: Dict[str, _Supervised],
                   resolved: Dict[str, Tuple[JobResult, JobTrace]],
                   unresolved: set, failures: List[PointFailure],
                   ready_at: Dict[str, float],
                   worker_config: TelemetryConfig) -> str:
        """Submit one batch and supervise it to quiescence.

        Returns ``""`` when the pool survived, ``"deadline"`` when the
        watchdog killed it deliberately, ``"organic"`` when a worker
        died underneath us (SIGKILL, OOM, crash).
        """
        policy = self.retry_policy
        futures = {pool.submit(_simulate_point_observed, state[key].point,
                               worker_config, key): key
                   for key in round_keys}
        started = {key: _time.monotonic() for key in round_keys}
        expired: set = set()
        deliberate_kill = False
        saw_break = False
        remaining = set(futures)
        while remaining:
            timeout = _WATCHDOG_TICK if (policy.deadline_s is not None
                                         and not saw_break) else None
            done, remaining = wait(remaining, timeout=timeout,
                                   return_when=FIRST_COMPLETED)
            for future in done:
                key = futures[future]
                try:
                    value, snapshot = future.result()
                except BrokenExecutor:
                    # The pool collapsed under this future.  Either we
                    # killed it (deadline watchdog) or a worker died.
                    # (A point's own OSError arrives as a plain
                    # exception below — only BrokenExecutor means the
                    # executor itself is gone.)
                    saw_break = True
                    if key in expired:
                        self._point_failed(key, state[key],
                                           DeadlineExpired(
                                               f"point exceeded deadline of "
                                               f"{policy.deadline_s}s"),
                                           unresolved, failures, ready_at)
                    # Collateral victims are rescheduled free of charge:
                    # their failure tells us nothing about the point.
                    continue
                except Exception as exc:
                    # The *point* failed inside a healthy worker.
                    self._point_failed(key, state[key], exc, unresolved,
                                       failures, ready_at)
                    continue
                self._absorb(snapshot)
                resolved[key] = value
                unresolved.discard(key)
                self._resolved(state[key].point, "simulated")
            if saw_break:
                # A broken pool fails all outstanding futures promptly;
                # drop the timeout and drain them.
                continue
            if policy.deadline_s is not None:
                now = _time.monotonic()
                overdue = [key for future, key in futures.items()
                           if not future.done()
                           and now - started[key] > policy.deadline_s]
                if overdue:
                    expired.update(overdue)
                    self._count("deadline_kills", len(overdue))
                    deliberate_kill = True
                    self._terminate_pool(pool)
        if saw_break:
            return "deadline" if deliberate_kill else "organic"
        return ""

    def _point_failed(self, key: str, state: _Supervised, exc: BaseException,
                      unresolved: set, failures: List[PointFailure],
                      ready_at: Dict[str, float]) -> None:
        """Charge one failed attempt; schedule a retry or quarantine."""
        policy = self.retry_policy
        state.attempts += 1
        state.fingerprints.append(FailureFingerprint.from_exception(exc))
        if policy.should_retry(classify_failure(exc), state.attempts):
            self._count("retries")
            ready_at[key] = _time.monotonic() + policy.delay(key,
                                                             state.attempts)
        else:
            failures.append(state.failure(key))
            unresolved.discard(key)


def default_workers() -> int:
    """Worker count for ``--workers 0`` / auto: one per available core."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # non-Linux
        return max(1, os.cpu_count() or 1)
